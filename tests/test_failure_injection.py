"""Failure injection: corrupt inputs must fail loudly and early.

Every public fit/score entry point is fed NaN, inf, wrong-shaped and
wrong-width data; the contract is a :class:`DataValidationError` (or
its ``ValueError`` base), never a silent wrong answer or a numpy
warning cascade.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.baselines import (
    FirstPCARanker,
    KernelPCARanker,
    ManifoldRanker,
    WeightedSumRanker,
)
from repro.core.exceptions import DataValidationError, ReproError
from repro.core.order import RankingOrder
from repro.data.normalize import MinMaxNormalizer
from repro.princurve import (
    ElasticMapCurve,
    HastieStuetzleCurve,
    PolygonalLineCurve,
    TibshiraniCurve,
)

ALPHA2 = [1, 1]

FITTERS = [
    lambda: RankingPrincipalCurve(alpha=ALPHA2, n_restarts=1, init="linear"),
    lambda: FirstPCARanker(alpha=ALPHA2),
    lambda: KernelPCARanker(alpha=ALPHA2),
    lambda: WeightedSumRanker(alpha=ALPHA2),
    lambda: ManifoldRanker(alpha=ALPHA2),
]

CURVE_FITTERS = [
    lambda: HastieStuetzleCurve(),
    lambda: PolygonalLineCurve(),
    lambda: ElasticMapCurve(),
    lambda: TibshiraniCurve(),
]


def _clean_data(n=30):
    rng = np.random.default_rng(0)
    return rng.uniform(0.1, 0.9, size=(n, 2))


@pytest.mark.parametrize("make_model", FITTERS)
class TestRankerInjection:
    def test_nan_in_fit_raises(self, make_model):
        X = _clean_data()
        X[3, 1] = np.nan
        with pytest.raises((DataValidationError, ValueError)):
            make_model().fit(X)

    def test_inf_in_fit_raises(self, make_model):
        X = _clean_data()
        X[0, 0] = np.inf
        with pytest.raises((DataValidationError, ValueError)):
            make_model().fit(X)

    def test_1d_input_raises(self, make_model):
        with pytest.raises((DataValidationError, ValueError)):
            make_model().fit(np.ones(10))

    def test_wrong_width_raises(self, make_model):
        with pytest.raises((DataValidationError, ValueError)):
            make_model().fit(np.ones((10, 5)))

    def test_wrong_width_at_score_time_raises(self, make_model):
        model = make_model()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model.fit(_clean_data())
        with pytest.raises((DataValidationError, ValueError)):
            model.score_samples(np.ones((3, 7)))


@pytest.mark.parametrize("make_model", CURVE_FITTERS)
class TestPrincipalCurveInjection:
    def test_nan_in_fit_raises(self, make_model):
        X = _clean_data()
        X[5, 0] = np.nan
        with pytest.raises((DataValidationError, ValueError)):
            make_model().fit(X)

    def test_single_point_raises(self, make_model):
        with pytest.raises((DataValidationError, ValueError)):
            make_model().fit(np.ones((1, 2)))


class TestOrderInjection:
    def test_nan_points_raise(self):
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        with pytest.raises(DataValidationError):
            order.dominance_matrix(np.array([[np.nan, 1.0]]))

    def test_scorer_with_wrong_output_length_raises(self):
        from repro.core.meta_rules import check_strict_monotonicity

        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        with pytest.raises(DataValidationError):
            check_strict_monotonicity(
                lambda X: np.zeros(3), _clean_data(10), order
            )


class TestNormalizerInjection:
    def test_nan_raises_on_fit_and_transform(self):
        norm = MinMaxNormalizer().fit(_clean_data())
        bad = _clean_data()
        bad[0, 0] = np.nan
        with pytest.raises(DataValidationError):
            norm.transform(bad)
        with pytest.raises(DataValidationError):
            MinMaxNormalizer().fit(bad)


class TestExceptionHierarchy:
    def test_all_errors_are_repro_and_value_errors(self):
        """A caller can catch everything with either base class."""
        from repro.core.exceptions import (
            ConfigurationError,
            DataValidationError,
            MonotonicityError,
        )

        for exc_type in (
            ConfigurationError,
            DataValidationError,
            MonotonicityError,
        ):
            assert issubclass(exc_type, ReproError)
            assert issubclass(exc_type, ValueError)

    def test_not_fitted_is_runtime_error(self):
        from repro.core.exceptions import NotFittedError

        assert issubclass(NotFittedError, ReproError)
        assert issubclass(NotFittedError, RuntimeError)
