"""Smoke tests for the example scripts.

Every example must at least import cleanly and expose a ``main``; the
fast ones are executed end to end so documentation code cannot rot.
"""

from __future__ import annotations

import importlib.util
import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: Examples cheap enough to execute fully inside the unit-test run.
FAST_EXAMPLES = ["bezier_gallery.py", "toy_sensitivity.py"]


def test_examples_directory_is_populated():
    assert len(ALL_EXAMPLES) >= 8


@pytest.mark.parametrize("name", ALL_EXAMPLES)
def test_example_defines_main(name):
    path = EXAMPLES_DIR / name
    spec = importlib.util.spec_from_file_location(name.removesuffix(".py"), path)
    assert spec is not None and spec.loader is not None
    module = importlib.util.module_from_spec(spec)
    # Import without executing main (it is guarded by a __main__ check).
    spec.loader.exec_module(module)
    assert callable(getattr(module, "main", None)), name


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name)],
        capture_output=True,
        text=True,
        timeout=240,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), f"{name} produced no output"
