"""Tests for the first-PCA and kernel-PCA ranking baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
)
from repro.baselines import FirstPCARanker, KernelPCARanker
from repro.data.normalize import normalize_unit_cube
from repro.data.synthetic import sample_crescent, sample_ellipse
from repro.evaluation.metrics import spearman_rho


class TestFirstPCA:
    def test_recovers_latent_on_ellipse(self):
        cloud = sample_ellipse(n=150, seed=1, noise=0.01)
        model = FirstPCARanker(alpha=[1, 1]).fit(cloud.X)
        rho = spearman_rho(model.score_samples(cloud.X), cloud.latent)
        assert rho > 0.98

    def test_orientation_towards_best_corner(self):
        cloud = sample_ellipse(n=150, seed=2)
        model = FirstPCARanker(alpha=[1, 1]).fit(cloud.X)
        s = model.score_samples(cloud.X)
        # Scores must increase with the attribute sum.
        corr = np.corrcoef(s, cloud.X.sum(axis=1))[0, 1]
        assert corr > 0.9

    def test_cost_attribute_orientation(self):
        # With alpha = (1, -1), increasing the cost must lower scores.
        rng = np.random.default_rng(3)
        t = rng.uniform(size=100)
        X = np.column_stack([t, 1.0 - t]) + rng.normal(0, 0.01, (100, 2))
        model = FirstPCARanker(alpha=[1, -1]).fit(X)
        s = model.score_samples(X)
        assert np.corrcoef(s, t)[0, 1] > 0.9

    def test_explained_variance_lower_on_crescent(self):
        straight = sample_ellipse(n=200, seed=4, eccentricity=0.99)
        bent = sample_crescent(n=200, seed=4)
        ev_straight = FirstPCARanker(alpha=[1, 1]).fit(
            straight.X
        ).explained_variance(straight.X)
        ev_bent = FirstPCARanker(alpha=[1, 1]).fit(
            bent.X
        ).explained_variance(bent.X)
        assert ev_straight > ev_bent

    def test_capabilities(self):
        model = FirstPCARanker(alpha=[1, 1, -1])
        assert model.has_linear_capacity
        assert not model.has_nonlinear_capacity
        assert model.parameter_size == 6

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            FirstPCARanker(alpha=[1, 1]).score_samples(np.ones((3, 2)))

    def test_width_mismatch_raises(self):
        model = FirstPCARanker(alpha=[1, 1]).fit(np.random.rand(10, 2))
        with pytest.raises(DataValidationError):
            model.score_samples(np.ones((3, 4)))


class TestKernelPCA:
    def test_scores_track_quality_on_curved_data(self):
        cloud = sample_crescent(n=150, seed=5, width=0.02)
        X = normalize_unit_cube(cloud.X)
        model = KernelPCARanker(alpha=[1, 1], gamma=2.0).fit(X)
        rho = spearman_rho(model.score_samples(X), cloud.latent)
        assert abs(rho) > 0.8

    def test_poly_kernel_runs(self):
        cloud = sample_ellipse(n=100, seed=6)
        model = KernelPCARanker(alpha=[1, 1], kernel="poly", degree=2)
        model.fit(cloud.X)
        assert model.score_samples(cloud.X).shape == (100,)

    def test_out_of_sample_scoring(self):
        cloud = sample_ellipse(n=100, seed=7)
        model = KernelPCARanker(alpha=[1, 1]).fit(cloud.X[:80])
        out = model.score_samples(cloud.X[80:])
        assert out.shape == (20,)

    def test_capabilities_rbf(self):
        model = KernelPCARanker(alpha=[1, 1])
        assert not model.has_linear_capacity
        assert model.has_nonlinear_capacity
        assert model.parameter_size is None  # the explicitness failure

    def test_invalid_kernel_raises(self):
        with pytest.raises(ConfigurationError):
            KernelPCARanker(alpha=[1, 1], kernel="sigmoid")

    def test_invalid_gamma_raises(self):
        with pytest.raises(ConfigurationError):
            KernelPCARanker(alpha=[1, 1], gamma=-1.0)

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            KernelPCARanker(alpha=[1, 1]).score_samples(np.ones((2, 2)))

    def test_not_order_preserving_on_dominated_pairs(self):
        # The paper's criticism: the kernel map breaks order
        # preservation.  Construct a dominated pair that RBF-kPCA
        # mis-orders on a curved cloud.
        cloud = sample_crescent(n=200, seed=8, width=0.05)
        X = normalize_unit_cube(cloud.X)
        model = KernelPCARanker(alpha=[1, 1], gamma=30.0).fit(X)
        from repro.core.order import RankingOrder
        from repro.evaluation.monotonicity import count_order_violations

        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        summary = count_order_violations(model.score_samples, X, order)
        assert summary.n_violations > 0
