"""Tests for the weighted form of Algorithm 1 (sample_weight support)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.core.exceptions import ConfigurationError
from repro.core.learning import fit_rpc_curve, objective_value
from repro.data.normalize import normalize_unit_cube
from repro.data.synthetic import sample_around_curve, sample_monotone_cloud
from repro.geometry import cubic_from_interior_points


@pytest.fixture
def unit_cloud():
    cloud = sample_monotone_cloud(
        alpha=np.array([1.0, 1.0]), n=100, seed=51, noise=0.02
    )
    return normalize_unit_cube(cloud.X)


class TestWeightedObjective:
    def test_unit_weights_match_unweighted(self, unit_cloud):
        curve = cubic_from_interior_points(
            [1.0, 1.0], p1=[0.3, 0.3], p2=[0.7, 0.7]
        )
        s = curve.project(unit_cloud)
        J_plain = objective_value(unit_cloud, curve, s)
        J_ones = objective_value(
            unit_cloud, curve, s, sample_weight=np.ones(100)
        )
        assert J_plain == pytest.approx(J_ones)

    def test_weights_scale_objective(self, unit_cloud):
        curve = cubic_from_interior_points(
            [1.0, 1.0], p1=[0.3, 0.3], p2=[0.7, 0.7]
        )
        s = curve.project(unit_cloud)
        J1 = objective_value(unit_cloud, curve, s)
        J2 = objective_value(
            unit_cloud, curve, s, sample_weight=np.full(100, 2.0)
        )
        assert J2 == pytest.approx(2.0 * J1)


class TestWeightedFit:
    def test_unit_weights_reproduce_unweighted_fit(self, unit_cloud):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            plain = fit_rpc_curve(
                unit_cloud, [1, 1], init="linear", inner_updates=32
            )
            weighted = fit_rpc_curve(
                unit_cloud,
                [1, 1],
                init="linear",
                inner_updates=32,
                sample_weight=np.ones(100),
            )
        np.testing.assert_allclose(
            plain.curve.control_points,
            weighted.curve.control_points,
            atol=1e-10,
        )

    def test_weighted_descent_is_monotone(self, unit_cloud):
        rng = np.random.default_rng(3)
        weights = rng.uniform(0.5, 3.0, size=100)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_rpc_curve(
                unit_cloud,
                [1, 1],
                init="linear",
                inner_updates=32,
                sample_weight=weights,
            )
        assert result.trace.is_monotone_decreasing()

    def test_heavy_weights_pull_the_curve(self):
        """Two sub-populations on different curves: weighting one
        sub-population heavily must pull the fit toward it."""
        lower = cubic_from_interior_points(
            [1.0, 1.0], p1=[0.6, 0.1], p2=[0.9, 0.4]
        )
        upper = cubic_from_interior_points(
            [1.0, 1.0], p1=[0.1, 0.6], p2=[0.4, 0.9]
        )
        a = sample_around_curve(lower, n=60, noise=0.01, seed=1).X
        b = sample_around_curve(upper, n=60, noise=0.01, seed=2).X
        X = np.vstack([a, b])
        w_favour_a = np.concatenate([np.full(60, 50.0), np.full(60, 1.0)])
        w_favour_b = np.concatenate([np.full(60, 1.0), np.full(60, 50.0)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            fit_a = fit_rpc_curve(
                X, [1, 1], init="linear", inner_updates=32,
                sample_weight=w_favour_a,
            )
            fit_b = fit_rpc_curve(
                X, [1, 1], init="linear", inner_updates=32,
                sample_weight=w_favour_b,
            )

        def residual_to(points, result):
            s = result.curve.project(points)
            return float(
                np.sum(result.curve.projection_residuals(points, s) ** 2)
            )

        # Each weighted fit reconstructs its favoured population better
        # than the other fit does.
        assert residual_to(a, fit_a) < residual_to(a, fit_b)
        assert residual_to(b, fit_b) < residual_to(b, fit_a)

    def test_weighted_pinv_update_runs(self, unit_cloud):
        rng = np.random.default_rng(5)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_rpc_curve(
                unit_cloud,
                [1, 1],
                update="pinv",
                init="linear",
                sample_weight=rng.uniform(0.5, 2.0, size=100),
            )
        assert np.all(np.isfinite(result.curve.control_points))

    def test_invalid_weights_raise(self, unit_cloud):
        with pytest.raises(ConfigurationError):
            fit_rpc_curve(
                unit_cloud, [1, 1], sample_weight=np.ones(5)
            )
        with pytest.raises(ConfigurationError):
            fit_rpc_curve(
                unit_cloud, [1, 1], sample_weight=np.zeros(100)
            )
        bad = np.ones(100)
        bad[0] = np.nan
        with pytest.raises(ConfigurationError):
            fit_rpc_curve(unit_cloud, [1, 1], sample_weight=bad)


class TestEstimatorWeightSupport:
    def test_fit_accepts_weights(self):
        cloud = sample_monotone_cloud(
            alpha=np.array([1.0, -1.0]), n=70, seed=53, noise=0.02
        )
        rng = np.random.default_rng(0)
        weights = rng.uniform(0.5, 2.0, size=70)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = RankingPrincipalCurve(
                alpha=[1, -1], random_state=0, n_restarts=1, init="linear"
            ).fit(cloud.X, sample_weight=weights)
        from repro.evaluation.metrics import spearman_rho

        s = model.score_samples(cloud.X)
        assert spearman_rho(s, cloud.latent) > 0.95
        model.check_constraints()

    def test_fit_rank_accepts_weights(self):
        cloud = sample_monotone_cloud(
            alpha=np.array([1.0, 1.0]), n=50, seed=54, noise=0.02
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            ranking = RankingPrincipalCurve(
                alpha=[1, 1], random_state=0, n_restarts=1, init="linear"
            ).fit_rank(
                cloud.X,
                labels=[f"o{i}" for i in range(50)],
                sample_weight=np.ones(50),
            )
        assert ranking.positions.min() == 1
