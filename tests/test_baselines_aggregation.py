"""Tests for weighted sum, rank aggregation and PageRank baselines."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BordaCountAggregator,
    MedianRankAggregator,
    PageRankResult,
    WeightedSumRanker,
    attribute_rankings,
    pagerank,
)
from repro.core.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
)
from repro.data.synthetic import sample_linked_graph
from repro.data.toy import PAPER_TABLE1_RANKAGG, table1a_objects, table1b_objects


class TestWeightedSum:
    def test_uniform_weights_default(self):
        model = WeightedSumRanker(alpha=[1, 1])
        np.testing.assert_allclose(model.weights, [0.5, 0.5])

    def test_scores_in_unit_interval(self, rng):
        X = rng.uniform(10, 20, size=(40, 3))
        model = WeightedSumRanker(alpha=[1, -1, 1]).fit(X)
        s = model.score_samples(X)
        assert s.min() >= 0.0 and s.max() <= 1.0

    def test_best_corner_scores_one(self):
        X = np.array([[0.0, 10.0], [5.0, 5.0], [10.0, 0.0]])
        model = WeightedSumRanker(alpha=[1, -1]).fit(X)
        s = model.score_samples(X)
        assert s[2] == pytest.approx(1.0)  # high benefit, low cost
        assert s[0] == pytest.approx(0.0)

    def test_weights_normalised(self):
        model = WeightedSumRanker(alpha=[1, 1], weights=[2.0, 6.0])
        np.testing.assert_allclose(model.weights, [0.25, 0.75])

    def test_invalid_weights(self):
        with pytest.raises(ConfigurationError):
            WeightedSumRanker(alpha=[1, 1], weights=[1.0])
        with pytest.raises(ConfigurationError):
            WeightedSumRanker(alpha=[1, 1], weights=[-1.0, 2.0])
        with pytest.raises(ConfigurationError):
            WeightedSumRanker(alpha=[1, 1], weights=[0.0, 0.0])

    def test_capabilities(self):
        model = WeightedSumRanker(alpha=[1, 1, 1])
        assert model.has_linear_capacity
        assert not model.has_nonlinear_capacity
        assert model.parameter_size == 3

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            WeightedSumRanker(alpha=[1, 1]).score_samples(np.ones((2, 2)))


class TestAttributeRankings:
    def test_positions_ascending_worst_first(self):
        X = np.array([[3.0], [1.0], [2.0]])
        pos = attribute_rankings(X, alpha=np.array([1.0]))
        np.testing.assert_allclose(pos.ravel(), [3.0, 1.0, 2.0])

    def test_cost_attribute_reverses(self):
        X = np.array([[3.0], [1.0], [2.0]])
        pos = attribute_rankings(X, alpha=np.array([-1.0]))
        np.testing.assert_allclose(pos.ravel(), [1.0, 3.0, 2.0])

    def test_midranks_for_ties(self):
        X = np.array([[5.0], [5.0], [1.0]])
        pos = attribute_rankings(X, alpha=np.array([1.0]))
        np.testing.assert_allclose(pos.ravel(), [2.5, 2.5, 1.0])

    def test_1d_raises(self):
        with pytest.raises(DataValidationError):
            attribute_rankings(np.ones(3), alpha=np.array([1.0]))


class TestMedianRankAggregation:
    def test_reproduces_table1a_values(self):
        """The exact RankAgg column of Table 1(a): A=1.5, B=1.5, C=3."""
        toy = table1a_objects()
        model = MedianRankAggregator(alpha=toy.alpha)
        kappa = model.aggregate_positions(toy.X)
        for label, expected in PAPER_TABLE1_RANKAGG.items():
            idx = toy.labels.index(label)
            assert kappa[idx] == pytest.approx(expected), label

    def test_cannot_distinguish_a_and_b(self):
        toy = table1a_objects()
        s = MedianRankAggregator(alpha=toy.alpha).score_samples(toy.X)
        assert s[0] == pytest.approx(s[1])  # A and B tie — the failure

    def test_insensitive_to_table1b_perturbation(self):
        """Moving A to A' changes no per-attribute order, so RankAgg
        keeps the exact same aggregate values (the paper's point)."""
        a = table1a_objects()
        b = table1b_objects()
        model = MedianRankAggregator(alpha=a.alpha)
        np.testing.assert_allclose(
            model.aggregate_positions(a.X), model.aggregate_positions(b.X)
        )

    def test_higher_is_better_convention(self):
        toy = table1a_objects()
        s = MedianRankAggregator(alpha=toy.alpha).score_samples(toy.X)
        assert np.argmax(s) == 2  # C is the best object

    def test_capabilities(self):
        model = MedianRankAggregator(alpha=[1, 1])
        assert not model.has_linear_capacity
        assert not model.has_nonlinear_capacity
        assert model.parameter_size == 0


class TestBordaCount:
    def test_agrees_with_median_rank_order(self, rng):
        X = rng.uniform(size=(20, 3))
        alpha = np.array([1.0, -1.0, 1.0])
        borda = BordaCountAggregator(alpha=alpha).score_samples(X)
        median = MedianRankAggregator(alpha=alpha).score_samples(X)
        # Same ordering (they are affinely related on complete lists).
        np.testing.assert_array_equal(np.argsort(borda), np.argsort(median))

    def test_winner_has_most_points(self):
        X = np.array([[1.0, 1.0], [2.0, 2.0], [3.0, 3.0]])
        s = BordaCountAggregator(alpha=[1, 1]).score_samples(X)
        assert np.argmax(s) == 2
        assert s[2] == pytest.approx(4.0)  # beats 2 rivals per attribute


class TestPageRank:
    def test_uniform_cycle_gives_uniform_scores(self):
        # A directed cycle is perfectly symmetric.
        n = 5
        A = np.zeros((n, n))
        for i in range(n):
            A[i, (i + 1) % n] = 1.0
        result = pagerank(A)
        assert isinstance(result, PageRankResult)
        assert result.converged
        np.testing.assert_allclose(result.scores, 1.0 / n, atol=1e-8)

    def test_scores_sum_to_one(self):
        A = sample_linked_graph(30, seed=1)
        result = pagerank(A)
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_authority_ranks_highest(self):
        # A star: everyone links to node 0.
        n = 6
        A = np.zeros((n, n))
        A[1:, 0] = 1.0
        A[0, 1] = 1.0  # node 0 links somewhere to avoid dangling
        result = pagerank(A)
        assert np.argmax(result.scores) == 0

    def test_dangling_nodes_handled(self):
        A = np.zeros((3, 3))
        A[0, 1] = 1.0  # nodes 1 and 2 dangle
        result = pagerank(A)
        assert result.converged
        assert result.scores.sum() == pytest.approx(1.0, abs=1e-9)

    def test_matches_power_iteration_oracle(self):
        # Independent dense construction of the Google matrix.
        A = sample_linked_graph(15, seed=2)
        d = 0.85
        n = A.shape[0]
        T = A / A.sum(axis=1, keepdims=True)
        G = d * T + (1 - d) / n
        eigvals, eigvecs = np.linalg.eig(G.T)
        lead = np.argmax(eigvals.real)
        stationary = np.abs(eigvecs[:, lead].real)
        stationary /= stationary.sum()
        result = pagerank(A, damping=d, tol=1e-14)
        np.testing.assert_allclose(result.scores, stationary, atol=1e-8)

    def test_invalid_inputs(self):
        with pytest.raises(DataValidationError):
            pagerank(np.ones((2, 3)))
        with pytest.raises(DataValidationError):
            pagerank(-np.ones((2, 2)))
        with pytest.raises(ConfigurationError):
            pagerank(np.ones((2, 2)), damping=1.5)
