"""Tests for RPC-based feature selection (the paper's future work)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.core.feature_selection import (
    attribute_importances,
    select_features,
)
from repro.data.synthetic import sample_monotone_cloud


@pytest.fixture(scope="module")
def redundant_cloud():
    """A 4-attribute cloud whose last attribute is pure noise."""
    rng = np.random.default_rng(17)
    base = sample_monotone_cloud(
        alpha=np.array([1.0, 1.0, -1.0]), n=120, seed=17, noise=0.02
    )
    noise_col = rng.uniform(size=(120, 1))
    X = np.hstack([base.X, noise_col])
    alpha = np.array([1.0, 1.0, -1.0, 1.0])
    return X, alpha, base.latent


class TestAttributeImportances:
    def test_report_shape(self, redundant_cloud):
        X, alpha, _ = redundant_cloud
        reports = attribute_importances(
            X, alpha, attribute_names=["a", "b", "c", "noise"]
        )
        assert len(reports) == 4
        assert [r.name for r in reports] == ["a", "b", "c", "noise"]
        assert all(np.isfinite(r.curve_span) for r in reports)
        assert all(-1.0 <= r.loo_tau <= 1.0 for r in reports)

    def test_noise_attribute_least_important(self, redundant_cloud):
        X, alpha, _ = redundant_cloud
        reports = attribute_importances(X, alpha)
        # Dropping the noise column must perturb the ranking least.
        noise_report = reports[3]
        informative = reports[:3]
        assert noise_report.loo_tau > max(r.loo_tau for r in informative) - 0.05
        # And its structural span-to-noise ratio is the smallest.
        assert noise_report.curve_span < min(
            r.curve_span for r in informative
        )

    def test_influence_is_one_minus_tau(self, redundant_cloud):
        X, alpha, _ = redundant_cloud
        reports = attribute_importances(X, alpha)
        for r in reports:
            assert r.influence == pytest.approx(1.0 - r.loo_tau)

    def test_univariate_data_rejected(self):
        with pytest.raises(DataValidationError):
            attribute_importances(np.ones((10, 1)), np.array([1.0]))

    def test_name_count_validated(self, redundant_cloud):
        X, alpha, _ = redundant_cloud
        with pytest.raises(DataValidationError):
            attribute_importances(X, alpha, attribute_names=["only-one"])


class TestSelectFeatures:
    def test_drops_noise_keeps_signal(self, redundant_cloud):
        X, alpha, _ = redundant_cloud
        result = select_features(X, alpha, min_tau=0.9)
        assert 3 in result.dropped  # the pure-noise column goes
        # Correlated signal columns may also be pruned (they share one
        # latent); what must hold is the consistency budget and the
        # floor of two attributes.
        assert len(result.selected) >= 2
        assert result.final_tau >= 0.9

    def test_min_attributes_respected(self, redundant_cloud):
        X, alpha, _ = redundant_cloud
        result = select_features(
            X, alpha, min_tau=0.0001, min_attributes=3
        )
        assert len(result.selected) >= 3

    def test_strict_budget_keeps_everything(self, redundant_cloud):
        X, alpha, _ = redundant_cloud
        result = select_features(X, alpha, min_tau=0.999999)
        # An (almost) exact-agreement budget forbids dropping informative
        # columns; at most the pure-noise one can go.
        assert len(result.selected) >= 3

    def test_invalid_parameters(self, redundant_cloud):
        X, alpha, _ = redundant_cloud
        with pytest.raises(ConfigurationError):
            select_features(X, alpha, min_tau=0.0)
        with pytest.raises(ConfigurationError):
            select_features(X, alpha, min_attributes=1)
