"""Tests for Golden Section Search (scalar, batch, bracketing)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.linalg import (
    INV_PHI,
    bracketed_minimum,
    golden_section_search,
    golden_section_search_batch,
)


class TestScalarGSS:
    def test_quadratic_minimum(self):
        x, fx = golden_section_search(lambda t: (t - 0.3) ** 2, 0.0, 1.0)
        assert x == pytest.approx(0.3, abs=1e-6)
        assert fx == pytest.approx(0.0, abs=1e-10)

    def test_minimum_at_left_endpoint(self):
        x, _ = golden_section_search(lambda t: t, 0.0, 1.0)
        assert x == pytest.approx(0.0, abs=1e-6)

    def test_minimum_at_right_endpoint(self):
        x, _ = golden_section_search(lambda t: -t, 0.0, 1.0)
        assert x == pytest.approx(1.0, abs=1e-6)

    def test_asymmetric_bracket(self):
        x, _ = golden_section_search(lambda t: (t - 2.5) ** 2, 2.0, 10.0)
        assert x == pytest.approx(2.5, abs=1e-5)

    def test_nonquadratic_unimodal(self):
        x, _ = golden_section_search(
            lambda t: np.cosh(t - 0.7), 0.0, 1.0, tol=1e-10
        )
        assert x == pytest.approx(0.7, abs=1e-6)

    def test_respects_tolerance(self):
        x_loose, _ = golden_section_search(
            lambda t: (t - 0.5) ** 2, 0.0, 1.0, tol=1e-2
        )
        x_tight, _ = golden_section_search(
            lambda t: (t - 0.5) ** 2, 0.0, 1.0, tol=1e-12
        )
        assert abs(x_tight - 0.5) <= abs(x_loose - 0.5) + 1e-12

    def test_invalid_bracket_raises(self):
        with pytest.raises(ConfigurationError):
            golden_section_search(lambda t: t, 1.0, 0.0)

    def test_invalid_tol_raises(self):
        with pytest.raises(ConfigurationError):
            golden_section_search(lambda t: t, 0.0, 1.0, tol=0.0)

    def test_inv_phi_value(self):
        assert INV_PHI == pytest.approx((np.sqrt(5) - 1) / 2)
        # The defining identity of the golden ratio section.
        assert INV_PHI**2 == pytest.approx(1 - INV_PHI)


class TestBatchGSS:
    def test_matches_scalar_results(self):
        targets = np.array([0.1, 0.35, 0.5, 0.72, 0.99])

        def objective(s):
            return (s - targets) ** 2

        lo = np.zeros(5)
        hi = np.ones(5)
        x, fx = golden_section_search_batch(objective, lo, hi)
        np.testing.assert_allclose(x, targets, atol=1e-6)
        np.testing.assert_allclose(fx, 0.0, atol=1e-10)

    def test_independent_brackets(self):
        # Each search has its own bracket; minima must stay inside.
        targets = np.array([0.2, 0.8])
        lo = np.array([0.0, 0.5])
        hi = np.array([0.5, 1.0])
        x, _ = golden_section_search_batch(lambda s: (s - targets) ** 2, lo, hi)
        np.testing.assert_allclose(x, targets, atol=1e-6)

    def test_clamps_to_bracket_when_min_outside(self):
        # True min at 0.9 but bracket ends at 0.5.
        x, _ = golden_section_search_batch(
            lambda s: (s - 0.9) ** 2, np.array([0.0]), np.array([0.5])
        )
        assert x[0] == pytest.approx(0.5, abs=1e-6)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            golden_section_search_batch(
                lambda s: s, np.zeros(3), np.ones(2)
            )

    def test_reversed_bracket_raises(self):
        with pytest.raises(ConfigurationError):
            golden_section_search_batch(
                lambda s: s, np.array([1.0]), np.array([0.0])
            )

    def test_degenerate_bracket_is_fine(self):
        # lo == hi: the answer is that point.
        x, _ = golden_section_search_batch(
            lambda s: (s - 0.3) ** 2, np.array([0.4]), np.array([0.4])
        )
        assert x[0] == pytest.approx(0.4)

    def test_large_batch(self, rng):
        targets = rng.uniform(0.0, 1.0, size=500)
        x, _ = golden_section_search_batch(
            lambda s: (s - targets) ** 2, np.zeros(500), np.ones(500)
        )
        np.testing.assert_allclose(x, targets, atol=1e-6)


class TestBracketedMinimum:
    def test_brackets_global_minimum_of_bimodal(self):
        # Bimodal on [0,1]: minima near 0.15 and 0.85, global at 0.85.
        def f(grid):
            vals = np.minimum(
                (grid - 0.15) ** 2 + 0.02, (grid - 0.85) ** 2
            )
            return vals[np.newaxis, :]

        lo, hi = bracketed_minimum(f, n_grid=64)
        assert lo[0] <= 0.85 <= hi[0]

    def test_bracket_width_scales_with_grid(self):
        def f(grid):
            return ((grid - 0.5) ** 2)[np.newaxis, :]

        lo1, hi1 = bracketed_minimum(f, n_grid=11)
        lo2, hi2 = bracketed_minimum(f, n_grid=101)
        assert (hi2[0] - lo2[0]) < (hi1[0] - lo1[0])

    def test_multiple_rows(self):
        targets = np.array([0.25, 0.75])

        def f(grid):
            return (grid[np.newaxis, :] - targets[:, np.newaxis]) ** 2

        lo, hi = bracketed_minimum(f, n_grid=41)
        assert lo.shape == (2,)
        assert lo[0] <= 0.25 <= hi[0]
        assert lo[1] <= 0.75 <= hi[1]

    def test_small_grid_raises(self):
        with pytest.raises(ConfigurationError):
            bracketed_minimum(lambda g: g[np.newaxis, :], n_grid=2)
