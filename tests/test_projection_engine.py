"""Projection-engine correctness: Horner kernels, compiled polynomials,
and three-way solver agreement across degrees.

The engine replaces curve evaluation inside every projection solver
with Horner evaluation of precompiled squared-distance polynomials, so
its correctness oracle is three-fold:

* the Horner kernels against :func:`numpy.polynomial.polynomial.polyval`;
* the compiled coefficients against a naive double-loop expansion and
  against direct ``‖x − f(s)‖²`` evaluation;
* the engine-GSS scores against the frozen pre-engine GSS path
  (:func:`project_points_legacy_gss`) and the exact ``"roots"`` solver,
  property-style over random curves of degree 3–7.

Agreement contract: per point the scores match to 1e-8 (in practice
~1e-12 — all paths finish on the same stationary points), except on
genuine ties where two basins are equally deep and solvers may pick
either argmin; those must tie in distance essentially exactly.
"""

from __future__ import annotations

import numpy as np
import pytest
from numpy.polynomial.polynomial import polyval as np_polyval

from repro.core.exceptions import ConfigurationError
from repro.core.projection import (
    project_points,
    project_points_legacy_gss,
)
from repro.geometry.bezier import BezierCurve
from repro.geometry.engine import (
    CompiledProjection,
    ProjectionEngine,
    curve_self_product_coefficients,
    squared_distance_coefficients,
)
from repro.linalg.backend import (
    available_backend_names,
    numba_available,
    resolve_backend,
)
from repro.linalg.golden_section import golden_section_search_batch
from repro.linalg.horner import horner_batch, horner_pointwise

S_ATOL = 1e-8
#: Two scores count as a genuine tie when their squared distances agree
#: to this tolerance — the same convention as the repo-wide solver
#: agreement suite (near-tied basins are a property of the distance
#: function, not of any solver).
DIST_ATOL = 1e-10

DEGREES = (3, 4, 5, 6, 7)
SEEDS_PER_DEGREE = 6

#: Every kernel backend importable in this environment ("numpy" and
#: "closed-form" always; "numba" joins when the optional package is
#: installed, e.g. in the CI native-backend job).
BACKENDS = available_backend_names()

#: float32 agreement contract: scores match to ~1e-3 unless two basins
#: tie at float32 distance resolution, in which case either argmin is a
#: correct answer (same tie convention as the float64 suite, at the
#: precision the solver actually ran at).
S_ATOL32 = 1e-3
DIST_ATOL32 = 1e-2


def _random_curve_and_points(degree: int, seed: int):
    """A random degree-``k`` curve in the unit cube plus a mixed batch."""
    rng = np.random.default_rng(1000 * degree + seed)
    d = int(rng.integers(2, 5))
    P = rng.uniform(0.0, 1.0, size=(d, degree + 1))
    curve = BezierCurve(P)
    s_true = rng.uniform(size=30)
    near = curve.evaluate(s_true).T + rng.normal(0.0, 0.05, size=(30, d))
    far = rng.uniform(-0.3, 1.3, size=(8, d))
    return curve, np.vstack([near, far])


class TestHornerKernels:
    def test_batch_matches_numpy_polyval(self):
        rng = np.random.default_rng(0)
        coeffs = rng.normal(size=(12, 7))
        x = rng.uniform(-1.0, 2.0, size=(12, 5))
        expected = np.array(
            [np_polyval(x[i], coeffs[i]) for i in range(12)]
        )
        np.testing.assert_allclose(horner_batch(coeffs, x), expected)

    def test_batch_broadcasts_shared_grid(self):
        rng = np.random.default_rng(1)
        coeffs = rng.normal(size=(4, 5))
        grid = np.linspace(0.0, 1.0, 9)
        out = horner_batch(coeffs, grid)
        assert out.shape == (4, 9)
        np.testing.assert_allclose(out[2], np_polyval(grid, coeffs[2]))

    def test_pointwise_matches_batch_diagonal(self):
        rng = np.random.default_rng(2)
        coeffs = rng.normal(size=(20, 7))
        s = rng.uniform(size=20)
        np.testing.assert_array_equal(
            horner_pointwise(coeffs, s),
            horner_batch(coeffs, s[:, np.newaxis])[:, 0],
        )

    def test_shape_mismatches_rejected(self):
        coeffs = np.ones((3, 4))
        with pytest.raises(ConfigurationError):
            horner_pointwise(coeffs, np.ones(5))
        with pytest.raises(ConfigurationError):
            horner_batch(coeffs, np.ones((5, 2)))

    def test_empty_batch(self):
        out = horner_pointwise(np.empty((0, 7)), np.empty(0))
        assert out.shape == (0,)


class TestCompiledCoefficients:
    @pytest.mark.parametrize("degree", DEGREES)
    def test_matches_naive_double_loop(self, degree):
        curve, X = _random_curve_and_points(degree, seed=0)
        C = curve.power_coefficients()
        k = curve.degree
        # Seed-era expansion, coefficient by coefficient.
        ff = np.zeros(2 * k + 1)
        for a in range(k + 1):
            for b in range(k + 1):
                ff[a + b] += float(C[:, a] @ C[:, b])
        np.testing.assert_allclose(
            curve_self_product_coefficients(C), ff, rtol=1e-13, atol=1e-13
        )
        naive = np.tile(ff, (X.shape[0], 1))
        naive[:, : k + 1] -= 2.0 * (X @ C)
        naive[:, 0] += np.sum(X**2, axis=1)
        np.testing.assert_allclose(
            squared_distance_coefficients(C, X), naive, rtol=1e-13, atol=1e-13
        )

    @pytest.mark.parametrize("degree", DEGREES)
    def test_distance_matches_curve_evaluation(self, degree):
        curve, X = _random_curve_and_points(degree, seed=1)
        compiled = ProjectionEngine(curve).compile(X)
        rng = np.random.default_rng(3)
        s = rng.uniform(size=X.shape[0])
        direct = np.sum((X - curve.evaluate(s).T) ** 2, axis=1)
        np.testing.assert_allclose(
            compiled.distance(s), direct, rtol=0, atol=1e-9
        )
        grid = np.linspace(0.0, 1.0, 11)
        direct_grid = np.array(
            [np.sum((X - curve.evaluate(g).T) ** 2, axis=1)[:, ] for g in grid]
        ).T
        np.testing.assert_allclose(
            compiled.distance_on_grid(grid), direct_grid, rtol=0, atol=1e-9
        )

    def test_subset_view_slices_rows(self):
        curve, X = _random_curve_and_points(3, seed=2)
        compiled = ProjectionEngine(curve).compile(X)
        mask = np.zeros(len(compiled), dtype=bool)
        mask[[1, 5, 7]] = True
        sub = compiled[mask]
        assert len(sub) == 3
        np.testing.assert_array_equal(sub.coeffs, compiled.coeffs[mask])
        s = np.array([0.1, 0.5, 0.9])
        np.testing.assert_array_equal(
            sub.distance(s), horner_pointwise(compiled.coeffs[mask], s)
        )

    def test_compile_rejects_wrong_width(self):
        curve, X = _random_curve_and_points(3, seed=3)
        with pytest.raises(ConfigurationError):
            ProjectionEngine(curve).compile(X[:, :-1])


#: Bracketing grid for the agreement sweep.  The default 32-point grid
#: is matched to RPC-plausible monotone cubics; the distance function
#: of a *random* degree-7 curve can hide basins narrower than 1/31, and
#: a missed basin is a grid-resolution property shared by every
#: grid-bracketed solver, not an engine/legacy discrepancy.  129 points
#: isolate every basin arising in this sweep so the test compares the
#: solvers, not the grid.
N_GRID = 129


def _assert_three_way_agreement(curve, X, context):
    s_engine = project_points(curve, X, method="gss", n_grid=N_GRID)
    s_legacy = project_points_legacy_gss(curve, X, n_grid=N_GRID)
    s_roots = project_points(curve, X, method="roots")
    compiled = ProjectionEngine(curve).compile(X)
    d = {
        "engine": compiled.distance(s_engine),
        "legacy": compiled.distance(s_legacy),
        "roots": compiled.distance(s_roots),
    }
    for name, other in (("legacy", s_legacy), ("roots", s_roots)):
        assert np.all((other >= 0.0) & (other <= 1.0)), context
        s_gap = np.abs(s_engine - other)
        d_gap = np.abs(d["engine"] - d[name])
        disagrees = (s_gap > S_ATOL) & (d_gap > DIST_ATOL)
        assert not np.any(disagrees), (
            f"{context}: engine vs {name} disagree on "
            f"{int(disagrees.sum())} points; worst s-gap "
            f"{s_gap[disagrees].max():.3e}, worst distance-gap "
            f"{d_gap[disagrees].max():.3e}"
        )


class TestSolverAgreementAcrossDegrees:
    @pytest.mark.parametrize("degree", DEGREES)
    @pytest.mark.parametrize("seed", range(SEEDS_PER_DEGREE))
    def test_engine_vs_legacy_vs_roots(self, degree, seed):
        curve, X = _random_curve_and_points(degree, seed)
        _assert_three_way_agreement(
            curve, X, context=f"degree {degree} seed {seed}"
        )

    @pytest.mark.parametrize("degree", DEGREES)
    def test_warm_start_agrees_with_cold(self, degree):
        curve, X = _random_curve_and_points(degree, seed=99)
        cold = project_points(curve, X, method="gss")
        warm = project_points(curve, X, method="gss", s0=cold)
        compiled = ProjectionEngine(curve).compile(X)
        close = np.abs(warm - cold) <= S_ATOL
        tied = np.abs(
            compiled.distance(warm) - compiled.distance(cold)
        ) <= DIST_ATOL
        assert np.all(close | tied), f"degree {degree}"

    def test_engine_kwarg_for_wrong_curve_is_ignored(self):
        curve, X = _random_curve_and_points(3, seed=4)
        other, _ = _random_curve_and_points(3, seed=5)
        stale = ProjectionEngine(other)
        np.testing.assert_array_equal(
            project_points(curve, X, method="gss", engine=stale),
            project_points(curve, X, method="gss"),
        )


class TestBackendDtypeAgreement:
    """Every backend x dtype combination against the default path.

    float64 runs must agree with the numpy/float64 reference to the
    repo-wide 1e-8/1e-10 contract (in practice exactly: the backends
    share the clip/boundary/Newton-polish semantics and differ only in
    how stationary roots are found).  float32 runs are an opt-in speed
    trade judged at float32 resolution.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method", ("gss", "roots"))
    @pytest.mark.parametrize("degree", DEGREES)
    def test_float64_agrees_with_reference(self, degree, method, backend):
        curve, X = _random_curve_and_points(degree, seed=7)
        ref = project_points(curve, X, method=method)
        got = project_points(
            curve, X, method=method, backend=backend, dtype="float64"
        )
        compiled = ProjectionEngine(curve).compile(X)
        close = np.abs(got - ref) <= S_ATOL
        tied = np.abs(
            compiled.distance(got) - compiled.distance(ref)
        ) <= DIST_ATOL
        assert np.all(close | tied), (
            f"degree {degree} method {method} backend {backend}"
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method", ("gss", "roots"))
    @pytest.mark.parametrize("degree", DEGREES)
    def test_float32_within_tolerance(self, degree, method, backend):
        curve, X = _random_curve_and_points(degree, seed=11)
        ref = project_points(curve, X, method=method)
        got = project_points(
            curve, X, method=method, backend=backend, dtype="float32"
        )
        assert got.dtype == np.float64  # output contract: always float64
        compiled = ProjectionEngine(curve).compile(X)
        close = np.abs(got - ref) <= S_ATOL32
        tied = np.abs(
            compiled.distance(got) - compiled.distance(ref)
        ) <= DIST_ATOL32
        assert np.all(close | tied), (
            f"degree {degree} method {method} backend {backend}"
        )

    @pytest.mark.parametrize("method", ("gss", "roots"))
    @pytest.mark.parametrize("degree", DEGREES)
    def test_explicit_numpy_float64_is_byte_identical(self, degree, method):
        """Spelling out the defaults must not change a single bit."""
        curve, X = _random_curve_and_points(degree, seed=13)
        ref = project_points(curve, X, method=method)
        got = project_points(
            curve, X, method=method, backend="numpy", dtype="float64"
        )
        np.testing.assert_array_equal(got, ref)

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("degree", DEGREES)
    def test_batch_split_invariance(self, degree, backend):
        """Chunk boundaries never move a score, whatever the backend.

        The same byte-identity the serving layer pins for the default
        path (chunked == unchunked), here for each backend: per-row
        convergence is tracked per slot, so a row's solve cannot depend
        on which other rows share its batch.
        """
        curve, X = _random_curve_and_points(degree, seed=17)
        full = project_points(curve, X, method="roots", backend=backend)
        split = np.concatenate([
            project_points(curve, X[:7], method="roots", backend=backend),
            project_points(curve, X[7:23], method="roots", backend=backend),
            project_points(curve, X[23:], method="roots", backend=backend),
        ])
        np.testing.assert_array_equal(split, full)

    @pytest.mark.skipif(
        numba_available(), reason="numba installed; request succeeds"
    )
    def test_numba_request_without_numba_is_rejected(self):
        with pytest.raises(ConfigurationError, match="numba"):
            resolve_backend("numba")


class TestEdgeCases:
    @pytest.mark.parametrize("method", ("gss", "roots", "newton"))
    def test_empty_input(self, method):
        curve, _ = _random_curve_and_points(3, seed=6)
        X = np.empty((0, curve.dimension))
        s = project_points(curve, X, method=method)
        assert s.shape == (0,)

    def test_empty_input_warm(self):
        curve, _ = _random_curve_and_points(3, seed=6)
        X = np.empty((0, curve.dimension))
        s = project_points(curve, X, method="gss", s0=np.empty(0))
        assert s.shape == (0,)

    @pytest.mark.parametrize("method", ("gss", "roots", "newton"))
    def test_single_point(self, method):
        curve, X = _random_curve_and_points(3, seed=7)
        x = X[:1]
        s_one = project_points(curve, x, method=method)
        assert s_one.shape == (1,)
        s_all = project_points(curve, X, method=method)
        compiled = ProjectionEngine(curve).compile(x)
        close = abs(float(s_one[0]) - float(s_all[0])) <= S_ATOL
        tied = abs(
            float(compiled.distance(s_one[:1])[0])
            - float(compiled.distance(s_all[:1])[0])
        ) <= DIST_ATOL
        assert close or tied

    def test_point_on_curve_projects_to_itself(self):
        curve, _ = _random_curve_and_points(4, seed=8)
        s_true = np.array([0.25, 0.5, 0.75])
        X = curve.evaluate(s_true).T
        for method in ("gss", "roots", "newton"):
            s = project_points(curve, X, method=method)
            compiled = ProjectionEngine(curve).compile(X)
            assert np.all(compiled.distance(s) <= 1e-12), method


class TestFusedGSS:
    def test_pair_func_matches_plain(self):
        rng = np.random.default_rng(11)
        coeffs = rng.normal(size=(50, 7))
        coeffs[:, -1] = np.abs(coeffs[:, -1]) + 0.5  # coercive upward
        lo = np.zeros(50)
        hi = np.ones(50)

        def func(s):
            return horner_pointwise(coeffs, s)

        x_plain, f_plain = golden_section_search_batch(func, lo, hi)
        x_fused, f_fused = golden_section_search_batch(
            func, lo, hi, pair_func=lambda cd: horner_batch(coeffs, cd)
        )
        np.testing.assert_array_equal(x_plain, x_fused)
        np.testing.assert_array_equal(f_plain, f_fused)
