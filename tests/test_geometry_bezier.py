"""Tests for the general BezierCurve class."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.geometry import BezierCurve


@pytest.fixture
def curve2d():
    """A fixed 2-D cubic used across tests."""
    P = np.array(
        [
            [0.0, 0.1, 0.9, 1.0],
            [0.0, 0.6, 0.4, 1.0],
        ]
    )
    return BezierCurve(P)


class TestConstruction:
    def test_properties(self, curve2d):
        assert curve2d.degree == 3
        assert curve2d.dimension == 2
        np.testing.assert_array_equal(curve2d.start, [0.0, 0.0])
        np.testing.assert_array_equal(curve2d.end, [1.0, 1.0])

    def test_control_points_are_copied(self, curve2d):
        pts = curve2d.control_points
        pts[0, 0] = 99.0
        assert curve2d.control_points[0, 0] == 0.0

    def test_one_point_raises(self):
        with pytest.raises(ConfigurationError):
            BezierCurve(np.ones((2, 1)))

    def test_non_2d_raises(self):
        with pytest.raises(ConfigurationError):
            BezierCurve(np.ones(4))

    def test_nan_raises(self):
        P = np.ones((2, 4))
        P[0, 1] = np.nan
        with pytest.raises(ConfigurationError):
            BezierCurve(P)


class TestEvaluation:
    def test_endpoints_interpolated(self, curve2d):
        out = curve2d.evaluate(np.array([0.0, 1.0]))
        np.testing.assert_allclose(out[:, 0], curve2d.start)
        np.testing.assert_allclose(out[:, 1], curve2d.end)

    def test_matches_de_casteljau(self, curve2d, rng):
        for s in rng.uniform(size=20):
            direct = curve2d.evaluate(np.array([s]))[:, 0]
            stable = curve2d.evaluate_de_casteljau(float(s))
            np.testing.assert_allclose(direct, stable, atol=1e-12)

    def test_linear_curve_is_segment(self):
        P = np.array([[0.0, 2.0], [1.0, 3.0]])
        curve = BezierCurve(P)
        out = curve.evaluate(np.array([0.5]))
        np.testing.assert_allclose(out[:, 0], [1.0, 2.0])

    def test_scalar_promoted(self, curve2d):
        out = curve2d.evaluate(0.5)
        assert out.shape == (2, 1)

    def test_convex_hull_property(self, curve2d):
        # Every curve point lies in the control-point convex hull's
        # bounding box (a weaker but easily checkable consequence).
        s = np.linspace(0, 1, 100)
        pts = curve2d.evaluate(s)
        P = curve2d.control_points
        assert np.all(pts >= P.min(axis=1, keepdims=True) - 1e-12)
        assert np.all(pts <= P.max(axis=1, keepdims=True) + 1e-12)


class TestDerivatives:
    def test_hodograph_matches_finite_difference(self, curve2d):
        s = np.linspace(0.05, 0.95, 13)
        eps = 1e-7
        analytic = curve2d.derivative(s)
        numeric = (curve2d.evaluate(s + eps) - curve2d.evaluate(s - eps)) / (
            2 * eps
        )
        np.testing.assert_allclose(analytic, numeric, atol=1e-5)

    def test_derivative_curve_equals_derivative(self, curve2d):
        s = np.linspace(0, 1, 9)
        hodo = curve2d.derivative_curve()
        np.testing.assert_allclose(
            hodo.evaluate(s), curve2d.derivative(s), atol=1e-12
        )

    def test_endpoint_tangents(self, curve2d):
        # f'(0) = k (p1 - p0), f'(1) = k (p_k - p_{k-1}).
        P = curve2d.control_points
        d0 = curve2d.derivative(np.array([0.0]))[:, 0]
        d1 = curve2d.derivative(np.array([1.0]))[:, 0]
        np.testing.assert_allclose(d0, 3 * (P[:, 1] - P[:, 0]), atol=1e-12)
        np.testing.assert_allclose(d1, 3 * (P[:, 3] - P[:, 2]), atol=1e-12)


class TestPowerCoefficients:
    def test_reproduces_curve(self, curve2d):
        s = np.linspace(0, 1, 7)
        C = curve2d.power_coefficients()
        Z = np.vander(s, 4, increasing=True).T
        np.testing.assert_allclose(C @ Z, curve2d.evaluate(s), atol=1e-12)


class TestElevationAndSubdivision:
    def test_degree_elevation_preserves_curve(self, curve2d):
        s = np.linspace(0, 1, 33)
        elevated = curve2d.elevate_degree()
        assert elevated.degree == 4
        np.testing.assert_allclose(
            elevated.evaluate(s), curve2d.evaluate(s), atol=1e-12
        )

    def test_double_elevation(self, curve2d):
        s = np.linspace(0, 1, 9)
        twice = curve2d.elevate_degree().elevate_degree()
        np.testing.assert_allclose(
            twice.evaluate(s), curve2d.evaluate(s), atol=1e-12
        )

    def test_subdivision_covers_curve(self, curve2d):
        left, right = curve2d.subdivide(0.3)
        s = np.linspace(0, 1, 11)
        # left(u) = f(0.3 u); right(u) = f(0.3 + 0.7 u).
        np.testing.assert_allclose(
            left.evaluate(s), curve2d.evaluate(0.3 * s), atol=1e-12
        )
        np.testing.assert_allclose(
            right.evaluate(s), curve2d.evaluate(0.3 + 0.7 * s), atol=1e-12
        )

    def test_subdivision_at_endpoint(self, curve2d):
        left, _right = curve2d.subdivide(0.0)
        s = np.linspace(0, 1, 5)
        # Left half collapses to the start point.
        np.testing.assert_allclose(
            left.evaluate(s),
            np.tile(curve2d.start[:, None], (1, 5)),
            atol=1e-12,
        )

    def test_bad_split_raises(self, curve2d):
        with pytest.raises(ConfigurationError):
            curve2d.subdivide(1.5)


class TestArcLength:
    def test_straight_line_length(self):
        P = np.array([[0.0, 3.0], [0.0, 4.0]])
        assert BezierCurve(P).arc_length() == pytest.approx(5.0, rel=1e-9)

    def test_additivity(self, curve2d):
        total = curve2d.arc_length()
        split = curve2d.arc_length(0.0, 0.4) + curve2d.arc_length(0.4, 1.0)
        assert total == pytest.approx(split, rel=1e-8)

    def test_at_least_chord_length(self, curve2d):
        chord = float(np.linalg.norm(curve2d.end - curve2d.start))
        assert curve2d.arc_length() >= chord - 1e-12

    def test_bad_interval_raises(self, curve2d):
        with pytest.raises(ConfigurationError):
            curve2d.arc_length(0.8, 0.2)


class TestProjection:
    def test_points_on_curve_project_to_themselves(self, curve2d):
        s_true = np.linspace(0.05, 0.95, 9)
        X = curve2d.evaluate(s_true).T
        s_hat = curve2d.project(X, method="gss")
        np.testing.assert_allclose(s_hat, s_true, atol=1e-4)

    def test_roots_method_agrees_with_gss(self, curve2d, rng):
        X = rng.uniform(-0.2, 1.2, size=(40, 2))
        s_gss = curve2d.project(X, method="gss")
        s_roots = curve2d.project(X, method="roots")
        d_gss = np.sum((X - curve2d.evaluate(s_gss).T) ** 2, axis=1)
        d_roots = np.sum((X - curve2d.evaluate(s_roots).T) ** 2, axis=1)
        # Distances must agree (parameters can differ at symmetry points).
        np.testing.assert_allclose(d_gss, d_roots, atol=1e-6)

    def test_roots_never_worse_than_gss(self, curve2d, rng):
        X = rng.uniform(0.0, 1.0, size=(60, 2))
        s_gss = curve2d.project(X, method="gss")
        s_roots = curve2d.project(X, method="roots")
        d_gss = np.sum((X - curve2d.evaluate(s_gss).T) ** 2, axis=1)
        d_roots = np.sum((X - curve2d.evaluate(s_roots).T) ** 2, axis=1)
        assert np.all(d_roots <= d_gss + 1e-9)

    def test_projection_in_unit_interval(self, curve2d, rng):
        X = rng.uniform(-5, 5, size=(30, 2))
        s = curve2d.project(X)
        assert np.all((s >= 0.0) & (s <= 1.0))

    def test_far_points_project_to_endpoints(self, curve2d):
        X = np.array([[-10.0, -10.0], [10.0, 10.0]])
        s = curve2d.project(X)
        assert s[0] == pytest.approx(0.0, abs=1e-6)
        assert s[1] == pytest.approx(1.0, abs=1e-6)

    def test_wrong_dimension_raises(self, curve2d):
        with pytest.raises(ConfigurationError):
            curve2d.project(np.ones((5, 3)))

    def test_unknown_method_raises(self, curve2d):
        with pytest.raises(ConfigurationError):
            curve2d.project(np.ones((2, 2)), method="magic")

    def test_residuals_shape(self, curve2d, rng):
        X = rng.uniform(size=(7, 2))
        s = curve2d.project(X)
        residuals = curve2d.projection_residuals(X, s)
        assert residuals.shape == (7, 2)
        np.testing.assert_allclose(
            residuals, X - curve2d.evaluate(s).T, atol=1e-12
        )
