"""Tests for the scatterplot smoothers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.princurve.smoothers import (
    SMOOTHERS,
    kernel_smooth,
    local_linear_smooth,
    running_mean_smooth,
)


@pytest.fixture
def linear_data(rng):
    x = rng.uniform(0, 1, size=200)
    y = 2.0 * x + 1.0
    return x, y


class TestKernelSmooth:
    def test_recovers_constant(self, rng):
        x = rng.uniform(size=100)
        y = np.full(100, 3.0)
        out = kernel_smooth(x, y, np.linspace(0, 1, 7))
        np.testing.assert_allclose(out, 3.0, atol=1e-9)

    def test_interpolates_smooth_trend(self, rng):
        x = np.linspace(0, 1, 400)
        y = np.sin(2 * np.pi * x)
        grid = np.linspace(0.2, 0.8, 10)
        out = kernel_smooth(x, y, grid, bandwidth=0.02)
        np.testing.assert_allclose(out, np.sin(2 * np.pi * grid), atol=0.02)

    def test_boundary_bias_exists(self, linear_data):
        # Nadaraya-Watson is biased at the boundary for sloped data —
        # this is exactly why local-linear is the default.
        x, y = linear_data
        at_zero = kernel_smooth(x, y, np.array([0.0]), bandwidth=0.2)[0]
        assert at_zero > 1.0 + 0.05  # pulled up above the true value 1.0

    def test_bad_bandwidth_raises(self):
        with pytest.raises(ConfigurationError):
            kernel_smooth(np.ones(3), np.ones(3), np.ones(2), bandwidth=0.0)


class TestLocalLinearSmooth:
    def test_exact_on_linear_data(self, linear_data):
        x, y = linear_data
        grid = np.linspace(0, 1, 11)
        out = local_linear_smooth(x, y, grid, bandwidth=0.2)
        np.testing.assert_allclose(out, 2.0 * grid + 1.0, atol=1e-6)

    def test_no_boundary_bias_on_linear(self, linear_data):
        x, y = linear_data
        at_zero = local_linear_smooth(x, y, np.array([0.0]), bandwidth=0.2)[0]
        assert at_zero == pytest.approx(1.0, abs=1e-6)

    def test_handles_degenerate_design(self):
        # All x identical: falls back to the mean.
        x = np.full(10, 0.5)
        y = np.arange(10.0)
        out = local_linear_smooth(x, y, np.array([0.5]), bandwidth=0.1)
        assert out[0] == pytest.approx(y.mean(), abs=1e-6)

    def test_mismatched_lengths_raise(self):
        with pytest.raises(DataValidationError):
            local_linear_smooth(np.ones(3), np.ones(4), np.ones(2))


class TestRunningMeanSmooth:
    def test_recovers_constant(self, rng):
        x = rng.uniform(size=50)
        y = np.full(50, -2.0)
        out = running_mean_smooth(x, y, np.linspace(0, 1, 5))
        np.testing.assert_allclose(out, -2.0)

    def test_tracks_monotone_trend(self):
        x = np.linspace(0, 1, 200)
        y = x**2
        grid = np.linspace(0.1, 0.9, 9)
        out = running_mean_smooth(x, y, grid, span=0.1)
        np.testing.assert_allclose(out, grid**2, atol=0.02)

    def test_bad_span_raises(self):
        with pytest.raises(ConfigurationError):
            running_mean_smooth(np.ones(5), np.ones(5), np.ones(2), span=0.0)

    def test_nan_raises(self):
        x = np.array([0.0, np.nan])
        with pytest.raises(DataValidationError):
            running_mean_smooth(x, np.ones(2), np.ones(1))


class TestRegistry:
    def test_all_smoothers_registered(self):
        assert set(SMOOTHERS) == {"kernel", "local_linear", "running_mean"}

    def test_registry_callables_work(self, rng):
        x = rng.uniform(size=60)
        y = x.copy()
        grid = np.linspace(0.2, 0.8, 5)
        for name, smoother in SMOOTHERS.items():
            if name == "running_mean":
                out = smoother(x, y, grid, span=0.3)
            else:
                out = smoother(x, y, grid, bandwidth=0.15)
            assert out.shape == (5,), name
