"""Property-based tests (hypothesis) for core invariants.

These cover the library's load-bearing mathematical claims:

* Proposition 1 — every RPC-feasible cubic is strictly monotone;
* Bernstein identities across random degrees and parameters;
* projection optimality — GSS never beats the exact root solver and
  vice versa beyond tolerance;
* order axioms of Eq.(1) (reflexive, antisymmetric, transitive);
* normalisation round trips;
* ranking-list / aggregation invariances.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.rank_aggregation import attribute_rankings
from repro.core.order import RankingOrder
from repro.core.scoring import build_ranking_list
from repro.data.normalize import MinMaxNormalizer
from repro.geometry import (
    BezierCurve,
    bernstein_basis,
    bernstein_to_power_matrix,
    cubic_from_interior_points,
    empirical_monotonicity_violations,
    power_vector,
)

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
finite_floats = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)

unit_interior = st.floats(min_value=0.01, max_value=0.99)


@st.composite
def direction_vectors(draw, min_d=1, max_d=5):
    d = draw(st.integers(min_value=min_d, max_value=max_d))
    return np.asarray(
        draw(st.lists(st.sampled_from([-1.0, 1.0]), min_size=d, max_size=d))
    )


@st.composite
def feasible_cubics(draw):
    """A random RPC-feasible cubic (alpha plus interior points)."""
    alpha = draw(direction_vectors(min_d=2, max_d=4))
    d = alpha.size
    p1 = np.asarray(draw(st.lists(unit_interior, min_size=d, max_size=d)))
    p2 = np.asarray(draw(st.lists(unit_interior, min_size=d, max_size=d)))
    return alpha, cubic_from_interior_points(alpha, p1, p2)


@st.composite
def data_matrices(draw, min_n=2, max_n=15, min_d=1, max_d=4):
    n = draw(st.integers(min_value=min_n, max_value=max_n))
    d = draw(st.integers(min_value=min_d, max_value=max_d))
    return draw(
        arrays(
            dtype=np.float64,
            shape=(n, d),
            elements=finite_floats,
        )
    )


# ----------------------------------------------------------------------
# Proposition 1
# ----------------------------------------------------------------------
class TestPropositionOneProperty:
    @given(feasible_cubics())
    @settings(max_examples=60, deadline=None)
    def test_feasible_cubic_strictly_monotone(self, alpha_curve):
        alpha, curve = alpha_curve
        report = empirical_monotonicity_violations(curve, alpha, n_samples=256)
        assert report.is_monotone

    @given(feasible_cubics())
    @settings(max_examples=30, deadline=None)
    def test_feasible_cubic_stays_in_unit_cube(self, alpha_curve):
        _alpha, curve = alpha_curve
        pts = curve.evaluate(np.linspace(0, 1, 64))
        assert pts.min() >= -1e-12 and pts.max() <= 1 + 1e-12


# ----------------------------------------------------------------------
# Bernstein identities
# ----------------------------------------------------------------------
class TestBernsteinProperties:
    @given(
        st.integers(min_value=0, max_value=8),
        st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=20,
        ),
    )
    @settings(max_examples=80, deadline=None)
    def test_partition_of_unity(self, k, svals):
        s = np.asarray(svals)
        basis = bernstein_basis(k, s)
        np.testing.assert_allclose(basis.sum(axis=0), 1.0, atol=1e-10)
        assert np.all(basis >= -1e-15)

    @given(
        st.integers(min_value=1, max_value=6),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=80, deadline=None)
    def test_power_conversion_consistency(self, k, s):
        rng = np.random.default_rng(abs(hash((k, round(s, 6)))) % 2**32)
        P = rng.normal(size=(2, k + 1))
        M = bernstein_to_power_matrix(k)
        sv = np.asarray([s])
        via_power = P @ M @ power_vector(sv, k)
        via_basis = P @ bernstein_basis(k, sv)
        np.testing.assert_allclose(via_power, via_basis, atol=1e-9)


# ----------------------------------------------------------------------
# Bezier geometric invariances
# ----------------------------------------------------------------------
class TestBezierProperties:
    @given(
        arrays(
            dtype=np.float64,
            shape=(2, 4),
            elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
        ),
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_de_casteljau_matches_bernstein(self, P, s):
        curve = BezierCurve(P)
        direct = curve.evaluate(np.array([s]))[:, 0]
        stable = curve.evaluate_de_casteljau(s)
        np.testing.assert_allclose(direct, stable, atol=1e-9)

    @given(
        arrays(
            dtype=np.float64,
            shape=(3, 4),
            elements=st.floats(min_value=-5, max_value=5, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_elevation_preserves_curve(self, P):
        curve = BezierCurve(P)
        s = np.linspace(0, 1, 17)
        np.testing.assert_allclose(
            curve.elevate_degree().evaluate(s),
            curve.evaluate(s),
            atol=1e-9,
        )

    @given(feasible_cubics())
    @settings(max_examples=25, deadline=None)
    def test_affine_action_on_control_points(self, alpha_curve):
        """Eq.(16): scaling/translating control points scales the curve."""
        _alpha, curve = alpha_curve
        scales = np.array([2.0, 0.5] + [3.0] * (curve.dimension - 2))[
            : curve.dimension
        ]
        shift = np.linspace(-1, 1, curve.dimension)
        P2 = curve.control_points * scales[:, None] + shift[:, None]
        moved = BezierCurve(P2)
        s = np.linspace(0, 1, 9)
        np.testing.assert_allclose(
            moved.evaluate(s),
            curve.evaluate(s) * scales[:, None] + shift[:, None],
            atol=1e-9,
        )


# ----------------------------------------------------------------------
# Projection optimality
# ----------------------------------------------------------------------
class TestProjectionProperties:
    @given(
        feasible_cubics(),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    @settings(max_examples=20, deadline=None)
    def test_gss_matches_exact_roots(self, alpha_curve, seed):
        _alpha, curve = alpha_curve
        rng = np.random.default_rng(seed)
        X = rng.uniform(-0.2, 1.2, size=(8, curve.dimension))
        s_gss = curve.project(X, method="gss", n_grid=48)
        s_roots = curve.project(X, method="roots")
        d_gss = np.sum((X - curve.evaluate(s_gss).T) ** 2, axis=1)
        d_roots = np.sum((X - curve.evaluate(s_roots).T) ** 2, axis=1)
        np.testing.assert_allclose(d_gss, d_roots, atol=1e-5)


# ----------------------------------------------------------------------
# Order axioms
# ----------------------------------------------------------------------
class TestOrderProperties:
    @given(direction_vectors(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_axioms(self, alpha, data):
        order = RankingOrder(alpha=alpha)
        d = alpha.size
        point = st.lists(finite_floats, min_size=d, max_size=d).map(np.asarray)
        x = data.draw(point)
        y = data.draw(point)
        z = data.draw(point)
        # Reflexivity.
        assert order.precedes(x, x)
        # Antisymmetry.
        if order.precedes(x, y) and order.precedes(y, x):
            np.testing.assert_array_equal(x, y)
        # Transitivity.
        if order.precedes(x, y) and order.precedes(y, z):
            assert order.precedes(x, z)

    @given(direction_vectors(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_linear_scorer_is_monotone(self, alpha, data):
        """Any positive-weight signed linear scorer respects the order."""
        order = RankingOrder(alpha=alpha)
        d = alpha.size
        weights = np.asarray(
            data.draw(
                st.lists(
                    st.floats(min_value=0.1, max_value=5.0),
                    min_size=d,
                    max_size=d,
                )
            )
        )
        point = st.lists(finite_floats, min_size=d, max_size=d).map(np.asarray)
        x = data.draw(point)
        y = data.draw(point)
        if order.precedes(x, y):
            sx = float((weights * alpha) @ x)
            sy = float((weights * alpha) @ y)
            assert sx <= sy + 1e-9


# ----------------------------------------------------------------------
# Normalisation
# ----------------------------------------------------------------------
class TestNormalizationProperties:
    @given(data_matrices(min_n=2))
    @settings(max_examples=60, deadline=None)
    def test_round_trip(self, X):
        norm = MinMaxNormalizer().fit(X)
        back = norm.inverse_transform(norm.transform(X))
        np.testing.assert_allclose(back, X, atol=1e-7)

    @given(data_matrices(min_n=2))
    @settings(max_examples=60, deadline=None)
    def test_range_and_order(self, X):
        U = MinMaxNormalizer().fit_transform(X)
        assert U.min() >= -1e-12 and U.max() <= 1 + 1e-12
        # Weak monotonicity per column: x_i < x_k implies u_i <= u_k.
        # (Strict order can collapse to a tie when the affine map
        # rounds two nearly-equal floats together; that is acceptable.)
        for j in range(X.shape[1]):
            xi = X[:, j][:, None]
            xk = X[:, j][None, :]
            ui = U[:, j][:, None]
            uk = U[:, j][None, :]
            assert not np.any((xi < xk) & (ui > uk))


# ----------------------------------------------------------------------
# Ranking lists and aggregation
# ----------------------------------------------------------------------
class TestRankingListProperties:
    @given(
        st.lists(finite_floats, min_size=1, max_size=30).map(np.asarray)
    )
    @settings(max_examples=60, deadline=None)
    def test_positions_are_a_permutation(self, scores):
        ranking = build_ranking_list(scores)
        np.testing.assert_array_equal(
            np.sort(ranking.positions), np.arange(1, scores.size + 1)
        )
        # order and positions are inverse descriptions of each other.
        np.testing.assert_array_equal(
            ranking.positions[ranking.order], np.arange(1, scores.size + 1)
        )

    @given(
        st.integers(min_value=2, max_value=12),
        st.integers(min_value=2, max_value=4),
        st.data(),
    )
    @settings(max_examples=40, deadline=None)
    def test_rank_aggregation_invariant_to_monotone_rescale(self, n, d, data):
        """Positions depend only on per-attribute orders, so strictly
        increasing transforms of the attributes change nothing.  Integer
        observations keep the transform exactly order-preserving in
        floating point."""
        X = np.asarray(
            data.draw(
                st.lists(
                    st.lists(
                        st.integers(min_value=-1000, max_value=1000),
                        min_size=d,
                        max_size=d,
                    ),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=float,
        )
        alpha = np.ones(d)
        base = attribute_rankings(X, alpha)
        transformed = 2.0 * X + 10.0  # exactly order-preserving on ints
        again = attribute_rankings(transformed, alpha)
        np.testing.assert_allclose(base, again)


# ----------------------------------------------------------------------
# CSV round trips
# ----------------------------------------------------------------------
class TestCsvRoundTripProperties:
    @given(
        st.integers(min_value=1, max_value=10),
        st.integers(min_value=1, max_value=4),
        st.data(),
    )
    @settings(max_examples=25, deadline=None)
    def test_save_load_roundtrip(self, n, d, data):
        import tempfile
        import pathlib

        from repro.data.loaders import load_csv, save_csv

        values = np.asarray(
            data.draw(
                st.lists(
                    st.lists(finite_floats, min_size=d, max_size=d),
                    min_size=n,
                    max_size=n,
                )
            ),
            dtype=float,
        )
        labels = [f"row-{i}" for i in range(n)]
        names = [f"attr{j}" for j in range(d)]
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "t.csv"
            save_csv(path, labels, values, names)
            table = load_csv(path)
        assert table.labels == labels
        assert table.attribute_names == names
        np.testing.assert_allclose(table.X, values, rtol=1e-12, atol=1e-12)


# ----------------------------------------------------------------------
# Masked projection consistency
# ----------------------------------------------------------------------
class TestMaskedProjectionProperties:
    @given(feasible_cubics(), st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_full_mask_equals_plain_projection(self, alpha_curve, seed):
        from repro.data.missing import masked_projection

        _alpha, curve = alpha_curve
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(6, curve.dimension))
        observed = np.ones_like(X, dtype=bool)
        s_masked = masked_projection(curve, X, observed)
        s_plain = curve.project(X)
        d_masked = np.sum((X - curve.evaluate(s_masked).T) ** 2, axis=1)
        d_plain = np.sum((X - curve.evaluate(s_plain).T) ** 2, axis=1)
        np.testing.assert_allclose(d_masked, d_plain, atol=1e-6)
