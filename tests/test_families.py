"""Family registry and persistence round-trip matrix.

Every registered model family must (a) fit through the uniform
ScorableModel surface, (b) survive each persistence layout — JSON,
``.npz``, manifest directory — and score byte-identically afterwards,
and (c) fail loudly (file, offending value, supported set) on payloads
this build cannot read.  These tests pin all three properties for all
registered families at once, so adding a family without full
persistence support fails here before it ships.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.core.exceptions import ConfigurationError
from repro.core.model_api import ScorableModel, describe_model
from repro.data.synthetic import sample_monotone_cloud
from repro.families import (
    build_model,
    family_names,
    family_of,
    get_family,
    resolve_payload_family,
)
from repro.serving import score_batch
from repro.serving.persistence import (
    MANIFEST_NAME,
    check_model_path,
    is_manifest_path,
    load_manifest,
    load_model,
    model_mtime_ns,
    save_manifest,
    save_model,
)

ALPHA = np.array([1.0, 1.0, -1.0])

#: The paper's model plus every comparator the zoo grew; pinned as a
#: set so a registry regression (a family silently dropped) fails here.
EXPECTED_FAMILIES = {
    "rpc",
    "hastie-stuetzle",
    "polyline",
    "elastic-map",
    "tibshirani",
    "first-pca",
    "kernel-pca",
    "weighted-sum",
    "median-rank",
    "borda",
    "manifold",
    "pagerank",
}

LAYOUTS = ("json", "npz", "manifest")


def _fit_family(name: str):
    """A fitted model of family ``name`` plus scoring input for it."""
    rng = np.random.default_rng(11)
    model = build_model(name, alpha=ALPHA)
    if name == "pagerank":
        n = 12
        adjacency = (rng.uniform(size=(n, n)) < 0.3).astype(float)
        np.fill_diagonal(adjacency, 0.0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model.fit(adjacency)
        X_score = rng.integers(0, n, size=(20, 1)).astype(float)
    else:
        cloud = sample_monotone_cloud(alpha=ALPHA, n=60, seed=5, noise=0.05)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model.fit(cloud.X)
        X_score = sample_monotone_cloud(
            alpha=ALPHA, n=25, seed=9, noise=0.05
        ).X
    return model, X_score


@pytest.fixture(scope="module")
def fitted_families():
    return {name: _fit_family(name) for name in family_names()}


class TestRegistry:
    def test_expected_families_registered(self):
        assert set(family_names()) == EXPECTED_FAMILIES

    def test_unknown_family_lookup(self):
        with pytest.raises(ConfigurationError, match="frobnicator"):
            get_family("frobnicator")

    def test_family_of(self, fitted_families):
        for name, (model, _) in fitted_families.items():
            assert family_of(model) == name

    def test_registry_pointwise_mirrors_class(self):
        for name in family_names():
            family = get_family(name)
            assert family.pointwise == bool(family.cls.pointwise_scores)

    def test_models_satisfy_protocol(self, fitted_families):
        for model, _ in fitted_families.values():
            assert isinstance(model, ScorableModel)
            assert model.is_fitted

    def test_describe_model(self, fitted_families):
        for name, (model, _) in fitted_families.items():
            info = describe_model(model)
            assert info["family"] == name
            assert info["fitted"] is True

    def test_legacy_payload_resolves_to_rpc(self):
        family = resolve_payload_family(
            {"type": "RankingPrincipalCurve", "format_version": 1}
        )
        assert family.name == "rpc"

    def test_payload_without_family_rejected(self):
        with pytest.raises(ConfigurationError, match="family"):
            resolve_payload_family({"type": "SomethingElse"})

    def test_build_model_requires_alpha(self):
        with pytest.raises(ConfigurationError, match="alpha"):
            build_model("first-pca")


class TestRoundTripMatrix:
    @pytest.mark.parametrize("layout", LAYOUTS)
    @pytest.mark.parametrize("name", sorted(EXPECTED_FAMILIES))
    def test_round_trip_scores_byte_identical(
        self, fitted_families, tmp_path, name, layout
    ):
        model, X = fitted_families[name]
        if layout == "manifest":
            path = tmp_path / f"{name}-manifest"
        else:
            path = tmp_path / f"{name}.{layout}"
        save_model(model, path, feature_names=None)
        loaded = load_model(path)
        assert type(loaded) is type(model)
        assert loaded.family == name
        assert loaded.is_fitted
        expected = score_batch(model, X, chunk_size=7)
        got = score_batch(loaded, X, chunk_size=7)
        assert np.array_equal(got, expected)

    @pytest.mark.parametrize("name", sorted(EXPECTED_FAMILIES))
    def test_feature_names_survive_manifest(
        self, fitted_families, tmp_path, name
    ):
        model, _ = fitted_families[name]
        names = [f"attr{i}" for i in range(3)]
        path = save_model(model, tmp_path / "m", feature_names=names)
        assert load_model(path).feature_names_ == names

    def test_chunked_equals_unchunked_everywhere(self, fitted_families):
        # Pointwise families: chunk boundaries must not change scores.
        # Batch-relative families: score_batch must hand the whole
        # input to one call, so tiny chunk_size is a no-op too.  The
        # engine-backed rpc family and the aggregators are exact by
        # construction; the adapted families are per-row in exact
        # arithmetic but their BLAS matmuls are not bit-stable across
        # chunk shapes, hence the ulp-level tolerance.
        for name, (model, X) in fitted_families.items():
            whole = np.asarray(model.score_samples(X), dtype=float)
            chunked = score_batch(model, X, chunk_size=3)
            if name == "rpc" or not model.pointwise_scores:
                assert np.array_equal(chunked, whole)
            else:
                np.testing.assert_allclose(
                    chunked, whole, rtol=0.0, atol=1e-12
                )


class TestManifestLayout:
    def test_manifest_contents(self, fitted_families, tmp_path):
        model, _ = fitted_families["elastic-map"]
        directory = save_manifest(model, tmp_path / "elmap")
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        assert manifest["manifest_version"] == 1
        assert manifest["family"] == "elastic-map"
        assert manifest["format_version"] == 1
        roles = {shard["role"] for shard in manifest["shards"]}
        assert roles == {"payload", "arrays"}
        assert (directory / "payload.json").is_file()
        assert (directory / "arrays.npz").is_file()
        # The array fields were sharded out of the scalar payload.
        payload = json.loads((directory / "payload.json").read_text())
        assert payload["fitted"]["nodes"] is None

    def test_stateless_family_manifest_has_no_array_shard(
        self, fitted_families, tmp_path
    ):
        model, _ = fitted_families["median-rank"]
        directory = save_manifest(model, tmp_path / "agg")
        manifest = json.loads((directory / MANIFEST_NAME).read_text())
        roles = [shard["role"] for shard in manifest["shards"]]
        assert roles == ["payload"]
        assert not (directory / "arrays.npz").exists()

    def test_load_by_manifest_file_path(self, fitted_families, tmp_path):
        model, X = fitted_families["rpc"]
        directory = save_manifest(model, tmp_path / "rpc")
        via_dir = load_manifest(directory)
        via_file = load_manifest(directory / MANIFEST_NAME)
        assert np.array_equal(
            via_dir.score_samples(X), via_file.score_samples(X)
        )

    def test_mtime_tracks_manifest_descriptor(
        self, fitted_families, tmp_path
    ):
        model, _ = fitted_families["rpc"]
        directory = save_manifest(model, tmp_path / "rpc")
        assert model_mtime_ns(directory) == (
            (directory / MANIFEST_NAME).stat().st_mtime_ns
        )

    def test_missing_manifest_rejected(self, tmp_path):
        empty = tmp_path / "nothing"
        empty.mkdir()
        with pytest.raises(ConfigurationError, match=MANIFEST_NAME):
            load_manifest(empty)

    def test_unsupported_manifest_version_rejected(
        self, fitted_families, tmp_path
    ):
        model, _ = fitted_families["rpc"]
        directory = save_manifest(model, tmp_path / "rpc")
        manifest_file = directory / MANIFEST_NAME
        manifest = json.loads(manifest_file.read_text())
        manifest["manifest_version"] = 99
        manifest_file.write_text(json.dumps(manifest))
        with pytest.raises(ConfigurationError, match="manifest_version"):
            load_model(directory)


class TestErrorContract:
    """Unknown family / format_version errors name the file, the
    offending value, and the supported set (the PR's pinned contract).
    """

    def test_unknown_family_names_file_value_and_supported(self, tmp_path):
        path = tmp_path / "weird.json"
        path.write_text(json.dumps({"family": "frobnicator"}))
        with pytest.raises(ConfigurationError) as excinfo:
            load_model(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "frobnicator" in message
        assert "rpc" in message  # the supported set is spelled out

    def test_unknown_format_version_names_file_and_value(
        self, fitted_families, tmp_path
    ):
        model, _ = fitted_families["first-pca"]
        path = tmp_path / "stale.json"
        payload = model.to_payload()
        payload["format_version"] = 99
        path.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError) as excinfo:
            load_model(path)
        message = str(excinfo.value)
        assert str(path) in message
        assert "format version" in message
        assert "99" in message
        assert "[1]" in message  # supported version set

    def test_unknown_format_version_in_manifest(
        self, fitted_families, tmp_path
    ):
        model, _ = fitted_families["polyline"]
        directory = save_manifest(model, tmp_path / "poly")
        payload_file = directory / "payload.json"
        payload = json.loads(payload_file.read_text())
        payload["format_version"] = 7
        payload_file.write_text(json.dumps(payload))
        with pytest.raises(ConfigurationError, match="format version"):
            load_model(directory)

    def test_family_mismatch_rejected(self, fitted_families, tmp_path):
        model, _ = fitted_families["borda"]
        payload = model.to_payload()
        payload["family"] = "median-rank"  # wrong adapter for the bytes
        from repro.families import BordaCountAdapter

        with pytest.raises(ConfigurationError, match="family"):
            BordaCountAdapter.from_payload(payload)

    def test_legacy_v1_single_file_still_loads(self, tmp_path):
        # A payload written before the family registry existed: no
        # ``family`` key, only the legacy ``type`` discriminator.
        cloud = sample_monotone_cloud(alpha=ALPHA, n=40, seed=2, noise=0.05)
        model = RankingPrincipalCurve(
            alpha=ALPHA, random_state=0, n_restarts=1
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model.fit(cloud.X)
        legacy = model.to_dict()
        assert "family" not in legacy
        path = tmp_path / "v1.json"
        path.write_text(json.dumps(legacy))
        loaded = load_model(path)
        assert isinstance(loaded, RankingPrincipalCurve)
        assert np.array_equal(
            loaded.score_samples(cloud.X), model.score_samples(cloud.X)
        )


class TestModelPaths:
    def test_manifest_paths_accepted(self, tmp_path):
        assert check_model_path(tmp_path / "model-dir") is not None
        assert check_model_path(tmp_path / "dir" / MANIFEST_NAME) is not None

    def test_single_file_paths_not_manifests(self, tmp_path):
        assert not is_manifest_path(tmp_path / "m.json")
        assert not is_manifest_path(tmp_path / "m.npz")
        assert is_manifest_path(tmp_path / "models" / "elmap")

    def test_foreign_suffix_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError, match="pickle"):
            check_model_path(tmp_path / "m.pickle")
