"""Tests for manifold ranking (Zhou et al., related work [3])."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.manifold_ranking import (
    ManifoldRanker,
    affinity_matrix,
    manifold_ranking_scores,
    normalized_affinity,
)
from repro.core.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
)
from repro.data.synthetic import sample_crescent
from repro.evaluation.metrics import spearman_rho


class TestAffinity:
    def test_symmetric_zero_diagonal(self, rng):
        X = rng.uniform(size=(20, 3))
        W = affinity_matrix(X)
        np.testing.assert_allclose(W, W.T)
        np.testing.assert_array_equal(np.diag(W), 0.0)
        assert np.all(W >= 0.0)

    def test_closer_points_higher_affinity(self):
        X = np.array([[0.0, 0.0], [0.1, 0.0], [1.0, 1.0]])
        W = affinity_matrix(X, sigma=0.3)
        assert W[0, 1] > W[0, 2]

    def test_invalid_sigma_raises(self):
        with pytest.raises(ConfigurationError):
            affinity_matrix(np.ones((3, 2)), sigma=0.0)

    def test_normalized_affinity_spectrum(self, rng):
        X = rng.uniform(size=(25, 2))
        S = normalized_affinity(affinity_matrix(X))
        eigvals = np.linalg.eigvalsh(S)
        # Symmetric normalisation bounds the spectrum by 1.
        assert eigvals.max() <= 1.0 + 1e-9

    def test_nonsquare_raises(self):
        with pytest.raises(DataValidationError):
            normalized_affinity(np.ones((2, 3)))


class TestClosedForm:
    def test_query_scores_highest_nearby(self):
        # Two clusters; query in cluster A: cluster A outranks B.
        rng = np.random.default_rng(3)
        a = rng.normal(0.0, 0.05, size=(15, 2))
        b = rng.normal(1.0, 0.05, size=(15, 2)) + np.array([1.0, 1.0])
        X = np.vstack([a, b])
        F = manifold_ranking_scores(X, np.array([0]), sigma=0.3)
        assert F[:15].mean() > F[15:].mean()

    def test_matches_power_iteration(self, rng):
        X = rng.uniform(size=(20, 2))
        beta = 0.9
        S = normalized_affinity(affinity_matrix(X, sigma=0.3))
        Y = np.zeros(20)
        Y[4] = 1.0
        F_iter = Y.copy()
        for _ in range(5000):
            F_iter = beta * S @ F_iter + (1 - beta) * Y
        F_closed = manifold_ranking_scores(X, np.array([4]), beta=beta, sigma=0.3)
        # Closed form solves (I - beta S) F = Y; iteration converges to
        # (1 - beta) times... normalise both to compare shapes.
        np.testing.assert_allclose(
            F_iter / F_iter.sum(), F_closed / F_closed.sum(), atol=1e-6
        )

    def test_invalid_inputs(self, rng):
        X = rng.uniform(size=(10, 2))
        with pytest.raises(ConfigurationError):
            manifold_ranking_scores(X, np.array([0]), beta=1.0)
        with pytest.raises(ConfigurationError):
            manifold_ranking_scores(X, np.array([], dtype=int))
        with pytest.raises(ConfigurationError):
            manifold_ranking_scores(X, np.array([99]))


class TestManifoldRanker:
    def test_recovers_crescent_order(self):
        cloud = sample_crescent(n=150, seed=4, width=0.02)
        model = ManifoldRanker(alpha=[1, 1], sigma=0.15).fit(cloud.X)
        rho = spearman_rho(model.score_samples(cloud.X), cloud.latent)
        # Diffusion from the best-corner anchor orders the manifold
        # from best to worst: strong negative-or-positive correlation,
        # oriented so the anchor end scores highest.
        assert abs(rho) > 0.9

    def test_best_corner_anchor_scores_highest(self):
        cloud = sample_crescent(n=150, seed=5, width=0.02)
        model = ManifoldRanker(alpha=[1, 1], sigma=0.15).fit(cloud.X)
        s = model.score_samples(cloud.X)
        top = np.argmax(s)
        # The top-scoring object is among the latent-best quartile.
        assert cloud.latent[top] > np.quantile(cloud.latent, 0.75)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            ManifoldRanker(alpha=[1, 1]).score_samples(np.ones((2, 2)))

    def test_dimension_mismatch_raises(self, rng):
        model = ManifoldRanker(alpha=[1, 1])
        with pytest.raises(DataValidationError):
            model.fit(rng.uniform(size=(10, 3)))

    def test_capabilities(self):
        model = ManifoldRanker(alpha=[1, 1])
        assert not model.has_linear_capacity
        assert model.has_nonlinear_capacity
        assert model.parameter_size is None

    def test_invalid_anchors_raise(self):
        with pytest.raises(ConfigurationError):
            ManifoldRanker(alpha=[1, 1], n_anchors=0)
