"""Kernel-backend suite: closed-form root solving, backend resolution,
dtype handling, and the daemon's backend telemetry.

The closed-form solver replaces the eigenvalue companion-matrix root
finder on the serving hot path, so its oracle is ``numpy.roots``
directly: every real root the companion matrix finds (degree <= 4) or
every sign-crossing root inside the projection interval (degree >= 5)
must come back to ~1e-12, including the adversarial shapes — double
roots, biquadratics, near-degenerate leading coefficients and extreme
scalings — where textbook quadratic/Cardano/Ferrari formulas break.
"""

from __future__ import annotations

import json
import threading
import urllib.request
import warnings

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.rpc import RankingPrincipalCurve
from repro.data.synthetic import sample_monotone_cloud
from repro.linalg.backend import (
    BACKEND_CHOICES,
    ClosedFormBackend,
    NumpyBackend,
    available_backend_names,
    default_backend,
    numba_available,
    resolve_backend,
    resolve_score_dtype,
)
from repro.linalg.closedform import (
    closed_form_real_roots,
    closed_form_stationary_roots,
    isolated_real_roots,
)
from repro.linalg.horner import horner_batch, horner_pointwise
from repro.linalg.polyroots import (
    batched_minimize_on_interval,
    batched_real_roots,
    real_roots,
)
from repro.server import ModelRegistry, ScoringHTTPServer
from repro.serving import save_model

# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _np_real_roots(coeffs_ascending):
    """Reference real roots via numpy's companion eigenvalues."""
    c = np.asarray(coeffs_ascending, dtype=float)
    # trim exact-zero leading coefficients the way numpy.roots wants
    c_desc = c[::-1]
    nz = np.flatnonzero(c_desc != 0.0)
    if nz.size == 0 or nz[0] == c_desc.size - 1:
        return np.array([])
    r = np.roots(c_desc[nz[0]:])
    return np.sort(r[np.abs(r.imag) < 1e-9].real)


def _assert_roots_match(got, expected, context, atol=1e-9):
    got = np.sort(np.asarray(got, dtype=float))
    expected = np.asarray(expected, dtype=float)
    assert got.size == expected.size, (
        f"{context}: found {got.size} roots, expected {expected.size} "
        f"(got {got}, expected {expected})"
    )
    if expected.size:
        scale = 1.0 + np.abs(expected)
        np.testing.assert_allclose(got, expected, atol=atol * scale.max())


def _assert_root_sets_match(got, expected, context, atol=1e-6):
    """Set-wise comparison for multiple-root cases: the closed forms
    report the *set* of real roots, so a double root may come back once
    or twice — both are correct answers."""
    got = np.asarray(got, dtype=float)
    expected = np.asarray(expected, dtype=float)
    assert got.size > 0 or expected.size == 0, context
    for r in expected:
        assert np.any(np.abs(got - r) <= atol * (1.0 + abs(r))), (
            f"{context}: expected root {r} missing from {got}"
        )
    for r in got:
        assert np.any(np.abs(expected - r) <= atol * (1.0 + abs(r))), (
            f"{context}: spurious root {r} not in {expected}"
        )


def _from_roots(roots, lead=1.0):
    """Ascending coefficients of ``lead * prod (x - r)``."""
    c = np.atleast_1d(np.polynomial.polynomial.polyfromroots(roots))
    return c * lead


# ---------------------------------------------------------------------------
# closed-form roots, degree <= 4
# ---------------------------------------------------------------------------


class TestClosedFormRoots:
    @pytest.mark.parametrize("degree", (1, 2, 3, 4))
    def test_random_batches_match_numpy_roots(self, degree):
        rng = np.random.default_rng(degree)
        coeffs = rng.normal(size=(200, degree + 1))
        coeffs[:, -1] += np.sign(coeffs[:, -1]) + 0.1  # keep full degree
        roots, valid = closed_form_real_roots(coeffs)
        for i in range(coeffs.shape[0]):
            _assert_roots_match(
                roots[i][valid[i]],
                _np_real_roots(coeffs[i]),
                context=f"degree {degree} row {i}",
            )

    @pytest.mark.parametrize("scale", (1e-8, 1.0, 1e8))
    def test_scaling_invariance(self, scale):
        rng = np.random.default_rng(99)
        coeffs = rng.normal(size=(100, 5)) * scale
        coeffs[:, -1] += np.sign(coeffs[:, -1]) * scale
        roots, valid = closed_form_real_roots(coeffs)
        for i in range(coeffs.shape[0]):
            _assert_roots_match(
                roots[i][valid[i]],
                _np_real_roots(coeffs[i]),
                context=f"scale {scale} row {i}",
            )

    def test_double_root_quadratic(self):
        # (x - 0.4)^2: textbook discriminant rounds negative; the
        # relative tolerance keeps the double root.
        coeffs = _from_roots([0.4, 0.4])[np.newaxis]
        roots, valid = closed_form_real_roots(coeffs)
        assert valid[0].sum() == 2
        np.testing.assert_allclose(roots[0][valid[0]], 0.4, atol=1e-7)

    def test_double_root_cubic(self):
        # (x - 0.3)^2 (x - 0.9): disc == 0 border of the Cardano branch.
        coeffs = _from_roots([0.3, 0.3, 0.9])[np.newaxis]
        roots, valid = closed_form_real_roots(coeffs)
        _assert_root_sets_match(
            roots[0][valid[0]], [0.3, 0.9], "double-root cubic"
        )

    def test_double_double_quartic(self):
        coeffs = _from_roots([0.2, 0.2, 0.8, 0.8])[np.newaxis]
        roots, valid = closed_form_real_roots(coeffs)
        _assert_root_sets_match(
            roots[0][valid[0]], [0.2, 0.8], "double-double quartic"
        )

    def test_biquadratic_hits_ferrari_degenerate_branch(self):
        # x^4 - 5x^2 + 4 = (x^2-1)(x^2-4): q == 0 makes Ferrari's
        # alpha-division blow up; the biquadratic branch must catch it.
        coeffs = np.array([[4.0, 0.0, -5.0, 0.0, 1.0]])
        roots, valid = closed_form_real_roots(coeffs)
        _assert_roots_match(
            roots[0][valid[0]], [-2.0, -1.0, 1.0, 2.0], "biquadratic"
        )

    def test_no_real_roots(self):
        coeffs = np.array([[1.0, 0.0, 1.0]])  # x^2 + 1
        roots, valid = closed_form_real_roots(coeffs)
        assert not valid.any()

    def test_degree_above_four_rejected(self):
        with pytest.raises(ConfigurationError, match="degree"):
            closed_form_real_roots(np.ones((1, 6)))

    def test_mixed_effective_degrees_in_one_batch(self):
        rows = [
            _from_roots([0.5], lead=2.0).tolist() + [0.0, 0.0, 0.0],
            _from_roots([0.1, 0.9]).tolist() + [0.0, 0.0],
            _from_roots([0.2, 0.5, 0.7]).tolist() + [0.0],
            _from_roots([0.1, 0.3, 0.6, 0.8]).tolist(),
        ]
        coeffs = np.array([r + [0.0] * (5 - len(r)) for r in rows])
        roots, valid = closed_form_real_roots(coeffs)
        for i, row in enumerate(rows):
            _assert_roots_match(
                roots[i][valid[i]],
                _np_real_roots(np.trim_zeros(np.array(row), "b")),
                context=f"mixed row {i}",
            )


class TestIsolatedRoots:
    @pytest.mark.parametrize("degree", (5, 6, 7, 9))
    def test_crossing_roots_match_numpy_inside_interval(self, degree):
        rng = np.random.default_rng(degree * 7)
        coeffs = rng.normal(size=(100, degree + 1))
        coeffs[:, -1] += np.sign(coeffs[:, -1]) + 0.1
        roots, valid = isolated_real_roots(coeffs, 0.0, 1.0)
        for i in range(coeffs.shape[0]):
            ref = _np_real_roots(coeffs[i])
            ref = ref[(ref >= 0.0) & (ref <= 1.0)]
            # random polynomials have simple (crossing) roots a.s.
            _assert_roots_match(
                np.sort(roots[i][valid[i]]),
                ref,
                context=f"degree {degree} row {i}",
            )

    def test_stationary_solver_agrees_with_eigvals_minimizer(self):
        # degree-6 polynomials: the squared-distance shape the
        # projection engine minimises for cubic curves.
        rng = np.random.default_rng(5)
        coeffs = rng.normal(size=(300, 7))
        coeffs[:, -1] += np.sign(coeffs[:, -1]) + 0.1
        s_ref = batched_minimize_on_interval(coeffs, 0.0, 1.0)
        s_cf = batched_minimize_on_interval(
            coeffs, 0.0, 1.0, root_solver=closed_form_stationary_roots
        )
        from numpy.polynomial.polynomial import polyval

        d_ref = polyval(s_ref, coeffs.T, tensor=False)
        d_cf = polyval(s_cf, coeffs.T, tensor=False)
        close = np.abs(s_ref - s_cf) <= 1e-10
        tied = np.abs(d_ref - d_cf) <= 1e-10 * (1.0 + np.abs(d_ref))
        assert np.all(close | tied), (
            f"{int((~(close | tied)).sum())} rows disagree"
        )


# ---------------------------------------------------------------------------
# polyroots deflation regressions (near-degenerate leading coefficients)
# ---------------------------------------------------------------------------


class TestNearDegenerateDeflation:
    def test_scalar_near_cubic_quartic(self):
        # 1e-20 x^4 + cubic: the monic companion would divide by 1e-20
        # and poison every eigenvalue; deflation must solve the cubic.
        cubic = _from_roots([0.2, 0.5, 0.9])
        coeffs = np.append(cubic, 1e-20)
        got = real_roots(coeffs)
        _assert_roots_match(got, [0.2, 0.5, 0.9], "scalar near-cubic")

    def test_batched_near_cubic_quartic(self):
        cubic_a = _from_roots([0.1, 0.4, 0.7])
        cubic_b = _from_roots([0.3, 0.6, 0.8])
        quartic = _from_roots([0.25, 0.45, 0.65, 0.85])
        coeffs = np.vstack([
            np.append(cubic_a, 1e-19),
            np.append(cubic_b, 0.0),
            quartic,
        ])
        roots, valid, fallback = batched_real_roots(coeffs)
        assert not fallback.any()
        _assert_roots_match(
            roots[0][valid[0]], [0.1, 0.4, 0.7], "batched row 0"
        )
        _assert_roots_match(
            roots[1][valid[1]], [0.3, 0.6, 0.8], "batched row 1"
        )
        _assert_roots_match(
            roots[2][valid[2]], [0.25, 0.45, 0.65, 0.85], "batched row 2"
        )

    def test_closed_form_matches_on_near_degenerate_rows(self):
        cubic = _from_roots([0.15, 0.55, 0.95])
        coeffs = np.append(cubic, 1e-18)[np.newaxis]
        roots, valid = closed_form_real_roots(coeffs)
        _assert_roots_match(
            roots[0][valid[0]], [0.15, 0.55, 0.95], "closed-form deflation"
        )

    def test_minimizer_survives_near_degenerate_derivative(self):
        # distance-like polynomial whose derivative has a ~0 lead term:
        # the poisoned companion matrix used to push the argmin to junk
        rng = np.random.default_rng(8)
        quintics = rng.normal(size=(20, 6))
        quintics[:, -1] *= 1e-18  # near-degenerate lead everywhere
        coeffs = np.hstack([np.ones((20, 1)), quintics / np.arange(1, 7)])
        s_ref = batched_minimize_on_interval(coeffs, 0.0, 1.0)
        s_cf = batched_minimize_on_interval(
            coeffs, 0.0, 1.0, root_solver=closed_form_stationary_roots
        )
        assert np.all((s_ref >= 0.0) & (s_ref <= 1.0))
        from numpy.polynomial.polynomial import polyval

        d_ref = polyval(s_ref, coeffs.T, tensor=False)
        d_cf = polyval(s_cf, coeffs.T, tensor=False)
        close = np.abs(s_ref - s_cf) <= 1e-10
        tied = np.abs(d_ref - d_cf) <= 1e-10 * (1.0 + np.abs(d_ref))
        assert np.all(close | tied)


# ---------------------------------------------------------------------------
# backend resolution and dtype handling
# ---------------------------------------------------------------------------


class TestBackendResolution:
    def test_default_is_numpy_singleton(self):
        assert resolve_backend(None) is default_backend()
        assert resolve_backend("default") is default_backend()
        assert default_backend().name == "numpy"

    def test_names_are_cached_singletons(self):
        assert resolve_backend("closed-form") is resolve_backend(
            "closed_form"
        )
        assert resolve_backend("NumPy") is resolve_backend("numpy")

    def test_instance_passthrough(self):
        backend = ClosedFormBackend()
        assert resolve_backend(backend) is backend

    def test_auto_prefers_fastest_available(self):
        expected = "numba" if numba_available() else "closed-form"
        assert resolve_backend("auto").name == expected

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            resolve_backend("fortran")

    def test_choices_cover_available_names(self):
        for name in available_backend_names():
            assert name in BACKEND_CHOICES

    def test_score_dtype_resolution(self):
        assert resolve_score_dtype(None) == np.float64
        assert resolve_score_dtype("float32") == np.float32
        assert resolve_score_dtype(np.float64) == np.float64
        with pytest.raises(ConfigurationError, match="dtype"):
            resolve_score_dtype("float16")

    def test_backend_kernels_match_reference(self):
        rng = np.random.default_rng(3)
        coeffs = rng.normal(size=(40, 7))
        s = rng.uniform(size=40)
        grid = rng.uniform(size=64)
        for name in available_backend_names():
            backend = resolve_backend(name)
            np.testing.assert_array_equal(
                backend.horner_pointwise(coeffs, s),
                horner_pointwise(coeffs, s),
                err_msg=name,
            )
            np.testing.assert_array_equal(
                backend.horner_batch(coeffs, grid),
                horner_batch(coeffs, grid),
                err_msg=name,
            )


class TestDtypePreservingKernels:
    def test_float32_coefficients_stay_float32(self):
        coeffs = np.ones((3, 4), dtype=np.float32)
        out = horner_batch(coeffs, np.linspace(0, 1, 5, dtype=np.float32))
        assert out.dtype == np.float32
        out = horner_pointwise(coeffs, np.zeros(3, dtype=np.float32))
        assert out.dtype == np.float32

    def test_integer_coefficients_still_promote_to_float64(self):
        out = horner_batch(np.ones((2, 3), dtype=int), np.zeros(4))
        assert out.dtype == np.float64


# ---------------------------------------------------------------------------
# daemon telemetry: backend/dtype visible at every reporting surface
# ---------------------------------------------------------------------------


ALPHA = np.array([1.0, 1.0, -1.0])


def _request(base, method, path, body=None, headers=None, timeout=10):
    req = urllib.request.Request(
        base + path, data=body, method=method, headers=headers or {}
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, dict(resp.headers), resp.read()


@pytest.fixture(scope="module")
def saved_model_path(tmp_path_factory):
    cloud = sample_monotone_cloud(alpha=ALPHA, n=40, seed=3, noise=0.02)
    model = RankingPrincipalCurve(alpha=ALPHA, random_state=3, n_restarts=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    path = tmp_path_factory.mktemp("backend_models") / "demo.json"
    save_model(model, path, feature_names=["a", "b", "c"])
    return cloud.X, path


def _boot(path, **kwargs):
    registry = ModelRegistry()
    registry.register("demo", str(path))
    server = ScoringHTTPServer(("127.0.0.1", 0), registry, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    return server, base


class TestServerBackendTelemetry:
    def test_default_server_reports_numpy_float64(self, saved_model_path):
        _, path = saved_model_path
        server, base = _boot(path)
        try:
            _, _, body = _request(base, "GET", "/metrics")
            engine = json.loads(body)["engine"]
            assert engine["backend"] == "numpy"
            assert engine["score_dtype"] == "float64"
        finally:
            server.shutdown()
            server.server_close()

    def test_configured_backend_reaches_every_surface(
        self, saved_model_path
    ):
        X, path = saved_model_path
        server, base = _boot(
            path, backend="closed-form", score_dtype="float32"
        )
        try:
            payload = json.dumps({"rows": X[:5].tolist()}).encode()
            status, _, body = _request(
                base,
                "POST",
                "/v1/models/demo/score",
                body=payload,
                headers={"Content-Type": "application/json"},
            )
            assert status == 200
            scores = json.loads(body)["scores"]
            assert len(scores) == 5

            _, _, body = _request(base, "GET", "/metrics")
            engine = json.loads(body)["engine"]
            assert engine["backend"] == "closed-form"
            assert engine["score_dtype"] == "float32"
            assert engine.get("backend_closed_form_compiles", 0) >= 1
            assert engine.get("float32_rows", 0) >= 5

            _, _, body = _request(base, "GET", "/v1/models")
            for entry in json.loads(body)["models"]:
                assert entry["backend"] == "closed-form"
                assert entry["score_dtype"] == "float32"

            _, _, body = _request(base, "GET", "/metrics?format=prometheus")
            text = body.decode()
            assert (
                'repro_engine_info{backend="closed-form",dtype="float32"} 1'
                in text
            )
        finally:
            server.shutdown()
            server.server_close()

    def test_unknown_backend_fails_boot(self, saved_model_path):
        _, path = saved_model_path
        registry = ModelRegistry()
        registry.register("demo", str(path))
        with pytest.raises(ConfigurationError, match="backend"):
            ScoringHTTPServer(
                ("127.0.0.1", 0), registry, backend="fortran"
            )

    @pytest.mark.skipif(
        numba_available(), reason="numba installed; request succeeds"
    )
    def test_numba_without_numba_fails_boot(self, saved_model_path):
        _, path = saved_model_path
        registry = ModelRegistry()
        registry.register("demo", str(path))
        with pytest.raises(ConfigurationError, match="numba"):
            ScoringHTTPServer(("127.0.0.1", 0), registry, backend="numba")
