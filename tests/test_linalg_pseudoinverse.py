"""Tests for the pseudo-inverse solve and conditioning diagnostics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.linalg import condition_number, pinv_solve


class TestPinvSolve:
    def test_recovers_exact_solution(self, rng):
        G = rng.normal(size=(4, 30))
        P_true = rng.normal(size=(3, 4))
        X = P_true @ G
        P, diag = pinv_solve(G, X)
        np.testing.assert_allclose(P, P_true, atol=1e-8)
        assert diag.rank == 4

    def test_least_squares_optimality(self, rng):
        G = rng.normal(size=(4, 30))
        X = rng.normal(size=(3, 30))
        P, _ = pinv_solve(G, X)
        # Perturbations must not reduce the residual.
        base = np.linalg.norm(X - P @ G)
        for _ in range(5):
            P_perturbed = P + rng.normal(scale=1e-3, size=P.shape)
            assert np.linalg.norm(X - P_perturbed @ G) >= base - 1e-12

    def test_matches_numpy_pinv(self, rng):
        G = rng.normal(size=(4, 20))
        X = rng.normal(size=(2, 20))
        P, _ = pinv_solve(G, X)
        np.testing.assert_allclose(P, X @ np.linalg.pinv(G), atol=1e-10)

    def test_rank_deficient_reported(self, rng):
        row = rng.normal(size=(1, 20))
        G = np.vstack([row, row, row, 2 * row])  # rank 1
        X = rng.normal(size=(2, 20))
        _P, diag = pinv_solve(G, X)
        assert diag.rank == 1
        assert diag.singular_values.shape == (4,)

    def test_column_count_mismatch_raises(self, rng):
        with pytest.raises(ConfigurationError):
            pinv_solve(rng.normal(size=(4, 10)), rng.normal(size=(2, 11)))

    def test_non_2d_raises(self):
        with pytest.raises(ConfigurationError):
            pinv_solve(np.ones(4), np.ones((2, 4)))


class TestConditionNumber:
    def test_identity_is_one(self):
        assert condition_number(np.eye(5)) == pytest.approx(1.0)

    def test_scaling_inflates_condition(self):
        A = np.diag([1.0, 1e-6])
        assert condition_number(A) == pytest.approx(1e6, rel=1e-6)

    def test_singular_is_inf(self):
        A = np.zeros((3, 3))
        assert condition_number(A) == np.inf

    def test_ill_conditioned_power_basis(self):
        # The paper's motivation: clustered scores make (M Z) nearly
        # singular, so the condition number explodes.
        from repro.geometry.bernstein import bernstein_to_power_matrix, power_vector

        s_clustered = np.full(50, 0.5) + np.linspace(0, 1e-8, 50)
        Z = power_vector(s_clustered, 3)
        G = bernstein_to_power_matrix(3) @ Z
        s_spread = np.linspace(0, 1, 50)
        Z2 = power_vector(s_spread, 3)
        G2 = bernstein_to_power_matrix(3) @ Z2
        assert condition_number(G) > 1e6 * condition_number(G2)
