"""Micro-batcher correctness: coalescing, isolation, byte-identity.

The batching layer's whole contract is *invisibility*: however many
concurrent requests get merged into one engine call, every caller must
receive exactly — byte for byte — what an unbatched call would have
produced, including its errors.  The unit half of this file drives
:class:`repro.server.batching.MicroBatcher` directly; the property
half fires randomized mixed workloads (shapes, degrees, poisoned
rows, wrong widths) at a live batching daemon and compares every
response body against a batching-disabled reference server.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.data.synthetic import sample_monotone_cloud
from repro.server import MicroBatcher, ModelRegistry, ScoringHTTPServer
from repro.serving import save_model, score_batch

ALPHA = np.array([1.0, 1.0, -1.0])


def _fit(seed: int, degree: int = 3, d: int = 3) -> RankingPrincipalCurve:
    alpha = np.where(np.arange(d) % 3 == 2, -1.0, 1.0)
    cloud = sample_monotone_cloud(alpha=alpha, n=36, seed=seed, noise=0.02)
    model = RankingPrincipalCurve(
        alpha=alpha, random_state=seed, n_restarts=1, degree=degree
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    return model


@pytest.fixture(scope="module")
def fitted():
    return _fit(seed=7)


class TestMicroBatcherUnit:
    def test_concurrent_calls_coalesce_and_match(self, fitted):
        # policy="fixed": the coalescing guarantee under test needs
        # every leader to wait the full window, not the adaptive
        # controller's cold-start zero.
        batcher = MicroBatcher(
            score_batch, window=0.5, max_rows=4096, policy="fixed"
        )
        rng = np.random.default_rng(0)
        inputs = [rng.uniform(size=(int(rng.integers(1, 5)), 3))
                  for _ in range(8)]
        expected = [score_batch(fitted, X) for X in inputs]
        results = [None] * len(inputs)
        barrier = threading.Barrier(len(inputs))

        def call(i):
            barrier.wait()
            results[i] = batcher.score(fitted, inputs[i])

        threads = [
            threading.Thread(target=call, args=(i,))
            for i in range(len(inputs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        stats = batcher.stats()
        # All 8 calls released within one 500 ms window must have
        # shared solves — and the shared solve must be invisible.
        assert stats["requests_batched"] == 8
        assert stats["batches_executed"] < 8
        for got, want in zip(results, expected):
            assert got.tobytes() == want.tobytes()

    def test_window_zero_is_direct(self, fitted):
        batcher = MicroBatcher(score_batch, window=0.0)
        X = np.full((2, 3), 0.25)
        got = batcher.score(fitted, X)
        assert got.tobytes() == score_batch(fitted, X).tobytes()
        assert batcher.stats()["requests_direct"] == 1
        assert batcher.stats()["batches_executed"] == 0

    def test_large_request_bypasses_batching(self, fitted):
        batcher = MicroBatcher(score_batch, window=0.5, max_rows=4)
        X = np.full((4, 3), 0.5)  # == max_rows -> direct
        got = batcher.score(fitted, X)
        assert got.tobytes() == score_batch(fitted, X).tobytes()
        assert batcher.stats()["requests_direct"] == 1

    def test_full_batch_flushes_before_window(self, fitted):
        # max_rows=2: the second single-row caller fills the batch, so
        # the leader must flush long before its 30 s window elapses.
        batcher = MicroBatcher(
            score_batch, window=30.0, max_rows=2, policy="fixed"
        )
        X = np.full((1, 3), 0.4)
        results = [None, None]

        def call(i):
            results[i] = batcher.score(fitted, X)

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert all(r is not None for r in results), "batch never flushed"
        want = score_batch(fitted, X)
        for got in results:
            assert got.tobytes() == want.tobytes()

    def test_poisoned_request_fails_alone(self, fitted):
        batcher = MicroBatcher(score_batch, window=0.4, policy="fixed")
        good = np.full((2, 3), 0.3)
        bad = np.array([[np.nan, 0.1, 0.2]])
        outcome = {}
        barrier = threading.Barrier(3)

        def call(name, X):
            barrier.wait()
            try:
                outcome[name] = batcher.score(fitted, X)
            except BaseException as exc:  # noqa: BLE001 - asserted below
                outcome[name] = exc

        threads = [
            threading.Thread(target=call, args=(name, X))
            for name, X in (("g1", good), ("bad", bad), ("g2", good))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        # The NaN request raises exactly what an unbatched call would;
        # its window-mates score as if it never existed.
        with pytest.raises(DataValidationError) as unbatched:
            score_batch(fitted, bad)
        assert isinstance(outcome["bad"], DataValidationError)
        assert str(outcome["bad"]) == str(unbatched.value)
        want = score_batch(fitted, good)
        assert outcome["g1"].tobytes() == want.tobytes()
        assert outcome["g2"].tobytes() == want.tobytes()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="window"):
            MicroBatcher(score_batch, window=-0.1)
        with pytest.raises(ConfigurationError, match="max_rows"):
            MicroBatcher(score_batch, window=0.1, max_rows=0)
        with pytest.raises(ConfigurationError, match="policy"):
            MicroBatcher(score_batch, window=0.1, policy="psychic")

    def test_largest_batch_rows_tracked(self, fitted):
        # Regression: stats() reported the largest batch in *requests*
        # but not in *rows*, leaving --max-batch-rows untunable from
        # telemetry.  Coalesce 2-row + 3-row requests and expect 5.
        batcher = MicroBatcher(
            score_batch, window=30.0, max_rows=5, policy="fixed"
        )
        rng = np.random.default_rng(3)
        inputs = [rng.uniform(size=(2, 3)), rng.uniform(size=(3, 3))]
        results = [None, None]
        barrier = threading.Barrier(2)

        def call(i):
            barrier.wait()
            results[i] = batcher.score(fitted, inputs[i])

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        stats = batcher.stats()
        assert "largest_batch_rows" in stats
        assert stats["largest_batch_rows"] == 5
        assert stats["largest_batch_requests"] == 2
        for got, X in zip(results, inputs):
            assert got.tobytes() == score_batch(fitted, X).tobytes()

    def test_keyboard_interrupt_propagates_not_rescored(self):
        # Regression: _execute caught BaseException, so a
        # KeyboardInterrupt mid-merge was swallowed into an N-way
        # per-request rescore — N more scoring calls between an
        # operator's Ctrl-C and the daemon actually stopping.  The
        # interrupt must reach the leader's caller after ONE call, and
        # followers must be woken with BatchAbortedError, not hang.
        calls = []

        def interrupted_score(model, X):
            calls.append(X.shape[0])
            raise KeyboardInterrupt()

        batcher = MicroBatcher(
            interrupted_score, window=30.0, max_rows=2, policy="fixed"
        )
        model = object()
        outcome = [None, None]
        barrier = threading.Barrier(2)

        def call(i):
            barrier.wait()
            try:
                outcome[i] = batcher.score(model, np.full((1, 3), 0.1))
            except BaseException as exc:  # noqa: BLE001 - asserted below
                outcome[i] = exc

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert not any(t.is_alive() for t in threads), "follower hung"
        assert len(calls) == 1, f"fallback rescored after interrupt: {calls}"
        kinds = sorted(type(o).__name__ for o in outcome)
        assert kinds == ["BatchAbortedError", "KeyboardInterrupt"], kinds

    def test_keyboard_interrupt_propagates_solo_path(self):
        # Same bug, single-member batch: the solo execute path also
        # caught BaseException and turned Ctrl-C into a response.
        def interrupted_score(model, X):
            raise KeyboardInterrupt()

        batcher = MicroBatcher(
            interrupted_score, window=0.001, policy="fixed"
        )
        with pytest.raises(KeyboardInterrupt):
            batcher.score(object(), np.full((1, 3), 0.1))

    def test_reconfigure_in_place(self, fitted):
        batcher = MicroBatcher(
            score_batch, window=0.01, max_rows=64, policy="fixed"
        )
        applied = batcher.reconfigure(
            window=0.05, max_rows=32, policy="adaptive"
        )
        assert applied == {
            "policy": "adaptive",
            "window_ms": 50.0,
            "max_rows": 32,
        }
        stats = batcher.stats()
        assert stats["policy"] == "adaptive"
        assert stats["window_ms"] == 50.0
        assert stats["max_rows"] == 32
        with pytest.raises(ConfigurationError, match="window"):
            batcher.reconfigure(window=-1.0)
        with pytest.raises(ConfigurationError, match="policy"):
            batcher.reconfigure(policy="nope")
        # Scoring still works after a live retune.
        X = np.full((2, 3), 0.2)
        got = batcher.score(fitted, X)
        assert got.tobytes() == score_batch(fitted, X).tobytes()


class TestAdaptiveWindowController:
    """Deterministic unit coverage of the window feedback loop."""

    def test_starts_at_zero_and_stays_there_when_idle(self):
        from repro.server.batching import AdaptiveWindowController

        ctl = AdaptiveWindowController(cap=0.05, max_rows=1024)
        assert ctl.window() == 0.0
        for _ in range(20):  # lonely single-request flushes
            ctl.on_flush(1, 3, 0)
        assert ctl.window() == 0.0

    def test_grows_to_cap_under_pressure_then_collapses(self):
        from repro.server.batching import AdaptiveWindowController

        ctl = AdaptiveWindowController(cap=0.064, max_rows=1024)
        # Multi-member flushes: seed at cap/64 and double to the cap.
        ctl.on_flush(4, 12, 0)
        assert ctl.window() == pytest.approx(0.001)
        for _ in range(10):
            ctl.on_flush(4, 12, 0)
        assert ctl.window() == pytest.approx(0.064)
        # Queue depth alone (single-member flush, requests waiting
        # behind it) also counts as pressure.
        ctl2 = AdaptiveWindowController(cap=0.064, max_rows=1024)
        ctl2.on_flush(1, 3, depth=2)
        assert ctl2.window() > 0.0
        # Full-by-rows flushes count as pressure too.
        ctl3 = AdaptiveWindowController(cap=0.064, max_rows=8)
        ctl3.on_flush(1, 8, 0)
        assert ctl3.window() > 0.0
        # The spike passes: lonely flushes halve it back and it snaps
        # to exactly zero (not epsilon) below cap/1024.
        for _ in range(30):
            ctl.on_flush(1, 3, 0)
        assert ctl.window() == 0.0

    def test_reconfigure_clamps_to_new_cap(self):
        from repro.server.batching import AdaptiveWindowController

        ctl = AdaptiveWindowController(cap=0.1, max_rows=1024)
        for _ in range(20):
            ctl.on_flush(4, 12, 0)
        assert ctl.window() == pytest.approx(0.1)
        ctl.reconfigure(cap=0.02, max_rows=512)
        assert ctl.window() == pytest.approx(0.02)

    def test_adaptive_batcher_reports_controller_state(self, fitted):
        batcher = MicroBatcher(score_batch, window=0.05)  # adaptive
        stats = batcher.stats()
        assert stats["policy"] == "adaptive"
        assert stats["window_ms"] == 50.0
        assert stats["current_window_ms"] == 0.0  # idle -> no wait
        assert stats["queue_depth"] == 0
        # An idle adaptive batcher scores with zero added latency and
        # still returns byte-identical results.
        X = np.full((2, 3), 0.3)
        got = batcher.score(fitted, X)
        assert got.tobytes() == score_batch(fitted, X).tobytes()


# ----------------------------------------------------------------------
# Randomized HTTP-level byte-identity (the property-style satellite)
# ----------------------------------------------------------------------
def _post_raw(base: str, path: str, data: bytes) -> tuple[int, bytes]:
    request = urllib.request.Request(
        base + path,
        data=data,
        method="POST",
        headers={"X-Request-Id": "prop-fixed-id"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _random_request(rng: np.random.Generator, model_names) -> tuple[str, bytes]:
    """One randomized request: mostly good, sometimes poisoned."""
    name = model_names[int(rng.integers(len(model_names)))]
    action = "rank" if rng.random() < 0.3 else "score"
    path = f"/v1/models/{name}/{action}"
    width = 3 if rng.random() < 0.85 else int(rng.integers(1, 6))
    n = int(rng.integers(1, 6))
    rows = rng.uniform(-0.5, 1.5, size=(n, width))
    if rng.random() < 0.15:
        rows[
            int(rng.integers(n)), int(rng.integers(width))
        ] = np.nan  # poisoned row -> 422, isolated from its window
    if n == 1 and rng.random() < 0.5:
        payload = {"row": rows[0].tolist()}
    else:
        payload = {"rows": rows.tolist()}
    if action == "rank" and rng.random() < 0.5:
        payload["labels"] = [f"obj{i}" for i in range(n)]
    return path, json.dumps(payload).encode()


class TestBatchedResponsesByteIdentical:
    """Randomized shapes/degrees/windows: batching must be invisible.

    A batching daemon and a ``--batch-window-ms 0`` reference daemon
    serve the same models.  Every randomized request is answered by
    both — concurrently on the batching side, so windows really mix
    good and poisoned requests — and each (status, body) pair must be
    byte-identical.
    """

    @pytest.fixture(
        scope="class",
        params=[
            (0.02, None, "adaptive"),
            (0.02, None, "fixed"),
            (0.05, 8, "adaptive"),
        ],
        ids=[
            "window20ms-adaptive",
            "window20ms-fixed",
            "window50ms-maxrows8-adaptive",
        ],
    )
    def server_pair(self, request, tmp_path_factory):
        window, max_rows, policy = request.param
        root = tmp_path_factory.mktemp("batching")
        names = []
        registries = []
        for degree in (2, 3, 4):
            name = f"deg{degree}"
            save_model(
                _fit(seed=10 + degree, degree=degree),
                root / f"{name}.json",
            )
            names.append(name)
        servers = []
        for batch_window in (window, 0.0):
            registry = ModelRegistry()
            for name in names:
                registry.register(name, root / f"{name}.json")
            server = ScoringHTTPServer(
                ("127.0.0.1", 0),
                registry,
                batch_window=batch_window,
                max_batch_rows=max_rows,
                batch_policy=policy,
            )
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()
            servers.append(server)
        batched, reference = servers
        yield (
            f"http://127.0.0.1:{batched.server_address[1]}",
            f"http://127.0.0.1:{reference.server_address[1]}",
            names,
        )
        for server in servers:
            server.shutdown()
            server.server_close()

    def test_randomized_mixed_workload(self, server_pair):
        batched_base, reference_base, names = server_pair
        rng = np.random.default_rng(42)
        n_threads, per_thread = 6, 12
        plans = [
            [_random_request(rng, names) for _ in range(per_thread)]
            for _ in range(n_threads)
        ]
        reference = [
            [_post_raw(reference_base, path, data) for path, data in plan]
            for plan in plans
        ]
        got: list = [None] * n_threads
        errors: list = []
        barrier = threading.Barrier(n_threads)

        def client(slot: int) -> None:
            try:
                barrier.wait()
                got[slot] = [
                    _post_raw(batched_base, path, data)
                    for path, data in plans[slot]
                ]
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append((slot, exc))

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, f"client threads raised: {errors}"
        for slot in range(n_threads):
            for k, ((st_b, body_b), (st_r, body_r)) in enumerate(
                zip(got[slot], reference[slot])
            ):
                assert st_b == st_r, (slot, k, body_b, body_r)
                assert body_b == body_r, (slot, k, plans[slot][k][0])

    def test_batching_actually_happened(self, server_pair):
        """Guard against the property passing because batching was off."""
        batched_base, _, _ = server_pair
        with urllib.request.urlopen(
            batched_base + "/metrics", timeout=10
        ) as response:
            snap = json.loads(response.read())
        stats = snap["micro_batcher"]
        assert stats["requests_batched"] > 0
        assert stats["batches_executed"] < stats["requests_batched"]
        assert stats["largest_batch_requests"] >= 2
