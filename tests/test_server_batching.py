"""Micro-batcher correctness: coalescing, isolation, byte-identity.

The batching layer's whole contract is *invisibility*: however many
concurrent requests get merged into one engine call, every caller must
receive exactly — byte for byte — what an unbatched call would have
produced, including its errors.  The unit half of this file drives
:class:`repro.server.batching.MicroBatcher` directly; the property
half fires randomized mixed workloads (shapes, degrees, poisoned
rows, wrong widths) at a live batching daemon and compares every
response body against a batching-disabled reference server.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.data.synthetic import sample_monotone_cloud
from repro.server import MicroBatcher, ModelRegistry, ScoringHTTPServer
from repro.serving import save_model, score_batch

ALPHA = np.array([1.0, 1.0, -1.0])


def _fit(seed: int, degree: int = 3, d: int = 3) -> RankingPrincipalCurve:
    alpha = np.where(np.arange(d) % 3 == 2, -1.0, 1.0)
    cloud = sample_monotone_cloud(alpha=alpha, n=36, seed=seed, noise=0.02)
    model = RankingPrincipalCurve(
        alpha=alpha, random_state=seed, n_restarts=1, degree=degree
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    return model


@pytest.fixture(scope="module")
def fitted():
    return _fit(seed=7)


class TestMicroBatcherUnit:
    def test_concurrent_calls_coalesce_and_match(self, fitted):
        batcher = MicroBatcher(score_batch, window=0.5, max_rows=4096)
        rng = np.random.default_rng(0)
        inputs = [rng.uniform(size=(int(rng.integers(1, 5)), 3))
                  for _ in range(8)]
        expected = [score_batch(fitted, X) for X in inputs]
        results = [None] * len(inputs)
        barrier = threading.Barrier(len(inputs))

        def call(i):
            barrier.wait()
            results[i] = batcher.score(fitted, inputs[i])

        threads = [
            threading.Thread(target=call, args=(i,))
            for i in range(len(inputs))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        stats = batcher.stats()
        # All 8 calls released within one 500 ms window must have
        # shared solves — and the shared solve must be invisible.
        assert stats["requests_batched"] == 8
        assert stats["batches_executed"] < 8
        for got, want in zip(results, expected):
            assert got.tobytes() == want.tobytes()

    def test_window_zero_is_direct(self, fitted):
        batcher = MicroBatcher(score_batch, window=0.0)
        X = np.full((2, 3), 0.25)
        got = batcher.score(fitted, X)
        assert got.tobytes() == score_batch(fitted, X).tobytes()
        assert batcher.stats()["requests_direct"] == 1
        assert batcher.stats()["batches_executed"] == 0

    def test_large_request_bypasses_batching(self, fitted):
        batcher = MicroBatcher(score_batch, window=0.5, max_rows=4)
        X = np.full((4, 3), 0.5)  # == max_rows -> direct
        got = batcher.score(fitted, X)
        assert got.tobytes() == score_batch(fitted, X).tobytes()
        assert batcher.stats()["requests_direct"] == 1

    def test_full_batch_flushes_before_window(self, fitted):
        # max_rows=2: the second single-row caller fills the batch, so
        # the leader must flush long before its 30 s window elapses.
        batcher = MicroBatcher(score_batch, window=30.0, max_rows=2)
        X = np.full((1, 3), 0.4)
        results = [None, None]

        def call(i):
            results[i] = batcher.score(fitted, X)

        threads = [
            threading.Thread(target=call, args=(i,)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=10)
        assert all(r is not None for r in results), "batch never flushed"
        want = score_batch(fitted, X)
        for got in results:
            assert got.tobytes() == want.tobytes()

    def test_poisoned_request_fails_alone(self, fitted):
        batcher = MicroBatcher(score_batch, window=0.4)
        good = np.full((2, 3), 0.3)
        bad = np.array([[np.nan, 0.1, 0.2]])
        outcome = {}
        barrier = threading.Barrier(3)

        def call(name, X):
            barrier.wait()
            try:
                outcome[name] = batcher.score(fitted, X)
            except BaseException as exc:  # noqa: BLE001 - asserted below
                outcome[name] = exc

        threads = [
            threading.Thread(target=call, args=(name, X))
            for name, X in (("g1", good), ("bad", bad), ("g2", good))
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)
        # The NaN request raises exactly what an unbatched call would;
        # its window-mates score as if it never existed.
        with pytest.raises(DataValidationError) as unbatched:
            score_batch(fitted, bad)
        assert isinstance(outcome["bad"], DataValidationError)
        assert str(outcome["bad"]) == str(unbatched.value)
        want = score_batch(fitted, good)
        assert outcome["g1"].tobytes() == want.tobytes()
        assert outcome["g2"].tobytes() == want.tobytes()

    def test_config_validation(self):
        with pytest.raises(ConfigurationError, match="window"):
            MicroBatcher(score_batch, window=-0.1)
        with pytest.raises(ConfigurationError, match="max_rows"):
            MicroBatcher(score_batch, window=0.1, max_rows=0)


# ----------------------------------------------------------------------
# Randomized HTTP-level byte-identity (the property-style satellite)
# ----------------------------------------------------------------------
def _post_raw(base: str, path: str, data: bytes) -> tuple[int, bytes]:
    request = urllib.request.Request(
        base + path,
        data=data,
        method="POST",
        headers={"X-Request-Id": "prop-fixed-id"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as exc:
        return exc.code, exc.read()


def _random_request(rng: np.random.Generator, model_names) -> tuple[str, bytes]:
    """One randomized request: mostly good, sometimes poisoned."""
    name = model_names[int(rng.integers(len(model_names)))]
    action = "rank" if rng.random() < 0.3 else "score"
    path = f"/v1/models/{name}/{action}"
    width = 3 if rng.random() < 0.85 else int(rng.integers(1, 6))
    n = int(rng.integers(1, 6))
    rows = rng.uniform(-0.5, 1.5, size=(n, width))
    if rng.random() < 0.15:
        rows[
            int(rng.integers(n)), int(rng.integers(width))
        ] = np.nan  # poisoned row -> 422, isolated from its window
    if n == 1 and rng.random() < 0.5:
        payload = {"row": rows[0].tolist()}
    else:
        payload = {"rows": rows.tolist()}
    if action == "rank" and rng.random() < 0.5:
        payload["labels"] = [f"obj{i}" for i in range(n)]
    return path, json.dumps(payload).encode()


class TestBatchedResponsesByteIdentical:
    """Randomized shapes/degrees/windows: batching must be invisible.

    A batching daemon and a ``--batch-window-ms 0`` reference daemon
    serve the same models.  Every randomized request is answered by
    both — concurrently on the batching side, so windows really mix
    good and poisoned requests — and each (status, body) pair must be
    byte-identical.
    """

    @pytest.fixture(
        scope="class", params=[(0.02, None), (0.05, 8)],
        ids=["window20ms", "window50ms-maxrows8"],
    )
    def server_pair(self, request, tmp_path_factory):
        window, max_rows = request.param
        root = tmp_path_factory.mktemp("batching")
        names = []
        registries = []
        for degree in (2, 3, 4):
            name = f"deg{degree}"
            save_model(
                _fit(seed=10 + degree, degree=degree),
                root / f"{name}.json",
            )
            names.append(name)
        servers = []
        for batch_window in (window, 0.0):
            registry = ModelRegistry()
            for name in names:
                registry.register(name, root / f"{name}.json")
            server = ScoringHTTPServer(
                ("127.0.0.1", 0),
                registry,
                batch_window=batch_window,
                max_batch_rows=max_rows,
            )
            threading.Thread(
                target=server.serve_forever, daemon=True
            ).start()
            servers.append(server)
        batched, reference = servers
        yield (
            f"http://127.0.0.1:{batched.server_address[1]}",
            f"http://127.0.0.1:{reference.server_address[1]}",
            names,
        )
        for server in servers:
            server.shutdown()
            server.server_close()

    def test_randomized_mixed_workload(self, server_pair):
        batched_base, reference_base, names = server_pair
        rng = np.random.default_rng(42)
        n_threads, per_thread = 6, 12
        plans = [
            [_random_request(rng, names) for _ in range(per_thread)]
            for _ in range(n_threads)
        ]
        reference = [
            [_post_raw(reference_base, path, data) for path, data in plan]
            for plan in plans
        ]
        got: list = [None] * n_threads
        errors: list = []
        barrier = threading.Barrier(n_threads)

        def client(slot: int) -> None:
            try:
                barrier.wait()
                got[slot] = [
                    _post_raw(batched_base, path, data)
                    for path, data in plans[slot]
                ]
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append((slot, exc))

        threads = [
            threading.Thread(target=client, args=(i,))
            for i in range(n_threads)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors, f"client threads raised: {errors}"
        for slot in range(n_threads):
            for k, ((st_b, body_b), (st_r, body_r)) in enumerate(
                zip(got[slot], reference[slot])
            ):
                assert st_b == st_r, (slot, k, body_b, body_r)
                assert body_b == body_r, (slot, k, plans[slot][k][0])

    def test_batching_actually_happened(self, server_pair):
        """Guard against the property passing because batching was off."""
        batched_base, _, _ = server_pair
        with urllib.request.urlopen(
            batched_base + "/metrics", timeout=10
        ) as response:
            snap = json.loads(response.read())
        stats = snap["micro_batcher"]
        assert stats["requests_batched"] > 0
        assert stats["batches_executed"] < stats["requests_batched"]
        assert stats["largest_batch_requests"] >= 2
