"""Unit tests for :mod:`repro.obs` — the tracing/profiling layer.

Everything here runs without a server: histogram arithmetic (whose
bucket bounds are part of the shared-store format and therefore
golden-valued), trace/span bookkeeping, the tracer's ring + spill
retention, engine-profile accumulation across threads, the JSON
access log, and the Prometheus text renderer with its stdlib linter.
"""

from __future__ import annotations

import json
import math
import threading

import numpy as np
import pytest

from repro.obs import (
    BATCH_FILL_BUCKETS,
    LATENCY_BUCKET_BOUNDS,
    N_LATENCY_BUCKETS,
    NULL_TRACE,
    AccessLog,
    EngineProfile,
    LatencyHistogram,
    Trace,
    TraceError,
    Tracer,
    activate,
    bucket_index,
    current,
    lint_exposition,
    percentile_from_buckets,
    render_exposition,
)
from repro.obs.histogram import HISTOGRAM_FORMAT_VERSION
from repro.obs.prometheus import MetricFamily


class TestHistogramFormat:
    """The bucket layout is an on-disk format: golden-pin it."""

    def test_format_version_pins_bounds(self):
        # Bump HISTOGRAM_FORMAT_VERSION if (and only if) these change.
        assert HISTOGRAM_FORMAT_VERSION == 1
        assert len(LATENCY_BUCKET_BOUNDS) == 32
        assert N_LATENCY_BUCKETS == 33
        assert LATENCY_BUCKET_BOUNDS[0] == pytest.approx(1e-4)
        assert LATENCY_BUCKET_BOUNDS[1] == pytest.approx(1e-4 * math.sqrt(2))
        assert LATENCY_BUCKET_BOUNDS[-1] == pytest.approx(
            1e-4 * 2.0 ** (31 / 2.0)
        )
        assert BATCH_FILL_BUCKETS == (1, 2, 4, 8, 16, 32)

    def test_bounds_strictly_ascending(self):
        assert all(
            a < b
            for a, b in zip(LATENCY_BUCKET_BOUNDS, LATENCY_BUCKET_BOUNDS[1:])
        )

    def test_bucket_index_le_semantics(self):
        # A sample exactly on an edge belongs to that edge's bucket.
        assert bucket_index(0.0) == 0
        assert bucket_index(1e-4) == 0
        assert bucket_index(1.00001e-4) == 1
        # Beyond the last finite edge: overflow bucket.
        assert bucket_index(100.0) == len(LATENCY_BUCKET_BOUNDS)

    def test_observe_then_percentile_roundtrip(self):
        hist = LatencyHistogram()
        for ms in (1, 2, 5, 10, 20, 50, 100, 200, 500, 1000):
            hist.observe(ms / 1e3)
        assert hist.count == 10
        p50 = hist.percentile(50)
        # The estimate is bucket-resolution accurate (~±19%).
        assert 10e-3 <= p50 <= 30e-3
        assert hist.percentile(99) >= hist.percentile(50)

    def test_merge_is_exact_addition(self):
        a, b = LatencyHistogram(), LatencyHistogram()
        for ms in (1, 4, 9):
            a.observe(ms / 1e3)
        for ms in (2, 8, 32, 128):
            b.observe(ms / 1e3)
        merged = a.merge(b)
        assert merged.count == 7
        assert merged.sum == pytest.approx(a.sum + b.sum)
        np.testing.assert_array_equal(merged.counts, a.counts + b.counts)

    def test_empty_histogram_percentile_is_zero(self):
        assert LatencyHistogram().percentile(99) == 0.0
        assert percentile_from_buckets([0] * N_LATENCY_BUCKETS, 50) == 0.0

    def test_overflow_rank_reports_largest_finite_edge(self):
        counts = [0] * N_LATENCY_BUCKETS
        counts[-1] = 5  # everything in overflow
        assert percentile_from_buckets(counts, 99) == pytest.approx(
            LATENCY_BUCKET_BOUNDS[-1]
        )

    def test_percentile_interpolates_within_bucket(self):
        counts = [0] * N_LATENCY_BUCKETS
        counts[4] = 100
        lower, upper = LATENCY_BUCKET_BOUNDS[3], LATENCY_BUCKET_BOUNDS[4]
        p10 = percentile_from_buckets(counts, 10)
        p90 = percentile_from_buckets(counts, 90)
        assert lower <= p10 < p90 <= upper


class TestTrace:
    def test_null_trace_is_inert_and_shared(self):
        with NULL_TRACE.span("anything") as span:
            pass
        with NULL_TRACE.span("other") as other:
            pass
        assert span is other  # one shared no-op CM: no allocations
        NULL_TRACE.set("k", "v")
        NULL_TRACE.set_engine({})
        assert NULL_TRACE.enabled is False
        assert NULL_TRACE.record is False

    def test_span_timing_and_stages(self):
        trace = Trace("req-1")
        with trace.span("parse"):
            pass
        trace.add_span("execute", trace.t0, trace.t0 + 0.25)
        stages = trace.stages_ms()
        assert set(stages) == {"parse", "execute"}
        assert stages["execute"] == pytest.approx(250.0)

    def test_repeated_span_names_accumulate(self):
        trace = Trace("req-2")
        trace.add_span("execute", 0.0, 0.1)
        trace.add_span("execute", 0.2, 0.3)
        assert trace.stages_ms()["execute"] == pytest.approx(200.0)
        assert len(trace.to_dict()["spans"]) == 2

    def test_to_dict_shape(self):
        trace = Trace("req-3")
        with trace.span("parse"):
            pass
        trace.set("batch", {"id": "7-1", "requests": 2, "rows": 4})
        trace.set_engine({"phases_ms": {"newton": 1.0}})
        trace.duration = 0.5
        payload = trace.to_dict()
        assert payload["request_id"] == "req-3"
        assert payload["duration_ms"] == pytest.approx(500.0)
        assert payload["batch"]["id"] == "7-1"
        assert payload["engine"]["phases_ms"]["newton"] == 1.0
        assert payload["stages_ms"].keys() == {"parse"}
        json.dumps(payload)  # must be JSON-serialisable


class TestTracer:
    def test_mode_validation(self):
        with pytest.raises(TraceError):
            Tracer(mode="noisy")
        with pytest.raises(TraceError):
            Tracer(mode="on", sample_every=0)
        with pytest.raises(TraceError):
            Tracer(mode="on", capacity=0)

    def test_off_mode_returns_null_trace(self):
        tracer = Tracer(mode="off")
        assert tracer.begin("x") is NULL_TRACE

    def test_on_mode_records_and_serves(self):
        tracer = Tracer(mode="on", capacity=4)
        trace = tracer.begin("abc")
        with trace.span("execute"):
            pass
        tracer.finish(trace, "POST x", "/x", "POST", 200, rows=3)
        payload = tracer.get("abc")
        assert payload is not None
        assert payload["status"] == 200
        assert payload["rows"] == 3
        assert "execute" in payload["stages_ms"]

    def test_ring_evicts_oldest(self):
        tracer = Tracer(mode="on", capacity=2)
        for i in range(3):
            trace = tracer.begin(f"id-{i}")
            tracer.finish(trace, "e", "/", "GET", 200)
        assert tracer.get("id-0") is None
        assert tracer.get("id-1") is not None
        assert tracer.get("id-2") is not None

    def test_latest_wins_on_id_reuse(self):
        tracer = Tracer(mode="on", capacity=4)
        first = tracer.begin("dup")
        tracer.finish(first, "e", "/", "GET", 200)
        second = tracer.begin("dup")
        tracer.finish(second, "e", "/", "GET", 404)
        assert tracer.get("dup")["status"] == 404

    def test_sampled_mode_records_every_nth(self):
        tracer = Tracer(mode="sampled", sample_every=4, capacity=64)
        recorded = [tracer.begin(f"s-{i}").record for i in range(12)]
        assert recorded == [True, False, False, False] * 3

    def test_record_ok_false_never_stores(self):
        tracer = Tracer(mode="on", capacity=4)
        trace = tracer.begin("poll", record_ok=False)
        assert trace.record is False
        # Without an access log there is nothing to time either.
        assert trace is NULL_TRACE

    def test_spill_survives_ring_eviction(self, tmp_path):
        tracer = Tracer(mode="on", capacity=1, spill_dir=str(tmp_path))
        for i in range(3):
            trace = tracer.begin(f"sp-{i}")
            tracer.finish(trace, "e", "/", "GET", 200)
        # Evicted from the ring, still on disk.
        assert tracer.get("sp-0") is not None
        assert tracer.get("sp-0")["request_id"] == "sp-0"

    def test_cross_tracer_retrieval_via_spill(self, tmp_path):
        # Two tracers sharing a spill dir model two pool workers.
        writer = Tracer(mode="on", spill_dir=str(tmp_path), worker_slot=0)
        reader = Tracer(mode="on", spill_dir=str(tmp_path), worker_slot=1)
        trace = writer.begin("fleet-1")
        writer.finish(trace, "e", "/", "GET", 200)
        payload = reader.get("fleet-1")
        assert payload is not None
        assert payload["worker"] == 0

    def test_get_rejects_unsafe_ids(self, tmp_path):
        tracer = Tracer(mode="on", spill_dir=str(tmp_path))
        assert tracer.get("../etc/passwd") is None
        assert tracer.get("") is None

    def test_stats_gauges(self):
        tracer = Tracer(mode="sampled", sample_every=8, capacity=16)
        stats = tracer.stats()
        assert stats["mode"] == "sampled"
        assert stats["sample_every"] == 8
        assert stats["capacity"] == 16
        assert stats["buffered"] == 0


class TestEngineProfile:
    def test_accumulates_phases_and_counters(self):
        profile = EngineProfile()
        profile.add_phase("newton", 0.010, rows=100)
        profile.add_phase("newton", 0.005, rows=50)
        profile.count("newton_iterations", 7)
        snap = profile.snapshot()
        assert snap["phases_ms"]["newton"] == pytest.approx(15.0, abs=0.01)
        assert snap["phase_rows"]["newton"] == 150
        assert snap["counters"]["newton_iterations"] == 7

    def test_totals_flat_keys(self):
        profile = EngineProfile()
        profile.add_phase("grid_scan", 0.002, rows=10)
        profile.count("warm_start_hits", 9)
        totals = profile.totals()
        assert totals["grid_scan_seconds"] == pytest.approx(0.002)
        assert totals["grid_scan_rows"] == 10.0
        assert totals["warm_start_hits"] == 9.0

    def test_activate_scopes_current(self):
        assert current() is None
        profile = EngineProfile()
        with activate(profile):
            assert current() is profile
        assert current() is None

    def test_engine_instrumentation_feeds_active_profile(self):
        # The geometry engine reports phases into whatever profile is
        # active — the contract the server's profiling rides on.
        from repro.geometry.bezier import BezierCurve
        from repro.geometry.engine import ProjectionEngine

        rng = np.random.default_rng(0)
        curve = BezierCurve(rng.uniform(size=(3, 4)))
        X = rng.uniform(size=(16, 3))
        profile = EngineProfile()
        with activate(profile):
            compiled = ProjectionEngine(curve).compile(X)
            s_best, lo, hi = compiled.bracket(n_grid=32)
            compiled.solve_gss(lo, hi)
        snap = profile.snapshot()
        assert snap["phase_rows"].get("grid_scan") == 16
        assert snap["phases_ms"].get("grid_scan", 0) > 0
        assert snap["phase_rows"].get("gss") == 16
        # Nothing is recorded when no profile is active.
        compiled.bracket(n_grid=32)
        assert profile.snapshot()["phase_rows"]["grid_scan"] == 16

    def test_profile_is_thread_safe(self):
        profile = EngineProfile()

        def work():
            for _ in range(1000):
                profile.count("newton_iterations", 1)
                profile.add_phase("newton", 0.000001, rows=1)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        snap = profile.snapshot()
        assert snap["counters"]["newton_iterations"] == 4000
        assert snap["phase_rows"]["newton"] == 4000


class TestAccessLog:
    def test_writes_one_json_line_per_request(self, tmp_path):
        path = tmp_path / "access.log"
        log = AccessLog(str(path))
        log.write({"request_id": "a", "status": 200})
        log.write({"request_id": "b", "status": 404})
        log.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["request_id"] == "a"
        assert json.loads(lines[1])["status"] == 404

    def test_write_never_raises(self, tmp_path):
        path = tmp_path / "access.log"
        log = AccessLog(str(path))
        log.close()
        log.write({"request_id": "after-close"})  # must not raise


class TestPrometheusRenderer:
    def test_counter_render_and_lint(self):
        fam = MetricFamily("repro_requests_total", "counter", "Requests.")
        fam.add_sample(3, labels={"endpoint": "GET /healthz"})
        text = render_exposition([fam])
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{endpoint="GET /healthz"} 3' in text
        assert lint_exposition(text) == []

    def test_counter_name_must_end_total(self):
        with pytest.raises(ValueError):
            MetricFamily("repro_requests", "counter", "bad name")

    def test_label_escaping(self):
        fam = MetricFamily("repro_x_total", "counter", "Escapes.")
        fam.add_sample(1, labels={"path": 'a"b\\c\nd'})
        text = render_exposition([fam])
        assert '\\"' in text and "\\\\" in text and "\\n" in text
        assert lint_exposition(text) == []

    def test_histogram_family_is_cumulative_with_inf(self):
        fam = MetricFamily(
            "repro_request_duration_seconds", "histogram", "Latency."
        )
        counts = [0] * N_LATENCY_BUCKETS
        counts[0], counts[1], counts[-1] = 2, 3, 1
        fam.add_histogram(
            counts, 0.5, LATENCY_BUCKET_BOUNDS, labels={"endpoint": "e"}
        )
        text = render_exposition([fam])
        assert lint_exposition(text) == []
        # le values are cumulative and end at +Inf == _count.
        lines = [
            line for line in text.splitlines() if line.startswith("repro_")
        ]
        inf_line = next(line for line in lines if 'le="+Inf"' in line)
        count_line = next(line for line in lines if "_count{" in line)
        assert inf_line.rsplit(" ", 1)[1] == count_line.rsplit(" ", 1)[1]
        first = next(line for line in lines if f'le="{LATENCY_BUCKET_BOUNDS[0]}"' in line)
        assert first.rsplit(" ", 1)[1] == "2"

    def test_lint_catches_malformed_exposition(self):
        assert lint_exposition("repro_orphan 1\n") != []  # no TYPE/HELP
        bad = (
            "# HELP repro_x_total h\n"
            "# TYPE repro_x_total counter\n"
            "repro_x_total nope\n"
        )
        assert lint_exposition(bad) != []

    def test_lint_requires_trailing_newline(self):
        fam = MetricFamily("repro_ok_total", "counter", "h")
        fam.add_sample(1)
        text = render_exposition([fam])
        assert text.endswith("\n")
        assert lint_exposition(text.rstrip("\n")) != []
