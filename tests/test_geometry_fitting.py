"""Tests for unconstrained least-squares Bezier fitting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.geometry import (
    chord_length_parameters,
    cubic_from_interior_points,
    fit_bezier_least_squares,
)


class TestChordLengthParameters:
    def test_uniform_spacing_gives_uniform_parameters(self):
        X = np.column_stack([np.linspace(0, 1, 5), np.zeros(5)])
        s = chord_length_parameters(X)
        np.testing.assert_allclose(s, np.linspace(0, 1, 5))

    def test_uneven_spacing_reflected(self):
        X = np.array([[0.0, 0.0], [0.1, 0.0], [1.0, 0.0]])
        s = chord_length_parameters(X)
        np.testing.assert_allclose(s, [0.0, 0.1, 1.0])

    def test_coincident_points_fallback(self):
        X = np.zeros((4, 2))
        s = chord_length_parameters(X)
        np.testing.assert_allclose(s, np.linspace(0, 1, 4))

    def test_single_point_raises(self):
        with pytest.raises(DataValidationError):
            chord_length_parameters(np.ones((1, 2)))


class TestFitBezierLeastSquares:
    def test_recovers_noise_free_cubic(self):
        true = cubic_from_interior_points(
            [1.0, 1.0], p1=[0.2, 0.6], p2=[0.8, 0.4]
        )
        s_true = np.linspace(0, 1, 40)
        X = true.evaluate(s_true).T
        result = fit_bezier_least_squares(X, degree=3, parameters=s_true)
        assert result.residual < 1e-18
        np.testing.assert_allclose(
            result.curve.control_points, true.control_points, atol=1e-8
        )

    def test_refinement_reduces_residual(self, rng):
        true = cubic_from_interior_points(
            [1.0, 1.0], p1=[0.2, 0.6], p2=[0.8, 0.4]
        )
        s_true = np.sort(rng.uniform(size=60))
        X = true.evaluate(s_true).T + rng.normal(0, 0.005, (60, 2))
        no_refine = fit_bezier_least_squares(X, degree=3, n_refinements=0)
        refined = fit_bezier_least_squares(X, degree=3, n_refinements=5)
        assert refined.residual <= no_refine.residual + 1e-12

    def test_higher_degree_fits_at_least_as_well(self, rng):
        true = cubic_from_interior_points(
            [1.0, 1.0], p1=[0.1, 0.7], p2=[0.9, 0.3]
        )
        s_true = np.sort(rng.uniform(size=80))
        X = true.evaluate(s_true).T + rng.normal(0, 0.01, (80, 2))
        cubic = fit_bezier_least_squares(X, degree=3)
        quintic = fit_bezier_least_squares(X, degree=5)
        assert quintic.residual <= cubic.residual * 1.05

    def test_unconstrained_beats_rpc_on_train_but_not_monotone(self):
        """The constraints' cost/benefit, quantified: the free fit has
        a lower residual but loses the monotonicity guarantee on
        non-monotone data."""
        rng = np.random.default_rng(9)
        # A hook-shaped cloud (non-monotone in x).
        t = np.linspace(0, 1, 100)
        X = np.column_stack(
            [0.5 + 0.5 * np.sin(2.5 * np.pi * t), t]
        ) + rng.normal(0, 0.01, (100, 2))
        free = fit_bezier_least_squares(X, degree=3)
        from repro.geometry import empirical_monotonicity_violations

        report = empirical_monotonicity_violations(
            free.curve, np.array([1.0, 1.0])
        )
        assert not report.is_monotone  # the freedom shows

    def test_uniform_parameterization_option(self, rng):
        X = rng.uniform(size=(30, 2))
        result = fit_bezier_least_squares(
            X, degree=2, parameterization="uniform"
        )
        assert result.curve.degree == 2

    def test_ridge_damping(self, rng):
        # Heavily clustered parameters degenerate the design matrix;
        # ridge keeps the solve finite.
        s = np.full(30, 0.5) + rng.normal(0, 1e-8, 30)
        X = rng.uniform(size=(30, 2))
        result = fit_bezier_least_squares(
            X, degree=3, parameters=np.clip(s, 0, 1), n_refinements=0,
            ridge=1e-6,
        )
        assert np.all(np.isfinite(result.curve.control_points))

    def test_invalid_inputs(self, rng):
        X = rng.uniform(size=(10, 2))
        with pytest.raises(ConfigurationError):
            fit_bezier_least_squares(X, degree=0)
        with pytest.raises(ConfigurationError):
            fit_bezier_least_squares(X[:3], degree=5)
        with pytest.raises(ConfigurationError):
            fit_bezier_least_squares(X, ridge=-1.0)
        with pytest.raises(ConfigurationError):
            fit_bezier_least_squares(X, parameterization="arc")
        with pytest.raises(DataValidationError):
            fit_bezier_least_squares(X, parameters=np.ones(3))
