"""Tests for cubic specifics: pinned endpoints and Fig. 4 shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.geometry import (
    basic_shapes_2d,
    cubic_from_interior_points,
    empirical_monotonicity_violations,
    linear_cubic,
    pinned_endpoints,
    validate_direction_vector,
)


class TestDirectionVector:
    def test_valid_vectors_pass(self):
        out = validate_direction_vector([1, -1, 1])
        np.testing.assert_array_equal(out, [1.0, -1.0, 1.0])

    def test_invalid_entries_raise(self):
        with pytest.raises(ConfigurationError):
            validate_direction_vector([1, 0, -1])

    def test_dimension_check(self):
        with pytest.raises(ConfigurationError):
            validate_direction_vector([1, -1], d=3)


class TestPinnedEndpoints:
    def test_all_benefit(self):
        p0, p3 = pinned_endpoints([1, 1])
        np.testing.assert_array_equal(p0, [0.0, 0.0])
        np.testing.assert_array_equal(p3, [1.0, 1.0])

    def test_mixed_direction(self):
        # Cost attributes: best corner has value 0.
        p0, p3 = pinned_endpoints([1, -1])
        np.testing.assert_array_equal(p0, [0.0, 1.0])
        np.testing.assert_array_equal(p3, [1.0, 0.0])

    def test_endpoints_are_opposite_corners(self):
        p0, p3 = pinned_endpoints([1, -1, 1, -1])
        np.testing.assert_array_equal(p0 + p3, np.ones(4))


class TestCubicBuilder:
    def test_pins_ends(self):
        curve = cubic_from_interior_points(
            [1, -1], p1=[0.3, 0.7], p2=[0.6, 0.4]
        )
        np.testing.assert_array_equal(curve.start, [0.0, 1.0])
        np.testing.assert_array_equal(curve.end, [1.0, 0.0])

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ConfigurationError):
            cubic_from_interior_points([1, 1], p1=[0.5], p2=[0.5, 0.5])


class TestBasicShapes:
    def test_four_shapes_exist(self):
        shapes = basic_shapes_2d()
        assert set(shapes) == {"concave", "convex", "s_shape", "reverse_s"}

    def test_all_shapes_strictly_monotone(self):
        alpha = np.array([1.0, 1.0])
        for name, curve in basic_shapes_2d().items():
            report = empirical_monotonicity_violations(curve, alpha)
            assert report.is_monotone, f"{name} violates monotonicity"

    def test_shapes_have_distinct_curvature_signs(self):
        # Sample y as a function of x; concave must lie above the
        # diagonal, convex below, at the midpoint.
        shapes = basic_shapes_2d()
        mid = {}
        for name, curve in shapes.items():
            pts = curve.evaluate(np.linspace(0, 1, 101))
            # y value where x closest to 0.5:
            idx = int(np.argmin(np.abs(pts[0] - 0.5)))
            mid[name] = pts[1, idx]
        assert mid["concave"] > 0.55
        assert mid["convex"] < 0.45

    def test_s_shape_crosses_diagonal(self):
        curve = basic_shapes_2d()["s_shape"]
        pts = curve.evaluate(np.linspace(0, 1, 201))
        gap = pts[1] - pts[0]
        # The S shape sits above the diagonal early and below late.
        assert gap[20] > 0 and gap[180] < 0


class TestLinearCubic:
    def test_traces_the_diagonal(self):
        curve = linear_cubic([1, 1])
        s = np.linspace(0, 1, 11)
        pts = curve.evaluate(s)
        np.testing.assert_allclose(pts[0], pts[1], atol=1e-12)
        np.testing.assert_allclose(pts[0], s, atol=1e-12)

    def test_mixed_alpha_diagonal(self):
        curve = linear_cubic([1, -1])
        s = np.linspace(0, 1, 11)
        pts = curve.evaluate(s)
        np.testing.assert_allclose(pts[0], s, atol=1e-12)
        np.testing.assert_allclose(pts[1], 1.0 - s, atol=1e-12)

    def test_linear_capacity_demonstration(self):
        # The paper's "linear capacity" meta-rule: a cubic can be
        # exactly linear, so the model family includes linear rules.
        curve = linear_cubic([1, 1, 1])
        s = np.linspace(0, 1, 9)
        pts = curve.evaluate(s)
        for j in range(3):
            np.testing.assert_allclose(pts[j], s, atol=1e-12)
