"""Tests for metrics, violation counting and model comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import DataValidationError
from repro.core.order import RankingOrder
from repro.evaluation import (
    compare_rankers,
    count_order_violations,
    explained_variance_from_residuals,
    kendall_tau,
    mean_squared_error,
    pairwise_disagreements,
    scores_respect_pairs,
    spearman_rho,
    top_k_overlap,
)


class TestKendallTau:
    def test_perfect_agreement(self, rng):
        a = rng.normal(size=30)
        assert kendall_tau(a, a) == pytest.approx(1.0)

    def test_perfect_disagreement(self, rng):
        a = rng.normal(size=30)
        assert kendall_tau(a, -a) == pytest.approx(-1.0)

    def test_independence_near_zero(self, rng):
        a = rng.normal(size=500)
        b = rng.normal(size=500)
        assert abs(kendall_tau(a, b)) < 0.1

    def test_matches_scipy(self, rng):
        from scipy.stats import kendalltau

        a = rng.normal(size=40)
        b = a + rng.normal(scale=0.5, size=40)
        ours = kendall_tau(a, b)
        theirs = kendalltau(a, b).statistic
        assert ours == pytest.approx(theirs, abs=1e-10)

    def test_matches_scipy_with_ties(self):
        from scipy.stats import kendalltau

        a = np.array([1.0, 1.0, 2.0, 3.0, 3.0, 4.0])
        b = np.array([2.0, 1.0, 2.0, 5.0, 4.0, 4.0])
        assert kendall_tau(a, b) == pytest.approx(
            kendalltau(a, b).statistic, abs=1e-10
        )

    def test_length_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            kendall_tau(np.ones(3), np.ones(4))

    def test_too_short_raises(self):
        with pytest.raises(DataValidationError):
            kendall_tau(np.ones(1), np.ones(1))


class TestSpearmanRho:
    def test_perfect_monotone_agreement(self, rng):
        a = rng.normal(size=30)
        b = np.exp(a)  # monotone transform
        assert spearman_rho(a, b) == pytest.approx(1.0)

    def test_matches_scipy(self, rng):
        from scipy.stats import spearmanr

        a = rng.normal(size=40)
        b = a + rng.normal(scale=0.5, size=40)
        assert spearman_rho(a, b) == pytest.approx(
            spearmanr(a, b).statistic, abs=1e-10
        )

    def test_matches_scipy_with_ties(self):
        from scipy.stats import spearmanr

        a = np.array([1.0, 1.0, 2.0, 3.0])
        b = np.array([4.0, 2.0, 2.0, 1.0])
        assert spearman_rho(a, b) == pytest.approx(
            spearmanr(a, b).statistic, abs=1e-10
        )

    def test_constant_vector_returns_zero(self):
        assert spearman_rho(np.ones(5), np.arange(5.0)) == 0.0


class TestOtherMetrics:
    def test_pairwise_disagreements_count(self):
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([1.0, 3.0, 2.0])
        assert pairwise_disagreements(a, b) == 1

    def test_mse(self):
        X = np.zeros((2, 2))
        R = np.ones((2, 2))
        assert mean_squared_error(X, R) == pytest.approx(2.0)

    def test_mse_shape_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            mean_squared_error(np.ones((2, 2)), np.ones((3, 2)))

    def test_explained_variance_perfect_fit(self, rng):
        X = rng.normal(size=(20, 3))
        assert explained_variance_from_residuals(
            X, np.zeros_like(X)
        ) == pytest.approx(1.0)

    def test_explained_variance_mean_model_is_zero(self, rng):
        X = rng.normal(size=(50, 2))
        residuals = X - X.mean(axis=0)
        assert explained_variance_from_residuals(X, residuals) == pytest.approx(
            0.0, abs=1e-12
        )

    def test_top_k_overlap(self):
        a = np.array([0.9, 0.8, 0.1, 0.2])
        b = np.array([0.8, 0.9, 0.2, 0.1])
        assert top_k_overlap(a, b, 2) == 1.0
        c = np.array([0.1, 0.2, 0.9, 0.8])
        assert top_k_overlap(a, c, 2) == 0.0

    def test_top_k_invalid_k_raises(self):
        with pytest.raises(DataValidationError):
            top_k_overlap(np.ones(3), np.ones(3), 0)


class TestViolationCounting:
    def test_strictly_monotone_scorer_clean(self, rng):
        X = rng.uniform(size=(40, 2))
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        summary = count_order_violations(
            lambda Y: Y.sum(axis=1), X, order
        )
        assert summary.n_violations == 0
        assert summary.violation_rate == 0.0
        assert summary.n_comparable_pairs > 0

    def test_constant_scorer_all_ties(self, rng):
        X = rng.uniform(size=(20, 2))
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        summary = count_order_violations(
            lambda Y: np.zeros(Y.shape[0]), X, order
        )
        assert summary.n_ties == summary.n_comparable_pairs
        assert summary.n_inversions == 0
        assert summary.violation_rate == 1.0

    def test_negated_scorer_all_inversions(self, rng):
        X = rng.uniform(size=(20, 2))
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        summary = count_order_violations(
            lambda Y: -Y.sum(axis=1), X, order
        )
        assert summary.n_inversions == summary.n_comparable_pairs

    def test_recorded_pairs_capped(self, rng):
        X = rng.uniform(size=(30, 2))
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        summary = count_order_violations(
            lambda Y: np.zeros(Y.shape[0]), X, order, max_recorded=5
        )
        assert len(summary.violating_pairs) == 5

    def test_scores_respect_pairs(self):
        pairs = [
            (np.array([0.0, 0.0]), np.array([1.0, 1.0])),
            (np.array([1.0, 1.0]), np.array([0.0, 0.0])),
        ]
        out = scores_respect_pairs(lambda Y: Y.sum(axis=1), pairs)
        assert out == [True, False]


class TestComparison:
    def test_compare_rankers_table(self, rng):
        X = rng.uniform(size=(10, 2))

        class SumRanker:
            def fit(self, X):
                return self

            def score_samples(self, X):
                return X.sum(axis=1)

        class FirstAttrRanker:
            def fit(self, X):
                return self

            def score_samples(self, X):
                return X[:, 0]

        comparison = compare_rankers(
            {"sum": SumRanker(), "first": FirstAttrRanker()},
            X,
            labels=[f"obj{i}" for i in range(10)],
        )
        assert set(comparison.rankings) == {"sum", "first"}
        table = comparison.table(sort_by="sum")
        assert "sum score" in table and "first order" in table
        assert len(table.splitlines()) == 12  # header + rule + 10 rows

    def test_agreement_matrix(self, rng):
        X = rng.uniform(size=(15, 2))

        class SumRanker:
            def fit(self, X):
                return self

            def score_samples(self, X):
                return X.sum(axis=1)

        comparison = compare_rankers(
            {"a": SumRanker(), "b": SumRanker()}, X
        )
        agreement = comparison.agreement_matrix()
        assert agreement[("a", "b")] == pytest.approx(1.0)

    def test_subset_rows(self, rng):
        X = rng.uniform(size=(6, 2))

        class SumRanker:
            def fit(self, X):
                return self

            def score_samples(self, X):
                return X.sum(axis=1)

        comparison = compare_rankers({"m": SumRanker()}, X)
        table = comparison.table(rows=["0", "3"])
        assert len(table.splitlines()) == 4
