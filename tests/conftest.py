"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data.normalize import normalize_unit_cube
from repro.data.synthetic import (
    sample_crescent,
    sample_monotone_cloud,
    sample_s_curve,
)
from repro.geometry.cubic import cubic_from_interior_points


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def alpha2() -> np.ndarray:
    """A 2-D all-benefit direction vector."""
    return np.array([1.0, 1.0])


@pytest.fixture
def alpha4() -> np.ndarray:
    """The country task's direction vector."""
    return np.array([1.0, 1.0, -1.0, -1.0])


@pytest.fixture
def crescent_unit() -> np.ndarray:
    """Normalised crescent cloud (Fig. 5(a) shape), 120 points."""
    return normalize_unit_cube(sample_crescent(n=120, seed=7).X)


@pytest.fixture
def s_curve_unit() -> np.ndarray:
    """Normalised S-shaped cloud, 120 points."""
    return normalize_unit_cube(sample_s_curve(n=120, seed=7).X)


@pytest.fixture
def monotone_cloud_3d():
    """A 3-D RPC-recoverable cloud with its latent scores."""
    return sample_monotone_cloud(
        alpha=np.array([1.0, 1.0, -1.0]), n=150, seed=11, noise=0.02
    )


@pytest.fixture
def s_shape_curve():
    """A fixed strictly monotone 2-D cubic (S-shaped)."""
    return cubic_from_interior_points(
        np.array([1.0, 1.0]),
        p1=np.array([0.1, 0.6]),
        p2=np.array([0.9, 0.4]),
    )
