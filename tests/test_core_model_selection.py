"""Tests for degree selection and the restart-budget study."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.core.model_selection import restart_budget_study, select_degree
from repro.data.synthetic import sample_around_curve
from repro.geometry import cubic_from_interior_points


@pytest.fixture(scope="module")
def s_shaped_data():
    curve = cubic_from_interior_points(
        [1.0, 1.0], p1=[0.1, 0.65], p2=[0.9, 0.35]
    )
    return sample_around_curve(curve, n=150, noise=0.03, seed=5).X


class TestSelectDegree:
    def test_prefers_cubic_on_s_shape(self, s_shaped_data):
        result = select_degree(
            s_shaped_data, [1, 1], degrees=(1, 2, 3, 4), random_state=0
        )
        # The parsimony rule must land on 3: 1 and 2 underfit the S,
        # 4 buys nothing on held-out folds.
        assert result.best_degree == 3
        by_degree = {c.degree: c for c in result.candidates}
        assert by_degree[1].validation_error > by_degree[3].validation_error
        assert by_degree[2].validation_error > by_degree[3].validation_error

    def test_candidates_sorted_and_complete(self, s_shaped_data):
        result = select_degree(
            s_shaped_data, [1, 1], degrees=(3, 1, 2), random_state=0
        )
        assert [c.degree for c in result.candidates] == [1, 2, 3]

    def test_errors_are_positive(self, s_shaped_data):
        result = select_degree(
            s_shaped_data, [1, 1], degrees=(2, 3), random_state=0
        )
        for c in result.candidates:
            assert c.train_error > 0
            assert c.validation_error > 0

    def test_too_few_rows_raises(self):
        X = np.random.default_rng(0).uniform(size=(8, 2))
        with pytest.raises(DataValidationError):
            select_degree(X, [1, 1], n_folds=3)

    def test_invalid_parameters(self, s_shaped_data):
        with pytest.raises(ConfigurationError):
            select_degree(s_shaped_data, [1, 1], n_folds=1)
        with pytest.raises(ConfigurationError):
            select_degree(s_shaped_data, [1, 1], degrees=(0, 3))


class TestRestartStudy:
    def test_best_after_is_nonincreasing(self, s_shaped_data):
        study = restart_budget_study(
            s_shaped_data, [1, 1], n_restarts=5, random_state=0
        )
        assert len(study.objectives) == 5
        diffs = np.diff(study.best_after)
        assert np.all(diffs <= 1e-12)

    def test_recommended_within_budget(self, s_shaped_data):
        study = restart_budget_study(
            s_shaped_data, [1, 1], n_restarts=5, random_state=0
        )
        assert 1 <= study.recommended <= 5
        # The recommended count achieves within 1% of the best.
        assert study.best_after[study.recommended - 1] <= (
            study.best_after[-1] * 1.01
        )

    def test_single_restart_allowed(self, s_shaped_data):
        study = restart_budget_study(
            s_shaped_data, [1, 1], n_restarts=1, random_state=0
        )
        assert study.recommended == 1

    def test_invalid_restarts_raise(self, s_shaped_data):
        with pytest.raises(ConfigurationError):
            restart_budget_study(s_shaped_data, [1, 1], n_restarts=0)
