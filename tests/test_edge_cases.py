"""Edge-case coverage across the public API.

Single-attribute tasks, duplicate objects, constant attributes, tiny
datasets, extreme direction vectors — the situations a downstream user
hits first and bug reports are made of.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve, build_ranking_list
from repro.baselines import FirstPCARanker, MedianRankAggregator
from repro.core.order import RankingOrder
from repro.data.normalize import MinMaxNormalizer
from repro.data.synthetic import sample_monotone_cloud


class TestSingleAttribute:
    def test_rpc_on_1d_task(self):
        rng = np.random.default_rng(0)
        X = rng.uniform(10.0, 50.0, size=(40, 1))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = RankingPrincipalCurve(
                alpha=[1], random_state=0, n_restarts=1, init="linear"
            ).fit(X)
        s = model.score_samples(X)
        # One benefit attribute: the score order is the attribute order.
        np.testing.assert_array_equal(
            np.argsort(s, kind="stable"), np.argsort(X[:, 0], kind="stable")
        )

    def test_1d_cost_attribute_reverses(self):
        rng = np.random.default_rng(1)
        X = rng.uniform(size=(30, 1))
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = RankingPrincipalCurve(
                alpha=[-1], random_state=0, n_restarts=1, init="linear"
            ).fit(X)
        s = model.score_samples(X)
        corr = np.corrcoef(s, X[:, 0])[0, 1]
        assert corr < -0.99

    def test_order_in_1d_is_total(self):
        order = RankingOrder(alpha=np.array([1.0]))
        X = np.random.default_rng(2).uniform(size=(10, 1))
        assert order.is_chain(X)


class TestDuplicatesAndDegeneracy:
    def test_duplicate_rows_get_equal_scores(self):
        cloud = sample_monotone_cloud(
            alpha=np.array([1.0, 1.0]), n=50, seed=3, noise=0.02
        )
        X = np.vstack([cloud.X, cloud.X[:5]])  # duplicate five rows
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = RankingPrincipalCurve(
                alpha=[1, 1], random_state=0, n_restarts=1, init="linear"
            ).fit(X)
        s = model.score_samples(X)
        np.testing.assert_allclose(s[50:], s[:5], atol=1e-9)

    def test_constant_attribute_survives_pipeline(self):
        # One attribute identical for everyone: it carries no ordering
        # information and must not break the fit.
        cloud = sample_monotone_cloud(
            alpha=np.array([1.0, 1.0]), n=60, seed=4, noise=0.02
        )
        X = np.column_stack([cloud.X, np.full(60, 7.0)])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = RankingPrincipalCurve(
                alpha=[1, 1, 1], random_state=0, n_restarts=1, init="linear"
            ).fit(X)
        s = model.score_samples(X)
        assert np.all(np.isfinite(s))
        from repro.evaluation.metrics import spearman_rho

        assert spearman_rho(s, cloud.latent) > 0.95

    def test_two_point_dataset(self):
        X = np.array([[0.0, 0.0], [1.0, 1.0]])
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = RankingPrincipalCurve(
                alpha=[1, 1], random_state=0, n_restarts=1, init="linear"
            ).fit(X)
        s = model.score_samples(X)
        assert s[1] > s[0]

    def test_all_identical_rows(self):
        # Degenerate but must not crash: all mass at one point.
        X = np.ones((10, 2)) * 3.0
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = RankingPrincipalCurve(
                alpha=[1, 1], random_state=0, n_restarts=1, init="linear"
            ).fit(X)
        s = model.score_samples(X)
        assert np.all(np.isfinite(s))
        assert np.allclose(s, s[0])


class TestNormalizerEdges:
    def test_single_row_fit(self):
        norm = MinMaxNormalizer().fit(np.array([[3.0, 4.0]]))
        out = norm.transform(np.array([[3.0, 4.0]]))
        np.testing.assert_allclose(out, [[0.5, 0.5]])

    def test_negative_values(self):
        X = np.array([[-10.0], [-5.0], [0.0]])
        U = MinMaxNormalizer().fit_transform(X)
        np.testing.assert_allclose(U.ravel(), [0.0, 0.5, 1.0])

    def test_huge_dynamic_range(self):
        X = np.array([[1e-12], [1e12]])
        U = MinMaxNormalizer().fit_transform(X)
        np.testing.assert_allclose(U.ravel(), [0.0, 1.0])


class TestRankingListEdges:
    def test_single_object(self):
        ranking = build_ranking_list(np.array([0.7]), labels=["only"])
        assert ranking.position_of("only") == 1
        assert ranking.top(5) == [("only", 0.7)]

    def test_negative_scores(self):
        ranking = build_ranking_list(np.array([-3.0, -1.0, -2.0]))
        np.testing.assert_array_equal(ranking.order, [1, 2, 0])

    def test_inf_scores_ordered(self):
        ranking = build_ranking_list(np.array([0.0, np.inf, -np.inf]))
        np.testing.assert_array_equal(ranking.order, [1, 0, 2])


class TestBaselineEdges:
    def test_pca_on_degenerate_variance(self):
        # All variance in one attribute.
        rng = np.random.default_rng(5)
        X = np.column_stack([rng.uniform(size=30), np.full(30, 2.0)])
        model = FirstPCARanker(alpha=[1, 1]).fit(X)
        s = model.score_samples(X)
        assert np.corrcoef(s, X[:, 0])[0, 1] > 0.99

    def test_rank_aggregation_all_tied(self):
        X = np.ones((5, 3))
        s = MedianRankAggregator(alpha=[1, 1, 1]).score_samples(X)
        np.testing.assert_allclose(s, s[0])

    def test_high_dimensional_task(self):
        # d = 12 attributes: everything stays finite and ordered.
        alpha = np.array([1.0, -1.0] * 6)
        cloud = sample_monotone_cloud(alpha=alpha, n=80, seed=6, noise=0.02)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = RankingPrincipalCurve(
                alpha=alpha, random_state=0, n_restarts=1, init="linear"
            ).fit(cloud.X)
        from repro.evaluation.metrics import spearman_rho

        assert spearman_rho(model.score_samples(cloud.X), cloud.latent) > 0.9
