"""Streaming CSV scoring: parity with the in-memory path, bit for bit.

The streaming pipeline buffers rows at the same multiples of
``chunk_size`` that ``score_batch`` uses, so its scores are
bit-identical to the in-memory path at the same chunk size — including
through the CLI, where ``repro score --stream`` must produce
byte-identical output files.
"""

from __future__ import annotations

import csv
import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.cli import main
from repro.core.exceptions import DataValidationError
from repro.data.loaders import load_csv, save_csv
from repro.data.synthetic import sample_monotone_cloud
from repro.serving import (
    iter_csv_chunks,
    iter_csv_rows,
    iter_stream_scores,
    save_model,
    score_batch,
    stream_score_csv,
)

ALPHA = np.array([1.0, 1.0, -1.0])
N_ROWS = 157  # deliberately not a multiple of any chunk size used below


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A fitted model, its saved file, and a CSV of fresh rows."""
    root = tmp_path_factory.mktemp("stream")
    cloud = sample_monotone_cloud(alpha=ALPHA, n=N_ROWS, seed=9, noise=0.02)
    model = RankingPrincipalCurve(alpha=ALPHA, random_state=0, n_restarts=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    labels = [f"row{i:03d}" for i in range(N_ROWS)]
    csv_path = root / "fresh.csv"
    save_csv(csv_path, labels, cloud.X, ["a", "b", "c"], label_column="id")
    model_path = root / "model.json"
    save_model(model, model_path, feature_names=["a", "b", "c"])
    return model, model_path, csv_path, cloud.X, labels


class TestIterCsvRows:
    def test_matches_load_csv(self, workload):
        _, _, csv_path, X, labels = workload
        table = load_csv(csv_path, label_column="id")
        rows = list(iter_csv_rows(csv_path, label_column="id"))
        assert [label for label, _ in rows] == table.labels == labels
        np.testing.assert_array_equal(
            np.asarray([values for _, values in rows]), table.X
        )

    def test_column_selection_and_order(self, workload):
        _, _, csv_path, X, _ = workload
        rows = list(
            iter_csv_rows(
                csv_path, label_column="id", attribute_columns=["c", "a"]
            )
        )
        np.testing.assert_array_equal(
            np.asarray([v for _, v in rows]), X[:, [2, 0]]
        )

    def test_ragged_row_reports_line(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("id,a,b\nx,1,2\ny,1\n")
        with pytest.raises(DataValidationError, match=r"ragged\.csv:3"):
            list(iter_csv_rows(path))

    def test_non_numeric_reports_line(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,a,b\nx,1,2\ny,1,oops\n")
        with pytest.raises(DataValidationError, match=r"bad\.csv:3"):
            list(iter_csv_rows(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("id,a\nx,1\n\n  ,\ny,2\n")
        # The whitespace-only row (", ") is skipped like load_csv does.
        rows = list(iter_csv_rows(path))
        assert [label for label, _ in rows] == ["x", "y"]

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataValidationError, match="is empty"):
            list(iter_csv_rows(path))

    def test_unknown_label_column_raises(self, workload):
        _, _, csv_path, _, _ = workload
        with pytest.raises(DataValidationError, match="label column"):
            list(iter_csv_rows(csv_path, label_column="nope"))


class TestIterCsvChunks:
    @pytest.mark.parametrize("chunk_size", [1, 7, 64, 157, 1000])
    def test_chunks_cover_input_in_order(self, workload, chunk_size):
        _, _, csv_path, X, labels = workload
        chunks = list(
            iter_csv_chunks(csv_path, chunk_size, label_column="id")
        )
        assert all(
            chunk.X.shape[0] == chunk_size for chunk in chunks[:-1]
        )
        assert sum(chunk.X.shape[0] for chunk in chunks) == N_ROWS
        np.testing.assert_array_equal(
            np.vstack([chunk.X for chunk in chunks]), X
        )
        assert [
            label for chunk in chunks for label in chunk.labels
        ] == labels
        assert chunks[0].attribute_names == ["a", "b", "c"]

    def test_no_data_rows_raises_like_load_csv(self, tmp_path):
        path = tmp_path / "header_only.csv"
        path.write_text("id,a,b\n")
        with pytest.raises(DataValidationError, match="no data rows"):
            list(iter_csv_chunks(path, 8))

    def test_bad_chunk_size(self, workload):
        from repro.core.exceptions import ConfigurationError

        _, _, csv_path, _, _ = workload
        with pytest.raises(ConfigurationError, match="chunk_size"):
            list(iter_csv_chunks(csv_path, 0))


class TestStreamScores:
    @pytest.mark.parametrize("chunk_size", [13, 64, None])
    def test_bit_identical_to_score_batch(self, workload, chunk_size):
        model, _, csv_path, X, labels = workload
        reference = score_batch(model, X, chunk_size=chunk_size)
        streamed_labels: list[str] = []
        streamed = []
        for chunk_labels, chunk_scores in iter_stream_scores(
            model, csv_path, chunk_size=chunk_size, label_column="id"
        ):
            streamed_labels.extend(chunk_labels)
            streamed.append(chunk_scores)
        assert streamed_labels == labels
        np.testing.assert_array_equal(np.concatenate(streamed), reference)

    def test_n_jobs_streams_bit_identically(self, workload):
        # Parallel streaming buffers chunk_size * n_jobs rows but the
        # chunk boundaries stay multiples of chunk_size, so scores are
        # bit-identical to the serial stream and to score_batch.
        model, _, csv_path, X, labels = workload
        reference = score_batch(model, X, chunk_size=20)
        streamed_labels: list[str] = []
        streamed = []
        for chunk_labels, chunk_scores in iter_stream_scores(
            model, csv_path, chunk_size=20, label_column="id", n_jobs=3
        ):
            streamed_labels.extend(chunk_labels)
            streamed.append(chunk_scores)
        assert streamed_labels == labels
        np.testing.assert_array_equal(np.concatenate(streamed), reference)

    def test_reordered_csv_columns_score_identically(self, workload, tmp_path):
        # feature_names_ (stored in the model file) select and order
        # columns, so a CSV with shuffled columns streams to the same
        # scores.
        from repro.serving import load_model

        model, model_path, _, X, labels = workload
        served = load_model(model_path)
        assert served.feature_names_ == ["a", "b", "c"]
        shuffled = tmp_path / "shuffled.csv"
        save_csv(
            shuffled, labels, X[:, [2, 0, 1]], ["c", "a", "b"],
            label_column="id",
        )
        streamed = np.concatenate(
            [s for _, s in iter_stream_scores(served, shuffled, 32)]
        )
        np.testing.assert_array_equal(
            streamed, score_batch(model, X, chunk_size=32)
        )

    def test_width_mismatch_raises_before_scoring(self, workload, tmp_path):
        model, _, _, X, labels = workload
        model_no_names = RankingPrincipalCurve.from_dict(model.to_dict())
        model_no_names.feature_names_ = None
        narrow = tmp_path / "narrow.csv"
        save_csv(narrow, labels, X[:, :2], ["a", "b"], label_column="id")
        with pytest.raises(DataValidationError, match="model expects 3"):
            next(iter_stream_scores(model_no_names, narrow, 32))


class TestStreamScoreCsv:
    def test_writes_scores_in_input_order(self, workload, tmp_path):
        model, _, csv_path, X, labels = workload
        out = tmp_path / "scores.csv"
        n = stream_score_csv(
            model, csv_path, out, chunk_size=50, label_column="id"
        )
        assert n == N_ROWS
        with out.open() as handle:
            rows = list(csv.DictReader(handle))
        assert [row["label"] for row in rows] == labels
        written = np.asarray([float(row["score"]) for row in rows])
        # repr round-trip: the written text reloads to the exact float.
        np.testing.assert_array_equal(
            written, score_batch(model, X, chunk_size=50)
        )
        assert list(tmp_path.iterdir()) == [out]  # no stray temp files


class TestAtomicOutput:
    """A mid-stream failure must never publish a torn output file."""

    @pytest.fixture()
    def poisoned(self, workload, tmp_path):
        """A CSV whose *third* chunk (chunk_size=10) fails validation,
        after earlier chunks have already been scored and written."""
        _, _, csv_path, *_ = workload
        bad = tmp_path / "poisoned.csv"
        lines = csv_path.read_text().splitlines()
        lines[25] = lines[25].rsplit(",", 1)[0] + ",not-a-number"
        bad.write_text("\n".join(lines) + "\n")
        return bad

    def test_failed_score_leaves_no_output(self, workload, poisoned, tmp_path):
        model, *_ = workload
        out = tmp_path / "scores.csv"
        with pytest.raises(DataValidationError):
            stream_score_csv(
                model, poisoned, out, chunk_size=10, label_column="id"
            )
        # Neither the output nor its .part temp file survives: the
        # pre-fix streaming path wrote the final file in place and a
        # failure left a torn prefix behind.
        assert not out.exists()
        assert [p.name for p in tmp_path.iterdir()] == ["poisoned.csv"]

    def test_failed_rank_leaves_no_output(self, workload, poisoned, tmp_path):
        from repro.serving import stream_rank_csv

        model, *_ = workload
        out = tmp_path / "ranking.csv"
        with pytest.raises(DataValidationError):
            stream_rank_csv(
                model, poisoned, out, chunk_size=10, label_column="id"
            )
        assert not out.exists()
        assert [p.name for p in tmp_path.iterdir()] == ["poisoned.csv"]

    def test_failure_mid_rank_write_leaves_no_output(
        self, workload, tmp_path, monkeypatch
    ):
        # Fail *while the merged ranking is being written* — half the
        # rows are already in the temp file when the fault lands, the
        # moment the pre-fix code left a torn prefix at output_path.
        import repro.data.loaders as loaders
        from repro.serving import stream_rank_csv

        model, _, csv_path, *_ = workload
        real_row = loaders.ranking_csv_row

        def _faulting_row(position, label, score):
            if position > N_ROWS // 2:
                raise RuntimeError("injected mid-write fault")
            return real_row(position, label, score)

        monkeypatch.setattr(loaders, "ranking_csv_row", _faulting_row)
        out = tmp_path / "ranking.csv"
        with pytest.raises(RuntimeError, match="injected"):
            stream_rank_csv(model, csv_path, out, label_column="id")
        assert not out.exists()
        assert list(tmp_path.iterdir()) == []


class TestCliStream:
    @pytest.fixture()
    def outputs(self, workload, tmp_path, capsys):
        """Run `repro score` with and without --stream; capture both."""
        _, model_path, csv_path, _, _ = workload
        plain_out = tmp_path / "plain.csv"
        stream_out = tmp_path / "stream.csv"
        base = [
            "score", str(model_path), str(csv_path),
            "--label-column", "id", "--chunk-size", "25", "--top", "3",
        ]
        assert main(base + ["--output", str(plain_out)]) == 0
        plain_stdout = capsys.readouterr().out
        assert (
            main(base + ["--stream", "--output", str(stream_out)]) == 0
        )
        stream_stdout = capsys.readouterr().out
        return plain_out, stream_out, plain_stdout, stream_stdout

    def test_stream_output_is_byte_identical(self, outputs):
        plain_out, stream_out, plain_stdout, stream_stdout = outputs
        assert stream_out.read_bytes() == plain_out.read_bytes()
        # stdout matches apart from the final "written to <path>" line,
        # which names the (necessarily different) output files.
        plain_lines = plain_stdout.splitlines()
        stream_lines = stream_stdout.splitlines()
        assert stream_lines[:-1] == plain_lines[:-1]
        assert stream_lines[-1].endswith("stream.csv")

    def test_stream_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["score", "m.json", "x.csv", "--stream", "--jobs", "4"]
        )
        assert args.stream is True
        assert args.jobs == 4

    def test_stream_bad_csv_is_reported(self, workload, tmp_path, capsys):
        _, model_path, _, _, _ = workload
        bad = tmp_path / "bad.csv"
        bad.write_text("id,a,b,c\nx,1,2,oops\n")
        code = main(["score", str(model_path), str(bad), "--stream"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestGzipInput:
    @pytest.fixture()
    def gz_path(self, workload, tmp_path):
        """A gzipped byte-for-byte copy of the fixture CSV."""
        import gzip

        _, _, csv_path, _, _ = workload
        gz = tmp_path / "fresh.csv.gz"
        with gz.open("wb") as handle:
            handle.write(gzip.compress(csv_path.read_bytes()))
        return gz

    def test_rows_match_plain_csv(self, workload, gz_path):
        _, _, csv_path, _, _ = workload
        plain = list(iter_csv_rows(csv_path, label_column="id"))
        gz = list(iter_csv_rows(gz_path, label_column="id"))
        assert [label for label, _ in gz] == [label for label, _ in plain]
        np.testing.assert_array_equal(
            np.asarray([v for _, v in gz]),
            np.asarray([v for _, v in plain]),
        )

    def test_stream_score_round_trip(self, workload, gz_path, tmp_path):
        """Gzipped input scores byte-identically to the plain file."""
        model, _, csv_path, _, _ = workload
        out_plain = tmp_path / "plain_scores.csv"
        out_gz = tmp_path / "gz_scores.csv"
        n_plain = stream_score_csv(
            model, csv_path, out_plain, chunk_size=40, label_column="id"
        )
        n_gz = stream_score_csv(
            model, gz_path, out_gz, chunk_size=40, label_column="id"
        )
        assert n_gz == n_plain == N_ROWS
        assert out_gz.read_bytes() == out_plain.read_bytes()

    def test_validation_still_reports_lines(self, tmp_path):
        import gzip

        bad = tmp_path / "bad.csv.gz"
        with gzip.open(bad, "wt", newline="") as handle:
            handle.write("id,a,b\nx,1,oops\n")
        with pytest.raises(DataValidationError, match=r"bad\.csv\.gz:2"):
            list(iter_csv_rows(bad))


class TestStreamRankTopK:
    def test_matches_in_memory_top_k(self, workload):
        from repro.core.scoring import build_ranking_list
        from repro.serving import stream_rank_topk

        model, _, csv_path, X, labels = workload
        full = build_ranking_list(score_batch(model, X), labels=labels)
        for k in (1, 5, N_ROWS, N_ROWS + 10):
            top, n_rows = stream_rank_topk(
                model, csv_path, k, chunk_size=40, label_column="id"
            )
            assert n_rows == N_ROWS
            assert top == full.top(k)

    def test_ties_break_toward_earlier_rows(self, workload, tmp_path):
        """Duplicate rows tie exactly; the earlier row must rank first,
        matching the stable sort of ``build_ranking_list``."""
        from repro.core.scoring import build_ranking_list
        from repro.serving import stream_rank_topk

        model, _, _, X, _ = workload
        X_dup = np.vstack([X[:5], X[:5], X[:5]])
        labels = [f"r{i:02d}" for i in range(15)]
        dup_csv = tmp_path / "dups.csv"
        save_csv(dup_csv, labels, X_dup, ["a", "b", "c"], label_column="id")
        full = build_ranking_list(score_batch(model, X_dup), labels=labels)
        top, _ = stream_rank_topk(
            model, dup_csv, 7, chunk_size=4, label_column="id"
        )
        assert top == full.top(7)

    def test_k_zero_is_an_empty_wellformed_result(self, workload):
        """``k=0`` must equal truncating the full ranking to nothing —
        an empty list, with every row still counted (regression: this
        used to raise)."""
        from repro.core.scoring import build_ranking_list
        from repro.serving import stream_rank_topk

        model, _, csv_path, X, labels = workload
        full = build_ranking_list(score_batch(model, X), labels=labels)
        top, n_rows = stream_rank_topk(
            model, csv_path, 0, chunk_size=40, label_column="id"
        )
        assert top == full.top(0) == []
        assert n_rows == N_ROWS

    def test_k_zero_still_validates_input(self, workload, tmp_path):
        """The ``k=0`` fast path must keep the ``k>0`` validation
        contract: a width mismatch fails, not silently count rows."""
        from repro.serving import stream_rank_topk

        model, _, _, X, labels = workload
        model_no_names = RankingPrincipalCurve.from_dict(model.to_dict())
        model_no_names.feature_names_ = None
        narrow = tmp_path / "narrow.csv"
        save_csv(narrow, labels, X[:, :2], ["a", "b"], label_column="id")
        with pytest.raises(DataValidationError, match="model expects 3"):
            stream_rank_topk(model_no_names, narrow, 0, label_column="id")

    def test_k_beyond_row_count_equals_full_ranking(self, workload):
        """``k > n`` must equal the whole (untruncated) ranking list,
        byte for byte on every (label, score) pair."""
        from repro.core.scoring import build_ranking_list
        from repro.serving import stream_rank_topk

        model, _, csv_path, X, labels = workload
        full = build_ranking_list(score_batch(model, X), labels=labels)
        top, n_rows = stream_rank_topk(
            model, csv_path, N_ROWS + 1000, chunk_size=40, label_column="id"
        )
        assert n_rows == N_ROWS
        assert len(top) == N_ROWS
        assert top == full.top(N_ROWS + 1000)

    def test_bad_k_rejected(self, workload):
        from repro.core.exceptions import ConfigurationError
        from repro.serving import stream_rank_topk

        model, _, csv_path, _, _ = workload
        with pytest.raises(ConfigurationError, match="k must be >= 0"):
            stream_rank_topk(model, csv_path, -1, label_column="id")


class TestCliTopK:
    def test_matches_plain_score_head(self, workload, tmp_path, capsys):
        _, model_path, csv_path, _, _ = workload
        base = [
            "score", str(model_path), str(csv_path),
            "--label-column", "id", "--chunk-size", "25", "--top", "5",
        ]
        full_out = tmp_path / "full.csv"
        assert main(base + ["--output", str(full_out)]) == 0
        plain_stdout = capsys.readouterr().out

        topk_out = tmp_path / "topk.csv"
        code = main(
            [
                "score", str(model_path), str(csv_path),
                "--label-column", "id", "--chunk-size", "25",
                "--stream", "--top-k", "5", "--output", str(topk_out),
            ]
        )
        assert code == 0
        topk_stdout = capsys.readouterr().out

        # The printed top-5 table is identical to the in-memory path's.
        plain_table = [
            line for line in plain_stdout.splitlines()
            if line.startswith(" ")
        ]
        topk_table = [
            line for line in topk_stdout.splitlines()
            if line.startswith(" ")
        ]
        assert topk_table == plain_table

        # The written file is exactly the head of the full ranking.
        with full_out.open() as handle:
            full_rows = list(csv.reader(handle))
        with topk_out.open() as handle:
            topk_rows = list(csv.reader(handle))
        assert topk_rows == full_rows[:6]  # header + 5 rows

    def test_top_k_requires_stream(self, workload, capsys):
        _, model_path, csv_path, _, _ = workload
        code = main(
            ["score", str(model_path), str(csv_path), "--top-k", "3"]
        )
        assert code == 2
        assert "--stream" in capsys.readouterr().err
