"""Admission control, tuning reload and shed-accounting units.

The daemon's overload story has three pieces — bounded admission with
429 + ``Retry-After`` shedding (:mod:`repro.server.admission`), exact
fleet-wide shed accounting through the shared metrics store, and
zero-downtime ``SIGHUP`` retuning from a JSON tuning file.  This file
unit-tests each piece without a live daemon in the way; the end-to-end
overload behaviour (every request exactly 200 or 429 under offered
load beyond capacity) lives in ``tests/test_server_load.py``.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.core.exceptions import ConfigurationError
from repro.server import (
    AdmissionController,
    ModelRegistry,
    RequestShed,
    ScoringHTTPServer,
    ServerMetrics,
    SharedMetricsStore,
    WorkerPool,
    load_tuning_file,
    validate_tuning,
)

SCORE_ENDPOINT = "POST /v1/models/{name}/score"


class TestAdmissionController:
    def test_admits_until_global_bound_then_sheds(self):
        ctl = AdmissionController(max_inflight=2, retry_after=3.0)
        ctl.acquire("a")
        ctl.acquire("b")
        with pytest.raises(RequestShed) as shed:
            ctl.acquire("c")
        assert "capacity" in str(shed.value)
        assert shed.value.retry_after == 3.0
        # Releasing a slot re-opens admission.
        ctl.release("a")
        ctl.acquire("c")
        stats = ctl.stats()
        assert stats["inflight"] == 2
        assert stats["peak_inflight"] == 2
        assert stats["admitted_total"] == 3
        assert stats["shed_total"] == 1

    def test_per_model_quota_isolates_hot_model(self):
        ctl = AdmissionController(
            max_inflight=10, max_inflight_per_model=1
        )
        ctl.acquire("hot")
        with pytest.raises(RequestShed, match="quota"):
            ctl.acquire("hot")
        # Another model is unaffected by the hot one's quota.
        ctl.acquire("cold")
        ctl.release("hot")
        ctl.acquire("hot")

    def test_zero_bounds_mean_unbounded(self):
        ctl = AdmissionController(max_inflight=0, max_inflight_per_model=0)
        for _ in range(200):
            ctl.acquire("m")
        assert ctl.stats()["inflight"] == 200
        assert ctl.stats()["shed_total"] == 0

    def test_release_cleans_per_model_table(self):
        ctl = AdmissionController(max_inflight=0)
        ctl.acquire("transient")
        ctl.release("transient")
        # A stream of one-shot model names must not grow state forever.
        assert ctl._per_model == {}
        # Spurious release (e.g. after a handler error) stays sane.
        ctl.release("never-acquired")
        assert ctl.stats()["inflight"] == 0

    def test_retry_after_header_is_integer_seconds(self):
        assert AdmissionController(retry_after=1.0).retry_after_header() == "1"
        assert AdmissionController(retry_after=0.2).retry_after_header() == "1"
        assert AdmissionController(retry_after=2.5).retry_after_header() == "3"
        assert AdmissionController(retry_after=7).retry_after_header() == "7"

    def test_reconfigure_in_place_and_validation(self):
        ctl = AdmissionController(max_inflight=4)
        applied = ctl.reconfigure(max_inflight=1, retry_after=9.0)
        assert applied == {
            "max_inflight": 1,
            "max_inflight_per_model": 0,
            "retry_after_s": 9.0,
        }
        ctl.acquire("m")
        with pytest.raises(RequestShed):
            ctl.acquire("m")
        with pytest.raises(ConfigurationError, match="max_inflight"):
            ctl.reconfigure(max_inflight=-1)
        with pytest.raises(ConfigurationError, match="retry_after"):
            ctl.reconfigure(retry_after=0)
        # Failed reconfigure must not have applied anything.
        assert ctl.stats()["max_inflight"] == 1

    def test_constructor_validation(self):
        with pytest.raises(ConfigurationError, match="max_inflight"):
            AdmissionController(max_inflight=-1)
        with pytest.raises(ConfigurationError, match="per_model"):
            AdmissionController(max_inflight_per_model=-2)
        with pytest.raises(ConfigurationError, match="retry_after"):
            AdmissionController(retry_after=0.0)

    def test_thread_safety_of_the_admission_gate(self):
        # 32 threads race 400 acquire/release pairs through a bound of
        # 8: the inflight gauge must never exceed the bound and must
        # return to zero, and admitted+shed must equal the offered total.
        ctl = AdmissionController(max_inflight=8)
        overshoot = []
        barrier = threading.Barrier(32)

        def worker():
            barrier.wait()
            for _ in range(400):
                try:
                    ctl.acquire("m")
                except RequestShed:
                    continue
                if ctl.stats()["inflight"] > 8:
                    overshoot.append(ctl.stats()["inflight"])
                ctl.release("m")

        threads = [threading.Thread(target=worker) for _ in range(32)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not overshoot
        stats = ctl.stats()
        assert stats["inflight"] == 0
        assert stats["admitted_total"] + stats["shed_total"] == 32 * 400


class TestTuningValidation:
    def test_accepts_every_documented_knob(self):
        tuning = {
            "batch_window_ms": 4.0,
            "max_batch_rows": 256,
            "batch_policy": "fixed",
            "max_inflight": 16,
            "max_inflight_per_model": 4,
            "retry_after_s": 2.0,
        }
        assert validate_tuning(tuning) == tuning
        assert validate_tuning({}) == {}

    def test_rejects_unknown_keys_and_bad_values(self):
        with pytest.raises(ConfigurationError, match="unknown tuning"):
            validate_tuning({"workers": 4})
        with pytest.raises(ConfigurationError, match="batch_window_ms"):
            validate_tuning({"batch_window_ms": -1})
        with pytest.raises(ConfigurationError, match="max_batch_rows"):
            validate_tuning({"max_batch_rows": 0})
        with pytest.raises(ConfigurationError, match="batch_policy"):
            validate_tuning({"batch_policy": "psychic"})
        with pytest.raises(ConfigurationError, match="retry_after"):
            validate_tuning({"retry_after_s": 0})
        with pytest.raises(ConfigurationError, match="JSON object"):
            validate_tuning([1, 2, 3])

    def test_load_tuning_file(self, tmp_path):
        path = tmp_path / "tuning.json"
        path.write_text(json.dumps({"max_inflight": 3}))
        assert load_tuning_file(path) == {"max_inflight": 3}
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_tuning_file(tmp_path / "missing.json")
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="cannot read"):
            load_tuning_file(path)


@pytest.fixture()
def quiet_server():
    server = ScoringHTTPServer(
        ("127.0.0.1", 0),
        ModelRegistry(),
        batch_window=0.0,
        max_inflight=8,
    )
    yield server
    server.server_close()


class TestApplyTuning:
    def test_retunes_admission_in_place(self, quiet_server):
        applied = quiet_server.apply_tuning(
            {"max_inflight": 2, "retry_after_s": 5.0}
        )
        assert applied["max_inflight"] == 2
        assert applied["retry_after_s"] == 5.0
        assert quiet_server.admission.max_inflight == 2
        assert quiet_server.admission.retry_after_header() == "5"

    def test_enables_batching_live(self, quiet_server):
        assert quiet_server.batcher is None
        applied = quiet_server.apply_tuning(
            {"batch_window_ms": 4.0, "max_batch_rows": 64}
        )
        assert quiet_server.batcher is not None
        assert applied["window_ms"] == 4.0
        assert applied["max_rows"] == 64
        assert quiet_server.batcher.stats()["policy"] == "adaptive"
        # Retune the now-live batcher, switching policy too.
        applied = quiet_server.apply_tuning(
            {"batch_window_ms": 8.0, "batch_policy": "fixed"}
        )
        assert applied["window_ms"] == 8.0
        assert quiet_server.batcher.stats()["policy"] == "fixed"

    def test_invalid_tuning_changes_nothing(self, quiet_server):
        before = quiet_server.admission.stats()
        with pytest.raises(ConfigurationError):
            quiet_server.apply_tuning({"max_inflight": -3})
        with pytest.raises(ConfigurationError):
            quiet_server.apply_tuning({"nonsense": 1})
        assert quiet_server.admission.stats() == before


class TestKeepaliveValidation:
    """Regression: ``keepalive_timeout=0`` used to be accepted.

    ``settimeout(0)`` puts the socket in non-blocking mode, so a zero
    timeout made every kept-alive connection die instantly with a
    spurious 408 — the opposite of the "no timeout" an operator meant.
    Both front doors must reject it at construction.
    """

    def test_server_rejects_zero_and_negative(self):
        for bad in (0, 0.0, -1.5):
            with pytest.raises(ConfigurationError, match="keepalive"):
                ScoringHTTPServer(
                    ("127.0.0.1", 0),
                    ModelRegistry(),
                    keepalive_timeout=bad,
                )

    def test_pool_rejects_zero_and_negative(self):
        for bad in (0, -2):
            with pytest.raises(ConfigurationError, match="keepalive"):
                WorkerPool([], workers=2, keepalive_timeout=bad)

    def test_large_timeout_still_accepted(self):
        server = ScoringHTTPServer(
            ("127.0.0.1", 0), ModelRegistry(), keepalive_timeout=86400.0
        )
        try:
            assert server.keepalive_timeout == 86400.0
        finally:
            server.server_close()


class TestSharedShedAndBatchTelemetry:
    def test_shed_total_is_exact_across_slots(self, tmp_path):
        store = SharedMetricsStore(
            tmp_path / "metrics.mmap", n_slots=2, create=True
        )
        workers = [
            ServerMetrics(mirror=store.writer(slot)) for slot in range(2)
        ]
        for slot, metrics in enumerate(workers):
            for _ in range(5):
                metrics.observe(SCORE_ENDPOINT, 200, 0.001, rows=1)
            for _ in range(3 * (slot + 1)):
                metrics.observe(SCORE_ENDPOINT, 429, 0.0001)
        for metrics in workers:
            snap = metrics.snapshot()
            assert "requests_shed_total" in snap
        merged = store.merged()
        assert merged["requests_shed_total"] == 9
        assert merged["requests_total"] == 10 + 9
        by_status = merged["endpoints"][SCORE_ENDPOINT]["by_status"]
        assert by_status["429"] == 9

    def test_batch_fill_pools_as_fleet_max(self, tmp_path):
        store = SharedMetricsStore(
            tmp_path / "metrics.mmap", n_slots=2, create=True
        )
        workers = [
            ServerMetrics(mirror=store.writer(slot)) for slot in range(2)
        ]
        workers[0].observe_batch(3, 24)
        workers[1].observe_batch(5, 10)
        workers[1].observe_batch(2, 40)
        merged = store.merged()
        fleet = merged["micro_batcher_fleet"]
        assert fleet["largest_batch_requests"] == 5
        assert fleet["largest_batch_rows"] == 40

    def test_no_batches_means_no_fleet_key(self, tmp_path):
        store = SharedMetricsStore(
            tmp_path / "metrics.mmap", n_slots=1, create=True
        )
        ServerMetrics(mirror=store.writer(0)).observe(
            SCORE_ENDPOINT, 200, 0.001, rows=1
        )
        assert "micro_batcher_fleet" not in store.merged()


class TestServeCLIFlags:
    def test_parser_accepts_overload_knobs(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "serve",
                "--model", "m=/tmp/m.json",
                "--batch-policy", "fixed",
                "--max-inflight", "16",
                "--max-inflight-per-model", "4",
                "--retry-after", "2.5",
                "--keepalive-timeout", "45",
                "--tuning-file", "/tmp/tuning.json",
            ]
        )
        assert args.batch_policy == "fixed"
        assert args.max_inflight == 16
        assert args.max_inflight_per_model == 4
        assert args.retry_after == 2.5
        assert args.keepalive_timeout == 45.0
        assert args.tuning_file == "/tmp/tuning.json"

    def test_parser_defaults(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--model", "m=/tmp/m.json"]
        )
        assert args.batch_policy == "adaptive"
        assert args.max_inflight is None  # -> server default
        assert args.max_inflight_per_model == 0
        assert args.retry_after is None  # -> server default
        assert args.keepalive_timeout == 30.0
        assert args.tuning_file is None
