"""Tests for Eq.(29) min–max normalisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import DataValidationError, NotFittedError
from repro.data.normalize import MinMaxNormalizer, normalize_unit_cube


class TestMinMaxNormalizer:
    def test_unit_range(self, rng):
        X = rng.normal(scale=50, size=(40, 3)) + 100
        U = MinMaxNormalizer().fit_transform(X)
        np.testing.assert_allclose(U.min(axis=0), 0.0, atol=1e-12)
        np.testing.assert_allclose(U.max(axis=0), 1.0, atol=1e-12)

    def test_round_trip(self, rng):
        X = rng.normal(size=(25, 4)) * np.array([1, 100, 0.01, 5.0])
        norm = MinMaxNormalizer().fit(X)
        back = norm.inverse_transform(norm.transform(X))
        np.testing.assert_allclose(back, X, atol=1e-9)

    def test_order_preserved_per_column(self, rng):
        X = rng.normal(size=(30, 2))
        U = MinMaxNormalizer().fit_transform(X)
        for j in range(2):
            np.testing.assert_array_equal(
                np.argsort(X[:, j]), np.argsort(U[:, j])
            )

    def test_new_points_use_training_bounds(self):
        X = np.array([[0.0], [10.0]])
        norm = MinMaxNormalizer().fit(X)
        out = norm.transform(np.array([[5.0], [20.0]]))
        np.testing.assert_allclose(out.ravel(), [0.5, 2.0])

    def test_clip_option(self):
        X = np.array([[0.0], [10.0]])
        norm = MinMaxNormalizer(clip=True).fit(X)
        out = norm.transform(np.array([[-5.0], [20.0]]))
        np.testing.assert_allclose(out.ravel(), [0.0, 1.0])

    def test_constant_column_maps_to_half(self):
        X = np.array([[1.0, 5.0], [2.0, 5.0]])
        U = MinMaxNormalizer().fit_transform(X)
        np.testing.assert_allclose(U[:, 1], [0.5, 0.5])

    def test_constant_column_inverse(self):
        X = np.array([[1.0, 5.0], [2.0, 5.0]])
        norm = MinMaxNormalizer().fit(X)
        back = norm.inverse_transform(norm.transform(X))
        np.testing.assert_allclose(back[:, 1], [5.0, 5.0])

    def test_not_fitted_raises(self):
        with pytest.raises(NotFittedError):
            MinMaxNormalizer().transform(np.ones((2, 2)))
        with pytest.raises(NotFittedError):
            MinMaxNormalizer().inverse_transform(np.ones((2, 2)))

    def test_width_mismatch_raises(self):
        norm = MinMaxNormalizer().fit(np.ones((3, 2)) * [[1], [2], [3]])
        with pytest.raises(DataValidationError):
            norm.transform(np.ones((3, 5)))

    def test_nan_raises(self):
        X = np.ones((3, 2))
        X[1, 1] = np.inf
        with pytest.raises(DataValidationError):
            MinMaxNormalizer().fit(X)

    def test_1d_raises(self):
        with pytest.raises(DataValidationError):
            MinMaxNormalizer().fit(np.ones(5))


class TestConvenienceFunction:
    def test_one_shot(self, rng):
        X = rng.uniform(5, 9, size=(20, 2))
        U = normalize_unit_cube(X)
        assert U.min() >= 0.0 and U.max() <= 1.0
