"""Tests for bootstrap rank-stability analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.evaluation.stability import bootstrap_rank_stability


class _SumRanker:
    """Deterministic stub: score = attribute sum."""

    def fit(self, X):
        return self

    def score_samples(self, X):
        return np.asarray(X).sum(axis=1)


class _NoisyRanker:
    """Stub whose score *order* wobbles with the training resample.

    The non-monotone sine term is scaled by the resample mean, so
    different bootstrap draws reorder the mid-field objects.
    """

    def fit(self, X):
        self._offset = float(np.asarray(X).mean())
        return self

    def score_samples(self, X):
        X = np.asarray(X)
        return X[:, 0] + 0.2 * self._offset * np.sin(X[:, 0] * 1.7)


@pytest.fixture
def spread_data(rng):
    # Well-separated objects: sums 0, 1, ..., 19 with tiny noise.
    base = np.arange(20.0)[:, np.newaxis] + rng.normal(0, 1e-6, (20, 1))
    return np.hstack([base, base * 0.5])


class TestBootstrapStability:
    def test_deterministic_ranker_zero_spread(self, spread_data):
        report = bootstrap_rank_stability(
            _SumRanker, spread_data, n_resamples=8, random_state=0
        )
        np.testing.assert_allclose(report.position_std, 0.0, atol=1e-12)
        # Mean positions are exactly the single ranking.
        np.testing.assert_allclose(
            np.sort(report.mean_position), np.arange(1, 21)
        )

    def test_report_shapes(self, spread_data):
        labels = [f"o{i}" for i in range(20)]
        report = bootstrap_rank_stability(
            _SumRanker, spread_data, labels=labels, n_resamples=5
        )
        assert report.labels == labels
        for field in (
            report.mean_position,
            report.position_std,
            report.position_low,
            report.position_high,
            report.n_appearances,
        ):
            assert field.shape == (20,)

    def test_percentiles_bracket_mean(self, spread_data):
        report = bootstrap_rank_stability(
            _NoisyRanker, spread_data, n_resamples=12, random_state=1
        )
        assert np.all(report.position_low <= report.mean_position + 1e-9)
        assert np.all(report.mean_position <= report.position_high + 1e-9)

    def test_noisy_ranker_nonzero_spread(self, spread_data):
        report = bootstrap_rank_stability(
            _NoisyRanker, spread_data, n_resamples=12, random_state=1
        )
        assert report.position_std.max() > 0.0

    def test_stable_unstable_helpers(self, spread_data):
        labels = [f"o{i}" for i in range(20)]
        report = bootstrap_rank_stability(
            _NoisyRanker,
            spread_data,
            labels=labels,
            n_resamples=12,
            random_state=1,
        )
        stable = report.most_stable(3)
        unstable = report.least_stable(3)
        assert len(stable) == 3 and len(unstable) == 3
        assert set(stable).isdisjoint(unstable) or report.position_std.max() == 0

    def test_table_format(self, spread_data):
        labels = [f"obj{i}" for i in range(20)]
        report = bootstrap_rank_stability(
            _SumRanker, spread_data, labels=labels, n_resamples=4
        )
        text = report.table(rows=["obj0", "obj19"])
        assert "mean pos" in text
        assert len(text.splitlines()) == 4

    def test_rpc_stability_on_real_task(self):
        """End-to-end: RPC positions on the country data are stable at
        the extremes, consistent with the paper's decisive top/bottom."""
        from repro.core.rpc import RankingPrincipalCurve
        from repro.data import load_countries

        data = load_countries(n_countries=40)

        def factory():
            return RankingPrincipalCurve(
                alpha=data.alpha, random_state=0, n_restarts=1, init="linear"
            )

        report = bootstrap_rank_stability(
            factory, data.X, labels=data.labels, n_resamples=4,
            random_state=0,
        )
        lux = data.labels.index("Luxembourg")
        swz = data.labels.index("Swaziland")
        assert report.mean_position[lux] < 10
        assert report.mean_position[swz] > 30

    def test_invalid_inputs(self, spread_data):
        with pytest.raises(ConfigurationError):
            bootstrap_rank_stability(_SumRanker, spread_data, n_resamples=1)
        with pytest.raises(DataValidationError):
            bootstrap_rank_stability(
                _SumRanker, spread_data, labels=["too-few"]
            )
        with pytest.raises(DataValidationError):
            bootstrap_rank_stability(_SumRanker, np.ones(5))
