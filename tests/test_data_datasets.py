"""Tests for the toy, synthetic, country and journal datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.order import RankingOrder
from repro.data import (
    COUNTRY_ALPHA,
    JOURNAL_ALPHA,
    TABLE2_ROWS,
    TABLE3_ROWS,
    example1_points,
    example2_countries,
    load_countries,
    load_journals,
    sample_around_curve,
    sample_crescent,
    sample_ellipse,
    sample_linked_graph,
    sample_monotone_cloud,
    sample_s_curve,
    table1a_objects,
    table1b_objects,
)
from repro.geometry import cubic_from_interior_points


class TestToyData:
    def test_table1a_values(self):
        toy = table1a_objects()
        assert toy.labels == ("A", "B", "C")
        np.testing.assert_allclose(toy.X[0], [0.30, 0.25])
        np.testing.assert_allclose(toy.X[2], [0.70, 0.70])

    def test_table1b_differs_only_in_a(self):
        a = table1a_objects()
        b = table1b_objects()
        np.testing.assert_array_equal(a.X[1:], b.X[1:])
        assert not np.array_equal(a.X[0], b.X[0])

    def test_example1_pairs_ordered(self):
        pts = example1_points()
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        assert order.strictly_precedes(pts["x1"], pts["x2"])
        assert order.strictly_precedes(pts["x3"], pts["x4"])
        assert order.strictly_precedes(pts["x5"], pts["x6"])

    def test_example2_is_chain(self):
        _labels, X, alpha = example2_countries()
        order = RankingOrder(alpha=alpha)
        assert order.is_chain(X)


class TestSyntheticGenerators:
    def test_ellipse_shapes(self):
        cloud = sample_ellipse(n=80, seed=1)
        assert cloud.X.shape == (80, 2)
        assert cloud.latent.shape == (80,)

    def test_ellipse_eccentricity_validated(self):
        with pytest.raises(ConfigurationError):
            sample_ellipse(eccentricity=1.5)

    def test_crescent_monotone_latent(self):
        cloud = sample_crescent(n=150, seed=2, width=0.01)
        # Latent order must correlate with both coordinates.
        for j in range(2):
            corr = np.corrcoef(cloud.latent, cloud.X[:, j])[0, 1]
            assert corr > 0.7

    def test_s_curve_bounds(self):
        cloud = sample_s_curve(n=100, seed=3, noise=0.0)
        assert cloud.X[:, 1].min() >= -1e-9
        assert cloud.X[:, 1].max() <= 1 + 1e-9

    def test_sample_around_curve_zero_noise_on_curve(self):
        curve = cubic_from_interior_points(
            [1, 1], p1=[0.3, 0.3], p2=[0.7, 0.7]
        )
        cloud = sample_around_curve(curve, n=50, noise=0.0, seed=4)
        expected = curve.evaluate(cloud.latent).T
        np.testing.assert_allclose(cloud.X, expected, atol=1e-12)

    def test_sample_around_curve_explicit_latent(self):
        curve = cubic_from_interior_points(
            [1, 1], p1=[0.3, 0.3], p2=[0.7, 0.7]
        )
        latent = np.array([0.0, 0.5, 1.0])
        cloud = sample_around_curve(curve, noise=0.0, latent=latent)
        assert cloud.X.shape == (3, 2)

    def test_monotone_cloud_respects_alpha(self):
        alpha = np.array([1.0, -1.0, 1.0])
        cloud = sample_monotone_cloud(alpha, n=100, seed=5, noise=0.0)
        for j, a in enumerate(alpha):
            corr = np.corrcoef(cloud.latent, cloud.X[:, j])[0, 1]
            assert a * corr > 0.5, f"attribute {j} not aligned with alpha"

    def test_monotone_cloud_curvature_validated(self):
        with pytest.raises(ConfigurationError):
            sample_monotone_cloud(np.array([1.0, 1.0]), curvature=2.0)

    def test_linked_graph_no_dangling(self):
        A = sample_linked_graph(40, seed=6)
        assert A.shape == (40, 40)
        assert np.all(A.sum(axis=1) > 0)
        assert np.all(np.diag(A) == 0)

    def test_linked_graph_edge_prob_validated(self):
        with pytest.raises(ConfigurationError):
            sample_linked_graph(p_edge=0.0)

    def test_generators_deterministic(self):
        a = sample_crescent(n=30, seed=9)
        b = sample_crescent(n=30, seed=9)
        np.testing.assert_array_equal(a.X, b.X)


class TestCountryDataset:
    def test_default_size_and_embedded_rows(self):
        data = load_countries()
        assert data.n_countries == 171
        assert data.X.shape == (171, 4)
        assert int(data.is_from_paper.sum()) == len(TABLE2_ROWS)
        # Verbatim rows preserved.
        lux = data.labels.index("Luxembourg")
        np.testing.assert_allclose(data.X[lux], TABLE2_ROWS["Luxembourg"])

    def test_alpha(self):
        data = load_countries()
        np.testing.assert_array_equal(data.alpha, COUNTRY_ALPHA)

    def test_attributes_in_physical_ranges(self):
        data = load_countries()
        gdp, leb, imr, tb = data.X.T
        assert np.all(gdp > 0)
        assert np.all((leb >= 35) & (leb <= 85))
        assert np.all(imr >= 2)
        assert np.all(tb >= 2)

    def test_custom_size(self):
        data = load_countries(n_countries=50)
        assert data.n_countries == 50

    def test_too_small_raises(self):
        with pytest.raises(ConfigurationError):
            load_countries(n_countries=3)

    def test_deterministic(self):
        a = load_countries(seed=1)
        b = load_countries(seed=1)
        np.testing.assert_array_equal(a.X, b.X)

    def test_development_gradient_present(self):
        # Synthetic countries must show the GDP-LEB positive link the
        # crescent shape relies on.
        data = load_countries()
        synth = ~data.is_from_paper
        corr = np.corrcoef(np.log(data.X[synth, 0]), data.X[synth, 1])[0, 1]
        assert corr > 0.7


class TestJournalDataset:
    def test_default_size_and_embedded_rows(self):
        data = load_journals()
        assert data.n_journals == 393
        assert data.X.shape == (393, 5)
        assert int(data.is_from_paper.sum()) == len(TABLE3_ROWS)
        tkde = data.labels.index("IEEE T KNOWL DATA EN")
        np.testing.assert_allclose(
            data.X[tkde], TABLE3_ROWS["IEEE T KNOWL DATA EN"]
        )

    def test_alpha_all_benefit(self):
        data = load_journals()
        np.testing.assert_array_equal(data.alpha, JOURNAL_ALPHA)

    def test_if_5if_nearly_linear(self):
        # The paper: "5-year IF shows almost a linear relationship with
        # the others".  Check the synthetic rows.
        data = load_journals()
        synth = ~data.is_from_paper
        corr = np.corrcoef(data.X[synth, 0], data.X[synth, 1])[0, 1]
        assert corr > 0.9

    def test_eigenfactor_weakly_coupled(self):
        data = load_journals()
        synth = ~data.is_from_paper
        corr_eigen = abs(
            np.corrcoef(data.X[synth, 0], data.X[synth, 3])[0, 1]
        )
        corr_5if = abs(np.corrcoef(data.X[synth, 0], data.X[synth, 1])[0, 1])
        assert corr_eigen < corr_5if - 0.2

    def test_all_positive(self):
        data = load_journals()
        assert np.all(data.X > 0)

    def test_too_small_raises(self):
        with pytest.raises(ConfigurationError):
            load_journals(n_journals=2)

    def test_deterministic(self):
        a = load_journals(seed=3)
        b = load_journals(seed=3)
        np.testing.assert_array_equal(a.X, b.X)
