"""Deterministic load/soak harness for the multi-process daemon.

These tests drive the *real* CLI daemon — ``python -m repro serve
--workers N`` as a subprocess, workers forked, socket shared — with
concurrent client threads firing a deterministic mixed workload
(scores, ranks, 404s, malformed bodies, poisoned rows).  Pinned
invariants:

* zero dropped connections — every client thread's exception is
  surfaced, not buried (the PR 4 pattern);
* every response matches the single-process oracle byte for byte
  (scores computed locally with ``score_batch`` on the same model);
* ``/metrics`` answered by *any* worker reports fleet-wide totals that
  equal exactly what the clients sent (the shared-store contract);
* ``SIGTERM`` drains: a request whose body is still arriving when the
  signal lands is finished and answered before its worker exits, the
  parent reaps every child and exits 0, and the socket closes.

The shared-memory metrics store is additionally unit-tested here
without any server around it.
"""

from __future__ import annotations

import json
import os
import re
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.data.synthetic import sample_monotone_cloud
from repro.server import ServerMetrics, SharedMetricsStore
from repro.server.metrics import SHARED_LATENCY_RING
from repro.serving import save_model, score_batch

ALPHA = np.array([1.0, 1.0, -1.0])
SCORE_ENDPOINT = "POST /v1/models/{name}/score"
RANK_ENDPOINT = "POST /v1/models/{name}/rank"


def _fit(seed: int) -> tuple[RankingPrincipalCurve, np.ndarray]:
    cloud = sample_monotone_cloud(alpha=ALPHA, n=40, seed=seed, noise=0.02)
    model = RankingPrincipalCurve(
        alpha=ALPHA, random_state=seed, n_restarts=1
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    return model, cloud.X


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    model, X = _fit(seed=3)
    path = tmp_path_factory.mktemp("load_models") / "demo.json"
    save_model(model, path, feature_names=["a", "b", "c"])
    return model, X, path


def _boot_daemon(model_path, extra_args=()):
    """Start ``repro serve`` on an ephemeral port; return (proc, base)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve",
            "--model", f"demo={model_path}", "--port", "0", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    port = None
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = re.search(r"serving .* on http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        raise AssertionError(f"daemon never announced a port: {lines!r}")
    base = f"http://127.0.0.1:{port}"
    # The pool parent prints before the workers finish loading models;
    # wait until one actually answers.
    for _ in range(200):
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=1):
                return proc, base
        except OSError:
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never became healthy")


def _stop_daemon(proc) -> int:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            return proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            raise
    return proc.returncode


def _request(base, path, payload=None, raw=None, method=None):
    data = raw if raw is not None else (
        None if payload is None else json.dumps(payload).encode()
    )
    request = urllib.request.Request(
        base + path,
        data=data,
        method=method or ("POST" if data is not None else "GET"),
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _request_full(base, path, payload=None):
    """Like ``_request`` but also returns the response headers."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        base + path, data=data, method="POST" if data is not None else "GET"
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return (
                response.status,
                dict(response.headers),
                json.loads(response.read()),
            )
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), json.loads(exc.read())


@pytest.fixture(scope="module")
def daemon(saved):
    """A live 2-worker daemon with micro-batching on."""
    _, _, path = saved
    proc, base = _boot_daemon(
        path, ("--workers", "2", "--batch-window-ms", "2"),
    )
    yield base
    assert _stop_daemon(proc) == 0


class TestLoadMixedRequests:
    """K client threads x M mixed requests against a 2-worker fleet."""

    N_THREADS = 6
    PER_THREAD = 18

    def _plan(self, slot: int, X: np.ndarray) -> list:
        """A deterministic per-thread request mix."""
        rng = np.random.default_rng(1000 + slot)
        kinds = rng.choice(
            ["score_single", "score_batch", "rank", "unknown_model",
             "malformed", "wrong_width"],
            size=self.PER_THREAD,
            p=[0.3, 0.25, 0.2, 0.1, 0.075, 0.075],
        )
        plan = []
        for kind in kinds:
            n = int(rng.integers(1, 7))
            take = rng.integers(0, X.shape[0], size=n)
            rows = X[take]
            plan.append((kind, rows))
        return plan

    def _fire(self, base, plan, oracle) -> list:
        outcomes = []
        for kind, rows in plan:
            if kind == "score_single":
                status, body = _request(
                    base, "/v1/models/demo/score",
                    {"row": rows[0].tolist()},
                )
                assert status == 200, body
                assert body["scores"] == oracle(rows[:1]), "oracle mismatch"
            elif kind == "score_batch":
                status, body = _request(
                    base, "/v1/models/demo/score",
                    {"rows": rows.tolist()},
                )
                assert status == 200, body
                assert body["scores"] == oracle(rows), "oracle mismatch"
            elif kind == "rank":
                status, body = _request(
                    base, "/v1/models/demo/rank", {"rows": rows.tolist()}
                )
                assert status == 200, body
                scores = sorted(oracle(rows), reverse=True)
                assert [e["score"] for e in body["ranking"]] == scores
            elif kind == "unknown_model":
                status, body = _request(
                    base, "/v1/models/nope/score", {"row": rows[0].tolist()}
                )
                assert status == 404 and "unknown model" in body["error"]
            elif kind == "malformed":
                status, body = _request(
                    base, "/v1/models/demo/score", raw=b"{not json",
                )
                assert status == 400 and "malformed JSON" in body["error"]
            else:  # wrong_width
                status, body = _request(
                    base, "/v1/models/demo/score",
                    {"row": rows[0, :2].tolist()},
                )
                assert status == 422 and "attributes" in body["error"]
            outcomes.append((kind, rows.shape[0]))
        return outcomes

    def test_zero_drops_oracle_match_and_exact_metrics(self, daemon, saved):
        model, X, _ = saved
        base = daemon

        def oracle(rows: np.ndarray) -> list:
            return score_batch(model, rows).tolist()

        before = _request(base, "/metrics")[1]
        plans = [
            self._plan(slot, X) for slot in range(self.N_THREADS)
        ]
        outcomes: list = [None] * self.N_THREADS
        errors: list = []

        def client(slot: int) -> None:
            try:
                outcomes[slot] = self._fire(base, plans[slot], oracle)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append((slot, exc))

        threads = [
            threading.Thread(target=client, args=(slot,))
            for slot in range(self.N_THREADS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=180)
        assert not any(t.is_alive() for t in threads), "clients wedged"
        assert not errors, f"dropped/failed clients: {errors}"

        # Exact fleet-wide accounting: whichever worker answers
        # /metrics must report precisely what the clients sent.
        after = _request(base, "/metrics")[1]
        sent = [o for slots in outcomes for o in slots]
        by_kind: dict = {}
        for kind, n_rows in sent:
            by_kind.setdefault(kind, []).append(n_rows)
        score_hits = sum(
            len(by_kind.get(k, []))
            for k in ("score_single", "score_batch", "unknown_model",
                      "malformed", "wrong_width")
        )
        expected_rows = (
            len(by_kind.get("score_single", []))
            + sum(by_kind.get("score_batch", []))
            + sum(by_kind.get("rank", []))
        )

        def endpoint_delta(snap_after, snap_before, endpoint, field="requests"):
            b = snap_before["endpoints"].get(endpoint, {}).get(field, 0)
            return snap_after["endpoints"][endpoint][field] - b

        assert endpoint_delta(after, before, SCORE_ENDPOINT) == score_hits
        assert endpoint_delta(after, before, RANK_ENDPOINT) == len(
            by_kind.get("rank", [])
        )
        assert (
            after["rows_scored_total"] - before["rows_scored_total"]
            == expected_rows
        )
        errors_sent = sum(
            len(by_kind.get(k, []))
            for k in ("unknown_model", "malformed", "wrong_width")
        )
        assert (
            after["errors_total"] - before["errors_total"] == errors_sent
        )
        # Both workers exist and the fleet view says so.
        assert after["workers"]["count"] == 2
        assert sum(after["workers"]["requests"]) == after["requests_total"]


class TestGracefulShutdown:
    """SIGTERM drains in-flight work, children exit 0, socket closes."""

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sigterm_drains_in_flight_request(self, saved, workers):
        model, X, path = saved
        proc, base = _boot_daemon(
            path, ("--workers", str(workers), "--batch-window-ms", "2"),
        )
        try:
            host, port = base.removeprefix("http://").split(":")
            rows = np.tile(X, (8, 1))
            body = json.dumps({"rows": rows.tolist()}).encode()
            header = (
                f"POST /v1/models/demo/score HTTP/1.1\r\n"
                f"Host: {host}\r\nContent-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()
            with socket.create_connection(
                (host, int(port)), timeout=30
            ) as sock:
                sock.settimeout(30)
                # Deliver the headers and *half* the body, so a worker
                # thread is provably mid-request when SIGTERM lands...
                sock.sendall(header + body[: len(body) // 2])
                time.sleep(0.2)
                proc.send_signal(signal.SIGTERM)
                time.sleep(0.3)
                # ...then finish the body: the draining worker must
                # still answer before exiting.
                sock.sendall(body[len(body) // 2:])
                raw = b""
                while True:
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    raw += chunk
            head, _, payload = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200"), head[:200]
            # The drain advertises that the connection is done.
            assert b"Connection: close" in head, head
            answer = json.loads(payload)
            assert answer["n"] == rows.shape[0]
            assert answer["scores"] == score_batch(model, rows).tolist()

            assert proc.wait(timeout=60) == 0
            with pytest.raises(OSError):
                socket.create_connection((host, int(port)), timeout=2)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

    def test_sigterm_idle_daemon_exits_zero(self, saved):
        _, _, path = saved
        proc, base = _boot_daemon(path, ("--workers", "2"))
        assert _request(base, "/healthz")[0] == 200
        assert _stop_daemon(proc) == 0

    def test_drain_releases_idle_keepalive_connections(self, saved):
        """An idle kept-alive connection must not hold the drain
        hostage for the 30 s keep-alive timeout: ``begin_drain`` wakes
        the parked handler thread immediately."""
        import http.client

        from repro.server import ModelRegistry, ScoringHTTPServer

        _, _, path = saved
        registry = ModelRegistry()
        registry.register("demo", path)
        server = ScoringHTTPServer(
            ("127.0.0.1", 0), registry, keepalive_timeout=30.0
        )
        server.daemon_threads = False
        server.block_on_close = True
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            conn = http.client.HTTPConnection(host, port, timeout=10)
            conn.request("GET", "/healthz")
            assert conn.getresponse().read()
            # The handler is (about to be) parked reading the next
            # request of the kept-alive connection.
            time.sleep(0.2)
            started = time.monotonic()
            server.begin_drain()
            server.shutdown()
            server.server_close()  # joins the parked handler thread
            assert time.monotonic() - started < 10.0, (
                "drain waited on an idle keep-alive connection"
            )
            conn.close()
        finally:
            thread.join(timeout=10)


class TestWorkerPoolValidation:
    def test_bad_knobs_fail_before_binding(self):
        from repro.core.exceptions import ConfigurationError
        from repro.server import WorkerPool

        # Same fail-fast contract as the single-process boot: these
        # must error at construction, not as a crash-looping fleet.
        with pytest.raises(ConfigurationError, match="workers"):
            WorkerPool([], workers=0)
        with pytest.raises(ConfigurationError, match="n_jobs"):
            WorkerPool([], workers=2, n_jobs=0)
        with pytest.raises(ConfigurationError, match="chunk_size"):
            WorkerPool([], workers=2, chunk_size=0)
        with pytest.raises(ConfigurationError, match="window"):
            WorkerPool([], workers=2, batch_window=-1.0)
        with pytest.raises(ConfigurationError, match="max_rows"):
            WorkerPool([], workers=2, max_batch_rows=0)


class TestSharedMetricsStore:
    """The mmap counter scheme, without a server in the way."""

    def test_merged_totals_are_exact(self, tmp_path):
        path = tmp_path / "metrics.mmap"
        store = SharedMetricsStore(path, n_slots=3, create=True)
        # Simulate three workers (same process: the layout, not the
        # fork, is under test) mirroring through ServerMetrics.
        workers = [
            ServerMetrics(mirror=store.writer(slot)) for slot in range(3)
        ]
        for slot, metrics in enumerate(workers):
            for i in range(10 * (slot + 1)):
                metrics.observe(SCORE_ENDPOINT, 200, 0.001, rows=2)
            metrics.observe(SCORE_ENDPOINT, 404, 0.002)
        reader = SharedMetricsStore(path, n_slots=3)
        merged = reader.merged()
        assert merged["requests_total"] == 60 + 3
        assert merged["rows_scored_total"] == 120
        assert merged["errors_total"] == 3
        endpoint = merged["endpoints"][SCORE_ENDPOINT]
        assert endpoint["requests"] == 63
        assert endpoint["by_status"] == {"200": 60, "404": 3}
        assert set(endpoint["latency_ms"]) == {"p50", "p90", "p99"}
        assert merged["workers"]["requests"] == [11, 21, 31]

    def test_ring_overflow_keeps_counts_exact(self, tmp_path):
        store = SharedMetricsStore(
            tmp_path / "metrics.mmap", n_slots=1, create=True
        )
        writer = store.writer(0)
        n = SHARED_LATENCY_RING * 2 + 17
        for i in range(n):
            writer.observe("GET /healthz", 200, 1e-4)
        merged = store.merged()
        assert merged["requests_total"] == n
        assert merged["endpoints"]["GET /healthz"]["requests"] == n

    def test_unknown_labels_fold_into_other(self, tmp_path):
        store = SharedMetricsStore(
            tmp_path / "metrics.mmap", n_slots=1, create=True
        )
        writer = store.writer(0)
        writer.observe("GET /route-from-the-future", 201, 0.001, rows=5)
        merged = store.merged()
        assert merged["requests_total"] == 1
        assert merged["rows_scored_total"] == 5
        assert merged["endpoints"]["other"]["by_status"] == {"other": 1}

    def test_writer_slot_bounds(self, tmp_path):
        store = SharedMetricsStore(
            tmp_path / "metrics.mmap", n_slots=2, create=True
        )
        with pytest.raises(ValueError):
            store.writer(2)
        with pytest.raises(ValueError):
            SharedMetricsStore(tmp_path / "x.mmap", n_slots=0, create=True)


class TestOverloadAdmission:
    """Offered load beyond capacity: every request is exactly 200 or
    429, sheds carry ``Retry-After``, and the fleet accounting of
    served vs shed sums exactly — no silent drops, no unbounded queue.
    """

    def test_shed_is_deterministic_at_capacity(self, saved):
        # --max-inflight 1 and a request whose body we withhold: the
        # admission slot is provably held (acquire runs before the body
        # read), so the next scoring request MUST shed — deterministic,
        # not a timing race.
        model, X, path = saved
        proc, base = _boot_daemon(
            path,
            ("--workers", "1", "--max-inflight", "1",
             "--retry-after", "7"),
        )
        try:
            host, port = base.removeprefix("http://").split(":")
            rows = X[:4]
            body = json.dumps({"rows": rows.tolist()}).encode()
            header = (
                f"POST /v1/models/demo/score HTTP/1.1\r\n"
                f"Host: {host}\r\nContent-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()
            with socket.create_connection(
                (host, int(port)), timeout=30
            ) as sock:
                sock.settimeout(30)
                sock.sendall(header + body[: len(body) // 2])
                # Wait until the slot is observably held, then probe.
                deadline = time.monotonic() + 15
                while time.monotonic() < deadline:
                    snap = _request(base, "/metrics")[1]
                    if snap["admission"]["inflight"] >= 1:
                        break
                    time.sleep(0.02)
                else:
                    raise AssertionError("slot never acquired")

                status, headers, payload = _request_full(
                    base, "/v1/models/demo/score", {"row": X[0].tolist()}
                )
                assert status == 429, payload
                assert headers.get("Retry-After") == "7"
                assert "capacity" in payload["error"]
                # An overloaded daemon stays observable: the ops
                # endpoints are exempt from admission.
                assert _request(base, "/healthz")[0] == 200
                snap = _request(base, "/metrics")[1]
                assert snap["admission"]["max_inflight"] == 1
                assert snap["admission"]["shed_total"] >= 1
                assert snap["requests_shed_total"] >= 1

                # The admitted request finishes normally once its body
                # arrives — shedding never cancels admitted work.
                sock.sendall(body[len(body) // 2:])
                raw = b""
                while b"\r\n\r\n" not in raw or not raw.endswith(b"}"):
                    chunk = sock.recv(65536)
                    if not chunk:
                        break
                    raw += chunk
            head, _, tail = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 200"), head[:200]
            assert json.loads(tail)["scores"] == score_batch(
                model, rows
            ).tolist()
            # Slot released: admission is open again.
            assert _request(
                base, "/v1/models/demo/score", {"row": X[0].tolist()}
            )[0] == 200
        finally:
            try:
                assert _stop_daemon(proc) == 0
            finally:
                if proc.poll() is None:
                    proc.kill()

    def test_overload_accounting_sums_exactly(self, saved):
        # 8 concurrent clients against one worker with one admission
        # slot: a real overload.  Whatever the 200/429 mix turns out to
        # be, it must cover every request sent (zero silent drops) and
        # /metrics must account for it exactly.
        model, X, path = saved
        proc, base = _boot_daemon(
            path, ("--workers", "1", "--max-inflight", "1"),
        )
        try:
            before = _request(base, "/metrics")[1]
            # Keep the body under the handler's 8 KiB buffered header
            # read: a shed response then closes a fully-read connection
            # (clean FIN) and the client always receives its 429.
            rows = X
            payload = {"rows": rows.tolist()}
            want = score_batch(model, rows).tolist()
            n_threads, per_thread = 8, 6
            statuses: list = [[] for _ in range(n_threads)]
            durations: list = []
            errors: list = []
            barrier = threading.Barrier(n_threads)

            def client(slot: int) -> None:
                try:
                    barrier.wait()
                    for _ in range(per_thread):
                        t0 = time.monotonic()
                        status, headers, body = _request_full(
                            base, "/v1/models/demo/score", payload
                        )
                        durations.append(time.monotonic() - t0)
                        statuses[slot].append(status)
                        if status == 200:
                            assert body["scores"] == want
                        elif status == 429:
                            assert "Retry-After" in headers
                            assert int(headers["Retry-After"]) >= 1
                        else:
                            errors.append((slot, status, body))
                except BaseException as exc:  # noqa: BLE001
                    errors.append((slot, exc))

            threads = [
                threading.Thread(target=client, args=(slot,))
                for slot in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=180)
            assert not any(t.is_alive() for t in threads), "clients wedged"
            assert not errors, f"non-200/429 outcomes: {errors}"

            flat = [s for slot in statuses for s in slot]
            assert len(flat) == n_threads * per_thread, "silent drop"
            assert set(flat) <= {200, 429}
            served, shed = flat.count(200), flat.count(429)
            assert served > 0
            # 8 clients raced one slot from a barrier: overload is real.
            assert shed > 0, "overload scenario never shed"
            # Shed requests return fast; with a bound of one admitted
            # request the worst case is ~one scoring call of queueing,
            # so even p100 stays far below the 30 s client timeout.
            assert max(durations) < 20.0

            after = _request(base, "/metrics")[1]
            assert (
                after["requests_shed_total"]
                - before["requests_shed_total"]
            ) == shed
            by_before = before["endpoints"].get(
                SCORE_ENDPOINT, {}
            ).get("by_status", {})
            by_after = after["endpoints"][SCORE_ENDPOINT]["by_status"]
            assert by_after.get("200", 0) - by_before.get("200", 0) == served
            assert by_after.get("429", 0) - by_before.get("429", 0) == shed
            assert after["admission"]["max_inflight"] == 1
        finally:
            try:
                assert _stop_daemon(proc) == 0
            finally:
                if proc.poll() is None:
                    proc.kill()


class TestSighupRetune:
    """Zero-downtime retuning: SIGHUP re-reads ``--tuning-file`` and
    applies it in place — single-process and fanned out across the
    pre-fork fleet — while a steady client sees only 200s and 429s.
    """

    @pytest.mark.parametrize("workers", [1, 2])
    def test_sighup_applies_tuning_under_load(
        self, saved, workers, tmp_path
    ):
        model, X, path = saved
        tuning = tmp_path / f"tuning-{workers}.json"
        tuning.write_text(json.dumps({"max_inflight": 64}))
        proc, base = _boot_daemon(
            path,
            ("--workers", str(workers), "--batch-window-ms", "2",
             "--tuning-file", str(tuning)),
        )
        try:
            stop = threading.Event()
            outcomes: list = []
            errors: list = []

            def pump() -> None:
                while not stop.is_set():
                    try:
                        outcomes.append(_request(
                            base, "/v1/models/demo/score",
                            {"row": X[0].tolist()},
                        )[0])
                    except BaseException as exc:  # noqa: BLE001
                        errors.append(exc)
                        return

            pump_thread = threading.Thread(target=pump)
            pump_thread.start()
            time.sleep(0.3)

            tuning.write_text(json.dumps(
                {"max_inflight": 3, "batch_window_ms": 5.0,
                 "retry_after_s": 2.0}
            ))
            proc.send_signal(signal.SIGHUP)
            # /metrics is answered by whichever worker wins the accept
            # race, so require a streak of reads agreeing on the new
            # knob — with 2 workers that means both reloaded.
            deadline = time.monotonic() + 30
            streak, need = 0, 4 * workers
            while time.monotonic() < deadline and streak < need:
                snap = _request(base, "/metrics")[1]
                streak = (
                    streak + 1
                    if snap["admission"]["max_inflight"] == 3
                    else 0
                )
                time.sleep(0.05)
            assert streak >= need, "SIGHUP retune never landed"

            # A broken tuning file must never take the daemon down or
            # clobber the running configuration.
            tuning.write_text("{definitely not json")
            proc.send_signal(signal.SIGHUP)
            time.sleep(0.5)
            assert _request(base, "/healthz")[0] == 200
            snap = _request(base, "/metrics")[1]
            assert snap["admission"]["max_inflight"] == 3
            assert snap["admission"]["retry_after_s"] == 2.0

            stop.set()
            pump_thread.join(timeout=30)
            assert not errors, f"client dropped during retune: {errors}"
            assert set(outcomes) <= {200, 429}, sorted(set(outcomes))
            assert outcomes.count(200) > 0
        finally:
            try:
                assert _stop_daemon(proc) == 0
            finally:
                if proc.poll() is None:
                    proc.kill()
