"""Tests for the Theorem 2 inverse ranking function."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import DataValidationError
from repro.core.inverse import (
    InverseRankingFunction,
    gradient_is_positive,
    verify_inverse_duality,
)
from repro.geometry import BezierCurve, cubic_from_interior_points


@pytest.fixture
def monotone_curve():
    return cubic_from_interior_points(
        [1.0, -1.0], p1=[0.2, 0.7], p2=[0.7, 0.2]
    )


class TestGradientCondition:
    def test_feasible_curve_passes(self, monotone_curve):
        assert gradient_is_positive(monotone_curve, [1, -1])

    def test_wrong_direction_fails(self, monotone_curve):
        # Against the declared direction the gradient is negative.
        assert not gradient_is_positive(monotone_curve, [-1, 1])

    def test_hook_curve_fails(self):
        hook = BezierCurve(
            np.array([[0.0, 1.3, -0.3, 1.0], [0.0, 0.2, 0.8, 1.0]])
        )
        assert not gradient_is_positive(hook, [1, 1])

    def test_diagonal_cubic_passes(self):
        from repro.geometry import linear_cubic

        assert gradient_is_positive(linear_cubic([1, 1, 1]), [1, 1, 1])


class TestInverseFunction:
    def test_roundtrip_on_curve(self, monotone_curve):
        phi = InverseRankingFunction(monotone_curve)
        grid = np.linspace(0.05, 0.95, 19)
        on_curve = monotone_curve.evaluate(grid).T
        np.testing.assert_allclose(phi(on_curve), grid, atol=1e-4)

    def test_strictly_monotone_on_dominated_chain(self, monotone_curve):
        phi = InverseRankingFunction(monotone_curve)
        # A dominated chain in the (1, -1) order.
        t = np.linspace(0.0, 1.0, 15)
        X = np.column_stack([t, 1.0 - t])
        scores = phi(X)
        assert np.all(np.diff(scores) > 0)

    def test_extension_beyond_ends(self, monotone_curve):
        phi = InverseRankingFunction(monotone_curve)
        # Points past the best corner get scores above 1, ordered by
        # how far past they sit; symmetric below the worst corner.
        beyond_best = np.array([[1.2, -0.2], [1.5, -0.5]])
        s = phi(beyond_best)
        assert np.all(s > 1.0)
        assert s[1] > s[0]
        beyond_worst = np.array([[-0.2, 1.2], [-0.5, 1.5]])
        s2 = phi(beyond_worst)
        assert np.all(s2 < 0.0)
        assert s2[1] < s2[0]

    def test_wrong_dimension_raises(self, monotone_curve):
        phi = InverseRankingFunction(monotone_curve)
        with pytest.raises(DataValidationError):
            phi(np.ones((3, 5)))


class TestDualityVerification:
    def test_holds_for_feasible_curve(self, monotone_curve):
        report = verify_inverse_duality(monotone_curve, [1, -1])
        assert report.holds
        assert report.max_roundtrip_error < 1e-3
        assert report.monotone_scores
        assert report.gradient_positive

    def test_fails_for_hook(self):
        hook = BezierCurve(
            np.array([[0.0, 1.3, -0.3, 1.0], [0.0, 0.2, 0.8, 1.0]])
        )
        report = verify_inverse_duality(hook, [1, 1])
        assert not report.gradient_positive
        assert not report.holds

    def test_holds_for_fitted_rpc(self):
        import warnings

        from repro.core.rpc import RankingPrincipalCurve
        from repro.data.synthetic import sample_monotone_cloud

        cloud = sample_monotone_cloud(
            alpha=np.array([1.0, 1.0]), n=100, seed=23, noise=0.02
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = RankingPrincipalCurve(
                alpha=[1, 1], random_state=0, n_restarts=1, init="linear"
            ).fit(cloud.X)
        report = verify_inverse_duality(model.curve_, [1, 1])
        assert report.gradient_positive
        assert report.monotone_scores
