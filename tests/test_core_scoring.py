"""Tests for ranking-list construction and score rescaling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import DataValidationError
from repro.core.scoring import (
    build_ranking_list,
    rank_entry_key,
    rank_order,
    rescale_scores,
)


class TestRankKey:
    """The one tie-break convention every ranking path must share."""

    def test_entry_key_sorts_best_first(self):
        entries = [(0.5, 0), (0.9, 1), (0.5, 2), (0.1, 3)]
        ordered = sorted(
            entries, key=lambda e: rank_entry_key(e[0], e[1])
        )
        # Highest score first; the 0.5 tie breaks toward row 0.
        assert [row for _, row in ordered] == [1, 0, 2, 3]

    def test_entry_key_ascending_flag(self):
        assert rank_entry_key(0.5, 3, descending=False) == (0.5, 3)
        assert rank_entry_key(0.5, 3) == (-0.5, 3)

    def test_rank_order_matches_build_ranking_list(self, rng):
        # Coarse quantisation manufactures exact ties; the stable
        # order must agree with build_ranking_list on every draw.
        for _ in range(20):
            scores = rng.choice(np.linspace(0, 1, 5), size=50)
            np.testing.assert_array_equal(
                rank_order(scores), build_ranking_list(scores).order
            )

    def test_rank_order_agrees_with_entry_key_sort(self, rng):
        scores = rng.choice(np.linspace(0, 1, 4), size=40)
        by_key = sorted(
            range(scores.size),
            key=lambda i: rank_entry_key(scores[i], i),
        )
        np.testing.assert_array_equal(rank_order(scores), by_key)

    def test_rank_order_ascending(self):
        scores = np.array([0.3, 0.1, 0.3, 0.2])
        assert rank_order(scores, descending=False).tolist() == [1, 3, 0, 2]


class TestBuildRankingList:
    def test_descending_order(self):
        ranking = build_ranking_list(np.array([0.1, 0.9, 0.5]))
        np.testing.assert_array_equal(ranking.order, [1, 2, 0])
        np.testing.assert_array_equal(ranking.positions, [3, 1, 2])

    def test_ascending_option(self):
        ranking = build_ranking_list(
            np.array([0.1, 0.9, 0.5]), descending=False
        )
        np.testing.assert_array_equal(ranking.order, [0, 2, 1])

    def test_labels_and_lookup(self):
        ranking = build_ranking_list(
            np.array([0.2, 0.8]), labels=["worst", "best"]
        )
        assert ranking.position_of("best") == 1
        assert ranking.position_of("worst") == 2
        assert ranking.score_of("best") == pytest.approx(0.8)

    def test_top_and_bottom(self):
        scores = np.array([0.1, 0.4, 0.9, 0.6])
        labels = ["a", "b", "c", "d"]
        ranking = build_ranking_list(scores, labels=labels)
        assert ranking.top(2) == [("c", 0.9), ("d", 0.6)]
        assert ranking.bottom(2) == [("b", 0.4), ("a", 0.1)]

    def test_top_k_clamped(self):
        ranking = build_ranking_list(np.array([1.0, 2.0]))
        assert len(ranking.top(10)) == 2

    def test_tie_detection(self):
        tied = build_ranking_list(np.array([0.5, 0.5, 0.7]))
        untied = build_ranking_list(np.array([0.4, 0.5, 0.7]))
        assert tied.has_ties
        assert not untied.has_ties

    def test_stable_tie_breaking(self):
        ranking = build_ranking_list(np.array([0.5, 0.5]))
        np.testing.assert_array_equal(ranking.order, [0, 1])

    def test_label_count_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            build_ranking_list(np.array([1.0, 2.0]), labels=["only-one"])

    def test_unknown_label_raises(self):
        ranking = build_ranking_list(np.array([1.0]), labels=["a"])
        with pytest.raises(DataValidationError):
            ranking.position_of("zzz")

    def test_no_labels_lookup_raises(self):
        ranking = build_ranking_list(np.array([1.0, 2.0]))
        with pytest.raises(DataValidationError):
            ranking.position_of("a")
        with pytest.raises(DataValidationError):
            ranking.score_of("a")

    def test_unlabelled_top_uses_indices(self):
        ranking = build_ranking_list(np.array([0.3, 0.9]))
        assert ranking.top(1) == [("1", 0.9)]


class TestRescaleScores:
    def test_maps_to_unit_interval(self):
        out = rescale_scores(np.array([-3.0, 0.0, 7.0]))
        assert out.min() == 0.0
        assert out.max() == 1.0
        assert out[1] == pytest.approx(0.3)

    def test_constant_scores_become_zero(self):
        out = rescale_scores(np.array([4.0, 4.0, 4.0]))
        np.testing.assert_array_equal(out, [0.0, 0.0, 0.0])

    def test_order_preserved(self, rng):
        scores = rng.normal(size=30)
        out = rescale_scores(scores)
        np.testing.assert_array_equal(np.argsort(scores), np.argsort(out))
