"""Tests for the Bernstein basis (Eq.(13)–(15))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.geometry import (
    CUBIC_M,
    bernstein_basis,
    bernstein_derivative_basis,
    bernstein_design_matrix,
    bernstein_to_power_matrix,
    power_vector,
)


class TestBernsteinBasis:
    def test_partition_of_unity(self):
        s = np.linspace(0, 1, 50)
        for k in (1, 2, 3, 5):
            basis = bernstein_basis(k, s)
            np.testing.assert_allclose(basis.sum(axis=0), 1.0, atol=1e-12)

    def test_nonnegative_on_unit_interval(self):
        s = np.linspace(0, 1, 50)
        basis = bernstein_basis(3, s)
        assert np.all(basis >= 0)

    def test_endpoint_values(self):
        basis = bernstein_basis(3, np.array([0.0, 1.0]))
        # Only B_0 is 1 at s=0 and only B_3 at s=1.
        np.testing.assert_allclose(basis[:, 0], [1, 0, 0, 0], atol=1e-15)
        np.testing.assert_allclose(basis[:, 1], [0, 0, 0, 1], atol=1e-15)

    def test_symmetry_identity(self):
        # B_r^k(s) = B_{k-r}^k(1 - s).
        s = np.linspace(0, 1, 17)
        basis = bernstein_basis(3, s)
        flipped = bernstein_basis(3, 1.0 - s)
        for r in range(4):
            np.testing.assert_allclose(basis[r], flipped[3 - r], atol=1e-12)

    def test_degree_zero(self):
        basis = bernstein_basis(0, np.array([0.3]))
        np.testing.assert_allclose(basis, [[1.0]])

    def test_explicit_cubic_values(self):
        # B^3 at s = 0.5 is (1/8, 3/8, 3/8, 1/8).
        basis = bernstein_basis(3, np.array([0.5]))
        np.testing.assert_allclose(basis[:, 0], [1 / 8, 3 / 8, 3 / 8, 1 / 8])

    def test_negative_degree_raises(self):
        with pytest.raises(ConfigurationError):
            bernstein_basis(-1, np.array([0.5]))


class TestDesignMatrix:
    def test_shape(self):
        D = bernstein_design_matrix(3, np.linspace(0, 1, 7))
        assert D.shape == (7, 4)

    def test_rows_sum_to_one(self):
        D = bernstein_design_matrix(4, np.linspace(0, 1, 9))
        np.testing.assert_allclose(D.sum(axis=1), 1.0)


class TestPowerConversion:
    def test_cubic_matrix_matches_eq15(self):
        expected = np.array(
            [
                [1, -3, 3, -1],
                [0, 3, -6, 3],
                [0, 0, 3, -3],
                [0, 0, 0, 1],
            ],
            dtype=float,
        )
        np.testing.assert_array_equal(CUBIC_M, expected)
        np.testing.assert_array_equal(bernstein_to_power_matrix(3), expected)

    def test_conversion_consistency(self, rng):
        # P M z must equal the Bernstein-form evaluation for any P, s.
        for k in (1, 2, 3, 4):
            P = rng.normal(size=(3, k + 1))
            s = rng.uniform(size=11)
            M = bernstein_to_power_matrix(k)
            via_power = P @ M @ power_vector(s, k)
            via_basis = P @ bernstein_basis(k, s)
            np.testing.assert_allclose(via_power, via_basis, atol=1e-12)

    def test_rows_of_m_sum_to_delta(self):
        # Column 0 of M collects the constant terms: sum over r of
        # M[r, 0] B-contribution must reproduce partition of unity,
        # i.e. first column is e_0 summed: sum_r M[r, j] equals 1 for
        # j = 0 and 0 otherwise.
        for k in (1, 2, 3, 5):
            M = bernstein_to_power_matrix(k)
            col_sums = M.sum(axis=0)
            expected = np.zeros(k + 1)
            expected[0] = 1.0
            np.testing.assert_allclose(col_sums, expected, atol=1e-12)


class TestPowerVector:
    def test_shape_and_values(self):
        Z = power_vector(np.array([0.5, 2.0]), 3)
        assert Z.shape == (4, 2)
        np.testing.assert_allclose(Z[:, 0], [1, 0.5, 0.25, 0.125])
        np.testing.assert_allclose(Z[:, 1], [1, 2, 4, 8])


class TestDerivativeBasis:
    def test_matches_finite_differences(self):
        s = np.linspace(0.1, 0.9, 9)
        eps = 1e-7
        for k in (1, 2, 3):
            analytic = bernstein_derivative_basis(k, s)
            numeric = (
                bernstein_basis(k, s + eps) - bernstein_basis(k, s - eps)
            ) / (2 * eps)
            np.testing.assert_allclose(analytic, numeric, atol=1e-6)

    def test_derivatives_sum_to_zero(self):
        # d/ds of the partition of unity is zero.
        s = np.linspace(0, 1, 21)
        dbasis = bernstein_derivative_basis(3, s)
        np.testing.assert_allclose(dbasis.sum(axis=0), 0.0, atol=1e-12)

    def test_degree_zero_derivative_is_zero(self):
        out = bernstein_derivative_basis(0, np.array([0.4]))
        np.testing.assert_array_equal(out, [[0.0]])
