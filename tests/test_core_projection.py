"""Tests for the Eq.(20) projection solvers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.core.projection import (
    project_points,
    stationary_polynomial,
    stationary_residual,
)
from repro.geometry import cubic_from_interior_points
from repro.linalg import polyval_ascending


@pytest.fixture
def curve():
    return cubic_from_interior_points(
        [1.0, 1.0], p1=[0.2, 0.5], p2=[0.7, 0.6]
    )


class TestSolverAgreement:
    @pytest.mark.parametrize("method", ["gss", "roots", "newton"])
    def test_on_curve_points_recovered(self, curve, method):
        s_true = np.linspace(0.1, 0.9, 9)
        X = curve.evaluate(s_true).T
        s_hat = project_points(curve, X, method=method)
        np.testing.assert_allclose(s_hat, s_true, atol=1e-3)

    def test_all_methods_reach_same_distance(self, curve, rng):
        X = rng.uniform(-0.1, 1.1, size=(50, 2))
        distances = {}
        for method in ("gss", "roots", "newton"):
            s = project_points(curve, X, method=method)
            distances[method] = np.sum(
                (X - curve.evaluate(s).T) ** 2, axis=1
            )
        np.testing.assert_allclose(
            distances["gss"], distances["roots"], atol=1e-5
        )
        np.testing.assert_allclose(
            distances["newton"], distances["roots"], atol=1e-5
        )

    @pytest.mark.parametrize("method", ["gss", "roots", "newton"])
    def test_scores_in_unit_interval(self, curve, rng, method):
        X = rng.uniform(-3, 3, size=(30, 2))
        s = project_points(curve, X, method=method)
        assert np.all((s >= 0.0) & (s <= 1.0))

    def test_unknown_method_raises(self, curve):
        with pytest.raises(ConfigurationError):
            project_points(curve, np.ones((2, 2)), method="bogus")


class TestStationaryPolynomial:
    def test_degree_is_five_for_cubic(self, curve):
        coeffs = stationary_polynomial(curve, np.array([0.5, 0.5]))
        assert coeffs.shape == (6,)  # quintic: degree 2k - 1 = 5

    def test_vanishes_at_interior_projection(self, curve, rng):
        X = rng.uniform(0.2, 0.8, size=(20, 2))
        s = project_points(curve, X, method="roots")
        for x, si in zip(X, s):
            if 1e-6 < si < 1 - 1e-6:  # interior optima only
                assert stationary_residual(curve, x, float(si)) == pytest.approx(
                    0.0, abs=1e-6
                )

    def test_equals_derivative_dot_residual(self, curve, rng):
        # Direct check of Eq.(20): value == f'(s) . (x - f(s)).
        x = rng.uniform(size=2)
        coeffs = stationary_polynomial(curve, x)
        for s in rng.uniform(size=10):
            direct = float(
                curve.derivative(np.array([s]))[:, 0]
                @ (x - curve.evaluate(np.array([s]))[:, 0])
            )
            via_poly = float(polyval_ascending(coeffs, np.array([s]))[0])
            assert via_poly == pytest.approx(direct, abs=1e-10)

    def test_wrong_dimension_raises(self, curve):
        with pytest.raises(ConfigurationError):
            stationary_polynomial(curve, np.ones(3))


class TestMultimodalRobustness:
    def test_gss_with_grid_handles_multiple_minima(self):
        # A tight S-curve creates points with distinct local projection
        # minima; the grid scan must pick the global one, matching the
        # exact roots method.
        curve = cubic_from_interior_points(
            [1.0, 1.0], p1=[0.05, 0.95], p2=[0.95, 0.05]
        )
        rng = np.random.default_rng(5)
        X = rng.uniform(size=(200, 2))
        s_gss = project_points(curve, X, method="gss", n_grid=64)
        s_roots = project_points(curve, X, method="roots")
        d_gss = np.sum((X - curve.evaluate(s_gss).T) ** 2, axis=1)
        d_roots = np.sum((X - curve.evaluate(s_roots).T) ** 2, axis=1)
        np.testing.assert_allclose(d_gss, d_roots, atol=1e-4)
