"""Tests for CSV loading/saving and the alpha-spec parser."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.core.scoring import build_ranking_list
from repro.data.loaders import (
    load_csv,
    parse_alpha_spec,
    save_csv,
    save_ranking_csv,
)


@pytest.fixture
def csv_file(tmp_path):
    path = tmp_path / "data.csv"
    path.write_text(
        "country,GDP,LEB,IMR\n"
        "Atlantis,100.5,80.1,3\n"
        "Mu,20.25,60.5,40\n"
        "Lemuria,55,70,12\n"
    )
    return path


class TestLoadCsv:
    def test_basic_load(self, csv_file):
        table = load_csv(csv_file)
        assert table.labels == ["Atlantis", "Mu", "Lemuria"]
        assert table.attribute_names == ["GDP", "LEB", "IMR"]
        np.testing.assert_allclose(table.X[0], [100.5, 80.1, 3.0])

    def test_explicit_label_column(self, tmp_path):
        path = tmp_path / "mid.csv"
        path.write_text("a,name,b\n1,x,2\n3,y,4\n")
        table = load_csv(path, label_column="name")
        assert table.labels == ["x", "y"]
        assert table.attribute_names == ["a", "b"]
        np.testing.assert_allclose(table.X, [[1, 2], [3, 4]])

    def test_column_subset(self, csv_file):
        table = load_csv(csv_file, attribute_columns=["IMR", "GDP"])
        assert table.attribute_names == ["IMR", "GDP"]
        np.testing.assert_allclose(table.X[0], [3.0, 100.5])

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "gaps.csv"
        path.write_text("id,v\na,1\n\n  \nb,2\n")
        table = load_csv(path)
        assert table.labels == ["a", "b"]

    def test_missing_label_column_raises(self, csv_file):
        with pytest.raises(DataValidationError):
            load_csv(csv_file, label_column="nope")

    def test_missing_attribute_raises(self, csv_file):
        with pytest.raises(DataValidationError):
            load_csv(csv_file, attribute_columns=["GDP", "nope"])

    def test_non_numeric_cell_raises(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("id,v\na,oops\n")
        with pytest.raises(DataValidationError):
            load_csv(path)

    def test_ragged_row_raises(self, tmp_path):
        path = tmp_path / "ragged.csv"
        path.write_text("id,v,w\na,1\n")
        with pytest.raises(DataValidationError):
            load_csv(path)

    def test_empty_file_raises(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(DataValidationError):
            load_csv(path)

    def test_header_only_raises(self, tmp_path):
        path = tmp_path / "header.csv"
        path.write_text("id,v\n")
        with pytest.raises(DataValidationError):
            load_csv(path)


class TestSaveCsv:
    def test_round_trip(self, tmp_path, rng):
        X = rng.uniform(size=(5, 3))
        labels = [f"row{i}" for i in range(5)]
        path = tmp_path / "out.csv"
        save_csv(path, labels, X, ["a", "b", "c"])
        table = load_csv(path)
        assert table.labels == labels
        assert table.attribute_names == ["a", "b", "c"]
        np.testing.assert_allclose(table.X, X)

    def test_shape_validation(self, tmp_path):
        with pytest.raises(DataValidationError):
            save_csv(tmp_path / "x.csv", ["a"], np.ones((2, 2)), ["u", "v"])
        with pytest.raises(DataValidationError):
            save_csv(tmp_path / "x.csv", ["a", "b"], np.ones((2, 2)), ["u"])


class TestSaveRankingCsv:
    def test_best_first_output(self, tmp_path):
        ranking = build_ranking_list(
            np.array([0.2, 0.9, 0.5]), labels=["low", "high", "mid"]
        )
        path = tmp_path / "ranking.csv"
        save_ranking_csv(path, ranking)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "position,label,score"
        assert lines[1].startswith("1,high")
        assert lines[3].startswith("3,low")

    def test_unlabelled_ranking_raises(self, tmp_path):
        ranking = build_ranking_list(np.array([1.0, 2.0]))
        with pytest.raises(ConfigurationError):
            save_ranking_csv(tmp_path / "x.csv", ranking)


class TestParseAlphaSpec:
    def test_basic(self):
        alpha = parse_alpha_spec("+GDP,+LEB,-IMR", ["GDP", "LEB", "IMR"])
        np.testing.assert_array_equal(alpha, [1.0, 1.0, -1.0])

    def test_order_independent_of_spec(self):
        alpha = parse_alpha_spec("-IMR,+GDP,+LEB", ["GDP", "LEB", "IMR"])
        np.testing.assert_array_equal(alpha, [1.0, 1.0, -1.0])

    def test_whitespace_tolerated(self):
        alpha = parse_alpha_spec(" +a , -b ", ["a", "b"])
        np.testing.assert_array_equal(alpha, [1.0, -1.0])

    def test_missing_attribute_raises(self):
        with pytest.raises(ConfigurationError):
            parse_alpha_spec("+a", ["a", "b"])

    def test_unknown_attribute_raises(self):
        with pytest.raises(ConfigurationError):
            parse_alpha_spec("+a,+z", ["a", "b"])

    def test_duplicate_raises(self):
        with pytest.raises(ConfigurationError):
            parse_alpha_spec("+a,-a", ["a"])

    def test_bad_token_raises(self):
        with pytest.raises(ConfigurationError):
            parse_alpha_spec("a,+b", ["a", "b"])
