"""Tests for the missing-data pipeline (drop / impute / masked score)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.data.missing import (
    CurveImputer,
    drop_missing_rows,
    masked_projection,
    median_impute,
    missing_mask,
    missing_summary,
)
from repro.data.synthetic import sample_around_curve, sample_monotone_cloud
from repro.geometry import cubic_from_interior_points


@pytest.fixture
def holey_data(rng):
    """Monotone cloud with ~10% of cells knocked out."""
    cloud = sample_monotone_cloud(
        alpha=np.array([1.0, 1.0, -1.0]), n=120, seed=29, noise=0.02
    )
    X = cloud.X.copy()
    holes = rng.uniform(size=X.shape) < 0.1
    # Keep the first 40 rows fully observed so the imputer can fit.
    holes[:40] = False
    # No fully-empty rows.
    full_rows = holes.all(axis=1)
    holes[full_rows, 0] = False
    X[holes] = np.nan
    return X, cloud, holes


class TestMaskAndSummary:
    def test_mask_matches_nan(self, holey_data):
        X, _, holes = holey_data
        np.testing.assert_array_equal(missing_mask(X), holes)

    def test_summary_counts(self, holey_data):
        X, _, holes = holey_data
        summary = missing_summary(X)
        assert summary["n_rows"] == 120
        assert summary["n_missing_cells"] == int(holes.sum())
        assert summary["n_complete_rows"] + summary["n_incomplete_rows"] == 120

    def test_1d_raises(self):
        with pytest.raises(DataValidationError):
            missing_mask(np.ones(5))


class TestDropRows:
    def test_drops_exactly_incomplete(self, holey_data):
        X, _, holes = holey_data
        complete, labels, kept = drop_missing_rows(
            X, labels=[f"r{i}" for i in range(120)]
        )
        assert complete.shape[0] == int((~holes.any(axis=1)).sum())
        assert not np.any(np.isnan(complete))
        assert labels is not None and labels[0] == f"r{kept[0]}"

    def test_label_mismatch_raises(self, holey_data):
        X, _, _ = holey_data
        with pytest.raises(DataValidationError):
            drop_missing_rows(X, labels=["x"])

    def test_no_missing_is_identity(self, rng):
        X = rng.uniform(size=(10, 2))
        complete, _labels, kept = drop_missing_rows(X)
        np.testing.assert_array_equal(complete, X)
        np.testing.assert_array_equal(kept, np.arange(10))


class TestMedianImpute:
    def test_fills_with_observed_median(self):
        X = np.array([[1.0, 10.0], [3.0, np.nan], [5.0, 30.0]])
        out = median_impute(X)
        assert out[1, 1] == pytest.approx(20.0)
        assert not np.any(np.isnan(out))

    def test_original_untouched(self):
        X = np.array([[1.0, np.nan]])
        _ = X.copy()
        try:
            median_impute(X)
        except DataValidationError:
            pass
        assert np.isnan(X[0, 1])

    def test_all_missing_column_raises(self):
        X = np.array([[1.0, np.nan], [2.0, np.nan]])
        with pytest.raises(DataValidationError):
            median_impute(X)


class TestMaskedProjection:
    @pytest.fixture
    def curve(self):
        return cubic_from_interior_points(
            [1.0, 1.0], p1=[0.2, 0.5], p2=[0.7, 0.6]
        )

    def test_full_mask_matches_ordinary_projection(self, curve, rng):
        X = rng.uniform(size=(30, 2))
        observed = np.ones_like(X, dtype=bool)
        s_masked = masked_projection(curve, X, observed)
        s_full = curve.project(X)
        np.testing.assert_allclose(s_masked, s_full, atol=1e-6)

    def test_recovers_latent_from_single_coordinate(self, curve):
        # Points exactly on the curve, with one coordinate hidden: the
        # masked projection must still recover the latent parameter
        # (each coordinate is strictly monotone, hence invertible).
        s_true = np.linspace(0.1, 0.9, 9)
        X = curve.evaluate(s_true).T
        observed = np.zeros_like(X, dtype=bool)
        observed[:, 0] = True  # only the x coordinate is visible
        X_masked = np.where(observed, X, np.nan)
        s_hat = masked_projection(curve, X_masked, observed)
        np.testing.assert_allclose(s_hat, s_true, atol=1e-3)

    def test_empty_row_rejected(self, curve):
        X = np.array([[np.nan, np.nan]])
        observed = np.zeros_like(X, dtype=bool)
        with pytest.raises(DataValidationError):
            masked_projection(curve, X, observed)

    def test_shape_mismatch_raises(self, curve, rng):
        with pytest.raises(DataValidationError):
            masked_projection(
                curve, rng.uniform(size=(5, 2)), np.ones((4, 2), dtype=bool)
            )


class TestCurveImputer:
    def test_imputed_values_near_truth(self):
        # Noise-free data on a known curve: hidden cells must be
        # reconstructed almost exactly.
        curve = cubic_from_interior_points(
            [1.0, 1.0, 1.0],
            p1=[0.2, 0.4, 0.3],
            p2=[0.7, 0.6, 0.8],
        )
        cloud = sample_around_curve(curve, n=80, noise=0.0, seed=3)
        X = cloud.X.copy()
        holes = np.zeros_like(X, dtype=bool)
        holes[50:, 1] = True  # hide one coordinate of 30 rows
        X_holey = np.where(holes, np.nan, X)
        imputer = CurveImputer(
            alpha=[1, 1, 1], random_state=0, n_restarts=1, init="linear"
        )
        result = imputer.fit_transform(X_holey)
        assert result.n_imputed_cells == 30
        np.testing.assert_allclose(
            result.X_imputed[holes], X[holes], atol=0.05
        )

    def test_scores_correlate_with_latent(self, holey_data):
        X, cloud, _holes = holey_data
        imputer = CurveImputer(
            alpha=[1, 1, -1], random_state=0, n_restarts=1, init="linear"
        )
        result = imputer.fit_transform(X)
        from repro.evaluation.metrics import spearman_rho

        assert spearman_rho(result.scores, cloud.latent) > 0.95

    def test_complete_cells_untouched(self, holey_data):
        X, _, holes = holey_data
        imputer = CurveImputer(
            alpha=[1, 1, -1], random_state=0, n_restarts=1, init="linear"
        )
        result = imputer.fit_transform(X)
        np.testing.assert_array_equal(
            result.X_imputed[~holes], X[~holes]
        )
        assert not np.any(np.isnan(result.X_imputed))

    def test_too_few_complete_rows_raises(self):
        X = np.full((20, 2), np.nan)
        X[:3] = 1.0
        imputer = CurveImputer(alpha=[1, 1])
        with pytest.raises(DataValidationError):
            imputer.fit(X)

    def test_unfitted_raises(self):
        imputer = CurveImputer(alpha=[1, 1])
        with pytest.raises(ConfigurationError):
            _ = imputer.model_

    def test_invalid_min_rows(self):
        with pytest.raises(ConfigurationError):
            CurveImputer(alpha=[1, 1], min_complete_rows=2)
