"""Server-side observability: traces, engine counters, exposition.

Integration tests of PR 7's tracing layer wired through the real
daemon, plus the regression pins that rode along:

* shed traceability — a 429 refused before the body is read still
  carries an ``X-Request-Id`` (echoed or generated) and lands in the
  ``/metrics`` error window, so overload is debuggable per-request;
* ``MicroBatcher.stats()`` reads its gauges under the batcher lock —
  a snapshot can never mix counters from two different batches;
* the shared store's histogram cells merge *exactly* across worker
  slots (bucket counts are plain sums), while the JSON ``/metrics``
  snapshot keeps its pre-histogram key set byte for byte;
* unrouted and wrong-method requests are counted in ``/metrics``
  (they used to be answered without being observed).

The slowest test boots the real CLI daemon with ``--workers 2
--batch-window-ms 5 --trace on`` and retrieves traces across worker
boundaries through the shared spill directory.
"""

from __future__ import annotations

import json
import os
import re
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.data.synthetic import sample_monotone_cloud
from repro.obs import EngineProfile, Tracer, lint_exposition
from repro.server import (
    ENGINE_CELL_KEYS,
    STORE_FORMAT_VERSION,
    ModelRegistry,
    ScoringHTTPServer,
    ServerMetrics,
    SharedMetricsStore,
)
from repro.server.metrics import SHARED_ENDPOINTS
from repro.obs.histogram import (
    HISTOGRAM_FORMAT_VERSION,
    LATENCY_BUCKET_BOUNDS,
    N_LATENCY_BUCKETS,
    bucket_index,
)
from repro.serving import save_model

ALPHA = np.array([1.0, 1.0, -1.0])
SCORE_ENDPOINT = "POST /v1/models/{name}/score"
TRACE_STAGES = (
    "admission", "parse", "registry", "validate", "execute", "serialize",
)


def _fit(seed: int) -> tuple[RankingPrincipalCurve, np.ndarray]:
    cloud = sample_monotone_cloud(alpha=ALPHA, n=40, seed=seed, noise=0.02)
    model = RankingPrincipalCurve(
        alpha=ALPHA, random_state=seed, n_restarts=1
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    return model, cloud.X


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    model, X = _fit(seed=3)
    path = tmp_path_factory.mktemp("obs_models") / "demo.json"
    save_model(model, path, feature_names=["a", "b", "c"])
    return model, X, path


def _request(base, method, path, body=None, headers=None, timeout=10):
    req = urllib.request.Request(
        base + path, data=body, method=method, headers=headers or {}
    )
    try:
        with urllib.request.urlopen(req, timeout=timeout) as resp:
            return resp.status, dict(resp.headers), resp.read()
    except urllib.error.HTTPError as exc:
        return exc.code, dict(exc.headers), exc.read()


@pytest.fixture()
def traced_server(saved):
    _, _, path = saved
    registry = ModelRegistry()
    registry.register("demo", str(path))
    tracer = Tracer(mode="on", sample_every=1, capacity=128)
    server = ScoringHTTPServer(
        ("127.0.0.1", 0),
        registry,
        batch_window=0.005,
        tracer=tracer,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    base = f"http://127.0.0.1:{server.server_address[1]}"
    yield server, base
    server.shutdown()
    server.server_close()


class TestShedTraceability:
    """A 429 shed before the body is read is still a joinable event."""

    def _shedding_server(self, saved):
        _, _, path = saved
        registry = ModelRegistry()
        registry.register("demo", str(path))
        server = ScoringHTTPServer(
            ("127.0.0.1", 0), registry, max_inflight=1, retry_after=2.0
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        return server, f"http://127.0.0.1:{server.server_address[1]}"

    def test_shed_echoes_supplied_request_id(self, saved):
        server, base = self._shedding_server(saved)
        try:
            server.admission.acquire("demo")  # occupy the only slot
            try:
                status, headers, body = _request(
                    base,
                    "POST",
                    "/v1/models/demo/score",
                    json.dumps({"row": [1.0, 2.0, 3.0]}).encode(),
                    headers={"X-Request-Id": "overload-probe-1"},
                )
            finally:
                server.admission.release("demo")
            assert status == 429
            assert headers.get("X-Request-Id") == "overload-probe-1"
            assert headers.get("Retry-After") == "2"
            # ... and the shed is in the error window, joinable by id.
            recent = server.metrics.snapshot()["recent_errors"]
            shed = [e for e in recent if e["request_id"] == "overload-probe-1"]
            assert shed and shed[0]["status"] == 429
        finally:
            server.shutdown()
            server.server_close()

    def test_shed_generates_request_id_when_absent(self, saved):
        server, base = self._shedding_server(saved)
        try:
            server.admission.acquire("demo")
            try:
                status, headers, _ = _request(
                    base,
                    "POST",
                    "/v1/models/demo/score",
                    json.dumps({"row": [1.0, 2.0, 3.0]}).encode(),
                )
            finally:
                server.admission.release("demo")
            assert status == 429
            generated = headers.get("X-Request-Id")
            assert generated and re.fullmatch(r"[0-9a-f]{32}", generated)
        finally:
            server.shutdown()
            server.server_close()


class TestBatcherStatsLocking:
    """``stats()`` must snapshot under the batcher lock (pin)."""

    def test_stats_blocks_while_lock_held(self, saved):
        _, _, path = saved
        registry = ModelRegistry()
        registry.register("demo", str(path))
        server = ScoringHTTPServer(
            ("127.0.0.1", 0), registry, batch_window=0.002
        )
        try:
            batcher = server.batcher
            got = []
            with batcher._lock:
                reader = threading.Thread(
                    target=lambda: got.append(batcher.stats())
                )
                reader.start()
                reader.join(timeout=0.2)
                # Still waiting on the lock we hold: no torn reads.
                assert reader.is_alive()
                assert got == []
            reader.join(timeout=5)
            assert not reader.is_alive()
            assert got and got[0]["queue_depth"] == 0
        finally:
            server.server_close()


class TestSharedHistogramMerge:
    """The latency-histogram cells of the shared store (format v3)."""

    def test_format_version_pins_layout(self):
        # STORE_FORMAT_VERSION 3 == histogram cells with these bounds
        # and the rank-shard endpoint label in the cell layout.
        # Changing the bounds, the endpoint tuple or the engine cell
        # list is a layout change: bump the version and fix this
        # golden.
        assert STORE_FORMAT_VERSION == 3
        assert HISTOGRAM_FORMAT_VERSION == 1
        assert len(LATENCY_BUCKET_BOUNDS) == 32
        assert len(ENGINE_CELL_KEYS) == 11
        assert "POST /v1/models/{name}/rank-shard" in SHARED_ENDPOINTS

    def test_concurrent_worker_writes_sum_exactly(self, tmp_path):
        n_slots, per_worker = 4, 500
        store = SharedMetricsStore(
            tmp_path / "metrics.mmap", n_slots=n_slots, create=True
        )
        workers = [
            ServerMetrics(mirror=store.writer(slot))
            for slot in range(n_slots)
        ]
        # Deterministic latencies spread across several buckets.
        latencies = [0.0002 * (1 + (i % 7)) for i in range(per_worker)]

        def drive(metrics):
            for seconds in latencies:
                metrics.observe(SCORE_ENDPOINT, 200, seconds, rows=2)

        threads = [
            threading.Thread(target=drive, args=(m,)) for m in workers
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        reader = SharedMetricsStore(tmp_path / "metrics.mmap", n_slots=n_slots)
        merged = reader.merged()
        assert merged["requests_total"] == n_slots * per_worker
        assert merged["rows_scored_total"] == n_slots * per_worker * 2
        counts, total_sum = reader.merged_histograms()[SCORE_ENDPOINT]
        assert counts.sum() == n_slots * per_worker
        # Bucket-for-bucket the merge equals the sum of local shards.
        expected = np.zeros(N_LATENCY_BUCKETS)
        for seconds in latencies:
            expected[bucket_index(seconds)] += n_slots
        np.testing.assert_array_equal(counts, expected)
        assert total_sum == pytest.approx(sum(latencies) * n_slots)
        # And the merged percentiles come from those buckets.
        latency = merged["endpoints"][SCORE_ENDPOINT]["latency_ms"]
        assert set(latency) == {"p50", "p90", "p99"}
        assert 0 < latency["p50"] <= latency["p99"]

    def test_engine_cells_merge_exactly(self, tmp_path):
        store = SharedMetricsStore(
            tmp_path / "metrics.mmap", n_slots=2, create=True
        )
        workers = [
            ServerMetrics(mirror=store.writer(slot)) for slot in range(2)
        ]
        for slot, metrics in enumerate(workers):
            profile = EngineProfile()
            profile.add_phase("newton", 0.010 * (slot + 1), rows=10)
            profile.count("newton_iterations", 3 * (slot + 1))
            profile.count("warm_start_hits", 8)
            profile.count("warm_start_misses", 2)
            metrics.observe_engine(profile)
        merged = store.merged_engine()
        assert merged["newton_rows"] == 20
        assert merged["newton_iterations"] == 9
        assert merged["newton_seconds"] == pytest.approx(0.030)
        assert merged["warm_start_hits"] == 16
        assert merged["warm_start_misses"] == 4

    def test_json_snapshot_stays_byte_compatible(self):
        """The pre-PR-7 snapshot key set, frozen."""
        metrics = ServerMetrics()
        metrics.observe(SCORE_ENDPOINT, 200, 0.002, rows=3)
        metrics.observe(SCORE_ENDPOINT, 429, 0.0001, request_id="abc")
        snap = metrics.snapshot()
        assert set(snap) == {
            "uptime_seconds",
            "requests_total",
            "rows_scored_total",
            "errors_total",
            "requests_shed_total",
            "recent_errors",
            "endpoints",
        }
        entry = snap["endpoints"][SCORE_ENDPOINT]
        assert set(entry) == {"requests", "by_status", "latency_ms"}
        assert set(entry["latency_ms"]) == {"p50", "p90", "p99"}
        json.dumps(snap)  # still JSON-clean

    def test_merged_payload_stays_byte_compatible(self, tmp_path):
        store = SharedMetricsStore(
            tmp_path / "metrics.mmap", n_slots=2, create=True
        )
        metrics = ServerMetrics(mirror=store.writer(0))
        metrics.observe(SCORE_ENDPOINT, 200, 0.002, rows=3)
        merged = store.merged()
        assert set(merged) == {
            "requests_total",
            "rows_scored_total",
            "errors_total",
            "requests_shed_total",
            "endpoints",
            "workers",
        }
        entry = merged["endpoints"][SCORE_ENDPOINT]
        assert set(entry) == {"requests", "by_status", "latency_ms"}


class TestTracedServer:
    """One in-process daemon, tracing every request."""

    def test_trace_spans_cover_request_latency(self, traced_server):
        _, base = traced_server
        body = json.dumps(
            {"rows": [[1.0, 2.0, 3.0]] * 64}
        ).encode()
        best_ratio = 0.0
        for attempt in range(5):
            request_id = f"covtest-{attempt}"
            status, _, _ = _request(
                base,
                "POST",
                "/v1/models/demo/score",
                body,
                headers={"X-Request-Id": request_id},
            )
            assert status == 200
            status, _, data = _request(
                base, "GET", f"/v1/debug/trace/{request_id}"
            )
            assert status == 200
            payload = json.loads(data)["trace"]
            stages = payload["stages_ms"]
            for name in TRACE_STAGES + ("queue",):
                assert name in stages, (name, stages)
            ratio = sum(stages.values()) / payload["duration_ms"]
            best_ratio = max(best_ratio, ratio)
            if 0.90 <= best_ratio <= 1.01:
                break
        assert 0.90 <= best_ratio <= 1.01, best_ratio
        assert payload["rows"] == 64
        assert payload["batch"]["rows"] >= 64
        assert payload["engine"]["phase_rows"]

    def test_trace_includes_batch_and_engine_annotations(self, traced_server):
        _, base = traced_server
        status, _, _ = _request(
            base,
            "POST",
            "/v1/models/demo/score",
            json.dumps({"row": [1.0, 2.0, 3.0]}).encode(),
            headers={"X-Request-Id": "anno-1"},
        )
        assert status == 200
        _, _, data = _request(base, "GET", "/v1/debug/trace/anno-1")
        payload = json.loads(data)["trace"]
        assert re.fullmatch(r"\d+-\d+", payload["batch"]["id"])
        assert payload["batch"]["requests"] >= 1
        snap = payload["engine"]
        assert set(snap) >= {"phases_ms", "phase_rows", "counters"}

    def test_polling_the_debug_endpoint_does_not_evict(self, saved):
        _, _, path = saved
        registry = ModelRegistry()
        registry.register("demo", str(path))
        tracer = Tracer(mode="on", capacity=2)  # tiny ring
        server = ScoringHTTPServer(("127.0.0.1", 0), registry, tracer=tracer)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            _request(
                base,
                "POST",
                "/v1/models/demo/score",
                json.dumps({"row": [1.0, 2.0, 3.0]}).encode(),
                headers={"X-Request-Id": "keepme"},
            )
            for _ in range(6):  # 3× ring capacity of polls
                status, _, _ = _request(
                    base, "GET", "/v1/debug/trace/keepme"
                )
                assert status == 200
        finally:
            server.shutdown()
            server.server_close()

    def test_trace_miss_is_404(self, traced_server):
        _, base = traced_server
        status, _, data = _request(base, "GET", "/v1/debug/trace/nope-1")
        assert status == 404
        assert "no trace retained" in json.loads(data)["error"]

    def test_trace_endpoint_404_without_tracer(self, saved):
        _, _, path = saved
        registry = ModelRegistry()
        registry.register("demo", str(path))
        server = ScoringHTTPServer(("127.0.0.1", 0), registry)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://127.0.0.1:{server.server_address[1]}"
        try:
            status, _, data = _request(base, "GET", "/v1/debug/trace/x")
            assert status == 404
            assert "--trace" in json.loads(data)["error"]
        finally:
            server.shutdown()
            server.server_close()

    def test_prometheus_negotiation_and_lint(self, traced_server):
        _, base = traced_server
        _request(
            base,
            "POST",
            "/v1/models/demo/score",
            json.dumps({"row": [1.0, 2.0, 3.0]}).encode(),
        )
        # ?format=prometheus
        status, headers, data = _request(
            base, "GET", "/metrics?format=prometheus"
        )
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        text = data.decode()
        assert lint_exposition(text) == []
        assert "repro_requests_total" in text
        assert "repro_request_duration_seconds_bucket" in text
        assert "repro_engine_phase_seconds_total" in text
        # Accept negotiation picks the same body.
        status, headers, data = _request(
            base, "GET", "/metrics", headers={"Accept": "text/plain"}
        )
        assert status == 200
        assert data.decode().startswith("# HELP")
        # Default (no Accept preference) stays JSON.
        status, headers, data = _request(base, "GET", "/metrics")
        assert headers["Content-Type"] == "application/json"
        snap = json.loads(data)
        assert snap["requests_total"] >= 1
        # Additive observability keys ride along without disturbing
        # the documented base schema.
        for key in ("engine", "registry", "tracer"):
            assert key in snap

    def test_json_metrics_counts_unrouted_and_wrong_method(
        self, traced_server
    ):
        """Regression: 404/405 responses used to skip metrics."""
        _, base = traced_server
        assert _request(base, "GET", "/nope")[0] == 404
        assert _request(base, "POST", "/nope", b"{}")[0] == 404
        assert _request(base, "GET", "/v1/models/demo/score")[0] == 405
        snap = json.loads(_request(base, "GET", "/metrics")[2])
        endpoints = snap["endpoints"]
        assert endpoints["GET (unrouted)"]["by_status"]["404"] >= 1
        assert endpoints["POST (unrouted)"]["by_status"]["404"] >= 1
        assert endpoints["GET (scoring route)"]["by_status"]["405"] >= 1

    def test_engine_counters_accumulate_in_metrics(self, traced_server):
        server, base = traced_server
        before = server.metrics.engine_snapshot()["scoring_calls"]
        _request(
            base,
            "POST",
            "/v1/models/demo/score",
            json.dumps({"rows": [[1.0, 2.0, 3.0]] * 8}).encode(),
        )
        snap = server.metrics.engine_snapshot()
        assert snap["scoring_calls"] == before + 1
        assert snap.get("newton_rows", 0) >= 8
        assert snap.get("newton_seconds", 0) > 0


def _boot_daemon(model_path, extra_args=()):
    """Start ``repro serve`` on an ephemeral port; return (proc, base)."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve",
            "--model", f"demo={model_path}", "--port", "0", *extra_args,
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
    )
    deadline = time.monotonic() + 60
    port = None
    lines = []
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        lines.append(line)
        match = re.search(r"serving .* on http://[^:]+:(\d+)", line)
        if match:
            port = int(match.group(1))
            break
    if port is None:
        proc.kill()
        raise AssertionError(f"daemon never announced a port: {lines!r}")
    base = f"http://127.0.0.1:{port}"
    for _ in range(200):
        try:
            with urllib.request.urlopen(base + "/healthz", timeout=1):
                return proc, base
        except OSError:
            time.sleep(0.05)
    proc.kill()
    raise AssertionError("daemon never became healthy")


def _stop_daemon(proc) -> int:
    if proc.poll() is None:
        proc.send_signal(signal.SIGTERM)
        try:
            return proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            proc.kill()
            return proc.wait(timeout=10)
    return proc.returncode


class TestWorkerFleetTracing:
    """Traces cross worker boundaries through the shared spill dir."""

    def test_traces_retrievable_from_any_worker(self, saved):
        _, _, path = saved
        proc, base = _boot_daemon(
            path,
            extra_args=(
                "--workers", "2",
                "--batch-window-ms", "5",
                "--trace", "on",
            ),
        )
        try:
            body = json.dumps({"rows": [[1.0, 2.0, 3.0]] * 16}).encode()
            ids = [f"fleet-{i}" for i in range(8)]
            for request_id in ids:
                status, headers, _ = _request(
                    base,
                    "POST",
                    "/v1/models/demo/score",
                    body,
                    headers={"X-Request-Id": request_id},
                )
                assert status == 200
                assert headers.get("X-Request-Id") == request_id
            # Keep-alive is per-connection and workers share the
            # socket, so these GETs land on arbitrary workers; every
            # trace must still resolve (ring locally, spill remotely).
            found_stage_sets = []
            for request_id in ids:
                status, _, data = _request(
                    base, "GET", f"/v1/debug/trace/{request_id}"
                )
                assert status == 200, request_id
                payload = json.loads(data)["trace"]
                assert payload["request_id"] == request_id
                stages = payload["stages_ms"]
                for name in TRACE_STAGES:
                    assert name in stages, (name, stages)
                assert sum(stages.values()) <= payload["duration_ms"] * 1.01
                found_stage_sets.append(payload["worker"])
            # Both workers took part (not guaranteed per-request, but
            # 8 requests over 2 workers virtually always split).
            assert len(ids) == 8
            # Fleet exposition from any worker passes the linter.
            status, _, data = _request(
                base, "GET", "/metrics?format=prometheus"
            )
            assert status == 200
            assert lint_exposition(data.decode()) == []
            # JSON metrics still fleet-merged and backward shaped.
            snap = json.loads(_request(base, "GET", "/metrics")[2])
            assert snap["requests_total"] >= len(ids)
            assert "workers" in snap
        finally:
            assert _stop_daemon(proc) == 0

    def test_access_log_lines_are_structured(self, saved, tmp_path):
        _, _, path = saved
        log_path = tmp_path / "access.jsonl"
        proc, base = _boot_daemon(
            path,
            extra_args=("--access-log", str(log_path)),
        )
        try:
            _request(
                base,
                "POST",
                "/v1/models/demo/score",
                json.dumps({"row": [1.0, 2.0, 3.0]}).encode(),
                headers={"X-Request-Id": "logline-1"},
            )
            deadline = time.monotonic() + 10
            entries = []
            while time.monotonic() < deadline:
                if log_path.exists():
                    entries = [
                        json.loads(line)
                        for line in log_path.read_text().splitlines()
                        if line.strip()
                    ]
                    if any(
                        e["request_id"] == "logline-1" for e in entries
                    ):
                        break
                time.sleep(0.1)
            match = [e for e in entries if e["request_id"] == "logline-1"]
            assert match, entries
            entry = match[0]
            assert entry["status"] == 200
            assert entry["method"] == "POST"
            assert entry["endpoint"] == SCORE_ENDPOINT
            assert entry["rows"] == 1
            assert entry["duration_ms"] > 0
            assert "execute" in entry["stages_ms"]
        finally:
            assert _stop_daemon(proc) == 0
