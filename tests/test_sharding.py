"""Sharded scoring and rank: the coordinator merges exactly one box.

These tests pin the whole distributed-rank contract against live
in-process daemons: the consistent-hash ring is deterministic and
moves only a dead node's blocks, a shard's ``rank-shard`` response is
a validated extsort run with global row indices, the coordinator's
k-way merge writes output *byte-identical* to the single-box streaming
path (rank and score modes both), a shard killed mid-job reroutes its
unadopted blocks to survivors with exactly-once output, and the
coordinator-level ``/metrics`` roll-up sums shard histograms exactly
instead of averaging percentiles.
"""

from __future__ import annotations

import filecmp
import json
import threading
import urllib.error
import urllib.request
import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.data.loaders import save_csv
from repro.data.synthetic import sample_monotone_cloud
from repro.families import build_model
from repro.obs.histogram import N_LATENCY_BUCKETS, percentile_from_buckets
from repro.server import ModelRegistry, ScoringHTTPServer
from repro.serving import (
    save_model,
    score_batch,
    stream_rank_csv,
    stream_score_csv,
)
from repro.serving.extsort import ExternalSorter, iter_run_bytes, pack_run_bytes
from repro.sharding import (
    ConsistentHashRing,
    ShardCoordinator,
    ShardJobError,
    fetch_shard_metrics,
    rollup_metrics,
)

ALPHA = np.array([1.0, 1.0, -1.0])
N_ROWS = 300


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A fitted model, its saved file, and a labelled CSV to rank."""
    root = tmp_path_factory.mktemp("sharding")
    cloud = sample_monotone_cloud(alpha=ALPHA, n=N_ROWS, seed=11, noise=0.03)
    model = RankingPrincipalCurve(alpha=ALPHA, random_state=0, n_restarts=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    labels = [f"item{i:04d}" for i in range(N_ROWS)]
    csv_path = root / "rows.csv"
    save_csv(csv_path, labels, cloud.X, ["a", "b", "c"], label_column="id")
    model_path = root / "model.json"
    save_model(model, model_path, feature_names=["a", "b", "c"])
    return model, model_path, csv_path, cloud.X, labels


def _start_server(model_path, name="demo", **kwargs):
    registry = ModelRegistry()
    registry.register(name, model_path)
    server = ScoringHTTPServer(("127.0.0.1", 0), registry, **kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    return server, thread, f"http://{host}:{port}"


@pytest.fixture()
def fleet(workload):
    """Three live in-process daemons all serving the same model."""
    _, model_path, *_ = workload
    members = [_start_server(model_path) for _ in range(3)]
    yield [url for _, _, url in members], [server for server, _, _ in members]
    for server, thread, _ in members:
        try:
            server.shutdown()
            server.server_close()
        except OSError:  # a test already tore this member down
            pass
        thread.join(timeout=5)


def _post_raw(url: str, payload: dict):
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST"
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return response.status, response.headers, response.read()


def _post_error(url: str, payload: dict):
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        _post_raw(url, payload)
    return excinfo.value.code, json.loads(excinfo.value.read())


class TestHashRing:
    def test_deterministic_across_instances(self):
        first = ConsistentHashRing(["a", "b", "c"])
        second = ConsistentHashRing(["c", "a", "b"])  # order-insensitive
        for key in range(200):
            assert first.node_for(key) == second.node_for(key)

    def test_removal_moves_only_the_dead_nodes_keys(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        before = {key: ring.node_for(key) for key in range(200)}
        victim = ring.node_for(0)
        ring.remove(victim)
        moved = 0
        for key, owner in before.items():
            if owner == victim:
                moved += 1
                assert ring.node_for(key) != victim
            else:
                # Survivors keep every one of their keys — the property
                # that makes mid-job reroute touch only dead blocks.
                assert ring.node_for(key) == owner
        assert moved > 0

    def test_add_back_restores_the_original_assignment(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        before = {key: ring.node_for(key) for key in range(200)}
        ring.remove("b")
        ring.add("b")
        assert before == {key: ring.node_for(key) for key in range(200)}

    def test_roughly_balanced_with_default_replicas(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        counts = {"a": 0, "b": 0, "c": 0}
        for key in range(3000):
            counts[ring.node_for(key)] += 1
        for owned in counts.values():
            assert 0.5 * 1000 < owned < 1.5 * 1000

    def test_contract_errors(self):
        with pytest.raises(ConfigurationError):
            ConsistentHashRing([])
        with pytest.raises(ConfigurationError):
            ConsistentHashRing(["a"], replicas=0)
        ring = ConsistentHashRing(["only"])
        with pytest.raises(ConfigurationError):
            ring.remove("only")
        ring.remove("not-a-member")  # idempotent no-op
        assert "only" in ring and len(ring) == 1
        assert ConsistentHashRing(["b", "a"]).nodes == ("a", "b")


class TestRunBytes:
    def test_round_trip_is_sorted_with_global_indices(self):
        scores = np.array([0.3, 0.9, 0.1, 0.9])
        labels = ["w", "x", "y", "z"]
        entries = list(iter_run_bytes(pack_run_bytes(labels, scores, 100)))
        # Ranking order: score desc, earlier row wins the exact tie.
        assert entries == [
            (-0.9, 101, "x"),
            (-0.9, 103, "z"),
            (-0.3, 100, "w"),
            (-0.1, 102, "y"),
        ]

    def test_pack_rejects_mismatched_lengths(self):
        with pytest.raises(DataValidationError, match="2 labels for 3"):
            pack_run_bytes(["a", "b"], np.array([1.0, 2.0, 3.0]))

    def test_iter_rejects_truncation(self):
        run = pack_run_bytes(["alpha", "beta"], np.array([2.0, 1.0]))
        with pytest.raises(DataValidationError, match="trailing bytes"):
            list(iter_run_bytes(run[:-8]))
        with pytest.raises(DataValidationError, match="label cut short"):
            list(iter_run_bytes(run[:-1]))

    def test_adopted_runs_merge_like_one_box(self, tmp_path):
        rng = np.random.default_rng(5)
        scores = rng.normal(size=90)
        labels = [f"r{i}" for i in range(90)]
        with ExternalSorter(tmp_dir=tmp_path) as sorter:
            bounds = (0, 40, 64, 90)  # ragged blocks, global base rows
            for start, stop in zip(bounds, bounds[1:]):
                sorter.adopt_run_bytes(
                    pack_run_bytes(
                        labels[start:stop], scores[start:stop], start
                    ),
                    expect_rows=stop - start,
                )
            merged = list(sorter.ranked())
        with ExternalSorter(tmp_dir=tmp_path) as reference:
            reference.add(labels, scores)
            assert merged == list(reference.ranked())

    def test_adopt_rejects_unsorted_runs(self, tmp_path):
        # Two individually valid runs concatenated out of ranking
        # order: the second record's key sorts before the first.
        bad = pack_run_bytes(["a"], np.array([1.0])) + pack_run_bytes(
            ["b"], np.array([5.0]), base_row=1
        )
        with ExternalSorter(tmp_dir=tmp_path) as sorter:
            with pytest.raises(
                DataValidationError, match="not in ranking order"
            ):
                sorter.adopt_run_bytes(bad)

    def test_adopt_rejects_wrong_row_count(self, tmp_path):
        run = pack_run_bytes(["a", "b"], np.array([2.0, 1.0]))
        with ExternalSorter(tmp_dir=tmp_path) as sorter:
            with pytest.raises(
                DataValidationError, match="carries 2 rows, expected 3"
            ):
                sorter.adopt_run_bytes(run, expect_rows=3)
            assert sorter.n_rows == 0  # a rejected run is not adopted

    def test_adopt_empty_run_is_a_no_op(self, tmp_path):
        with ExternalSorter(tmp_dir=tmp_path) as sorter:
            assert sorter.adopt_run_bytes(b"") == 0
            assert sorter.n_rows == 0
            assert list(sorter.ranked()) == []


class TestRankShardEndpoint:
    @pytest.fixture(scope="class")
    def served(self, workload, tmp_path_factory):
        model, model_path, *_ = workload
        server, thread, base = _start_server(model_path)
        yield base, model
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)

    def test_returns_a_sorted_run_with_global_indices(self, served):
        base, model = served
        rows = [[0.2, 0.1, 0.9], [0.9, 0.8, 0.1], [0.5, 0.5, 0.5]]
        status, headers, body = _post_raw(
            f"{base}/v1/models/demo/rank-shard",
            {"rows": rows, "labels": ["p", "q", "r"], "row_offset": 64},
        )
        assert status == 200
        assert headers["Content-Type"] == "application/octet-stream"
        entries = list(iter_run_bytes(body))
        assert sorted(entries) == entries  # already in ranking order
        assert {row for _, row, _ in entries} == {64, 65, 66}
        by_row = {row - 64: -neg for neg, row, _ in entries}
        expected = score_batch(model, np.asarray(rows))
        assert [by_row[i] for i in range(3)] == expected.tolist()

    def test_default_labels_are_global_row_numbers(self, served):
        base, _ = served
        _, _, body = _post_raw(
            f"{base}/v1/models/demo/rank-shard",
            {"rows": [[0.1, 0.2, 0.3], [0.4, 0.5, 0.6]], "row_offset": 7},
        )
        assert {label for _, _, label in iter_run_bytes(body)} == {"7", "8"}

    def test_single_row_is_rejected(self, served):
        base, _ = served
        code, body = _post_error(
            f"{base}/v1/models/demo/rank-shard",
            {"row": [0.1, 0.2, 0.3]},
        )
        assert code == 400
        assert "requires 'rows'" in body["error"]

    @pytest.mark.parametrize("offset", [-1, 1.5, "7", True, None])
    def test_bad_row_offset_is_400(self, served, offset):
        base, _ = served
        code, body = _post_error(
            f"{base}/v1/models/demo/rank-shard",
            {"rows": [[0.1, 0.2, 0.3]], "row_offset": offset},
        )
        assert code == 400
        assert "row_offset" in body["error"]

    def test_labels_stay_rejected_on_the_score_endpoint(self, served):
        base, _ = served
        code, body = _post_error(
            f"{base}/v1/models/demo/score",
            {"rows": [[0.1, 0.2, 0.3]], "labels": ["a"]},
        )
        assert code == 400
        assert "rank endpoints" in body["error"]

    def test_batch_relative_family_is_refused(self, tmp_path):
        cloud = sample_monotone_cloud(alpha=ALPHA, n=50, seed=4, noise=0.05)
        borda = build_model("borda", alpha=ALPHA)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            borda.fit(cloud.X)
        path = save_model(borda, tmp_path / "borda.json")
        server, thread, base = _start_server(path, name="borda")
        try:
            code, body = _post_error(
                f"{base}/v1/models/borda/rank-shard",
                {"rows": cloud.X[:4].tolist(), "row_offset": 0},
            )
            assert code == 422
            assert "cannot be sharded" in body["error"]
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestCoordinator:
    def test_rank_is_byte_identical_to_one_box(self, workload, fleet, tmp_path):
        model, _, csv_path, *_ = workload
        urls, _ = fleet
        single = tmp_path / "single.csv"
        stream_rank_csv(model, csv_path, single, label_column="id")
        coordinator = ShardCoordinator(urls, "demo", rows_per_block=64)
        sharded = tmp_path / "sharded.csv"
        n_rows, head = coordinator.rank_csv(
            csv_path, sharded, label_column="id", head=3
        )
        assert n_rows == N_ROWS
        assert filecmp.cmp(single, sharded, shallow=False)
        with single.open() as handle:
            next(handle)  # header
            for (label, score), line in zip(head, handle):
                _, file_label, file_score = line.rstrip("\n").split(",")
                assert label == file_label
                assert repr(score) == file_score
        stats = coordinator.stats()
        assert stats["n_blocks"] == 5  # 300 rows / 64
        assert sum(stats["blocks_by_shard"].values()) == 5
        assert stats["dead_shards"] == [] and stats["retried_blocks"] == 0

    def test_score_mode_matches_stream_score_csv(
        self, workload, fleet, tmp_path
    ):
        model, _, csv_path, *_ = workload
        urls, _ = fleet
        single = tmp_path / "single.csv"
        stream_score_csv(model, csv_path, single, label_column="id")
        sharded = tmp_path / "sharded.csv"
        coordinator = ShardCoordinator(urls, "demo", rows_per_block=48)
        assert coordinator.score_csv(
            csv_path, sharded, label_column="id"
        ) == N_ROWS
        assert filecmp.cmp(single, sharded, shallow=False)

    def test_dead_shard_reroutes_with_exactly_once_output(
        self, workload, fleet, tmp_path
    ):
        model, _, csv_path, *_ = workload
        urls, servers = fleet
        single = tmp_path / "single.csv"
        stream_rank_csv(model, csv_path, single, label_column="id")
        # 30 blocks of 10 rows: more than the coordinator's in-flight
        # window, so blocks are still being submitted when the victim
        # dies.  Killing the shard that owns the *last* block (computed
        # from the same deterministic ring) guarantees at least one
        # not-yet-posted block must reroute to a survivor.
        victim = ConsistentHashRing(urls).node_for(29)
        killed = []

        def _kill_victim(block_index, shard_url, n_rows):
            if not killed:
                killed.append(victim)
                server = servers[urls.index(victim)]
                server.shutdown()
                server.server_close()

        coordinator = ShardCoordinator(
            urls, "demo", rows_per_block=10, on_block=_kill_victim
        )
        sharded = tmp_path / "sharded.csv"
        n_rows, _ = coordinator.rank_csv(csv_path, sharded, label_column="id")
        assert n_rows == N_ROWS
        # Exactly once: every row present, none doubled, bytes equal.
        assert filecmp.cmp(single, sharded, shallow=False)
        stats = coordinator.stats()
        assert victim in stats["dead_shards"]
        assert stats["retried_blocks"] >= 1
        assert victim not in stats["live_shards"]

    def test_every_shard_dead_raises(self, workload, tmp_path):
        _, model_path, csv_path, *_ = workload
        server, thread, url = _start_server(model_path)
        coordinator = ShardCoordinator([url], "demo", rows_per_block=50)
        server.shutdown()
        server.server_close()
        thread.join(timeout=5)
        with pytest.raises(ShardJobError):
            coordinator.rank_csv(csv_path, tmp_path / "out.csv",
                                 label_column="id")

    def test_definite_refusal_is_not_retried(self, workload, tmp_path):
        # An unknown model name is a 404 from a healthy shard — a
        # definite refusal that must fail the job, not reroute forever.
        _, model_path, csv_path, *_ = workload
        server, thread, url = _start_server(model_path)
        try:
            coordinator = ShardCoordinator([url], "nope")
            with pytest.raises(ShardJobError, match="refused model"):
                coordinator.rank_csv(csv_path, tmp_path / "out.csv",
                                     label_column="id")
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_configuration_errors(self):
        with pytest.raises(ConfigurationError):
            ShardCoordinator([], "demo")
        with pytest.raises(ConfigurationError, match="duplicate"):
            ShardCoordinator(["http://a:1", "http://a:1/"], "demo")
        with pytest.raises(ConfigurationError):
            ShardCoordinator(["http://a:1"], "  ")
        with pytest.raises(ConfigurationError):
            ShardCoordinator(["http://a:1"], "demo", rows_per_block=0)
        with pytest.raises(ConfigurationError):
            ShardCoordinator(["http://a:1"], "demo", timeout=0)
        with pytest.raises(ConfigurationError):
            ShardCoordinator(["http://a:1"], "demo").rank_csv(
                "x.csv", head=-1
            )


class TestCliShard:
    def test_topology_flags_are_mutually_exclusive(self, capsys):
        from repro.cli import main

        for argv in (
            ["shard", "x.csv", "--shard", "http://h:1",
             "--local-workers", "2", "--model-path", "m.json"],
            ["shard", "x.csv"],  # neither topology given
        ):
            assert main(argv) == 2
            err = capsys.readouterr().err
            assert "either --shard URLs or --local-workers" in err

    def test_score_mode_requires_output(self, capsys):
        from repro.cli import main

        code = main(
            ["shard", "x.csv", "--shard", "http://h:1", "--mode", "score"]
        )
        assert code == 2
        assert "--mode score requires --output" in capsys.readouterr().err

    def test_epilog_points_at_the_ops_guide(self, capsys):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["shard", "--help"])
        out = capsys.readouterr().out
        assert "docs/ops.md" in out
        assert "Sharded scoring and rank" in out

    def test_cli_end_to_end_over_in_process_shards(
        self, workload, fleet, tmp_path, capsys
    ):
        from repro.cli import main

        model, _, csv_path, *_ = workload
        single = tmp_path / "single.csv"
        stream_rank_csv(model, csv_path, single, label_column="id")
        output = tmp_path / "sharded.csv"
        metrics_json = tmp_path / "rollup.json"
        urls, _ = fleet
        argv = ["shard", str(csv_path), "--model-name", "demo",
                "--mode", "rank", "--rows-per-block", "50",
                "--label-column", "id", "--output", str(output),
                "--metrics-json", str(metrics_json)]
        for url in urls:
            argv += ["--shard", url]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"ranked {N_ROWS} objects across 3 shard(s)" in out
        assert "blocks: 6 (rerouted 0); dead shards: none" in out
        assert filecmp.cmp(single, output, shallow=False)
        rollup = json.loads(metrics_json.read_text())
        assert rollup["shards"]["count"] == 3
        assert (
            rollup["endpoints"]["POST /v1/models/{name}/rank-shard"][
                "requests"
            ]
            == 6
        )


class TestMetricsRollup:
    def _payload(self, requests, buckets, sum_seconds):
        return {
            "requests_total": requests,
            "rows_scored_total": requests * 10,
            "errors_total": 1,
            "requests_shed_total": 0,
            "endpoints": {
                "POST /v1/models/{name}/rank-shard": {
                    "requests": requests,
                    "by_status": {"200": requests - 1, "503": 1},
                }
            },
            "latency_histograms": {
                "format_version": 1,
                "endpoints": {
                    "POST /v1/models/{name}/rank-shard": {
                        "buckets": buckets,
                        "sum_seconds": sum_seconds,
                    }
                },
            },
        }

    def test_buckets_sum_and_percentiles_recompute_exactly(self):
        one = [0] * N_LATENCY_BUCKETS
        two = [0] * N_LATENCY_BUCKETS
        one[4], one[10] = 30, 2
        two[4], two[20] = 10, 8
        merged = rollup_metrics(
            [self._payload(32, one, 1.5), self._payload(18, two, 2.25)],
            urls=["http://a:1", "http://b:2"],
        )
        assert merged["requests_total"] == 50
        assert merged["rows_scored_total"] == 500
        assert merged["errors_total"] == 2
        endpoint = merged["endpoints"]["POST /v1/models/{name}/rank-shard"]
        assert endpoint["requests"] == 50
        assert endpoint["by_status"] == {"200": 48, "503": 2}
        cells = merged["latency_histograms"]["endpoints"][
            "POST /v1/models/{name}/rank-shard"
        ]
        expected = [a + b for a, b in zip(one, two)]
        assert cells["buckets"] == expected
        assert cells["sum_seconds"] == pytest.approx(3.75)
        # The merged percentile is the percentile of the merged
        # histogram — not any average of per-shard percentiles.
        for q in (50, 90, 99):
            assert endpoint["latency_ms"][f"p{q}"] == pytest.approx(
                round(percentile_from_buckets(expected, q) * 1e3, 3)
            )
        assert merged["shards"] == {
            "count": 2,
            "with_histograms": 2,
            "requests": [32, 18],
            "urls": ["http://a:1", "http://b:2"],
        }

    def test_missing_histograms_still_contribute_counters(self):
        bare = {"requests_total": 7}
        buckets = [0] * N_LATENCY_BUCKETS
        buckets[3] = 4
        merged = rollup_metrics([bare, self._payload(4, buckets, 0.5)])
        assert merged["requests_total"] == 11
        assert merged["shards"]["with_histograms"] == 1

    def test_foreign_bucket_layouts_are_skipped_not_summed(self):
        good = [0] * N_LATENCY_BUCKETS
        good[5] = 3
        foreign = self._payload(2, [1, 2, 3], 9.0)  # wrong bucket count
        merged = rollup_metrics([self._payload(3, good, 0.25), foreign])
        cells = merged["latency_histograms"]["endpoints"][
            "POST /v1/models/{name}/rank-shard"
        ]
        assert cells["buckets"] == good
        assert cells["sum_seconds"] == pytest.approx(0.25)

    def test_rollup_over_a_live_fleet_is_exact(self, workload, fleet, tmp_path):
        _, _, csv_path, *_ = workload
        urls, _ = fleet
        coordinator = ShardCoordinator(urls, "demo", rows_per_block=30)
        coordinator.rank_csv(csv_path, tmp_path / "out.csv",
                             label_column="id")
        payloads = [fetch_shard_metrics(url) for url in urls]
        merged = rollup_metrics(payloads, urls=urls)
        assert merged["requests_total"] == sum(
            payload["requests_total"] for payload in payloads
        )
        endpoint = merged["endpoints"]["POST /v1/models/{name}/rank-shard"]
        assert endpoint["requests"] == 10  # 300 rows / 30, no retries
        cells = merged["latency_histograms"]["endpoints"][
            "POST /v1/models/{name}/rank-shard"
        ]
        assert sum(cells["buckets"]) == 10
        assert "latency_ms" in endpoint
