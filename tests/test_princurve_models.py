"""Tests for the three principal-curve comparator models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
)
from repro.data.normalize import normalize_unit_cube
from repro.data.synthetic import sample_crescent, sample_ellipse
from repro.evaluation.metrics import spearman_rho
from repro.princurve import (
    ElasticMapCurve,
    HastieStuetzleCurve,
    PolygonalLineCurve,
    project_to_polyline,
)

ALL_MODELS = [
    lambda: HastieStuetzleCurve(),
    lambda: PolygonalLineCurve(),
    lambda: ElasticMapCurve(),
]


class TestPolylineProjection:
    def test_projection_onto_segment(self):
        vertices = np.array([[0.0, 0.0], [1.0, 0.0]])
        X = np.array([[0.5, 1.0], [-1.0, 0.0], [2.0, 0.5]])
        s, pts = project_to_polyline(X, vertices)
        np.testing.assert_allclose(pts[0], [0.5, 0.0])
        np.testing.assert_allclose(pts[1], [0.0, 0.0])  # clamped to start
        np.testing.assert_allclose(pts[2], [1.0, 0.0])  # clamped to end
        np.testing.assert_allclose(s, [0.5, 0.0, 1.0])

    def test_arclength_parametrisation(self):
        # Two segments of different lengths: s must be proportional to
        # the distance travelled, not to the segment index.
        vertices = np.array([[0.0, 0.0], [3.0, 0.0], [3.0, 1.0]])
        X = np.array([[3.0, 0.0]])
        s, _ = project_to_polyline(X, vertices)
        assert s[0] == pytest.approx(0.75)  # 3 of total length 4

    def test_single_vertex_raises(self):
        with pytest.raises(DataValidationError):
            project_to_polyline(np.ones((2, 2)), np.ones((1, 2)))


@pytest.mark.parametrize("make_model", ALL_MODELS)
class TestCommonBehaviour:
    def test_fit_score_shapes(self, make_model, crescent_unit):
        model = make_model().fit(crescent_unit)
        s = model.score_samples(crescent_unit)
        assert s.shape == (crescent_unit.shape[0],)
        pts = model.project_points(crescent_unit)
        assert pts.shape == crescent_unit.shape

    def test_unfitted_raises(self, make_model, crescent_unit):
        with pytest.raises(NotFittedError):
            make_model().score_samples(crescent_unit)

    def test_explained_variance_beats_pca_on_crescent(self, make_model):
        cloud = sample_crescent(n=200, seed=3, width=0.02)
        X = normalize_unit_cube(cloud.X)
        model = make_model().fit(X)
        # A curved skeleton must explain a crescent much better than
        # a straight line.
        centred = X - X.mean(axis=0)
        _u, sv, _vt = np.linalg.svd(centred, full_matrices=False)
        pca_ev = sv[0] ** 2 / np.sum(sv**2)
        assert model.explained_variance(X) > pca_ev + 0.02

    def test_recovers_latent_order_when_oriented(self, make_model):
        cloud = sample_crescent(n=200, seed=4, width=0.02)
        X = normalize_unit_cube(cloud.X)
        model = make_model()
        model.orient_alpha = np.array([1.0, 1.0])
        model.fit(X)
        rho = spearman_rho(model.score_samples(X), cloud.latent)
        assert rho > 0.95

    def test_reconstruction_error_nonnegative(self, make_model, crescent_unit):
        model = make_model().fit(crescent_unit)
        assert model.reconstruction_error(crescent_unit) >= 0.0

    def test_too_few_points_raise(self, make_model):
        with pytest.raises(DataValidationError):
            make_model().fit(np.ones((1, 2)))


class TestHastieStuetzle:
    def test_straight_data_gives_straight_curve(self):
        cloud = sample_ellipse(n=200, eccentricity=0.995, seed=5, noise=0.0)
        X = normalize_unit_cube(cloud.X)
        model = HastieStuetzleCurve(bandwidth=0.3).fit(X)
        # All fitted nodes must lie near the diagonal line y = x.
        nodes = model.nodes_
        assert nodes is not None
        deviation = np.abs(nodes[:, 1] - nodes[:, 0]).max()
        assert deviation < 0.1

    def test_smoother_selection(self, crescent_unit):
        for smoother in ("kernel", "local_linear", "running_mean"):
            model = HastieStuetzleCurve(smoother=smoother, max_iter=5)
            model.fit(crescent_unit)
            assert model.n_iterations_ >= 1

    def test_unknown_smoother_raises(self):
        with pytest.raises(ConfigurationError):
            HastieStuetzleCurve(smoother="spline")

    def test_parameter_size_is_unknown(self):
        assert HastieStuetzleCurve().parameter_size is None


class TestPolygonalLine:
    def test_vertex_count_honoured(self, crescent_unit):
        model = PolygonalLineCurve(n_vertices=6).fit(crescent_unit)
        assert model.vertices_ is not None
        assert model.vertices_.shape == (6, 2)

    def test_more_vertices_fit_better(self):
        cloud = sample_crescent(n=250, seed=6, width=0.02)
        X = normalize_unit_cube(cloud.X)
        coarse = PolygonalLineCurve(n_vertices=2).fit(X)
        fine = PolygonalLineCurve(n_vertices=10).fit(X)
        assert fine.reconstruction_error(X) < coarse.reconstruction_error(X)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            PolygonalLineCurve(n_vertices=1)
        with pytest.raises(ConfigurationError):
            PolygonalLineCurve(curvature_penalty=-1.0)

    def test_parameter_size_after_fit(self, crescent_unit):
        model = PolygonalLineCurve(n_vertices=5)
        assert model.parameter_size is None  # unknown before fitting
        model.fit(crescent_unit)
        assert model.parameter_size == 10  # 5 vertices x 2 dims


class TestElasticMap:
    def test_energy_decreases(self, crescent_unit):
        model = ElasticMapCurve(n_nodes=20).fit(crescent_unit)
        energies = np.asarray(model.energy_trace_)
        assert energies.size >= 2
        assert np.all(np.diff(energies) <= 1e-9)

    def test_centered_scores_have_zero_mean(self, crescent_unit):
        model = ElasticMapCurve(centered_scores=True).fit(crescent_unit)
        s = model.score_samples(crescent_unit)
        assert abs(float(s.mean())) < 1e-9

    def test_uncentered_scores_in_unit_interval(self, crescent_unit):
        model = ElasticMapCurve(centered_scores=False).fit(crescent_unit)
        s = model.score_samples(crescent_unit)
        assert s.min() >= 0.0 and s.max() <= 1.0

    def test_stiff_map_straightens(self):
        cloud = sample_crescent(n=200, seed=7, width=0.02)
        X = normalize_unit_cube(cloud.X)
        soft = ElasticMapCurve(stretch=0.001, bend=0.01).fit(X)
        stiff = ElasticMapCurve(stretch=5.0, bend=50.0).fit(X)
        # A stiff chain cannot bend into the crescent: worse fit.
        assert stiff.explained_variance(X) < soft.explained_variance(X)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ElasticMapCurve(n_nodes=2)
        with pytest.raises(ConfigurationError):
            ElasticMapCurve(stretch=-0.1)

    def test_parameter_size_is_unknown(self):
        assert ElasticMapCurve().parameter_size is None
