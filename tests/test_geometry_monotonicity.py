"""Tests for Proposition 1 constraint checking and monotonicity scans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import MonotonicityError
from repro.geometry import (
    BezierCurve,
    check_rpc_constraints,
    clip_to_interior,
    cubic_from_interior_points,
    empirical_monotonicity_violations,
    is_coordinatewise_monotone,
    pinned_endpoints,
)


@pytest.fixture
def valid_rpc_points():
    """Constraint-satisfying control points for alpha = (1, -1)."""
    alpha = np.array([1.0, -1.0])
    p0, p3 = pinned_endpoints(alpha)
    p1 = np.array([0.2, 0.7])
    p2 = np.array([0.7, 0.2])
    return np.column_stack([p0, p1, p2, p3]), alpha


class TestConstraintCheck:
    def test_valid_points_pass(self, valid_rpc_points):
        P, alpha = valid_rpc_points
        check_rpc_constraints(P, alpha)  # should not raise

    def test_wrong_start_raises(self, valid_rpc_points):
        P, alpha = valid_rpc_points
        P = P.copy()
        P[:, 0] = [0.1, 0.9]
        with pytest.raises(MonotonicityError):
            check_rpc_constraints(P, alpha)

    def test_wrong_end_raises(self, valid_rpc_points):
        P, alpha = valid_rpc_points
        P = P.copy()
        P[:, -1] = [0.9, 0.1]
        with pytest.raises(MonotonicityError):
            check_rpc_constraints(P, alpha)

    def test_interior_on_boundary_raises(self, valid_rpc_points):
        P, alpha = valid_rpc_points
        P = P.copy()
        P[0, 1] = 0.0  # on the cube boundary, not strictly inside
        with pytest.raises(MonotonicityError):
            check_rpc_constraints(P, alpha)

    def test_interior_outside_raises(self, valid_rpc_points):
        P, alpha = valid_rpc_points
        P = P.copy()
        P[1, 2] = 1.4
        with pytest.raises(MonotonicityError):
            check_rpc_constraints(P, alpha)


class TestClipToInterior:
    def test_clips_and_pins(self):
        alpha = np.array([1.0, -1.0])
        P = np.array(
            [
                [0.5, -0.3, 1.8, 0.2],
                [0.5, 0.4, 0.6, 0.9],
            ]
        )
        clipped = clip_to_interior(P, alpha, margin=1e-3)
        check_rpc_constraints(clipped, alpha)  # valid after clipping

    def test_feasible_points_unchanged_in_interior(self, valid_rpc_points):
        P, alpha = valid_rpc_points
        clipped = clip_to_interior(P, alpha)
        np.testing.assert_allclose(clipped[:, 1:-1], P[:, 1:-1])

    def test_original_not_mutated(self):
        alpha = np.array([1.0, 1.0])
        P = np.full((2, 4), 2.0)
        P_copy = P.copy()
        clip_to_interior(P, alpha)
        np.testing.assert_array_equal(P, P_copy)


class TestCertificate:
    def test_constrained_cubic_certified(self):
        curve = cubic_from_interior_points(
            [1, 1], p1=[0.3, 0.2], p2=[0.6, 0.7]
        )
        # Forward differences all positive -> certificate holds.
        assert is_coordinatewise_monotone(curve, [1, 1])

    def test_s_shape_not_certified_but_monotone(self):
        # Interior points overshooting in y make some forward
        # differences negative even though the curve itself is
        # monotone — the certificate is only sufficient.
        curve = cubic_from_interior_points(
            [1, 1], p1=[0.1, 0.8], p2=[0.9, 0.2]
        )
        certified = is_coordinatewise_monotone(curve, [1, 1])
        report = empirical_monotonicity_violations(curve, [1, 1])
        assert report.is_monotone
        assert not certified  # diffs: y goes 0.8 -> 0.2 between p1, p2

    def test_nonmonotone_curve_flagged(self):
        # A hook: x backtracks.
        P = np.array(
            [
                [0.0, 1.2, -0.4, 1.0],
                [0.0, 0.2, 0.8, 1.0],
            ]
        )
        curve = BezierCurve(P)
        report = empirical_monotonicity_violations(curve, [1, 1])
        assert not report.is_monotone
        assert report.n_violations > 0
        assert report.worst_step < 0
        assert report.violating_parameters.size == report.n_violations


class TestPropositionOne:
    """Randomised check of Proposition 1 over many feasible curves."""

    def test_random_feasible_cubics_are_monotone(self, rng):
        for _ in range(50):
            d = int(rng.integers(2, 6))
            alpha = rng.choice([-1.0, 1.0], size=d)
            p1 = rng.uniform(0.01, 0.99, size=d)
            p2 = rng.uniform(0.01, 0.99, size=d)
            curve = cubic_from_interior_points(alpha, p1, p2)
            report = empirical_monotonicity_violations(
                curve, alpha, n_samples=512
            )
            assert report.is_monotone, (
                f"Proposition 1 violated for alpha={alpha}, p1={p1}, p2={p2}"
            )
