"""Property-style agreement suite for the three Eq.(20) solvers.

The projection step admits three interchangeable solvers — ``"gss"``
(grid + Golden Section Search), ``"roots"`` (batched companion-matrix
stationary-point enumeration) and ``"newton"`` (grid + safeguarded
Newton).  They approach the same quintic optimisation from entirely
different directions, so cross-checking them over a family of random
monotone curves is a strong correctness oracle for all three at once:
a bracketing bug, a root-filtering bug and a derivative-sign bug would
each break a different pair.

For every seeded case we assert that all solvers return scores in
``[0, 1]`` and that per point either the scores agree tightly or the
squared distances agree essentially exactly — the latter covers
genuine ties, where two basins of the distance function are equally
deep and solvers may legitimately pick different argmins.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.projection import project_points
from repro.geometry.bezier import BezierCurve
from repro.geometry.cubic import cubic_from_interior_points, pinned_endpoints

N_RANDOM_CASES = 50
METHODS = ("gss", "roots", "newton")

S_ATOL = 1e-6
DIST_ATOL = 1e-10


def _random_case(seed: int):
    """A random monotone RPC-style cubic plus a noisy data batch."""
    rng = np.random.default_rng(seed)
    d = int(rng.integers(2, 5))
    alpha = rng.choice([-1.0, 1.0], size=d)
    # Interior control points strictly inside the cube, sorted along
    # the worst-to-best diagonal so the curve is RPC-plausible.
    p0, p3 = pinned_endpoints(alpha)
    direction = (p3 - p0) / np.linalg.norm(p3 - p0)
    interior = rng.uniform(0.05, 0.95, size=(2, d))
    interior = interior[np.argsort(interior @ direction)]
    curve = cubic_from_interior_points(alpha, p1=interior[0], p2=interior[1])

    # Data: points near the curve plus a few far-off stragglers that
    # exercise endpoint projections and basin selection.
    s_true = rng.uniform(size=40)
    X = curve.evaluate(s_true).T + rng.normal(0.0, 0.05, size=(40, d))
    X = np.vstack([X, rng.uniform(-0.3, 1.3, size=(8, d))])
    return curve, X


def _assert_agreement(curve: BezierCurve, X: np.ndarray, context: str):
    scores = {m: project_points(curve, X, method=m) for m in METHODS}
    dists = {}
    for m, s in scores.items():
        assert np.all((s >= 0.0) & (s <= 1.0)), f"{context}: {m} out of [0,1]"
        dists[m] = np.sum((X - curve.evaluate(s).T) ** 2, axis=1)

    for m in ("roots", "newton"):
        s_diff = np.abs(scores[m] - scores["gss"])
        d_diff = np.abs(dists[m] - dists["gss"])
        disagrees = (s_diff > S_ATOL) & (d_diff > DIST_ATOL)
        assert not np.any(disagrees), (
            f"{context}: gss vs {m} disagree on {int(disagrees.sum())} "
            f"points; worst s-gap {s_diff[disagrees].max():.3e}, "
            f"worst distance-gap {d_diff[disagrees].max():.3e}"
        )


@pytest.mark.parametrize("seed", range(N_RANDOM_CASES))
def test_solvers_agree_on_random_monotone_curves(seed):
    curve, X = _random_case(seed)
    _assert_agreement(curve, X, context=f"seed {seed}")


class TestEndpointPinnedBatches:
    """Points beyond the reference corners must project to s = 0 / 1."""

    def test_far_corners_pin_to_endpoints(self):
        alpha = np.array([1.0, 1.0, -1.0])
        curve = cubic_from_interior_points(
            alpha,
            p1=np.array([0.2, 0.3, 0.7]),
            p2=np.array([0.8, 0.7, 0.2]),
        )
        p0, p3 = pinned_endpoints(alpha)
        beyond_worst = p0 + (p0 - p3) * 0.5  # past the worst corner
        beyond_best = p3 + (p3 - p0) * 0.5
        X = np.vstack([beyond_worst, beyond_best])
        for method in METHODS:
            s = project_points(curve, X, method=method)
            assert s[0] == pytest.approx(0.0, abs=1e-9), method
            assert s[1] == pytest.approx(1.0, abs=1e-9), method

    def test_exact_endpoint_data(self):
        alpha = np.array([1.0, -1.0])
        curve = cubic_from_interior_points(
            alpha, p1=np.array([0.3, 0.6]), p2=np.array([0.7, 0.3])
        )
        p0, p3 = pinned_endpoints(alpha)
        X = np.vstack([p0, p3])
        _assert_agreement(curve, X, context="exact endpoints")


class TestNearDegenerateCurves:
    """Collinear control points collapse the quintic's leading terms."""

    def test_exactly_collinear_control_points(self):
        # Interior points exactly on the diagonal: the cubic is the
        # straight segment and the stationary polynomial degenerates.
        for d in (2, 4):
            alpha = np.ones(d)
            curve = cubic_from_interior_points(
                alpha, p1=np.full(d, 1.0 / 3.0), p2=np.full(d, 2.0 / 3.0)
            )
            X = np.random.default_rng(d).uniform(-0.1, 1.1, size=(30, d))
            _assert_agreement(curve, X, context=f"collinear d={d}")

    def test_nearly_collinear_control_points(self):
        d = 3
        alpha = np.array([1.0, 1.0, 1.0])
        rng = np.random.default_rng(99)
        for eps in (1e-6, 1e-9, 1e-12):
            curve = cubic_from_interior_points(
                alpha,
                p1=np.full(d, 1.0 / 3.0) + eps,
                p2=np.full(d, 2.0 / 3.0) - eps,
            )
            X = rng.uniform(size=(25, d))
            _assert_agreement(curve, X, context=f"eps={eps}")

    def test_coincident_interior_points(self):
        alpha = np.array([1.0, 1.0])
        curve = cubic_from_interior_points(
            alpha, p1=np.array([0.5, 0.5]), p2=np.array([0.5, 0.5])
        )
        X = np.random.default_rng(5).uniform(size=(20, 2))
        _assert_agreement(curve, X, context="coincident interior")


class TestWarmStartAgreement:
    """Warm-started projection agrees with its own cold projection."""

    @pytest.mark.parametrize("seed", range(10))
    def test_warm_matches_cold(self, seed):
        curve, X = _random_case(seed)
        for method in ("gss", "newton"):
            cold = project_points(curve, X, method=method)
            warm = project_points(curve, X, method=method, s0=cold)
            d_cold = np.sum((X - curve.evaluate(cold).T) ** 2, axis=1)
            d_warm = np.sum((X - curve.evaluate(warm).T) ** 2, axis=1)
            close = np.abs(warm - cold) <= S_ATOL
            tied = np.abs(d_warm - d_cold) <= DIST_ATOL
            assert np.all(close | tied), f"seed {seed} method {method}"

    def test_bad_guess_bounded_by_safeguard(self):
        # A deliberately wrong warm start (all points claimed at s=0.5)
        # cannot end up farther from the curve than the best safeguard
        # grid sample — that is the contract that makes warm starts
        # safe inside the fit loop, where guesses are additionally
        # gated on small curve movement.
        from repro.core.projection import _SAFEGUARD_GRID

        curve, X = _random_case(3)
        warm = project_points(
            curve, X, method="gss", s0=np.full(X.shape[0], 0.5)
        )
        d_warm = np.sum((X - curve.evaluate(warm).T) ** 2, axis=1)
        sparse = np.linspace(0.0, 1.0, _SAFEGUARD_GRID)
        pts = curve.evaluate(sparse)  # (d, g)
        d_sparse = np.min(
            np.sum((X[:, :, np.newaxis] - pts[np.newaxis]) ** 2, axis=1),
            axis=1,
        )
        assert np.all(d_warm <= d_sparse + 1e-9)
