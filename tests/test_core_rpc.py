"""Tests for the public RankingPrincipalCurve estimator."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
)
from repro.core.rpc import RankingPrincipalCurve
from repro.data.synthetic import sample_monotone_cloud
from repro.evaluation.metrics import spearman_rho


@pytest.fixture(scope="module")
def fitted_model_and_cloud():
    """One shared fit for the read-only assertions (module scope)."""
    cloud = sample_monotone_cloud(
        alpha=np.array([1.0, 1.0, -1.0]), n=150, seed=11, noise=0.02
    )
    model = RankingPrincipalCurve(
        alpha=[1, 1, -1], random_state=0, n_restarts=2
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    return model, cloud


class TestConfiguration:
    def test_bad_alpha_raises(self):
        with pytest.raises(ConfigurationError):
            RankingPrincipalCurve(alpha=[1, 0])

    def test_bad_degree_raises(self):
        with pytest.raises(ConfigurationError):
            RankingPrincipalCurve(alpha=[1, 1], degree=0)

    def test_bad_restarts_raises(self):
        with pytest.raises(ConfigurationError):
            RankingPrincipalCurve(alpha=[1, 1], n_restarts=0)

    def test_capability_declarations(self):
        model = RankingPrincipalCurve(alpha=[1, 1, -1, -1])
        assert model.has_linear_capacity
        assert model.has_nonlinear_capacity
        assert model.parameter_size == 16  # 4 x 4 control points


class TestNotFittedGuards:
    def test_all_accessors_raise(self):
        model = RankingPrincipalCurve(alpha=[1, 1])
        X = np.random.default_rng(0).uniform(size=(5, 2))
        with pytest.raises(NotFittedError):
            model.score_samples(X)
        with pytest.raises(NotFittedError):
            _ = model.curve_
        with pytest.raises(NotFittedError):
            _ = model.control_points_
        with pytest.raises(NotFittedError):
            _ = model.training_scores_
        with pytest.raises(NotFittedError):
            model.explained_variance(X)
        with pytest.raises(NotFittedError):
            model.reconstruct(np.array([0.5]))


class TestFittedBehaviour:
    def test_scores_in_unit_interval(self, fitted_model_and_cloud):
        model, cloud = fitted_model_and_cloud
        s = model.score_samples(cloud.X)
        assert np.all((s >= 0.0) & (s <= 1.0))

    def test_recovers_latent_order(self, fitted_model_and_cloud):
        model, cloud = fitted_model_and_cloud
        s = model.score_samples(cloud.X)
        assert spearman_rho(s, cloud.latent) > 0.97

    def test_constraints_satisfied(self, fitted_model_and_cloud):
        model, _ = fitted_model_and_cloud
        model.check_constraints()  # must not raise

    def test_explained_variance_high(self, fitted_model_and_cloud):
        model, cloud = fitted_model_and_cloud
        assert model.explained_variance(cloud.X) > 0.9

    def test_rank_returns_labelled_list(self, fitted_model_and_cloud):
        model, cloud = fitted_model_and_cloud
        labels = [f"obj{i}" for i in range(cloud.X.shape[0])]
        ranking = model.rank(cloud.X, labels=labels)
        assert len(ranking.top(3)) == 3
        assert ranking.positions.min() == 1
        assert ranking.positions.max() == cloud.X.shape[0]

    def test_reconstruct_inverts_scoring(self, fitted_model_and_cloud):
        model, _ = fitted_model_and_cloud
        s = np.linspace(0.1, 0.9, 7)
        points = model.reconstruct(s)
        s_back = model.score_samples(points)
        np.testing.assert_allclose(s_back, s, atol=1e-3)

    def test_control_points_original_units(self, fitted_model_and_cloud):
        model, cloud = fitted_model_and_cloud
        P_orig = model.control_points_original_
        assert P_orig.shape == (3, 4)
        # End points in original units span the data's min/max box.
        lo = cloud.X.min(axis=0)
        hi = cloud.X.max(axis=0)
        assert np.all(P_orig[:, 0] >= lo - 1e-9)
        assert np.all(P_orig[:, 0] <= hi + 1e-9)

    def test_training_scores_match_rescoring(self, fitted_model_and_cloud):
        model, cloud = fitted_model_and_cloud
        np.testing.assert_allclose(
            model.training_scores_,
            model.score_samples(cloud.X),
            atol=1e-6,
        )

    def test_order_property(self, fitted_model_and_cloud):
        model, _ = fitted_model_and_cloud
        np.testing.assert_array_equal(model.order_.alpha, [1.0, 1.0, -1.0])


class TestMonotonicityGuarantee:
    def test_dominated_points_score_lower(self, fitted_model_and_cloud):
        model, cloud = fitted_model_and_cloud
        order = model.order_
        s = model.score_samples(cloud.X)
        strict = order.strict_dominance_matrix(cloud.X)
        rows, cols = np.nonzero(strict)
        # For every strictly dominated pair, the dominating point must
        # score at least as high (scores can tie only at the clamped
        # boundary s = 0 or s = 1).
        bad = 0
        for i, j in zip(rows, cols):
            if s[j] - s[i] < -1e-9:
                bad += 1
        assert bad == 0


class TestReproducibility:
    def test_same_seed_same_result(self):
        cloud = sample_monotone_cloud(
            alpha=np.array([1.0, 1.0]), n=60, seed=2, noise=0.02
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            a = RankingPrincipalCurve(
                alpha=[1, 1], random_state=42, n_restarts=2
            ).fit(cloud.X)
            b = RankingPrincipalCurve(
                alpha=[1, 1], random_state=42, n_restarts=2
            ).fit(cloud.X)
        np.testing.assert_array_equal(
            a.control_points_, b.control_points_
        )

    def test_generator_accepted_as_seed(self):
        cloud = sample_monotone_cloud(
            alpha=np.array([1.0, 1.0]), n=60, seed=2, noise=0.02
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = RankingPrincipalCurve(
                alpha=[1, 1],
                random_state=np.random.default_rng(3),
                n_restarts=1,
            ).fit(cloud.X)
        assert model.training_scores_.shape == (60,)


class TestValidation:
    def test_wrong_width_raises(self):
        model = RankingPrincipalCurve(alpha=[1, 1])
        with pytest.raises(DataValidationError):
            model.fit(np.ones((10, 3)))

    def test_nan_raises(self):
        model = RankingPrincipalCurve(alpha=[1, 1])
        X = np.ones((10, 2))
        X[0, 0] = np.nan
        with pytest.raises(DataValidationError):
            model.fit(X)

    def test_1d_raises(self):
        model = RankingPrincipalCurve(alpha=[1, 1])
        with pytest.raises(DataValidationError):
            model.fit(np.ones(10))


class TestScaleTranslationInvariance:
    """Meta-rule 1 holds end-to-end for the full pipeline."""

    def test_ranking_survives_affine_transform(self):
        cloud = sample_monotone_cloud(
            alpha=np.array([1.0, -1.0]), n=80, seed=9, noise=0.02
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            base = RankingPrincipalCurve(
                alpha=[1, -1], random_state=1, n_restarts=1, init="linear"
            ).fit(cloud.X)
            scales = np.array([12.0, 0.05])
            shifts = np.array([-40.0, 7.0])
            transformed = cloud.X * scales + shifts
            moved = RankingPrincipalCurve(
                alpha=[1, -1], random_state=1, n_restarts=1, init="linear"
            ).fit(transformed)
        s_base = base.score_samples(cloud.X)
        s_moved = moved.score_samples(transformed)
        # Same ranking list (scores may differ in the last decimals).
        np.testing.assert_array_equal(
            np.argsort(s_base), np.argsort(s_moved)
        )
