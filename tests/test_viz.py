"""Tests for ASCII rendering and the Fig. 7/8 projection panels."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.geometry import cubic_from_interior_points
from repro.viz import (
    ascii_bars,
    ascii_scatter,
    pairwise_panels,
    render_panels,
)


class TestAsciiScatter:
    def test_basic_grid(self):
        points = np.array([[0.0, 0.0], [1.0, 1.0]])
        out = ascii_scatter(points, width=10, height=5)
        lines = out.splitlines()
        assert len(lines) == 7  # border + 5 rows + border
        assert lines[0].startswith("+")
        # Corner points must appear: bottom-left and top-right.
        assert lines[-2][1] == "."  # bottom-left interior cell
        assert lines[1][10] == "."

    def test_curve_overlay_wins(self):
        points = np.array([[0.5, 0.5]])
        curve = np.array([[0.5, 0.5]])
        out = ascii_scatter(points, curve=curve, width=9, height=5)
        assert "#" in out
        assert "." not in out.replace("...", "")  # the curve overwrote it

    def test_title_included(self):
        out = ascii_scatter(np.array([[0.0, 0.0]]), title="hello")
        assert out.splitlines()[0] == "hello"

    def test_degenerate_extent_safe(self):
        # All points identical: no division by zero.
        out = ascii_scatter(np.array([[2.0, 2.0], [2.0, 2.0]]))
        assert "." in out

    def test_wrong_shape_raises(self):
        with pytest.raises(DataValidationError):
            ascii_scatter(np.ones((3, 3)))

    def test_tiny_grid_raises(self):
        with pytest.raises(ConfigurationError):
            ascii_scatter(np.ones((2, 2)), width=2, height=2)


class TestAsciiBars:
    def test_bars_scale_with_values(self):
        out = ascii_bars(["a", "b"], np.array([1.0, 2.0]), width=10)
        lines = out.splitlines()
        assert lines[0].count("#") == 5
        assert lines[1].count("#") == 10

    def test_label_mismatch_raises(self):
        with pytest.raises(DataValidationError):
            ascii_bars(["a"], np.array([1.0, 2.0]))

    def test_zero_values_no_crash(self):
        out = ascii_bars(["a"], np.array([0.0]))
        assert "0.0000" in out


class TestPairwisePanels:
    @pytest.fixture
    def curve3d(self):
        return cubic_from_interior_points(
            [1, 1, -1],
            p1=[0.2, 0.3, 0.7],
            p2=[0.7, 0.8, 0.3],
        )

    def test_panel_count(self, curve3d, rng):
        X = rng.uniform(size=(30, 3))
        panels = pairwise_panels(X, curve3d)
        assert len(panels) == 3  # C(3, 2)

    def test_panel_contents(self, curve3d, rng):
        X = rng.uniform(size=(30, 3))
        panels = pairwise_panels(
            X, curve3d, attribute_names=["GDP", "LEB", "IMR"]
        )
        first = panels[0]
        assert first.names == ("GDP", "LEB")
        assert first.data.shape == (30, 2)
        assert first.curve.shape == (200, 2)

    def test_projected_curves_monotone_per_alpha(self, curve3d, rng):
        X = rng.uniform(size=(10, 3))
        alpha = np.array([1.0, 1.0, -1.0])
        for panel in pairwise_panels(X, curve3d):
            assert panel.curve_is_monotone(alpha[panel.i], alpha[panel.j])

    def test_wrong_width_raises(self, curve3d, rng):
        with pytest.raises(DataValidationError):
            pairwise_panels(rng.uniform(size=(5, 2)), curve3d)

    def test_name_count_mismatch_raises(self, curve3d, rng):
        with pytest.raises(DataValidationError):
            pairwise_panels(
                rng.uniform(size=(5, 3)), curve3d, attribute_names=["a"]
            )

    def test_render_panels_text(self, curve3d, rng):
        X = rng.uniform(size=(15, 3))
        text = render_panels(pairwise_panels(X, curve3d))
        assert text.count("vs") == 3
        assert "#" in text
