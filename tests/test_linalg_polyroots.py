"""Tests for polynomial root finding and interval minimisation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.linalg import (
    minimize_polynomial_on_interval,
    newton_polish,
    polynomial_derivative,
    polyval_ascending,
    real_roots,
    real_roots_in_interval,
)


class TestPolyvalAscending:
    def test_constant(self):
        out = polyval_ascending(np.array([5.0]), np.array([0.0, 1.0, 2.0]))
        np.testing.assert_array_equal(out, [5.0, 5.0, 5.0])

    def test_cubic(self):
        # p(s) = 1 + 2s + 3s^2 + 4s^3; p(2) = 1 + 4 + 12 + 32 = 49.
        coeffs = np.array([1.0, 2.0, 3.0, 4.0])
        assert polyval_ascending(coeffs, np.array([2.0]))[0] == pytest.approx(49.0)

    def test_matches_numpy_polyval(self, rng):
        coeffs = rng.normal(size=6)
        x = rng.normal(size=10)
        expected = np.polyval(coeffs[::-1], x)
        np.testing.assert_allclose(polyval_ascending(coeffs, x), expected)


class TestPolynomialDerivative:
    def test_constant_derivative_is_zero(self):
        np.testing.assert_array_equal(
            polynomial_derivative(np.array([3.0])), [0.0]
        )

    def test_cubic_derivative(self):
        # d/ds (1 + 2s + 3s^2 + 4s^3) = 2 + 6s + 12s^2.
        out = polynomial_derivative(np.array([1.0, 2.0, 3.0, 4.0]))
        np.testing.assert_allclose(out, [2.0, 6.0, 12.0])


class TestRealRoots:
    def test_quadratic_roots(self):
        # (s - 1)(s - 3) = 3 - 4s + s^2.
        roots = real_roots(np.array([3.0, -4.0, 1.0]))
        np.testing.assert_allclose(roots, [1.0, 3.0], atol=1e-9)

    def test_complex_roots_excluded(self):
        # s^2 + 1 has no real roots.
        roots = real_roots(np.array([1.0, 0.0, 1.0]))
        assert roots.size == 0

    def test_trailing_zeros_trimmed(self):
        # Degenerate quintic that is really linear: 2 - s.
        coeffs = np.array([2.0, -1.0, 0.0, 0.0, 0.0, 0.0])
        roots = real_roots(coeffs)
        np.testing.assert_allclose(roots, [2.0], atol=1e-9)

    def test_constant_has_no_roots(self):
        assert real_roots(np.array([7.0])).size == 0

    def test_zero_polynomial_returns_empty(self):
        assert real_roots(np.zeros(4)).size == 0

    def test_empty_raises(self):
        with pytest.raises(ConfigurationError):
            real_roots(np.array([]))

    def test_quintic_known_roots(self):
        # s(s-0.2)(s-0.4)(s-0.6)(s-0.8) expanded via polynomial product.
        target = [0.0, 0.2, 0.4, 0.6, 0.8]
        coeffs_desc = np.poly(target)
        roots = real_roots(coeffs_desc[::-1])
        np.testing.assert_allclose(np.sort(roots), target, atol=1e-8)


class TestRealRootsInInterval:
    def test_filters_outside_roots(self):
        # Roots at 0.5 and 2.0; only 0.5 is in [0, 1].
        coeffs_desc = np.poly([0.5, 2.0])
        roots = real_roots_in_interval(coeffs_desc[::-1], 0.0, 1.0)
        np.testing.assert_allclose(roots, [0.5], atol=1e-9)

    def test_boundary_roots_kept(self):
        coeffs_desc = np.poly([0.0, 1.0])
        roots = real_roots_in_interval(coeffs_desc[::-1], 0.0, 1.0)
        np.testing.assert_allclose(np.sort(roots), [0.0, 1.0], atol=1e-9)

    def test_no_roots_in_interval(self):
        coeffs_desc = np.poly([5.0])
        roots = real_roots_in_interval(coeffs_desc[::-1], 0.0, 1.0)
        assert roots.size == 0


class TestNewtonPolish:
    def test_improves_perturbed_roots(self):
        coeffs_desc = np.poly([0.3, 0.7])
        coeffs = coeffs_desc[::-1].copy()
        rough = np.array([0.30001, 0.69999])
        polished = newton_polish(coeffs, rough)
        np.testing.assert_allclose(polished, [0.3, 0.7], atol=1e-12)

    def test_zero_derivative_left_unchanged(self):
        # p(s) = s^2 has p'(0) = 0; polishing at 0 must not blow up.
        polished = newton_polish(np.array([0.0, 0.0, 1.0]), np.array([0.0]))
        assert np.isfinite(polished[0])


class TestMinimizeOnInterval:
    def test_interior_minimum(self):
        # (s - 0.4)^2 = 0.16 - 0.8 s + s^2.
        s = minimize_polynomial_on_interval(np.array([0.16, -0.8, 1.0]))
        assert s == pytest.approx(0.4, abs=1e-9)

    def test_boundary_minimum(self):
        # Increasing on [0, 1]: minimum at 0.
        s = minimize_polynomial_on_interval(np.array([0.0, 1.0]))
        assert s == pytest.approx(0.0)

    def test_global_vs_local(self):
        # Degree-6 with two wells; global well centred at 0.8.
        grid = np.linspace(0, 1, 1001)

        def build(c1, c2, depth):
            # f = (s-c1)^2 (s-c2)^2 ((s-c2)^2 + depth) keeps c2 global.
            p1 = np.poly([c1, c1])[::-1]
            p2 = np.poly([c2, c2])[::-1]
            prod = np.polynomial.polynomial.polymul(p1, p2)
            return np.polynomial.polynomial.polymul(
                prod, np.array([depth, 0.0, 0.0]) + np.array([0.0, 0.0, 1.0])
            )

        coeffs = build(0.2, 0.8, 0.05)
        s = minimize_polynomial_on_interval(coeffs)
        vals = polyval_ascending(coeffs, grid)
        assert polyval_ascending(coeffs, np.array([s]))[0] <= vals.min() + 1e-12

    def test_custom_interval(self):
        s = minimize_polynomial_on_interval(
            np.array([0.16, -0.8, 1.0]), lo=0.5, hi=1.0
        )
        assert s == pytest.approx(0.5)
