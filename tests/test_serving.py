"""Golden round-trip and batch-scoring tests for the serving subsystem.

The serving contract is exactness: persistence must reproduce the
fitted model bit-for-bit (JSON via shortest-round-trip float repr,
``.npz`` via binary doubles), and chunked batch scoring must match the
unchunked path to float precision.  These tests pin that contract on
the two bundled paper datasets plus synthetic data large enough to
exercise multi-chunk paths.
"""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.data import load_countries, load_journals
from repro.data.normalize import MinMaxNormalizer
from repro.data.synthetic import sample_monotone_cloud
from repro.geometry.bezier import BezierCurve
from repro.serving import (
    dumps_model,
    iter_score_chunks,
    load_model,
    loads_model,
    save_model,
    score_batch,
)


def _fit(data, **kwargs):
    model = RankingPrincipalCurve(
        alpha=data.alpha, random_state=0, **kwargs
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(data.X)
    return model


@pytest.fixture(scope="module")
def country_model():
    return _fit(load_countries())


@pytest.fixture(scope="module")
def journal_model():
    return _fit(load_journals())


class TestDictRoundTrips:
    def test_bezier_curve_exact(self, s_shape_curve):
        payload = json.loads(json.dumps(s_shape_curve.to_dict()))
        rebuilt = BezierCurve.from_dict(payload)
        assert np.array_equal(
            rebuilt.control_points, s_shape_curve.control_points
        )

    def test_bezier_rejects_foreign_payload(self):
        with pytest.raises(ConfigurationError):
            BezierCurve.from_dict({"type": "Snake"})

    def test_normalizer_exact(self, rng):
        X = rng.normal(size=(30, 4)) * np.array([1.0, 1e6, 1e-6, 3.0])
        norm = MinMaxNormalizer().fit(X)
        payload = json.loads(json.dumps(norm.to_dict()))
        rebuilt = MinMaxNormalizer.from_dict(payload)
        assert np.array_equal(rebuilt.data_min_, norm.data_min_)
        assert np.array_equal(rebuilt.data_max_, norm.data_max_)
        assert np.array_equal(rebuilt.transform(X), norm.transform(X))

    def test_unfitted_normalizer_round_trip(self):
        rebuilt = MinMaxNormalizer.from_dict(
            MinMaxNormalizer(clip=True).to_dict()
        )
        assert rebuilt.clip is True
        assert rebuilt.data_min_ is None

    def test_unfitted_model_round_trip(self):
        model = RankingPrincipalCurve(
            alpha=[1, -1], degree=2, projection="newton", warm_start=True
        )
        rebuilt = RankingPrincipalCurve.from_dict(
            json.loads(json.dumps(model.to_dict()))
        )
        assert rebuilt.degree == 2
        assert rebuilt.projection == "newton"
        assert rebuilt.warm_start is True
        assert np.array_equal(rebuilt.alpha, model.alpha)
        with pytest.raises(NotFittedError):
            rebuilt.score_samples(np.zeros((1, 2)))

    def test_future_format_version_rejected(self):
        payload = RankingPrincipalCurve(alpha=[1, 1]).to_dict()
        payload["format_version"] = 2
        with pytest.raises(ConfigurationError, match="format version"):
            RankingPrincipalCurve.from_dict(payload)

    def test_save_does_not_mutate_model(self, tmp_path):
        model = RankingPrincipalCurve(alpha=[1, -1])
        model.feature_names_ = ["orig_a", "orig_b"]
        path = save_model(
            model, tmp_path / "m.json", feature_names=["new_a", "new_b"]
        )
        assert model.feature_names_ == ["orig_a", "orig_b"]
        assert load_model(path).feature_names_ == ["new_a", "new_b"]

    def test_fitted_model_trace_preserved(self, country_model):
        rebuilt = loads_model(dumps_model(country_model))
        assert (
            rebuilt.trace_.objectives == country_model.trace_.objectives
        )
        assert (
            rebuilt.trace_.step_sizes == country_model.trace_.step_sizes
        )
        assert (
            rebuilt.trace_.n_iterations
            == country_model.trace_.n_iterations
        )


class TestGoldenRoundTrips:
    """Fit on the paper datasets, save → load → score: bit-identical."""

    @pytest.mark.parametrize("suffix", [".json", ".npz"])
    def test_countries(self, country_model, tmp_path, suffix):
        data = load_countries()
        reference = country_model.score_samples(data.X)
        path = save_model(country_model, tmp_path / f"model{suffix}")
        served = load_model(path)
        assert np.array_equal(served.score_batch(data.X), reference)
        # Rankings (order over labels) are therefore identical too.
        ref_order = np.argsort(-reference, kind="stable")
        new_order = np.argsort(-served.score_batch(data.X), kind="stable")
        assert np.array_equal(ref_order, new_order)

    @pytest.mark.parametrize("suffix", [".json", ".npz"])
    def test_journals(self, journal_model, tmp_path, suffix):
        data = load_journals()
        reference = journal_model.score_samples(data.X)
        path = save_model(journal_model, tmp_path / f"model{suffix}")
        served = load_model(path)
        assert np.array_equal(served.score_batch(data.X), reference)

    def test_control_points_and_normalizer_exact(
        self, country_model, tmp_path
    ):
        path = save_model(country_model, tmp_path / "model.npz")
        served = load_model(path)
        assert np.array_equal(
            served.control_points_, country_model.control_points_
        )
        assert np.array_equal(
            served.training_scores_, country_model.training_scores_
        )
        assert np.array_equal(
            served._normalizer.data_min_,
            country_model._normalizer.data_min_,
        )

    def test_feature_names_survive(self, country_model, tmp_path):
        names = ["GDP", "LEB", "IMR", "TB"]
        path = save_model(
            country_model, tmp_path / "model.json", feature_names=names
        )
        assert load_model(path).feature_names_ == names

    def test_unknown_suffix_rejected(self, country_model, tmp_path):
        with pytest.raises(ConfigurationError):
            save_model(country_model, tmp_path / "model.pickle")
        with pytest.raises(ConfigurationError):
            load_model(tmp_path / "model.pickle")


class TestScoreBatch:
    def test_chunked_matches_unchunked_100k(self, country_model):
        # The acceptance-scale check: 100k rows, chunked projection,
        # identical to the one-shot path within 1e-9 (empirically the
        # Newton-polished scores match to float precision).
        data = load_countries()
        rng = np.random.default_rng(0)
        idx = rng.integers(0, data.X.shape[0], size=100_000)
        X = data.X[idx] * rng.uniform(0.95, 1.05, size=(100_000, 1))
        unchunked = score_batch(country_model, X, chunk_size=X.shape[0])
        chunked = score_batch(country_model, X, chunk_size=8192)
        np.testing.assert_allclose(chunked, unchunked, atol=1e-9)
        assert np.all((chunked >= 0.0) & (chunked <= 1.0))

    def test_odd_chunk_sizes(self, country_model):
        data = load_countries()
        reference = country_model.score_samples(data.X)
        for chunk in (1, 7, 170, 171, 172, 10_000):
            np.testing.assert_allclose(
                score_batch(country_model, data.X, chunk_size=chunk),
                reference,
                atol=1e-9,
            )

    def test_method_delegates(self, country_model):
        data = load_countries()
        assert np.array_equal(
            country_model.score_batch(data.X, chunk_size=50),
            score_batch(country_model, data.X, chunk_size=50),
        )

    def test_iter_chunks_cover_input_in_order(self, country_model):
        data = load_countries()
        spans = []
        for start, stop, scores in iter_score_chunks(
            country_model, data.X, chunk_size=64
        ):
            assert scores.shape == (stop - start,)
            spans.append((start, stop))
        assert spans[0][0] == 0
        assert spans[-1][1] == data.X.shape[0]
        assert all(
            prev[1] == cur[0] for prev, cur in zip(spans, spans[1:])
        )

    def test_invalid_chunk_size(self, country_model):
        data = load_countries()
        with pytest.raises(ConfigurationError):
            score_batch(country_model, data.X, chunk_size=0)

    def test_iter_chunks_rejects_non_2d(self, country_model):
        # Same fail-fast contract as score_batch, instead of failing
        # later inside score_samples mid-iteration.
        with pytest.raises(ConfigurationError, match="must be 2-D"):
            next(iter_score_chunks(country_model, np.zeros(5)))
        with pytest.raises(ConfigurationError, match="must be 2-D"):
            next(iter_score_chunks(country_model, np.zeros((2, 2, 2))))

    def test_empty_input_handled_cleanly(self, country_model):
        empty = np.empty((0, 4))
        assert list(iter_score_chunks(country_model, empty)) == []
        scores = score_batch(country_model, empty)
        assert scores.shape == (0,)
        scores = score_batch(country_model, empty, n_jobs=4)
        assert scores.shape == (0,)

    def test_unfitted_model_raises(self):
        model = RankingPrincipalCurve(alpha=[1, 1])
        with pytest.raises(NotFittedError):
            score_batch(model, np.zeros((3, 2)))

    def test_works_on_synthetic_cloud(self):
        alpha = np.array([1.0, 1.0, -1.0])
        cloud = sample_monotone_cloud(alpha=alpha, n=200, seed=2, noise=0.02)
        model = RankingPrincipalCurve(alpha=alpha, random_state=0)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model.fit(cloud.X)
        scores = score_batch(model, cloud.X, chunk_size=33)
        np.testing.assert_allclose(
            scores, model.score_samples(cloud.X), atol=1e-9
        )


class TestParallelDispatch:
    """``n_jobs=`` fans chunks over threads without changing a bit."""

    @pytest.mark.parametrize("n_jobs", [2, 4, -1])
    def test_parallel_matches_serial_exactly(self, country_model, n_jobs):
        data = load_countries()
        rng = np.random.default_rng(1)
        idx = rng.integers(0, data.X.shape[0], size=5000)
        X = data.X[idx] * rng.uniform(0.95, 1.05, size=(5000, 1))
        serial = score_batch(country_model, X, chunk_size=512)
        parallel = score_batch(
            country_model, X, chunk_size=512, n_jobs=n_jobs
        )
        # Chunk boundaries are identical and each worker writes its own
        # disjoint slice, so parallel dispatch is bit-exact, not just
        # close.
        assert np.array_equal(serial, parallel)

    def test_more_jobs_than_chunks(self, country_model):
        data = load_countries()
        serial = score_batch(country_model, data.X)
        parallel = score_batch(country_model, data.X, n_jobs=16)
        assert np.array_equal(serial, parallel)

    def test_invalid_n_jobs(self, country_model):
        data = load_countries()
        with pytest.raises(ConfigurationError, match="n_jobs"):
            score_batch(country_model, data.X, n_jobs=0)
        with pytest.raises(ConfigurationError, match="n_jobs"):
            score_batch(country_model, data.X, n_jobs=-2)

    def test_worker_errors_propagate(self):
        model = RankingPrincipalCurve(alpha=[1, 1])
        with pytest.raises(NotFittedError):
            score_batch(model, np.zeros((64, 2)), chunk_size=8, n_jobs=4)


class TestWarmStartDefault:
    """PR 2 flipped ``warm_start`` on by default (agreement ~1e-10)."""

    def test_default_is_on(self):
        assert RankingPrincipalCurve(alpha=[1, 1]).warm_start is True

    def test_payloads_without_the_field_stay_cold(self):
        # Models saved before the flag existed keep their original
        # (cold-scan) behaviour when reloaded.
        payload = RankingPrincipalCurve(alpha=[1, 1]).to_dict()
        del payload["hyperparameters"]["warm_start"]
        assert RankingPrincipalCurve.from_dict(payload).warm_start is False


class TestWarmStartEndToEnd:
    def test_warm_model_round_trips_and_matches_cold(self, tmp_path):
        data = load_countries()
        cold = _fit(data, warm_start=False)
        warm = _fit(data, warm_start=True)
        assert warm.trace_.final_objective == pytest.approx(
            cold.trace_.final_objective, abs=1e-8
        )
        path = save_model(warm, tmp_path / "warm.json")
        served = load_model(path)
        assert served.warm_start is True
        assert np.array_equal(
            served.score_batch(data.X), warm.score_samples(data.X)
        )
