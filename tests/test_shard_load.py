"""Sharded-rank load harness: real daemons, a SIGKILL, identical bytes.

The in-process coordinator tests (``tests/test_sharding.py``) pin the
merge and reroute logic; this suite drills the same promises against
*separate daemon processes* spawned by :class:`LocalShardFleet` — the
topology ``repro shard --local-workers`` runs and the CI
``sharded-rank`` job reproduces at 120k rows.  The kill drill here is
the harsh one: SIGKILL (no drain, no FIN from a dying handler thread)
against the shard that the deterministic hash ring says owns the final
block, so a not-yet-posted block is guaranteed to reroute — and the
merged output must still be byte-identical to the single-box ranking.
"""

from __future__ import annotations

import filecmp
import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.data.loaders import save_csv
from repro.data.synthetic import sample_monotone_cloud
from repro.serving import save_model, stream_rank_csv
from repro.sharding import (
    ConsistentHashRing,
    LocalShardFleet,
    ShardCoordinator,
    fetch_shard_metrics,
    rollup_metrics,
)

ALPHA = np.array([1.0, 1.0, -1.0])
N_ROWS = 1200
ROWS_PER_BLOCK = 40  # 30 blocks: more than the in-flight window


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A saved model, a CSV to rank, and the single-box reference."""
    root = tmp_path_factory.mktemp("shard_load")
    cloud = sample_monotone_cloud(alpha=ALPHA, n=N_ROWS, seed=23, noise=0.05)
    model = RankingPrincipalCurve(alpha=ALPHA, random_state=1, n_restarts=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    labels = [f"item{i:05d}" for i in range(N_ROWS)]
    csv_path = root / "rows.csv"
    save_csv(csv_path, labels, cloud.X, ["a", "b", "c"], label_column="id")
    model_path = save_model(model, root / "model.json",
                            feature_names=["a", "b", "c"])
    reference = root / "single.csv"
    stream_rank_csv(model, csv_path, reference, label_column="id")
    return model_path, csv_path, reference


class TestLocalFleetRank:
    def test_three_daemons_rank_byte_identically(self, workload, tmp_path):
        model_path, csv_path, reference = workload
        output = tmp_path / "sharded.csv"
        with LocalShardFleet(model_path, n_shards=3) as fleet:
            coordinator = ShardCoordinator(
                fleet.urls, fleet.model_name, rows_per_block=ROWS_PER_BLOCK
            )
            n_rows, _ = coordinator.rank_csv(
                csv_path, output, label_column="id"
            )
            stats = coordinator.stats()
            # Roll the fleet's /metrics up while the daemons are live:
            # the coordinator view must account for every block the
            # shards served, with exact (summed-bucket) histograms.
            payloads = [fetch_shard_metrics(url) for url in fleet.urls]
        assert n_rows == N_ROWS
        assert filecmp.cmp(reference, output, shallow=False)
        assert stats["n_blocks"] == N_ROWS // ROWS_PER_BLOCK
        assert stats["dead_shards"] == []
        assert sum(stats["blocks_by_shard"].values()) == stats["n_blocks"]
        merged = rollup_metrics(payloads, urls=fleet.urls)
        endpoint = merged["endpoints"]["POST /v1/models/{name}/rank-shard"]
        assert endpoint["requests"] == stats["n_blocks"]
        assert endpoint["by_status"] == {"200": stats["n_blocks"]}
        cells = merged["latency_histograms"]["endpoints"][
            "POST /v1/models/{name}/rank-shard"
        ]
        assert sum(cells["buckets"]) == stats["n_blocks"]
        assert merged["shards"]["count"] == 3
        assert merged["shards"]["with_histograms"] == 3

    def test_sigkilled_shard_reroutes_exactly_once(self, workload, tmp_path):
        model_path, csv_path, reference = workload
        output = tmp_path / "killed.csv"
        with LocalShardFleet(model_path, n_shards=3) as fleet:
            # The shard owning the last block is SIGKILLed as soon as
            # the first block lands, so at least one block that has not
            # yet been posted must reroute to a survivor.
            victim = ConsistentHashRing(fleet.urls).node_for(
                N_ROWS // ROWS_PER_BLOCK - 1
            )
            killed = []

            def _sigkill_victim(block_index, shard_url, n_rows):
                if not killed:
                    killed.append(fleet.kill(fleet.urls.index(victim)))

            coordinator = ShardCoordinator(
                fleet.urls,
                fleet.model_name,
                rows_per_block=ROWS_PER_BLOCK,
                on_block=_sigkill_victim,
            )
            n_rows, _ = coordinator.rank_csv(
                csv_path, output, label_column="id"
            )
            stats = coordinator.stats()
            assert fleet.alive() == [
                url for url in fleet.urls if url != victim
            ]
        assert killed == [victim]
        assert n_rows == N_ROWS
        # Exactly once, whatever the daemon was doing when SIGKILL
        # landed: every input row appears exactly once, bytes equal.
        assert filecmp.cmp(reference, output, shallow=False)
        assert stats["dead_shards"] == [victim]
        assert stats["retried_blocks"] >= 1
