"""External merge sort: full streaming rank, byte-identical and bounded.

Three layers under test:

* :class:`ExternalSorter` alone — merge correctness (ties across spill
  boundaries, randomized equivalence with ``build_ranking_list``),
  the memory budget (``max_buffered_rows``), multi-pass merging under
  a small open-file budget, and run-file cleanup on success, error and
  mid-merge failure;
* :func:`stream_rank_csv` — the streamed full ranking written through
  the sorter must be byte-identical to ``save_ranking_csv`` of the
  in-memory ``build_ranking_list`` path, for plain and gzipped input;
* the CLI — ``repro score --stream --rank`` end to end, including the
  flag-combination contract.
"""

from __future__ import annotations

import csv
import pathlib
import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.cli import main
from repro.core.exceptions import ConfigurationError
from repro.core.scoring import build_ranking_list
from repro.data.loaders import save_csv, save_ranking_csv
from repro.data.synthetic import sample_monotone_cloud
from repro.serving import (
    ExternalSorter,
    save_model,
    score_batch,
    stream_rank_csv,
)
from repro.serving.extsort import _iter_run, _write_run

ALPHA = np.array([1.0, 1.0, -1.0])
N_ROWS = 157  # matches the streaming suite: not a multiple of any chunk


@pytest.fixture(scope="module")
def workload(tmp_path_factory):
    """A fitted model, its saved file, and a CSV of fresh rows."""
    root = tmp_path_factory.mktemp("extsort")
    cloud = sample_monotone_cloud(alpha=ALPHA, n=N_ROWS, seed=9, noise=0.02)
    model = RankingPrincipalCurve(alpha=ALPHA, random_state=0, n_restarts=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    labels = [f"row{i:03d}" for i in range(N_ROWS)]
    csv_path = root / "fresh.csv"
    save_csv(csv_path, labels, cloud.X, ["a", "b", "c"], label_column="id")
    model_path = root / "model.json"
    save_model(model, model_path, feature_names=["a", "b", "c"])
    return model, model_path, csv_path, cloud.X, labels


def _reference(scores, labels):
    """Best-first ``(label, score)`` pairs of the in-memory path."""
    ranking = build_ranking_list(scores, labels=labels)
    return [
        (ranking.labels[idx], float(ranking.scores[idx]))
        for idx in ranking.order
    ]


def _drain(sorter):
    return [(label, score) for _, label, score in sorter.ranked()]


class TestExternalSorter:
    def test_randomized_equivalence_sweep(self):
        """External-sort output equals ``build_ranking_list`` exactly,
        across random sizes, budgets, chunkings and heavy score ties."""
        rng = np.random.default_rng(42)
        for trial in range(25):
            n = int(rng.integers(1, 400))
            # Coarse quantisation manufactures exact duplicate scores.
            scores = rng.choice(np.linspace(0.0, 1.0, 7), size=n)
            labels = [f"t{trial}r{i}" for i in range(n)]
            budget = int(rng.integers(1, n + 2))
            chunk = int(rng.integers(1, n + 1))
            with ExternalSorter(
                memory_budget_rows=budget,
                max_open_runs=int(rng.integers(2, 6)),
            ) as sorter:
                for start in range(0, n, chunk):
                    sorter.add(
                        labels[start:start + chunk],
                        scores[start:start + chunk],
                    )
                got = _drain(sorter)
                assert sorter.max_buffered_rows <= budget
            assert got == _reference(scores, labels), (
                f"trial {trial}: n={n} budget={budget} chunk={chunk}"
            )

    def test_ties_spanning_spill_boundaries(self):
        """Identical scores split across different run files must still
        come back in input order (the stable tie-break)."""
        scores = np.zeros(30)  # every row ties with every other row
        labels = [f"r{i:02d}" for i in range(30)]
        with ExternalSorter(memory_budget_rows=7) as sorter:
            sorter.add(labels, scores)
            assert sorter.runs_spilled >= 4  # ties genuinely cross runs
            got = _drain(sorter)
        assert got == [(label, 0.0) for label in labels]

    def test_single_row_chunks(self):
        scores = np.array([0.3, 0.9, 0.3, 0.1, 0.9])
        labels = list("abcde")
        with ExternalSorter(memory_budget_rows=2) as sorter:
            for label, score in zip(labels, scores):
                sorter.add([label], np.array([score]))
            got = _drain(sorter)
        assert got == _reference(scores, labels)

    def test_empty_input(self):
        with ExternalSorter(memory_budget_rows=4) as sorter:
            assert list(sorter.ranked()) == []
            assert sorter.n_rows == 0
            assert sorter.runs_spilled == 0

    def test_positions_are_sequential(self):
        with ExternalSorter(memory_budget_rows=3) as sorter:
            sorter.add(list("abcdefgh"), np.linspace(0, 1, 8))
            positions = [pos for pos, _, _ in sorter.ranked()]
        assert positions == list(range(1, 9))

    def test_in_memory_fast_path_never_touches_disk(self):
        with ExternalSorter() as sorter:
            sorter.add(list("abc"), np.array([0.1, 0.5, 0.3]))
            got = _drain(sorter)
            assert sorter.runs_spilled == 0
            assert sorter._tmpdir is None  # no spill dir was created
        assert [label for label, _ in got] == ["b", "c", "a"]

    def test_multi_pass_merge_under_open_file_budget(self):
        """More runs than ``max_open_runs`` forces intermediate merge
        passes; the output must not change."""
        rng = np.random.default_rng(7)
        scores = rng.choice(np.linspace(0, 1, 5), size=200)
        labels = [f"r{i:03d}" for i in range(200)]
        with ExternalSorter(
            memory_budget_rows=10, max_open_runs=2
        ) as sorter:
            sorter.add(labels, scores)
            assert sorter.runs_spilled == 20
            got = _drain(sorter)
            assert sorter.merge_passes >= 1
        assert got == _reference(scores, labels)

    def test_budget_forces_at_least_three_runs(self):
        """The acceptance-criterion shape: >= 3 spill runs, buffered
        rows within budget, output equal to the in-memory ranking."""
        rng = np.random.default_rng(3)
        scores = rng.uniform(size=100)
        labels = [f"r{i:03d}" for i in range(100)]
        with ExternalSorter(memory_budget_rows=30) as sorter:
            sorter.add(labels, scores)
            assert sorter.runs_spilled >= 3
            got = _drain(sorter)
            assert sorter.max_buffered_rows <= 30
        assert got == _reference(scores, labels)


class TestSpillFileCleanup:
    def _spilled_dir(self, sorter) -> pathlib.Path:
        assert sorter._tmpdir is not None, "test needs a real spill"
        return pathlib.Path(sorter._tmpdir.name)

    def test_cleanup_on_success(self):
        with ExternalSorter(memory_budget_rows=5) as sorter:
            sorter.add(list("abcdefghij"), np.linspace(0, 1, 10))
            spill_dir = self._spilled_dir(sorter)
            assert list(spill_dir.iterdir())
            list(sorter.ranked())
        assert not spill_dir.exists()

    def test_cleanup_on_exception(self):
        with pytest.raises(RuntimeError, match="downstream"):
            with ExternalSorter(memory_budget_rows=5) as sorter:
                sorter.add(list("abcdefghij"), np.linspace(0, 1, 10))
                spill_dir = self._spilled_dir(sorter)
                raise RuntimeError("downstream failure")
        assert not spill_dir.exists()

    def test_cleanup_on_injected_mid_merge_failure(self):
        """A consumer that dies halfway through the merge — with run
        files open for reading — must still leave nothing behind."""
        with pytest.raises(RuntimeError, match="sink broke"):
            with ExternalSorter(memory_budget_rows=5) as sorter:
                sorter.add(list("abcdefghijklmno"), np.linspace(0, 1, 15))
                spill_dir = self._spilled_dir(sorter)
                for position, _, _ in sorter.ranked():
                    if position == 4:  # mid-merge, several rows pending
                        raise RuntimeError("sink broke")
        assert not spill_dir.exists()

    def test_cleanup_on_keyboard_interrupt(self):
        """Ctrl-C propagates through the context manager's __exit__,
        so run files are removed exactly as for any exception."""
        with pytest.raises(KeyboardInterrupt):
            with ExternalSorter(memory_budget_rows=5) as sorter:
                sorter.add(list("abcdefghij"), np.linspace(0, 1, 10))
                spill_dir = self._spilled_dir(sorter)
                next(iter(sorter.ranked()))
                raise KeyboardInterrupt
        assert not spill_dir.exists()

    def test_abandoned_ranked_iterator_closes_run_files(self, monkeypatch):
        """Closing (or dropping) a half-consumed ``ranked()`` iterator
        must close every run-file stream *immediately* — the shard
        coordinator abandons merges when a job aborts, and waiting for
        garbage collection to finalise the readers would leave fds
        open past the spill directory's removal."""
        import inspect

        from repro.serving import extsort

        opened = []
        real_iter_run = extsort._iter_run

        def _recording_iter_run(path):
            generator = real_iter_run(path)
            opened.append(generator)
            return generator

        monkeypatch.setattr(extsort, "_iter_run", _recording_iter_run)
        with ExternalSorter(memory_budget_rows=10) as sorter:
            sorter.add(
                [f"r{i}" for i in range(30)], np.linspace(0, 1, 30)
            )
            ranked = sorter.ranked()
            assert next(ranked)[0] == 1
            assert len(opened) == 3  # all three runs open for the merge
            assert any(
                inspect.getgeneratorstate(g) != "GEN_CLOSED"
                for g in opened
            )
            ranked.close()  # abandon mid-merge
            assert all(
                inspect.getgeneratorstate(g) == "GEN_CLOSED"
                for g in opened
            )


class TestSorterContract:
    def test_requires_context_manager(self):
        sorter = ExternalSorter()
        with pytest.raises(ConfigurationError, match="context manager"):
            sorter.add(["a"], np.array([0.5]))
        with pytest.raises(ConfigurationError, match="context manager"):
            sorter.ranked()

    def test_single_use(self):
        with ExternalSorter() as sorter:
            sorter.add(["a"], np.array([0.5]))
            list(sorter.ranked())
            with pytest.raises(ConfigurationError, match="single-use"):
                sorter.ranked()
            with pytest.raises(ConfigurationError, match="single-use"):
                sorter.add(["b"], np.array([0.6]))

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigurationError, match="memory_budget_rows"):
            ExternalSorter(memory_budget_rows=0)
        with pytest.raises(ConfigurationError, match="max_open_runs"):
            ExternalSorter(max_open_runs=1)

    def test_mismatched_lengths_rejected(self):
        from repro.core.exceptions import DataValidationError

        with ExternalSorter() as sorter:
            with pytest.raises(DataValidationError, match="2 labels"):
                sorter.add(["a", "b"], np.array([0.5]))

    def test_truncated_run_file_is_reported(self, tmp_path):
        from repro.core.exceptions import DataValidationError

        path = tmp_path / "run.bin"
        _write_run(path, [(-0.5, 0, "hello")])
        data = path.read_bytes()
        path.write_bytes(data[:-3])  # cut the label short
        with pytest.raises(DataValidationError, match="truncated run file"):
            list(_iter_run(path))
        path.write_bytes(data[:10])  # cut the record head short
        with pytest.raises(DataValidationError, match="truncated run file"):
            list(_iter_run(path))

    def test_unicode_labels_round_trip(self, tmp_path):
        path = tmp_path / "run.bin"
        entries = [(-0.9, 0, "Ελλάδα"), (-0.5, 1, "日本"), (-0.1, 2, "øre")]
        _write_run(path, entries)
        assert list(_iter_run(path)) == entries


class TestStreamRankCsv:
    def test_byte_identical_to_in_memory_ranking(self, workload, tmp_path):
        model, _, csv_path, X, labels = workload
        reference = tmp_path / "reference.csv"
        save_ranking_csv(
            reference, build_ranking_list(score_batch(model, X), labels=labels)
        )
        streamed = tmp_path / "streamed.csv"
        n_rows, head = stream_rank_csv(
            model,
            csv_path,
            streamed,
            chunk_size=25,
            label_column="id",
            memory_budget_rows=40,  # forces >= 3 spill runs for 157 rows
        )
        assert n_rows == N_ROWS
        assert streamed.read_bytes() == reference.read_bytes()
        assert head == []

    def test_head_matches_ranking_top(self, workload, tmp_path):
        model, _, csv_path, X, labels = workload
        full = build_ranking_list(score_batch(model, X), labels=labels)
        _, head = stream_rank_csv(
            model,
            csv_path,
            tmp_path / "out.csv",
            label_column="id",
            memory_budget_rows=50,
            head=7,
        )
        assert head == full.top(7)

    def test_no_output_path_only_head(self, workload):
        model, _, csv_path, X, labels = workload
        full = build_ranking_list(score_batch(model, X), labels=labels)
        n_rows, head = stream_rank_csv(
            model, csv_path, None, label_column="id", head=3
        )
        assert n_rows == N_ROWS
        assert head == full.top(3)

    def test_gzip_input_identical(self, workload, tmp_path):
        import gzip

        model, _, csv_path, _, _ = workload
        gz_path = tmp_path / "fresh.csv.gz"
        gz_path.write_bytes(gzip.compress(csv_path.read_bytes()))
        out_plain = tmp_path / "plain.csv"
        out_gz = tmp_path / "gz.csv"
        stream_rank_csv(
            model, csv_path, out_plain, label_column="id",
            memory_budget_rows=60,
        )
        stream_rank_csv(
            model, gz_path, out_gz, label_column="id",
            memory_budget_rows=60,
        )
        assert out_gz.read_bytes() == out_plain.read_bytes()

    def test_duplicate_rows_tie_break_matches(self, workload, tmp_path):
        """Duplicate rows (exact score ties) spanning chunk and run
        boundaries must rank in input order, as the in-memory path."""
        model, _, _, X, _ = workload
        X_dup = np.vstack([X[:6]] * 5)
        labels = [f"d{i:02d}" for i in range(30)]
        dup_csv = tmp_path / "dups.csv"
        save_csv(dup_csv, labels, X_dup, ["a", "b", "c"], label_column="id")
        reference = tmp_path / "reference.csv"
        save_ranking_csv(
            reference,
            build_ranking_list(score_batch(model, X_dup), labels=labels),
        )
        streamed = tmp_path / "streamed.csv"
        stream_rank_csv(
            model, dup_csv, streamed, chunk_size=4, label_column="id",
            memory_budget_rows=7,
        )
        assert streamed.read_bytes() == reference.read_bytes()

    def test_bad_head_rejected(self, workload):
        model, _, csv_path, _, _ = workload
        with pytest.raises(ConfigurationError, match="head"):
            stream_rank_csv(model, csv_path, None, head=-1)


class TestCliStreamRank:
    def test_byte_identical_through_cli(self, workload, tmp_path, capsys):
        _, model_path, csv_path, _, _ = workload
        plain_out = tmp_path / "plain.csv"
        rank_out = tmp_path / "rank.csv"
        base = [
            "score", str(model_path), str(csv_path),
            "--label-column", "id", "--chunk-size", "25", "--top", "5",
        ]
        assert main(base + ["--output", str(plain_out)]) == 0
        plain_stdout = capsys.readouterr().out
        assert main(
            base + [
                "--stream", "--rank",
                "--memory-budget-rows", "40",
                "--output", str(rank_out),
            ]
        ) == 0
        rank_stdout = capsys.readouterr().out

        assert rank_out.read_bytes() == plain_out.read_bytes()
        # stdout matches apart from the trailing "written to <path>"
        # line, which names the (necessarily different) output files.
        assert (
            rank_stdout.splitlines()[:-1] == plain_stdout.splitlines()[:-1]
        )

    def test_rank_without_output_prints_top(self, workload, capsys):
        _, model_path, csv_path, _, _ = workload
        code = main(
            [
                "score", str(model_path), str(csv_path),
                "--label-column", "id", "--stream", "--rank", "--top", "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert f"scored {N_ROWS} objects" in out
        table = [line for line in out.splitlines() if line.startswith(" ")]
        assert len(table) == 3 + 1  # header row + 3 entries

    def test_rank_requires_stream(self, workload, capsys):
        _, model_path, csv_path, _, _ = workload
        code = main(["score", str(model_path), str(csv_path), "--rank"])
        assert code == 2
        assert "--stream" in capsys.readouterr().err

    def test_rank_and_top_k_are_exclusive(self, workload, capsys):
        _, model_path, csv_path, _, _ = workload
        code = main(
            [
                "score", str(model_path), str(csv_path),
                "--stream", "--rank", "--top-k", "3",
            ]
        )
        assert code == 2
        assert "mutually exclusive" in capsys.readouterr().err

    def test_memory_budget_requires_rank(self, workload, capsys):
        _, model_path, csv_path, _, _ = workload
        code = main(
            [
                "score", str(model_path), str(csv_path),
                "--stream", "--memory-budget-rows", "100",
            ]
        )
        assert code == 2
        assert "--rank" in capsys.readouterr().err

    def test_rank_parses(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "score", "m.json", "x.csv", "--stream", "--rank",
                "--memory-budget-rows", "1000",
            ]
        )
        assert args.rank is True
        assert args.memory_budget_rows == 1000
