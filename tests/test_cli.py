"""Tests for the command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.data.synthetic import sample_monotone_cloud


@pytest.fixture
def ranking_csv(tmp_path):
    """A small rankable CSV with two benefits and one cost."""
    cloud = sample_monotone_cloud(
        alpha=np.array([1.0, 1.0, -1.0]), n=40, seed=6, noise=0.02
    )
    path = tmp_path / "items.csv"
    lines = ["item,quality,coverage,defects"]
    for i, row in enumerate(cloud.X):
        lines.append(f"item{i:02d},{row[0]},{row[1]},{row[2]}")
    path.write_text("\n".join(lines) + "\n")
    return path, cloud


class TestParser:
    def test_rank_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            ["rank", "data.csv", "--alpha", "+a,-b", "--top", "3"]
        )
        assert args.command == "rank"
        assert args.csv_path == "data.csv"
        assert args.top == 3

    def test_demo_arguments(self):
        parser = build_parser()
        args = parser.parse_args(["demo", "countries"])
        assert args.dataset == "countries"

    def test_demo_rejects_unknown_dataset(self):
        parser = build_parser()
        with pytest.raises(SystemExit):
            parser.parse_args(["demo", "planets"])


class TestServeParser:
    def test_serve_arguments(self):
        parser = build_parser()
        args = parser.parse_args(
            [
                "serve",
                "--model", "wellbeing=m.json",
                "--model", "journals=j.npz",
                "--port", "9001",
                "--workers", "4",
                "--jobs", "2",
                "--batch-window-ms", "2.5",
                "--max-batch-rows", "512",
            ]
        )
        assert args.command == "serve"
        assert args.models == ["wellbeing=m.json", "journals=j.npz"]
        assert args.port == 9001
        # --workers is the pre-fork process count; per-request chunk
        # threads moved to --jobs (mirroring `score --jobs`).
        assert args.workers == 4
        assert args.jobs == 2
        assert args.batch_window_ms == 2.5
        assert args.max_batch_rows == 512
        assert args.host == "127.0.0.1"

    def test_serve_defaults_are_single_process_unbatched(self):
        args = build_parser().parse_args(["serve", "--model", "m=m.json"])
        assert args.workers == 1
        assert args.jobs is None
        assert args.batch_window_ms == 0.0
        assert args.max_batch_rows is None

    def test_serve_rejects_bad_worker_and_window_counts(self, tmp_path):
        import numpy as np

        from repro import RankingPrincipalCurve
        from repro.serving import save_model

        path = tmp_path / "m.json"
        save_model(
            RankingPrincipalCurve(alpha=np.array([1.0, -1.0])), path
        )
        assert main(
            ["serve", "--model", f"m={path}", "--workers", "0"]
        ) == 2
        assert main(
            ["serve", "--model", f"m={path}", "--batch-window-ms", "-1"]
        ) == 2

    def test_serve_requires_a_model(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])

    def test_model_spec_parsing(self):
        from repro.cli import parse_model_specs

        assert parse_model_specs(["a=x.json", "b=y.npz"]) == [
            ("a", "x.json"),
            ("b", "y.npz"),
        ]

    def test_model_spec_with_equals_in_path(self):
        from repro.cli import parse_model_specs

        assert parse_model_specs(["m=dir=weird/x.json"]) == [
            ("m", "dir=weird/x.json")
        ]

    def test_bad_model_specs_rejected(self):
        from repro.core.exceptions import ConfigurationError
        from repro.cli import parse_model_specs

        for bad in (["nameonly"], ["=path.json"], ["name="]):
            with pytest.raises(ConfigurationError, match="NAME=PATH"):
                parse_model_specs(bad)
        with pytest.raises(ConfigurationError, match="twice"):
            parse_model_specs(["a=x.json", "a=y.json"])

    def test_serve_missing_model_file_is_reported(self, capsys):
        code = main(["serve", "--model", "m=/does/not/exist.json"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_save_warm_start_default_and_negation(self):
        parser = build_parser()
        base = ["save", "d.csv", "--alpha", "+a", "--model", "m.json"]
        assert parser.parse_args(base).warm_start is True
        assert (
            parser.parse_args(base + ["--no-warm-start"]).warm_start
            is False
        )


class TestRankCommand:
    def test_ranks_and_writes_output(self, ranking_csv, tmp_path, capsys):
        path, cloud = ranking_csv
        out_path = tmp_path / "ranking.csv"
        code = main(
            [
                "rank",
                str(path),
                "--alpha",
                "+quality,+coverage,-defects",
                "--output",
                str(out_path),
                "--top",
                "5",
                "--restarts",
                "1",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        assert "ranked 40 objects" in captured.out
        assert out_path.exists()
        lines = out_path.read_text().strip().splitlines()
        assert lines[0] == "position,label,score"
        assert len(lines) == 41

    def test_ranking_correlates_with_latent(self, ranking_csv, tmp_path):
        path, cloud = ranking_csv
        out_path = tmp_path / "ranking.csv"
        main(
            [
                "rank",
                str(path),
                "--alpha",
                "+quality,+coverage,-defects",
                "--output",
                str(out_path),
                "--restarts",
                "1",
            ]
        )
        # Parse the output and check the best item has high latent.
        import csv as csv_module

        with out_path.open() as handle:
            rows = list(csv_module.DictReader(handle))
        best = rows[0]["label"]
        idx = int(best.removeprefix("item"))
        assert cloud.latent[idx] > np.quantile(cloud.latent, 0.7)

    def test_bad_alpha_is_reported(self, ranking_csv, capsys):
        path, _ = ranking_csv
        code = main(["rank", str(path), "--alpha", "+nope"])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_missing_file_is_reported(self, capsys):
        code = main(["rank", "/does/not/exist.csv", "--alpha", "+a"])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestDemoCommand:
    def test_countries_demo_runs(self, capsys):
        code = main(["demo", "countries", "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "countries: 171 objects" in out

    def test_journals_demo_runs(self, capsys):
        code = main(["demo", "journals", "--top", "3"])
        assert code == 0
        assert "journals: 393 objects" in capsys.readouterr().out


class TestServingCommands:
    """The fit-once / serve-many workflow: save, load, score."""

    @pytest.fixture(params=[".json", ".npz"])
    def saved_model(self, request, ranking_csv, tmp_path, capsys):
        path, cloud = ranking_csv
        model_path = tmp_path / f"model{request.param}"
        code = main(
            [
                "save",
                str(path),
                "--alpha",
                "+quality,+coverage,-defects",
                "--model",
                str(model_path),
                "--restarts",
                "1",
            ]
        )
        assert code == 0
        assert "model written to" in capsys.readouterr().out
        return model_path, path, cloud

    def test_save_writes_model(self, saved_model):
        model_path, _, _ = saved_model
        assert model_path.exists()
        assert model_path.stat().st_size > 0

    def test_load_reports_fitted_state(self, saved_model, capsys):
        model_path, _, _ = saved_model
        capsys.readouterr()
        code = main(["load", str(model_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "state: fitted" in out
        assert "quality, coverage, defects" in out
        assert "p0 =" in out

    def test_score_round_trip_matches_rank(
        self, saved_model, tmp_path, capsys
    ):
        model_path, csv_path, _ = saved_model
        out_path = tmp_path / "scored.csv"
        code = main(
            [
                "score",
                str(model_path),
                str(csv_path),
                "--output",
                str(out_path),
                "--chunk-size",
                "16",
                "--top",
                "3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "scored 40 objects" in out
        lines = out_path.read_text().strip().splitlines()
        assert lines[0] == "position,label,score"
        assert len(lines) == 41

    def test_score_in_fresh_process_is_identical(
        self, saved_model, tmp_path
    ):
        # Scoring with the reloaded model must equal scoring with a
        # model refitted identically in this process — persistence, not
        # luck: the loaded model carries the exact fitted state.
        import csv as csv_module

        from repro.serving import load_model

        model_path, csv_path, cloud = saved_model
        served = load_model(model_path)
        expected = served.score_batch(cloud.X)

        out_path = tmp_path / "scored.csv"
        code = main(
            ["score", str(model_path), str(csv_path), "--output", str(out_path)]
        )
        assert code == 0
        with out_path.open() as handle:
            rows = list(csv_module.DictReader(handle))
        by_label = {row["label"]: float(row["score"]) for row in rows}
        for i, value in enumerate(expected):
            assert by_label[f"item{i:02d}"] == pytest.approx(
                value, abs=1e-12
            )

    def test_score_missing_model_is_reported(self, ranking_csv, capsys):
        path, _ = ranking_csv
        code = main(["score", "/does/not/exist.json", str(path)])
        assert code == 2
        assert "error:" in capsys.readouterr().err

    def test_save_rejects_unknown_format(self, ranking_csv, tmp_path, capsys):
        path, _ = ranking_csv
        code = main(
            [
                "save",
                str(path),
                "--alpha",
                "+quality,+coverage,-defects",
                "--model",
                str(tmp_path / "model.pickle"),
                "--restarts",
                "1",
            ]
        )
        assert code == 2
        assert "error:" in capsys.readouterr().err
