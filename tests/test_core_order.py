"""Tests for the ranking order of Eq.(1)–(3)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.core.order import RankingOrder, order_from_sets


@pytest.fixture
def mixed_order():
    """Order with one benefit and one cost attribute."""
    return RankingOrder(alpha=np.array([1.0, -1.0]))


class TestConstruction:
    def test_attribute_sets(self):
        order = RankingOrder(alpha=np.array([1.0, -1.0, 1.0, -1.0]))
        np.testing.assert_array_equal(order.benefit_attributes, [0, 2])
        np.testing.assert_array_equal(order.cost_attributes, [1, 3])
        assert order.dimension == 4

    def test_invalid_alpha_raises(self):
        with pytest.raises(ConfigurationError):
            RankingOrder(alpha=np.array([1.0, 0.5]))

    def test_order_from_sets(self):
        order = order_from_sets(3, benefit=[0, 2], cost=[1])
        np.testing.assert_array_equal(order.alpha, [1.0, -1.0, 1.0])

    def test_order_from_sets_overlap_raises(self):
        with pytest.raises(ConfigurationError):
            order_from_sets(2, benefit=[0, 1], cost=[1])

    def test_order_from_sets_incomplete_raises(self):
        with pytest.raises(ConfigurationError):
            order_from_sets(3, benefit=[0], cost=[1])

    def test_order_from_sets_bad_dim_raises(self):
        with pytest.raises(ConfigurationError):
            order_from_sets(0)


class TestPairwiseRelations:
    def test_precedes_benefit_and_cost(self, mixed_order):
        worse = np.array([1.0, 10.0])  # low benefit, high cost
        better = np.array([2.0, 5.0])
        assert mixed_order.precedes(worse, better)
        assert not mixed_order.precedes(better, worse)
        assert mixed_order.strictly_precedes(worse, better)

    def test_reflexivity(self, mixed_order):
        x = np.array([1.0, 2.0])
        assert mixed_order.precedes(x, x)
        assert not mixed_order.strictly_precedes(x, x)

    def test_antisymmetry(self, mixed_order, rng):
        for _ in range(20):
            x = rng.normal(size=2)
            y = rng.normal(size=2)
            if mixed_order.precedes(x, y) and mixed_order.precedes(y, x):
                np.testing.assert_array_equal(x, y)

    def test_transitivity(self, mixed_order):
        a = np.array([0.0, 10.0])
        b = np.array([1.0, 8.0])
        c = np.array([2.0, 3.0])
        assert mixed_order.precedes(a, b)
        assert mixed_order.precedes(b, c)
        assert mixed_order.precedes(a, c)

    def test_incomparable_pair(self, mixed_order):
        # Better on benefit, worse on cost: incomparable.
        x = np.array([2.0, 10.0])
        y = np.array([1.0, 1.0])
        assert not mixed_order.comparable(x, y)

    def test_example2_ordering(self):
        """The four-country chain of Example 2 with its alpha."""
        from repro.data.toy import example2_countries

        _labels, X, alpha = example2_countries()
        order = RankingOrder(alpha=alpha)
        # The paper: xI < xM < xG < xN is a chain.
        for i in range(3):
            assert order.strictly_precedes(X[i], X[i + 1])
        assert order.is_chain(X)

    def test_dimension_mismatch_raises(self, mixed_order):
        with pytest.raises(DataValidationError):
            mixed_order.precedes(np.ones(3), np.ones(2))


class TestMatrixQueries:
    def test_dominance_matrix_matches_pairwise(self, mixed_order, rng):
        X = rng.normal(size=(12, 2))
        D = mixed_order.dominance_matrix(X)
        for i in range(12):
            for j in range(12):
                assert D[i, j] == mixed_order.precedes(X[i], X[j])

    def test_strict_matrix_excludes_diagonal(self, mixed_order, rng):
        X = rng.normal(size=(10, 2))
        S = mixed_order.strict_dominance_matrix(X)
        assert not np.any(np.diag(S))

    def test_pareto_front_of_chain_is_top(self):
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        X = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        np.testing.assert_array_equal(order.pareto_front(X), [2])

    def test_pareto_front_of_anti_chain_is_everything(self):
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        X = np.array([[0.0, 2.0], [1.0, 1.0], [2.0, 0.0]])
        np.testing.assert_array_equal(order.pareto_front(X), [0, 1, 2])

    def test_comparable_pairs_iterates_strict_pairs(self):
        order = RankingOrder(alpha=np.array([1.0]))
        X = np.array([[1.0], [2.0], [3.0]])
        pairs = set(order.comparable_pairs(X))
        assert pairs == {(0, 1), (0, 2), (1, 2)}

    def test_is_chain_false_with_incomparables(self, mixed_order):
        X = np.array([[2.0, 10.0], [1.0, 1.0]])
        assert not mixed_order.is_chain(X)

    def test_nan_data_raises(self, mixed_order):
        X = np.array([[1.0, np.nan]])
        with pytest.raises(DataValidationError):
            mixed_order.dominance_matrix(X)

    def test_wrong_width_raises(self, mixed_order):
        with pytest.raises(DataValidationError):
            mixed_order.dominance_matrix(np.ones((4, 3)))
