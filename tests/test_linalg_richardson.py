"""Tests for the preconditioned Richardson update (Eq.(27)–(28))."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError
from repro.linalg import (
    column_norm_preconditioner,
    optimal_step_size,
    richardson_solve,
    richardson_step,
)


def _spd_system(rng, d=3, m=4):
    """Random SPD system P A = B with a known solution."""
    G = rng.normal(size=(m, m + 2))
    A = G @ G.T + 0.1 * np.eye(m)
    P_true = rng.normal(size=(d, m))
    B = P_true @ A
    return A, B, P_true


class TestOptimalStepSize:
    def test_identity_gives_one(self):
        assert optimal_step_size(np.eye(4)) == pytest.approx(1.0)

    def test_classical_formula(self, rng):
        A, _, _ = _spd_system(rng)
        eig = np.linalg.eigvalsh(0.5 * (A + A.T))
        assert optimal_step_size(A) == pytest.approx(2.0 / (eig[0] + eig[-1]))

    def test_singular_matrix_finite_step(self):
        A = np.zeros((3, 3))
        gamma = optimal_step_size(A)
        assert np.isfinite(gamma) and gamma > 0

    def test_nonsquare_raises(self):
        with pytest.raises(ConfigurationError):
            optimal_step_size(np.ones((2, 3)))


class TestPreconditioner:
    def test_column_norms(self):
        A = np.array([[3.0, 0.0], [4.0, 0.0]])
        diag = column_norm_preconditioner(A)
        assert diag[0] == pytest.approx(5.0)
        assert diag[1] >= 1e-12  # floored, not zero

    def test_positive_everywhere(self, rng):
        A = rng.normal(size=(5, 5))
        assert np.all(column_norm_preconditioner(A) > 0)

    def test_non_2d_raises(self):
        with pytest.raises(ConfigurationError):
            column_norm_preconditioner(np.ones(3))


class TestRichardsonStep:
    def test_exact_solution_is_fixed_point(self, rng):
        A, B, P_true = _spd_system(rng)
        stepped = richardson_step(P_true, A, B)
        np.testing.assert_allclose(stepped, P_true, atol=1e-10)

    def test_step_decreases_residual(self, rng):
        A, B, P_true = _spd_system(rng)
        P0 = P_true + rng.normal(scale=0.5, size=P_true.shape)
        r0 = np.linalg.norm(P0 @ A - B)
        P1 = richardson_step(P0, A, B, precondition=False)
        r1 = np.linalg.norm(P1 @ A - B)
        assert r1 < r0

    def test_preconditioned_step_decreases_residual(self, rng):
        A, B, P_true = _spd_system(rng)
        # Badly scaled system: multiply one column's influence.
        scale = np.diag([1.0, 100.0, 1.0, 1.0])
        A_bad = scale @ A @ scale
        B_bad = P_true @ A_bad
        P0 = P_true + rng.normal(scale=0.5, size=P_true.shape)
        r0 = np.linalg.norm(P0 @ A_bad - B_bad)
        P1 = richardson_step(P0, A_bad, B_bad, precondition=True)
        assert np.linalg.norm(P1 @ A_bad - B_bad) < r0

    def test_shape_mismatch_raises(self, rng):
        A, B, _ = _spd_system(rng)
        with pytest.raises(ConfigurationError):
            richardson_step(np.zeros((2, 3)), A, B)

    def test_wrong_system_shape_raises(self):
        with pytest.raises(ConfigurationError):
            richardson_step(np.zeros((2, 4)), np.eye(3), np.zeros((2, 4)))

    def test_explicit_gamma_used(self, rng):
        A, B, P_true = _spd_system(rng)
        P0 = np.zeros_like(P_true)
        # gamma = 0 must be a no-op.
        same = richardson_step(P0, A, B, gamma=0.0)
        np.testing.assert_array_equal(same, P0)


class TestRichardsonSolve:
    def test_converges_to_true_solution(self, rng):
        A, B, P_true = _spd_system(rng)
        result = richardson_solve(A, B, tol=1e-10)
        assert result.converged
        np.testing.assert_allclose(result.solution, P_true, atol=1e-6)

    def test_reports_iterations(self, rng):
        A, B, _ = _spd_system(rng)
        result = richardson_solve(A, B, tol=1e-8)
        assert result.n_iterations > 0
        assert result.residual_norm <= 1e-8

    def test_unpreconditioned_converges_too(self, rng):
        A, B, P_true = _spd_system(rng)
        result = richardson_solve(A, B, tol=1e-8, precondition=False)
        assert result.converged
        np.testing.assert_allclose(result.solution, P_true, atol=1e-5)

    def test_warm_start(self, rng):
        A, B, P_true = _spd_system(rng)
        cold = richardson_solve(A, B, tol=1e-10)
        warm = richardson_solve(A, B, P0=P_true, tol=1e-10)
        assert warm.n_iterations <= cold.n_iterations

    def test_max_iter_respected(self, rng):
        A, B, _ = _spd_system(rng)
        result = richardson_solve(A, B, tol=1e-16, max_iter=3)
        assert result.n_iterations <= 3
