"""Tests for Algorithm 1 (the alternating RPC learning loop)."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, ConvergenceWarning
from repro.core.learning import (
    fit_rpc_curve,
    initialize_control_points,
    objective_value,
)
from repro.data.normalize import normalize_unit_cube
from repro.data.synthetic import sample_crescent, sample_monotone_cloud
from repro.geometry import check_rpc_constraints, empirical_monotonicity_violations


@pytest.fixture
def unit_cloud():
    cloud = sample_monotone_cloud(
        alpha=np.array([1.0, -1.0]), n=120, seed=4, noise=0.02
    )
    return normalize_unit_cube(cloud.X), np.array([1.0, -1.0])


class TestInitialization:
    def test_linear_init_on_diagonal(self):
        X = np.random.default_rng(0).uniform(size=(20, 3))
        alpha = np.array([1.0, 1.0, -1.0])
        P = initialize_control_points(X, alpha, init="linear")
        check_rpc_constraints(P, alpha)
        # Interior points sit at thirds of the corner-to-corner segment.
        p0, p3 = P[:, 0], P[:, 3]
        np.testing.assert_allclose(P[:, 1], p0 + (p3 - p0) / 3, atol=1e-2)

    def test_random_init_feasible(self, rng):
        X = rng.uniform(0.05, 0.95, size=(30, 2))
        alpha = np.array([1.0, 1.0])
        P = initialize_control_points(X, alpha, init="random", rng=rng)
        check_rpc_constraints(P, alpha)

    def test_random_init_deterministic_given_rng(self):
        X = np.random.default_rng(1).uniform(size=(30, 2))
        alpha = np.array([1.0, 1.0])
        P1 = initialize_control_points(
            X, alpha, rng=np.random.default_rng(7)
        )
        P2 = initialize_control_points(
            X, alpha, rng=np.random.default_rng(7)
        )
        np.testing.assert_array_equal(P1, P2)

    def test_higher_degree_has_more_interior(self, rng):
        X = rng.uniform(0.05, 0.95, size=(30, 2))
        P = initialize_control_points(
            X, np.array([1.0, 1.0]), degree=5, rng=rng
        )
        assert P.shape == (2, 6)

    def test_unknown_init_raises(self, rng):
        X = rng.uniform(size=(10, 2))
        with pytest.raises(ConfigurationError):
            initialize_control_points(X, np.array([1.0, 1.0]), init="zeros")

    def test_too_few_rows_raises(self):
        X = np.ones((1, 2)) * 0.5
        with pytest.raises(ConfigurationError):
            initialize_control_points(X, np.array([1.0, 1.0]), degree=5)


class TestFitBehaviour:
    def test_objective_decreases_monotonically(self, unit_cloud):
        X, alpha = unit_cloud
        result = fit_rpc_curve(X, alpha, init="linear", inner_updates=16)
        assert result.trace.is_monotone_decreasing()
        assert result.trace.final_objective <= result.trace.objectives[0]

    def test_fitted_curve_satisfies_constraints(self, unit_cloud):
        X, alpha = unit_cloud
        result = fit_rpc_curve(X, alpha, init="linear", inner_updates=16)
        check_rpc_constraints(result.curve.control_points, alpha)

    def test_fitted_curve_strictly_monotone(self, unit_cloud):
        X, alpha = unit_cloud
        result = fit_rpc_curve(X, alpha, init="linear", inner_updates=16)
        report = empirical_monotonicity_violations(result.curve, alpha)
        assert report.is_monotone

    def test_scores_shape_and_range(self, unit_cloud):
        X, alpha = unit_cloud
        result = fit_rpc_curve(X, alpha, init="linear", inner_updates=16)
        assert result.scores.shape == (X.shape[0],)
        assert np.all((result.scores >= 0) & (result.scores <= 1))

    def test_improves_over_initial_objective(self, unit_cloud):
        X, alpha = unit_cloud
        result = fit_rpc_curve(X, alpha, init="linear", inner_updates=16)
        assert result.trace.final_objective < 0.8 * result.trace.objectives[0]

    def test_objective_value_helper(self, unit_cloud):
        X, alpha = unit_cloud
        result = fit_rpc_curve(X, alpha, init="linear", inner_updates=16)
        J = objective_value(X, result.curve, result.scores)
        assert J == pytest.approx(result.trace.final_objective, rel=1e-9)

    def test_pinv_update_runs(self, unit_cloud):
        X, alpha = unit_cloud
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_rpc_curve(X, alpha, update="pinv", init="linear")
        # The closed-form update typically triggers the delta-J-negative
        # early stop (the instability the paper describes); whatever the
        # stop reason, constraints must hold.
        check_rpc_constraints(result.curve.control_points, alpha)

    def test_unpreconditioned_richardson_runs(self, unit_cloud):
        X, alpha = unit_cloud
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_rpc_curve(
                X, alpha, precondition=False, init="linear", inner_updates=16
            )
        assert result.trace.is_monotone_decreasing()

    def test_degree_two_and_four(self, unit_cloud):
        X, alpha = unit_cloud
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            for degree in (2, 4):
                result = fit_rpc_curve(
                    X, alpha, degree=degree, init="linear", inner_updates=16
                )
                assert result.curve.degree == degree
                check_rpc_constraints(result.curve.control_points, alpha)

    def test_unconstrained_mode_skips_pinning(self, unit_cloud):
        X, alpha = unit_cloud
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            result = fit_rpc_curve(
                X,
                alpha,
                enforce_constraints=False,
                init="linear",
                inner_updates=16,
                max_iter=50,
            )
        # Without clipping the end points drift off the corners.
        P = result.curve.control_points
        corners = np.column_stack([0.5 * (1 - alpha), 0.5 * (1 + alpha)])
        drift = np.abs(P[:, [0, -1]] - corners).max()
        assert drift > 1e-6

    def test_convergence_warning_on_tiny_budget(self, unit_cloud):
        X, alpha = unit_cloud
        with pytest.warns(ConvergenceWarning):
            fit_rpc_curve(
                X, alpha, max_iter=1, xi=1e-15, init="linear"
            )

    def test_invalid_inputs(self, unit_cloud):
        X, alpha = unit_cloud
        with pytest.raises(ConfigurationError):
            fit_rpc_curve(X, alpha, xi=0.0)
        with pytest.raises(ConfigurationError):
            fit_rpc_curve(X[:1], alpha)
        with pytest.raises(ConfigurationError):
            fit_rpc_curve(X.ravel(), alpha)
        with pytest.raises(ConfigurationError):
            fit_rpc_curve(X, alpha, update="sgd")


class TestPropositionTwo:
    """Proposition 2: J(P_t, s_t) is a decaying convergent sequence."""

    def test_decay_across_seeds(self):
        for seed in range(5):
            cloud = sample_monotone_cloud(
                alpha=np.array([1.0, 1.0]), n=80, seed=seed, noise=0.03
            )
            X = normalize_unit_cube(cloud.X)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                result = fit_rpc_curve(
                    X,
                    np.array([1.0, 1.0]),
                    init="random",
                    rng=np.random.default_rng(seed),
                    inner_updates=16,
                )
            assert result.trace.is_monotone_decreasing(), f"seed {seed}"


class TestTraceBookkeeping:
    """Trace invariants, including the ΔJ < 0 early-stop regression.

    A Richardson gamma used to be appended to ``step_sizes`` *before*
    the projection step could reject the iteration, so a fit ending on
    the ΔJ < 0 early stop recorded one gamma more than
    ``n_iterations``.  These tests pin the repaired invariant.
    """

    @staticmethod
    def _crescent_fit(seed, warm_start=False):
        X = normalize_unit_cube(sample_crescent(n=60, seed=seed).X)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            return fit_rpc_curve(
                X,
                np.ones(X.shape[1]),
                init="random",
                rng=np.random.default_rng(seed),
                inner_updates=32,
                max_iter=120,
                warm_start=warm_start,
            )

    def test_early_stop_fires_on_crescent(self):
        # Guard: the scenario must actually exercise the early stop,
        # otherwise the regression assertions below test nothing.
        assert any(
            self._crescent_fit(seed).trace.stopped_on_increase
            for seed in range(3)
        )

    def test_step_sizes_match_iterations_on_early_stop(self):
        for seed in range(3):
            trace = self._crescent_fit(seed).trace
            assert len(trace.step_sizes) == trace.n_iterations, (
                f"seed {seed}: {len(trace.step_sizes)} step sizes for "
                f"{trace.n_iterations} iterations"
            )
            # objectives carries the initial configuration at index 0.
            assert len(trace.objectives) == trace.n_iterations + 1

    def test_step_sizes_match_iterations_on_convergence(self, unit_cloud):
        X, alpha = unit_cloud
        result = fit_rpc_curve(
            X, alpha, init="linear", inner_updates=16, xi=1e-4
        )
        trace = result.trace
        assert trace.converged
        assert len(trace.step_sizes) == trace.n_iterations


class TestWarmStart:
    """Warm-started projection must not change what the fit converges to."""

    def test_same_objective_as_cold(self, unit_cloud):
        X, alpha = unit_cloud
        results = {}
        for warm in (False, True):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                results[warm] = fit_rpc_curve(
                    X, alpha, init="linear", inner_updates=16,
                    warm_start=warm,
                )
        cold, warm = results[False], results[True]
        assert warm.trace.final_objective == pytest.approx(
            cold.trace.final_objective, abs=1e-8
        )
        np.testing.assert_allclose(warm.scores, cold.scores, atol=1e-6)

    def test_warm_trace_still_monotone(self):
        for seed in range(3):
            cloud = sample_monotone_cloud(
                alpha=np.array([1.0, 1.0]), n=80, seed=seed, noise=0.03
            )
            X = normalize_unit_cube(cloud.X)
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                result = fit_rpc_curve(
                    X,
                    np.array([1.0, 1.0]),
                    init="random",
                    rng=np.random.default_rng(seed),
                    inner_updates=16,
                    warm_start=True,
                )
            assert result.trace.is_monotone_decreasing(), f"seed {seed}"
