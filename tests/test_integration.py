"""Cross-module integration tests: the paper's claims end to end."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.baselines import (
    FirstPCARanker,
    MedianRankAggregator,
    WeightedSumRanker,
)
from repro.core.order import RankingOrder
from repro.data import (
    load_countries,
    load_journals,
    sample_crescent,
    table1a_objects,
    table1b_objects,
)
from repro.data.normalize import normalize_unit_cube
from repro.evaluation import (
    compare_rankers,
    count_order_violations,
    kendall_tau,
    spearman_rho,
)
from repro.princurve import ElasticMapCurve, PolygonalLineCurve


@pytest.fixture(scope="module")
def country_fit():
    data = load_countries()
    model = RankingPrincipalCurve(
        alpha=data.alpha, random_state=0, n_restarts=2
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(data.X)
    return data, model


class TestCountryExperiment:
    """Table 2 behaviour on the (partially synthetic) country data."""

    def test_explained_variance_near_paper(self, country_fit):
        data, model = country_fit
        ev = model.explained_variance(data.X)
        # Paper reports ~90%; the reconstruction must land close.
        assert ev > 0.85

    def test_rpc_beats_elmap_fit(self, country_fit):
        """Table 2's 90% vs 86% explained-variance comparison.  The
        Elmap configuration is calibrated to the regularisation level
        of Gorban et al.'s quality-of-life map (a visibly stiff chain);
        see EXPERIMENTS.md for the paper-vs-measured numbers."""
        data, model = country_fit
        X_unit = normalize_unit_cube(data.X)
        elmap = ElasticMapCurve(
            n_nodes=10, stretch=0.1, bend=1.0, orient_alpha=data.alpha
        ).fit(X_unit)
        assert model.explained_variance(data.X) > elmap.explained_variance(
            X_unit
        )

    def test_luxembourg_top_swaziland_bottom_among_real(self, country_fit):
        data, model = country_fit
        ranking = model.rank(data.X, labels=data.labels)
        real = [
            label
            for label, flag in zip(data.labels, data.is_from_paper)
            if flag
        ]
        positions = {label: ranking.position_of(label) for label in real}
        assert positions["Luxembourg"] == min(positions.values())
        assert positions["Swaziland"] == max(positions.values())

    def test_tier_structure_of_real_countries(self, country_fit):
        """The paper's top tier must outrank the middle tier, which
        must outrank the bottom tier."""
        data, model = country_fit
        ranking = model.rank(data.X, labels=data.labels)
        top = ["Luxembourg", "Norway", "Kuwait", "Singapore", "United States"]
        middle = ["Moldova", "Vanuatu", "Suriname", "Morocco", "Iraq"]
        bottom = [
            "South Africa",
            "Sierra Leone",
            "Djibouti",
            "Zimbabwe",
            "Swaziland",
        ]
        worst_top = max(ranking.position_of(c) for c in top)
        best_mid = min(ranking.position_of(c) for c in middle)
        worst_mid = max(ranking.position_of(c) for c in middle)
        best_bottom = min(ranking.position_of(c) for c in bottom)
        assert worst_top < best_mid
        assert worst_mid < best_bottom

    def test_scores_span_most_of_unit_interval(self, country_fit):
        """Scores live in [0, 1] with the extremes near the worst/best
        reference corners (the paper's Swaziland-0 / Luxembourg-1
        anchoring, up to projection slack)."""
        data, model = country_fit
        s = model.score_samples(data.X)
        assert s.min() < 0.15
        assert s.max() > 0.9
        assert np.all((s >= 0.0) & (s <= 1.0))

    def test_no_strict_monotonicity_violations(self, country_fit):
        data, model = country_fit
        order = RankingOrder(alpha=data.alpha)
        summary = count_order_violations(
            model.score_samples, data.X, order, tie_tol=1e-9
        )
        assert summary.n_inversions == 0


class TestJournalExperiment:
    """Table 3 behaviour on the (partially synthetic) journal data."""

    @pytest.fixture(scope="class")
    def journal_fit(self):
        data = load_journals()
        model = RankingPrincipalCurve(
            alpha=data.alpha, random_state=0, n_restarts=2
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model.fit(data.X)
        return data, model

    def test_pattern_analysis_in_top_tier(self, journal_fit):
        data, model = journal_fit
        ranking = model.rank(data.X, labels=data.labels)
        top_real = [
            "IEEE T PATTERN ANAL",
            "ENTERP INF SYST UK",
            "J STAT SOFTW",
            "MIS QUART",
            "ACM COMPUT SURV",
        ]
        mid_real = [
            "DECIS SUPPORT SYST",
            "COMPUT STAT DATA AN",
            "IEEE T KNOWL DATA EN",
            "MACH LEARN",
            "IEEE T SYST MAN CY A",
        ]
        worst_top = max(ranking.position_of(j) for j in top_real)
        best_mid = min(ranking.position_of(j) for j in mid_real)
        assert worst_top < best_mid

    def test_tkde_smca_gap_shrinks_vs_raw_if(self, journal_fit):
        """The paper's headline observation: by raw IF, SMC-A (2.183)
        clearly outranks TKDE (1.892); RPC's comprehensive score pulls
        them together because TKDE's higher influence score compensates
        ("one indicator does not tell the whole story")."""
        data, model = journal_fit
        ranking = model.rank(data.X, labels=data.labels)
        from repro.core.scoring import build_ranking_list

        if_ranking = build_ranking_list(data.X[:, 0], labels=data.labels)
        if_gap = if_ranking.position_of(
            "IEEE T KNOWL DATA EN"
        ) - if_ranking.position_of("IEEE T SYST MAN CY A")
        rpc_gap = ranking.position_of(
            "IEEE T KNOWL DATA EN"
        ) - ranking.position_of("IEEE T SYST MAN CY A")
        assert if_gap > 0  # SMC-A above TKDE on raw IF
        assert abs(rpc_gap) < if_gap  # RPC closes (or flips) the gap


class TestToyExperiment:
    """Table 1 / Fig. 6: RPC separates what RankAgg cannot."""

    def _fit_scores(self, toy):
        # Three points cannot anchor an RPC fit alone; Fig. 6 draws the
        # toy objects against an S-type ranking curve learned from a
        # broader cloud.  Sample that supporting cloud around the
        # S-shaped cubic of Fig. 4 so the learned curve matches the
        # figure, then score the toy objects on it.
        from repro.data.synthetic import sample_around_curve
        from repro.geometry import cubic_from_interior_points

        s_curve = cubic_from_interior_points(
            toy.alpha, p1=[0.1, 0.6], p2=[0.9, 0.4]
        )
        support = sample_around_curve(s_curve, n=80, noise=0.02, seed=1)
        X = np.vstack([toy.X, support.X, [[0.0, 0.0], [1.0, 1.0]]])
        model = RankingPrincipalCurve(
            alpha=toy.alpha, random_state=0, n_restarts=1, init="linear"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model.fit(X)
        return model.score_samples(toy.X)

    def test_rankagg_ties_but_rpc_separates(self):
        toy = table1a_objects()
        agg = MedianRankAggregator(alpha=toy.alpha).score_samples(toy.X)
        assert agg[0] == agg[1]  # A ties B under RankAgg
        rpc_scores = self._fit_scores(toy)
        assert abs(rpc_scores[0] - rpc_scores[1]) > 1e-4  # RPC separates

    def test_rpc_order_matches_paper_table1a(self):
        toy = table1a_objects()
        scores = self._fit_scores(toy)
        # Paper order: A < B < C by score.
        assert scores[0] < scores[1] < scores[2]

    def test_perturbation_flips_rpc_but_not_rankagg(self):
        a = table1a_objects()
        b = table1b_objects()
        agg = MedianRankAggregator(alpha=a.alpha)
        np.testing.assert_allclose(
            agg.score_samples(a.X), agg.score_samples(b.X)
        )
        scores_b = self._fit_scores(b)
        # Paper Table 1(b): A' now scores above B.
        assert scores_b[0] > scores_b[1]


class TestCrescentShowdown:
    """Fig. 5: RPC's curved monotone skeleton vs straight/free curves."""

    def test_rpc_beats_pca_on_crescent(self):
        cloud = sample_crescent(n=250, seed=13, width=0.03)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            rpc = RankingPrincipalCurve(
                alpha=[1, 1], random_state=0, n_restarts=2
            ).fit(cloud.X)
        pca = FirstPCARanker(alpha=[1, 1]).fit(cloud.X)
        assert rpc.explained_variance(cloud.X) > pca.explained_variance(
            cloud.X
        ) + 0.03

    def test_rpc_recovers_latent_better_than_polyline_is_comparable(self):
        cloud = sample_crescent(n=250, seed=14, width=0.03)
        X = normalize_unit_cube(cloud.X)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            rpc = RankingPrincipalCurve(
                alpha=[1, 1], random_state=0, n_restarts=2
            ).fit(cloud.X)
        poly = PolygonalLineCurve(
            n_vertices=8, orient_alpha=np.array([1.0, 1.0])
        ).fit(X)
        rho_rpc = spearman_rho(rpc.score_samples(cloud.X), cloud.latent)
        rho_poly = spearman_rho(poly.score_samples(X), cloud.latent)
        assert rho_rpc > 0.97
        assert rho_rpc >= rho_poly - 0.01

    def test_polyline_violates_rpc_does_not(self):
        cloud = sample_crescent(n=200, seed=15, width=0.05)
        X = normalize_unit_cube(cloud.X)
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        poly = PolygonalLineCurve(
            n_vertices=8, orient_alpha=np.array([1.0, 1.0])
        ).fit(X)
        poly_summary = count_order_violations(poly.score_samples, X, order)
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            rpc = RankingPrincipalCurve(
                alpha=[1, 1], random_state=0, n_restarts=2
            ).fit(cloud.X)
        rpc_summary = count_order_violations(
            rpc.score_samples, cloud.X, order, tie_tol=1e-9
        )
        assert poly_summary.n_violations > 0
        assert rpc_summary.n_inversions == 0


class TestModelComparisonPipeline:
    def test_compare_rankers_on_countries(self):
        data = load_countries(n_countries=60)
        models = {
            "rpc": RankingPrincipalCurve(
                alpha=data.alpha, random_state=0, n_restarts=1, init="linear"
            ),
            "pca": FirstPCARanker(alpha=data.alpha),
            "wsum": WeightedSumRanker(alpha=data.alpha),
        }
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            comparison = compare_rankers(models, data.X, labels=data.labels)
        agreement = comparison.agreement_matrix()
        # All reasonable models agree strongly on this well-ordered data.
        for pair, tau in agreement.items():
            assert tau > 0.5, f"{pair} disagreed: tau={tau}"
        table = comparison.table(rows=["Luxembourg", "Swaziland"], sort_by="rpc")
        assert "Luxembourg" in table


class TestRankOrderStability:
    def test_rpc_kendall_stable_across_seeds(self):
        cloud = sample_crescent(n=120, seed=20, width=0.02)
        scores = []
        for seed in (1, 2):
            with warnings.catch_warnings():
                warnings.simplefilter("ignore")
                model = RankingPrincipalCurve(
                    alpha=[1, 1], random_state=seed, n_restarts=2
                ).fit(cloud.X)
            scores.append(model.score_samples(cloud.X))
        assert kendall_tau(scores[0], scores[1]) > 0.99
