"""Tests for the Tibshirani probabilistic principal curve."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.exceptions import ConfigurationError, NotFittedError
from repro.data.normalize import normalize_unit_cube
from repro.data.synthetic import sample_crescent, sample_ellipse
from repro.evaluation.metrics import spearman_rho
from repro.princurve import TibshiraniCurve


class TestFitting:
    def test_log_likelihood_increases(self, crescent_unit):
        model = TibshiraniCurve(n_nodes=15).fit(crescent_unit)
        ll = np.asarray(model.log_likelihood_trace_)
        assert ll.size >= 2
        # EM with penalty: the trace should be (weakly) increasing up
        # to small numerical slack.
        assert np.all(np.diff(ll) > -1e-6 * np.abs(ll[:-1]).max())

    def test_fits_crescent_skeleton(self):
        cloud = sample_crescent(n=200, seed=21, width=0.02)
        X = normalize_unit_cube(cloud.X)
        model = TibshiraniCurve(
            n_nodes=20, orient_alpha=np.array([1.0, 1.0])
        ).fit(X)
        assert model.explained_variance(X) > 0.95
        rho = spearman_rho(model.score_samples(X), cloud.latent)
        assert rho > 0.95

    def test_variance_estimated_positive(self, crescent_unit):
        model = TibshiraniCurve(n_nodes=15).fit(crescent_unit)
        assert model.variance_ > 0.0
        assert np.isfinite(model.variance_)

    def test_straight_data_low_variance(self):
        cloud = sample_ellipse(n=150, eccentricity=0.99, seed=2, noise=0.005)
        X = normalize_unit_cube(cloud.X)
        model = TibshiraniCurve(n_nodes=15).fit(X)
        # Noise variance should be recovered at roughly the injected
        # scale in normalised coordinates (well under the data spread).
        assert model.variance_ < 0.01

    def test_smoothness_penalty_straightens(self):
        cloud = sample_crescent(n=200, seed=22, width=0.02)
        X = normalize_unit_cube(cloud.X)
        soft = TibshiraniCurve(n_nodes=20, smoothness=1e-4).fit(X)
        stiff = TibshiraniCurve(n_nodes=20, smoothness=10.0).fit(X)
        # Strong roughness penalty prevents the chain from bending into
        # the crescent, costing explained variance.
        assert stiff.explained_variance(X) < soft.explained_variance(X)

    def test_responsibilities_are_distributions(self, crescent_unit):
        model = TibshiraniCurve(n_nodes=12).fit(crescent_unit)
        resp = model.posterior_responsibilities(crescent_unit)
        assert resp.shape == (crescent_unit.shape[0], 12)
        np.testing.assert_allclose(resp.sum(axis=1), 1.0, atol=1e-9)
        assert np.all(resp >= 0.0)


class TestInterface:
    def test_unfitted_raises(self, crescent_unit):
        with pytest.raises(NotFittedError):
            TibshiraniCurve().score_samples(crescent_unit)
        with pytest.raises(NotFittedError):
            TibshiraniCurve().posterior_responsibilities(crescent_unit)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            TibshiraniCurve(n_nodes=2)
        with pytest.raises(ConfigurationError):
            TibshiraniCurve(smoothness=-1.0)

    def test_capabilities(self):
        model = TibshiraniCurve()
        assert model.has_linear_capacity
        assert model.has_nonlinear_capacity
        assert model.parameter_size is None  # the paper's critique
