"""Two-family daemon end-to-end tests: one serving API for every family.

A live :class:`ScoringHTTPServer` with micro-batching *on* serves a
Bézier curve (single-file JSON), an elastic-map curve (manifest
directory) and a Borda aggregator side by side.  The tests drive real
sockets and pin the family-agnostic serving contract: per-entry
``family`` reporting, ``GET /v1/models/<name>``, the per-family request
counter, oracle-exact scores under concurrent mixed-family load, the
no-coalescing rule for batch-relative families, cross-family hot
reload, and the served A/B comparison helper.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
import warnings
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.data.synthetic import sample_monotone_cloud
from repro.evaluation.comparison import compare_served
from repro.families import build_model
from repro.server import ModelRegistry, ScoringHTTPServer
from repro.serving import save_model, score_batch

ALPHA = np.array([1.0, 1.0, -1.0])


def _fit_rpc(seed: int = 3):
    cloud = sample_monotone_cloud(alpha=ALPHA, n=40, seed=seed, noise=0.02)
    model = RankingPrincipalCurve(alpha=ALPHA, random_state=seed, n_restarts=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    return model, cloud.X


def _fit_family(name: str, seed: int = 4):
    cloud = sample_monotone_cloud(alpha=ALPHA, n=50, seed=seed, noise=0.05)
    model = build_model(name, alpha=ALPHA)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    return model, cloud.X


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A live daemon with micro-batching on, serving three families."""
    root = tmp_path_factory.mktemp("families")
    rpc_model, rpc_X = _fit_rpc()
    elmap_model, _ = _fit_family("elastic-map")
    borda_model, _ = _fit_family("borda")

    rpc_path = root / "curve.json"
    save_model(rpc_model, rpc_path, feature_names=["a", "b", "c"])
    elmap_path = save_model(elmap_model, root / "elmap")  # manifest dir
    borda_path = save_model(borda_model, root / "borda.json")

    registry = ModelRegistry()
    registry.register("curve", rpc_path)
    registry.register("elmap", elmap_path)
    registry.register("borda", borda_path)
    server = ScoringHTTPServer(
        ("127.0.0.1", 0),
        registry,
        batch_window=0.002,
        max_batch_rows=512,
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield {
        "base": f"http://{host}:{port}",
        "server": server,
        "registry": registry,
        "models": {"curve": rpc_model, "elmap": elmap_model,
                   "borda": borda_model},
        "paths": {"curve": rpc_path, "elmap": elmap_path,
                  "borda": borda_path},
        "X": rpc_X,
    }
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(url: str, payload) -> tuple[int, dict]:
    request = urllib.request.Request(
        url, data=json.dumps(payload).encode(), method="POST"
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestFamilyListing:
    def test_listing_reports_family_and_format(self, served):
        status, body = _get(served["base"] + "/v1/models")
        assert status == 200
        entries = {entry["name"]: entry for entry in body["models"]}
        assert entries["curve"]["family"] == "rpc"
        assert entries["curve"]["format"] == "json"
        assert entries["elmap"]["family"] == "elastic-map"
        assert entries["elmap"]["format"] == "manifest"
        assert entries["borda"]["family"] == "borda"
        for entry in entries.values():
            assert entry["fitted"] is True
            assert "backend" in entry and "score_dtype" in entry

    def test_get_single_model(self, served):
        status, entry = _get(served["base"] + "/v1/models/elmap")
        assert status == 200
        assert entry["name"] == "elmap"
        assert entry["family"] == "elastic-map"
        assert entry["format"] == "manifest"
        assert entry["n_attributes"] == 3
        assert "backend" in entry and "score_dtype" in entry

    def test_get_unknown_model_404(self, served):
        status, body = _get(served["base"] + "/v1/models/nope")
        assert status == 404
        assert "nope" in body["error"]

    def test_scoring_route_still_405_on_get(self, served):
        status, _ = _get(served["base"] + "/v1/models/curve/score")
        assert status == 405


class TestFamilyScoring:
    def test_bezier_scores_byte_identical(self, served):
        # The pinned fast path: serving through the family-agnostic
        # daemon must not move the Bézier scores by a single bit.
        model, X = served["models"]["curve"], served["X"]
        status, body = _post(
            served["base"] + "/v1/models/curve/score",
            {"rows": X.tolist()},
        )
        assert status == 200
        expected = score_batch(model, X)
        assert np.array_equal(np.asarray(body["scores"]), expected)

    def test_elastic_map_serves(self, served):
        model, X = served["models"]["elmap"], served["X"]
        status, body = _post(
            served["base"] + "/v1/models/elmap/score",
            {"rows": X.tolist()},
        )
        assert status == 200
        np.testing.assert_allclose(
            np.asarray(body["scores"]),
            np.asarray(model.score_samples(X), dtype=float),
            rtol=0.0,
            atol=1e-12,
        )

    def test_aggregator_serves_batch_relative(self, served):
        model, X = served["models"]["borda"], served["X"]
        status, body = _post(
            served["base"] + "/v1/models/borda/score",
            {"rows": X.tolist()},
        )
        assert status == 200
        expected = np.asarray(model.score_samples(X), dtype=float)
        assert np.array_equal(np.asarray(body["scores"]), expected)

    def test_concurrent_mixed_families_stay_oracle_exact(self, served):
        """Interleaved rpc/elastic-map/borda traffic with the batcher
        window open: every response must match its per-model oracle —
        cross-family (or cross-aggregator) coalescing would corrupt
        widths, scores, or batch-relative positions."""
        base, X = served["base"], served["X"]
        rng = np.random.default_rng(17)
        jobs = []
        for i in range(24):
            name = ("curve", "elmap", "borda")[i % 3]
            rows = X[rng.integers(0, X.shape[0], size=rng.integers(2, 7))]
            jobs.append((name, rows))

        def _score(job):
            name, rows = job
            status, body = _post(
                f"{base}/v1/models/{name}/score", {"rows": rows.tolist()}
            )
            return name, rows, status, body

        with ThreadPoolExecutor(max_workers=12) as pool:
            results = list(pool.map(_score, jobs))

        for name, rows, status, body in results:
            assert status == 200
            got = np.asarray(body["scores"])
            oracle = np.asarray(
                served["models"][name].score_samples(rows), dtype=float
            )
            if name == "curve":
                assert np.array_equal(got, oracle)
            else:
                # Same-family coalescing may move adapted-family scores
                # at the last ulp (BLAS shape sensitivity), never more.
                np.testing.assert_allclose(
                    got, oracle, rtol=0.0, atol=1e-12
                )

        # The batch-relative family must have bypassed coalescing:
        # every borda request's scores are positions among its own
        # rows, which the exact oracle match above already proves for
        # requests of differing sizes.
        stats = served["server"].batcher.stats()
        assert stats["requests_direct"] >= 8  # the borda third

    def test_families_counter_in_metrics(self, served):
        # Guarantee at least one scoring request per family, then look
        # at the JSON metrics (additive "families" key) and the
        # Prometheus exposition.
        base, X = served["base"], served["X"]
        for name in ("curve", "elmap", "borda"):
            _post(f"{base}/v1/models/{name}/score", {"rows": X[:3].tolist()})
        status, body = _get(base + "/metrics")
        assert status == 200
        families = body["families"]
        assert families["rpc"] >= 1
        assert families["elastic-map"] >= 1
        assert families["borda"] >= 1

        request = urllib.request.Request(
            base + "/metrics?format=prometheus"
        )
        with urllib.request.urlopen(request, timeout=10) as response:
            text = response.read().decode()
        assert "repro_requests_by_family_total" in text
        assert 'family="elastic-map"' in text


class TestFamilyErrors:
    def test_unfitted_nonrpc_model_409_names_its_type(self, served, tmp_path):
        model = build_model("elastic-map", alpha=ALPHA)  # never fitted
        path = save_model(model, tmp_path / "unfitted")
        served["registry"].register("unfitted", path)
        try:
            status, body = _post(
                served["base"] + "/v1/models/unfitted/score",
                {"rows": []},
            )
            assert status == 409
            assert "ElasticMapAdapter" in body["error"]
        finally:
            served["registry"]._models.pop("unfitted", None)

    def test_width_mismatch_422(self, served):
        status, body = _post(
            served["base"] + "/v1/models/elmap/score",
            {"rows": [[1.0, 2.0]]},
        )
        assert status == 422


class TestCrossFamilyHotReload:
    def test_reload_swaps_family(self, served):
        """Overwriting a registered path with a different family's
        payload must swap the served model — the registry is
        family-agnostic end to end."""
        base = served["base"]
        path = served["paths"]["borda"]
        original = path.read_text()
        pca_model, _ = _fit_family("first-pca", seed=8)
        try:
            save_model(pca_model, path)
            status, entry = _get(base + "/v1/models/borda")
            assert status == 200
            assert entry["family"] == "first-pca"
            X = served["X"][:5]
            status, body = _post(
                f"{base}/v1/models/borda/score", {"rows": X.tolist()}
            )
            assert status == 200
            np.testing.assert_allclose(
                np.asarray(body["scores"]),
                np.asarray(pca_model.score_samples(X), dtype=float),
                rtol=0.0,
                atol=1e-12,
            )
        finally:
            path.write_text(original)
            served["registry"].get("borda")  # complete the reload back


class TestComparedServed:
    def test_compare_served_two_families(self, served):
        X = served["X"]
        comparison = compare_served(
            served["base"], ["curve", "elmap"], X
        )
        assert set(comparison.rankings) == {"curve", "elmap"}
        oracle_curve = score_batch(served["models"]["curve"], X)
        assert np.array_equal(
            comparison.rankings["curve"].scores, oracle_curve
        )
        np.testing.assert_allclose(
            comparison.rankings["elmap"].scores,
            np.asarray(
                served["models"]["elmap"].score_samples(X), dtype=float
            ),
            rtol=0.0,
            atol=1e-12,
        )
        # The comparison surface works end to end on served scores.
        agreement = comparison.agreement_matrix()
        assert ("curve", "elmap") in agreement

    def test_compare_served_unknown_model_propagates_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            compare_served(served["base"], ["ghost"], served["X"][:4])
        assert excinfo.value.code == 404
