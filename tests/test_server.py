"""End-to-end tests for the scoring daemon and its model registry.

The server under test is the real :class:`ScoringHTTPServer` bound to
an ephemeral port and driven over actual sockets with :mod:`urllib` —
no mocked handlers — so these tests pin the full contract: routing,
JSON bodies, the 4xx taxonomy, hot reload, and metrics accounting.
"""

from __future__ import annotations

import json
import os
import threading
import urllib.error
import urllib.request
import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.core.exceptions import ConfigurationError
from repro.data.synthetic import sample_monotone_cloud
from repro.server import (
    ModelRegistry,
    ScoringHTTPServer,
    ServerMetrics,
    UnknownModelError,
)
from repro.serving import save_model, score_batch

ALPHA = np.array([1.0, 1.0, -1.0])


def _fit(seed: int, n: int = 40) -> tuple[RankingPrincipalCurve, np.ndarray]:
    cloud = sample_monotone_cloud(alpha=ALPHA, n=n, seed=seed, noise=0.02)
    model = RankingPrincipalCurve(alpha=ALPHA, random_state=seed, n_restarts=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    return model, cloud.X


@pytest.fixture(scope="module")
def fitted():
    return _fit(seed=3)


@pytest.fixture(scope="module")
def served(fitted, tmp_path_factory):
    """A live daemon on an ephemeral port serving one saved model."""
    model, X = fitted
    path = tmp_path_factory.mktemp("models") / "demo.json"
    save_model(model, path, feature_names=["a", "b", "c"])
    registry = ModelRegistry()
    registry.register("demo", path)
    server = ScoringHTTPServer(("127.0.0.1", 0), registry)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    yield f"http://{host}:{port}", registry, path, model, X
    server.shutdown()
    server.server_close()
    thread.join(timeout=5)


@pytest.fixture(autouse=True)
def _complete_pending_reloads(request):
    """After every test that used the shared daemon, finish any hot
    reload its file writes left pending.

    ``served`` is module-scoped shared state, and the registry's
    ``_maybe_reload`` is deliberately non-blocking — so a test that
    overwrites the model file and bumps its mtime *without* a
    follow-up access leaves a pending-reload window in which a later
    test's concurrent clients can be served the stale model (the
    root-caused TestConcurrentScoring flake).  An uncontended ``get``
    per registered model completes the reload inline, guarding the
    whole class of bug instead of relying on each mutating test to
    remember its own synchronous restore.
    """
    yield
    if "served" in request.fixturenames:
        _, registry, *_ = request.getfixturevalue("served")
        for name in registry.names():
            registry.get(name)


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(url: str, payload, raw: bytes | None = None) -> tuple[int, dict]:
    data = raw if raw is not None else json.dumps(payload).encode()
    request = urllib.request.Request(url, data=data, method="POST")
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


class TestEndpoints:
    def test_healthz(self, served):
        base, *_ = served
        status, body = _get(base + "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert body["models"] == ["demo"]

    def test_models_listing(self, served):
        base, _, path, *_ = served
        status, body = _get(base + "/v1/models")
        assert status == 200
        (entry,) = body["models"]
        assert entry["name"] == "demo"
        assert entry["path"] == str(path)
        assert entry["format"] == "json"
        assert entry["fitted"] is True
        assert entry["n_attributes"] == 3
        assert entry["feature_names"] == ["a", "b", "c"]
        assert entry["last_error"] is None

    def test_single_row_score(self, served):
        base, _, _, model, X = served
        status, body = _post(
            base + "/v1/models/demo/score", {"row": X[0].tolist()}
        )
        assert status == 200
        assert body["model"] == "demo"
        assert body["n"] == 1
        # JSON floats survive the round trip exactly (repr-based), so
        # the served score equals a local single-row solve to the bit.
        assert body["score"] == model.score_samples(X[:1])[0]
        assert body["scores"] == [body["score"]]

    def test_batch_score_matches_score_batch(self, served):
        base, _, _, model, X = served
        status, body = _post(
            base + "/v1/models/demo/score", {"rows": X.tolist()}
        )
        assert status == 200
        assert body["n"] == X.shape[0]
        np.testing.assert_array_equal(
            np.asarray(body["scores"]), score_batch(model, X)
        )

    def test_rank_endpoint(self, served):
        base, _, _, model, X = served
        labels = [f"obj{i}" for i in range(5)]
        status, body = _post(
            base + "/v1/models/demo/rank",
            {"rows": X[:5].tolist(), "labels": labels},
        )
        assert status == 200
        ranking = body["ranking"]
        assert [r["position"] for r in ranking] == [1, 2, 3, 4, 5]
        assert sorted(r["label"] for r in ranking) == sorted(labels)
        scores = [r["score"] for r in ranking]
        assert scores == sorted(scores, reverse=True)

    def test_rank_without_labels_uses_indices(self, served):
        base, *_ = served
        _, _, _, _, X = served
        status, body = _post(
            base + "/v1/models/demo/rank", {"rows": X[:3].tolist()}
        )
        assert status == 200
        assert sorted(r["label"] for r in body["ranking"]) == ["0", "1", "2"]

    def test_empty_batch_is_a_noop(self, served):
        base, *_ = served
        status, body = _post(base + "/v1/models/demo/score", {"rows": []})
        assert status == 200
        assert body["n"] == 0
        assert body["scores"] == []


class TestErrorContract:
    def test_malformed_json_is_400(self, served):
        base, *_ = served
        status, body = _post(
            base + "/v1/models/demo/score", None, raw=b"{not json"
        )
        assert status == 400
        assert "malformed JSON" in body["error"]

    def test_non_object_body_is_400(self, served):
        base, *_ = served
        status, body = _post(base + "/v1/models/demo/score", [1, 2, 3])
        assert status == 400
        assert "JSON object" in body["error"]

    def test_missing_row_keys_is_400(self, served):
        base, *_ = served
        status, body = _post(base + "/v1/models/demo/score", {"x": 1})
        assert status == 400
        assert "'row' or 'rows'" in body["error"]

    def test_both_row_keys_is_400(self, served):
        base, *_ = served
        status, _ = _post(
            base + "/v1/models/demo/score",
            {"row": [1, 2, 3], "rows": [[1, 2, 3]]},
        )
        assert status == 400

    def test_non_numeric_rows_is_400(self, served):
        base, *_ = served
        status, body = _post(
            base + "/v1/models/demo/score", {"rows": [["a", "b", "c"]]}
        )
        assert status == 400

    def test_ragged_rows_is_400(self, served):
        base, *_ = served
        status, _ = _post(
            base + "/v1/models/demo/score", {"rows": [[1, 2, 3], [1, 2]]}
        )
        assert status == 400

    def test_nested_row_is_400(self, served):
        base, *_ = served
        status, body = _post(
            base + "/v1/models/demo/score", {"row": [[1, 2, 3]]}
        )
        assert status == 400
        assert "flat list" in body["error"]

    def test_unknown_model_is_404(self, served):
        base, *_ = served
        status, body = _post(
            base + "/v1/models/missing/score", {"row": [1, 2, 3]}
        )
        assert status == 404
        assert "unknown model" in body["error"]
        assert "demo" in body["error"]

    def test_wrong_attribute_count_is_422(self, served):
        base, *_ = served
        status, body = _post(
            base + "/v1/models/demo/score", {"row": [1.0, 2.0]}
        )
        assert status == 422
        assert "2 attributes" in body["error"]

    def test_labels_on_score_endpoint_is_400(self, served):
        base, *_ = served
        status, body = _post(
            base + "/v1/models/demo/score",
            {"rows": [[1, 2, 3]], "labels": ["x"]},
        )
        assert status == 400
        assert "rank" in body["error"]
        # The same rule holds for an empty batch.
        status, _ = _post(
            base + "/v1/models/demo/score", {"rows": [], "labels": ["x"]}
        )
        assert status == 400

    def test_labels_length_checked_for_empty_batch(self, served):
        base, *_ = served
        status, body = _post(
            base + "/v1/models/demo/rank", {"rows": [], "labels": ["x"]}
        )
        assert status == 400
        assert "per row" in body["error"]

    def test_mismatched_labels_is_400(self, served):
        base, *_ = served
        status, _ = _post(
            base + "/v1/models/demo/rank",
            {"rows": [[1, 2, 3]], "labels": ["x", "y"]},
        )
        assert status == 400

    def test_unknown_route_is_404(self, served):
        base, *_ = served
        assert _get(base + "/v2/nothing")[0] == 404
        assert _post(base + "/v1/models/demo/explain", {"row": [1]})[0] == 404

    def test_get_on_scoring_endpoint_is_405(self, served):
        base, *_ = served
        request = urllib.request.Request(base + "/v1/models/demo/score")
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 405
        assert excinfo.value.headers["Allow"] == "POST"

    def test_negative_content_length_is_400(self, served):
        # A raw socket is needed: urllib refuses to send a negative
        # Content-Length. read(-1) must not hang the handler thread.
        import socket

        base, *_ = served
        host, port = base.removeprefix("http://").split(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(
                b"POST /v1/models/demo/score HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: -1\r\n\r\n"
            )
            sock.settimeout(10)
            response = sock.recv(4096).decode()
        assert response.startswith("HTTP/1.1 400")

    def test_stalled_body_is_408_and_closes_connection(self, fitted, tmp_path):
        # A client that sends headers but stalls mid-body must not pin
        # its handler thread (or get a desynced 500): after the
        # keep-alive timeout the daemon answers 408 and closes.
        import socket

        model, _ = fitted
        path = tmp_path / "m.json"
        save_model(model, path)
        registry = ModelRegistry()
        registry.register("m", path)
        server = ScoringHTTPServer(
            ("127.0.0.1", 0), registry, keepalive_timeout=0.4
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.settimeout(10)
                sock.sendall(
                    b"POST /v1/models/m/score HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Length: 100\r\n\r\n"
                    b'{"row": [1.0, '  # ... and never finish
                )
                raw = b""
                while True:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    raw += chunk
            head, _, payload = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 408"), head[:200]
            assert b"timed out" in payload

            # Drip-feeding chunks must not reset the clock: the
            # deadline covers the whole body, so a slowloris-style
            # trickle is cut off just the same.
            import time as _time

            with socket.create_connection((host, port), timeout=10) as sock:
                sock.settimeout(10)
                sock.sendall(
                    b"POST /v1/models/m/score HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Length: 4000\r\n\r\n"
                )
                started = _time.monotonic()
                raw = b""
                for _ in range(40):
                    try:
                        sock.sendall(b'{"ro')
                    except OSError:
                        break  # server already closed its read side
                    _time.sleep(0.05)
                    try:
                        sock.settimeout(0.01)
                        chunk = sock.recv(4096)
                        sock.settimeout(10)
                        if chunk:
                            raw += chunk
                            break
                    except TimeoutError:
                        sock.settimeout(10)
                sock.settimeout(10)
                while True:
                    try:
                        chunk = sock.recv(4096)
                    except OSError:
                        break
                    if not chunk:
                        break
                    raw += chunk
            assert raw.partition(b"\r\n\r\n")[0].startswith(
                b"HTTP/1.1 408"
            ), raw[:200]
            # ... and within ~the keep-alive budget, not the full drip.
            assert _time.monotonic() - started < 5.0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_unrouted_post_slow_drip_is_408(self, fitted, tmp_path):
        # The drain path for *unrouted* POSTs must run under the same
        # whole-body deadline as routed ones: a client POSTing to a
        # 404 path and dripping its body used to pin the handler
        # thread for as long as it pleased (the drain looped on bare
        # reads with no deadline).
        import socket
        import time as _time

        model, _ = fitted
        path = tmp_path / "m.json"
        save_model(model, path)
        registry = ModelRegistry()
        registry.register("m", path)
        server = ScoringHTTPServer(
            ("127.0.0.1", 0), registry, keepalive_timeout=0.4
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.settimeout(10)
                sock.sendall(
                    b"POST /no/such/path HTTP/1.1\r\n"
                    b"Host: x\r\nContent-Length: 4000\r\n\r\n"
                )
                started = _time.monotonic()
                raw = b""
                for _ in range(40):
                    try:
                        sock.sendall(b"drip")
                    except OSError:
                        break  # server already closed its read side
                    _time.sleep(0.05)
                    try:
                        sock.settimeout(0.01)
                        chunk = sock.recv(4096)
                        sock.settimeout(10)
                        if chunk:
                            raw += chunk
                            break
                    except TimeoutError:
                        sock.settimeout(10)
                sock.settimeout(10)
                while True:
                    try:
                        chunk = sock.recv(4096)
                    except OSError:
                        break
                    if not chunk:
                        break
                    raw += chunk
            head, _, payload = raw.partition(b"\r\n\r\n")
            assert head.startswith(b"HTTP/1.1 408"), raw[:200]
            assert b"timed out" in payload
            assert _time.monotonic() - started < 5.0
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)

    def test_undrained_oversize_body_closes_the_connection(self, served):
        # An unrouted POST whose declared body exceeds MAX_BODY_BYTES
        # is deliberately never read — so the connection must close
        # after the 404.  Keeping it alive used to hand the unread
        # body bytes to the keep-alive parser as the next request
        # line: the pipelined GET below would have read a garbage
        # response instead of being cleanly refused by EOF.
        import socket

        base, *_ = served
        host, port = base.removeprefix("http://").split(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.settimeout(10)
            sock.sendall(
                b"POST /no/such/path HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: 99999999999\r\n\r\n"
                b"GARBAGE-THAT-MUST-NOT-BECOME-A-REQUEST-LINE\r\n"
                b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            raw = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                raw += chunk
        head, _, rest = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 404"), raw[:200]
        # The 404 body, then EOF: the garbage was never parsed as a
        # request (the desynced server answered it with an HTML "Bad
        # request syntax" page), and the pipelined GET never answered.
        (length_header,) = (
            line for line in head.split(b"\r\n")
            if line.lower().startswith(b"content-length:")
        )
        assert len(rest) == int(length_header.split(b":")[1])
        assert b"Bad request" not in raw and b"healthz" not in raw

    def test_half_sent_body_closes_the_connection(self, served):
        # A client that declares more body than it sends leaves the
        # drain short; responding and reusing the socket would desync
        # framing, so the server must close after the 404.
        import socket

        base, *_ = served
        host, port = base.removeprefix("http://").split(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.settimeout(10)
            sock.sendall(
                b"POST /no/such/path HTTP/1.1\r\n"
                b"Host: x\r\nContent-Length: 100\r\n\r\n"
                b"only-ten-b"
            )
            sock.shutdown(socket.SHUT_WR)
            raw = b""
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                raw += chunk
        assert raw.startswith(b"HTTP/1.1 404"), raw[:200]
        assert raw.count(b"HTTP/1.1 ") == 1

    def test_unfitted_model_is_409(self, tmp_path):
        path = tmp_path / "unfitted.json"
        save_model(RankingPrincipalCurve(alpha=ALPHA), path)
        registry = ModelRegistry()
        registry.register("raw", path)
        server = ScoringHTTPServer(("127.0.0.1", 0), registry)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            host, port = server.server_address[:2]
            status, body = _post(
                f"http://{host}:{port}/v1/models/raw/score",
                {"row": [1.0, 2.0, 3.0]},
            )
            assert status == 409
            assert "not been fitted" in body["error"]
            # An empty probe batch must not report an unfitted model
            # as servable.
            status, _ = _post(
                f"http://{host}:{port}/v1/models/raw/score", {"rows": []}
            )
            assert status == 409
        finally:
            server.shutdown()
            server.server_close()
            thread.join(timeout=5)


class TestMetricsEndpoint:
    def test_metrics_accumulate(self, served):
        base, _, _, _, X = served
        before = _get(base + "/metrics")[1]
        _post(base + "/v1/models/demo/score", {"rows": X[:7].tolist()})
        _post(base + "/v1/models/missing/score", {"row": [1, 2, 3]})
        after = _get(base + "/metrics")[1]

        score_key = "POST /v1/models/{name}/score"
        delta = (
            after["endpoints"][score_key]["requests"]
            - before["endpoints"].get(score_key, {}).get("requests", 0)
        )
        assert delta == 2
        assert (
            after["rows_scored_total"] - before["rows_scored_total"] == 7
        )
        latency = after["endpoints"][score_key]["latency_ms"]
        assert set(latency) == {"p50", "p90", "p99"}
        assert latency["p50"] <= latency["p90"] <= latency["p99"]
        assert after["endpoints"][score_key]["by_status"]["404"] >= 1
        assert after["uptime_seconds"] >= 0.0
        assert after["requests_total"] > before["requests_total"]


def _request_with_headers(
    url: str, payload=None, request_id: str | None = None
) -> tuple[int, dict, dict]:
    """Like ``_get``/``_post`` but also returning the response headers."""
    data = None if payload is None else json.dumps(payload).encode()
    request = urllib.request.Request(
        url, data=data, method="POST" if data is not None else "GET"
    )
    if request_id is not None:
        request.add_header("X-Request-Id", request_id)
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return (
                response.status,
                json.loads(response.read()),
                dict(response.headers),
            )
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read()), dict(exc.headers)


class TestRequestTracing:
    def test_client_id_is_echoed(self, served):
        base, _, _, _, X = served
        status, _, headers = _request_with_headers(
            base + "/v1/models/demo/score",
            {"row": X[0].tolist()},
            request_id="trace-abc.123",
        )
        assert status == 200
        assert headers["X-Request-Id"] == "trace-abc.123"

    def test_missing_id_is_generated(self, served):
        base, *_ = served
        _, _, h1 = _request_with_headers(base + "/healthz")
        _, _, h2 = _request_with_headers(base + "/healthz")
        assert h1["X-Request-Id"] and h2["X-Request-Id"]
        assert h1["X-Request-Id"] != h2["X-Request-Id"]

    def test_garbage_id_is_replaced(self, served):
        base, *_ = served
        _, _, headers = _request_with_headers(
            base + "/healthz", request_id="x" * 500
        )
        assert headers["X-Request-Id"] != "x" * 500
        assert headers["X-Request-Id"]

    def test_error_responses_carry_the_id(self, served):
        base, *_ = served
        status, _, headers = _request_with_headers(
            base + "/v1/models/missing/score",
            {"row": [1.0, 2.0, 3.0]},
            request_id="err-trace-1",
        )
        assert status == 404
        assert headers["X-Request-Id"] == "err-trace-1"

    def test_failed_request_lands_in_metrics_error_log(self, served):
        base, *_ = served
        rid = "metrics-err-42"
        status, _, _ = _request_with_headers(
            base + "/v1/models/missing/score",
            {"row": [1.0, 2.0, 3.0]},
            request_id=rid,
        )
        assert status == 404
        metrics = _get(base + "/metrics")[1]
        assert metrics["errors_total"] >= 1
        matching = [
            err for err in metrics["recent_errors"]
            if err["request_id"] == rid
        ]
        assert matching, metrics["recent_errors"]
        assert matching[0]["status"] == 404
        assert matching[0]["endpoint"] == "POST /v1/models/{name}/score"

    def test_unrouted_request_is_traced(self, served):
        base, *_ = served
        rid = "unrouted-7"
        status, _, headers = _request_with_headers(
            base + "/nope", request_id=rid
        )
        assert status == 404
        assert headers["X-Request-Id"] == rid
        metrics = _get(base + "/metrics")[1]
        assert any(
            err["request_id"] == rid for err in metrics["recent_errors"]
        )


class TestHotReload:
    def test_mtime_change_swaps_the_model(self, served):
        base, registry, path, model, X = served
        replacement, _ = _fit(seed=11)
        old_scores = np.asarray(
            _post(
                base + "/v1/models/demo/score", {"rows": X[:5].tolist()}
            )[1]["scores"]
        )
        save_model(replacement, path, feature_names=["a", "b", "c"])
        # Force a visible mtime step even on coarse filesystems.
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))

        status, body = _post(
            base + "/v1/models/demo/score", {"rows": X[:5].tolist()}
        )
        assert status == 200
        new_scores = np.asarray(body["scores"])
        np.testing.assert_array_equal(
            new_scores, replacement.score_batch(X[:5])
        )
        assert not np.array_equal(new_scores, old_scores)

        (entry,) = registry.describe()
        assert entry["loads"] >= 2
        assert entry["last_error"] is None

        # Restore the original model for any tests that follow — and
        # *force* the reload before leaving this test.  Bumping the
        # mtime alone only schedules a reload on the next registry
        # access; because ``_maybe_reload`` is deliberately
        # non-blocking, leaving that first access to a later test's
        # concurrent clients means one of them performs the reload
        # while the rest are served the stale replacement model (the
        # historical TestConcurrentScoring flake).  A serial request
        # holds no contention on the reload lock, so the swap happens
        # inline, deterministically, right here.
        save_model(model, path, feature_names=["a", "b", "c"])
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))
        status, body = _post(
            base + "/v1/models/demo/score", {"rows": X[:5].tolist()}
        )
        assert status == 200
        np.testing.assert_array_equal(
            np.asarray(body["scores"]), old_scores
        )
        (entry,) = registry.describe()
        assert entry["loads"] >= 3

    def test_corrupt_reload_keeps_previous_model(self, tmp_path):
        model, X = _fit(seed=5)
        path = tmp_path / "model.json"
        save_model(model, path)
        registry = ModelRegistry()
        registry.register("m", path)
        expected = model.score_samples(X[:3])

        path.write_text("{ this is not a model }")
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))

        served_model = registry.get("m")
        np.testing.assert_array_equal(
            served_model.score_samples(X[:3]), expected
        )
        (entry,) = registry.describe()
        assert entry["loads"] == 1
        assert "reload failed" in entry["last_error"]

        # A valid write afterwards recovers on the next access.
        save_model(model, path)
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))
        registry.get("m")
        (entry,) = registry.describe()
        assert entry["loads"] == 2
        assert entry["last_error"] is None


class TestServerConstruction:
    def test_misconfiguration_fails_at_boot(self):
        # A daemon must not boot "healthy" and then 400 every request.
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError, match="n_jobs"):
            ScoringHTTPServer(("127.0.0.1", 0), registry, n_jobs=0)
        with pytest.raises(ConfigurationError, match="chunk_size"):
            ScoringHTTPServer(("127.0.0.1", 0), registry, chunk_size=0)


class TestModelRegistry:
    def test_unknown_name_raises(self):
        registry = ModelRegistry()
        with pytest.raises(UnknownModelError, match="unknown model"):
            registry.get("nope")

    def test_register_rejects_bad_suffix(self, tmp_path):
        registry = ModelRegistry()
        with pytest.raises(ConfigurationError):
            registry.register("m", tmp_path / "model.pickle")

    def test_contains_len_names(self, fitted, tmp_path):
        model, _ = fitted
        path = tmp_path / "m.npz"
        save_model(model, path)
        registry = ModelRegistry()
        registry.register("b", path)
        registry.register("a", path)
        assert len(registry) == 2
        assert "a" in registry and "nope" not in registry
        assert registry.names() == ["a", "b"]

    def test_pending_reload_is_non_blocking(self, fitted, tmp_path):
        """While a reload is in flight, ``get`` serves the *currently
        loaded* model instead of queueing behind the disk I/O — the
        documented eventual consistency of hot reload.  Pinned here
        because it is exactly the window that made stale reads
        possible in the TestConcurrentScoring flake: callers must not
        assume a bumped mtime is visible until an uncontended access
        has completed the reload.
        """
        model, X = fitted
        path = tmp_path / "m.json"
        save_model(model, path)
        registry = ModelRegistry()
        entry = registry.register("m", path)
        replacement, _ = _fit(seed=13)
        save_model(replacement, path)
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))

        before = entry.model
        with entry.reload_lock:  # simulate another thread mid-reload
            assert registry.get("m") is before
        (described,) = registry.describe()
        assert described["loads"] == 1
        # With the lock free, the next access reloads inline.
        assert registry.get("m") is not before
        (described,) = registry.describe()
        assert described["loads"] == 2

    def test_check_mtime_off_never_reloads(self, fitted, tmp_path):
        model, X = fitted
        path = tmp_path / "m.json"
        save_model(model, path)
        registry = ModelRegistry(check_mtime=False)
        registry.register("m", path)
        expected = registry.get("m").score_samples(X[:2])
        replacement, _ = _fit(seed=13)
        save_model(replacement, path)
        stat = path.stat()
        os.utime(path, ns=(stat.st_atime_ns, stat.st_mtime_ns + 10**9))
        np.testing.assert_array_equal(
            registry.get("m").score_samples(X[:2]), expected
        )
        (entry,) = registry.describe()
        assert entry["loads"] == 1


class TestServerMetricsUnit:
    def test_snapshot_shape(self):
        metrics = ServerMetrics(window=8)
        for i in range(20):
            metrics.observe("GET /x", 200, 0.001 * (i + 1), rows=2)
        metrics.observe("GET /x", 500, 0.5)
        snap = metrics.snapshot()
        assert snap["requests_total"] == 21
        assert snap["rows_scored_total"] == 40
        endpoint = snap["endpoints"]["GET /x"]
        assert endpoint["requests"] == 21
        assert endpoint["by_status"] == {"200": 20, "500": 1}
        # Window keeps only the last 8 observations.
        assert endpoint["latency_ms"]["p99"] <= 510.0
        assert metrics.rows_scored == 40

    def test_concurrent_observations(self):
        metrics = ServerMetrics()

        def hammer():
            for _ in range(200):
                metrics.observe("POST /y", 200, 0.001, rows=1)

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        snap = metrics.snapshot()
        assert snap["requests_total"] == 1600
        assert snap["rows_scored_total"] == 1600


class TestConcurrentScoring:
    """Parallel clients must all see the same (current) model.

    Historical flake, root-caused: the hot-reload test used to restore
    the shared model file and bump its mtime *without* issuing another
    request, leaving the registry holding the replacement model with a
    reload pending.  The first registry access then happened inside
    this test's six concurrent clients — and because
    ``ModelRegistry._maybe_reload`` is non-blocking by design, exactly
    one client performed the reload while any client that raced past
    the lock was served the stale replacement model, failing the
    array-equality assert.  Load-sensitive because the race window is
    the reload's disk I/O.  The fix is in the hot-reload test (it now
    forces the restore reload synchronously and asserts the original
    scores are being served again before finishing); this test also
    surfaces client-thread exceptions instead of burying them as
    ``None`` results.
    """

    def test_parallel_clients_get_consistent_answers(self, served):
        base, _, _, model, X = served
        expected = score_batch(model, X)
        results: list[np.ndarray] = [None] * 6  # type: ignore[list-item]
        errors: list[tuple[int, BaseException]] = []

        def client(slot: int) -> None:
            try:
                _, body = _post(
                    base + "/v1/models/demo/score", {"rows": X.tolist()}
                )
                results[slot] = np.asarray(body["scores"])
            except BaseException as exc:  # noqa: BLE001 - reported below
                errors.append((slot, exc))

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(6)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not any(thread.is_alive() for thread in threads), (
            "client threads still running after 30s"
        )
        assert not errors, f"client threads raised: {errors}"
        for got in results:
            np.testing.assert_array_equal(got, expected)
