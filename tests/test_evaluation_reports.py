"""Tests for the consolidated evaluation report."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro import RankingPrincipalCurve
from repro.data.synthetic import sample_monotone_cloud
from repro.evaluation.reports import EvaluationReport, evaluate_rpc_ranking


@pytest.fixture(scope="module")
def fitted():
    cloud = sample_monotone_cloud(
        alpha=np.array([1.0, -1.0]), n=80, seed=37, noise=0.02
    )
    model = RankingPrincipalCurve(
        alpha=[1, -1], random_state=0, n_restarts=1, init="linear"
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(cloud.X)
    return model, cloud


class TestEvaluateRpcRanking:
    def test_report_contents(self, fitted):
        model, cloud = fitted
        labels = [f"obj{i}" for i in range(cloud.X.shape[0])]
        report = evaluate_rpc_ranking(model, cloud.X, labels=labels)
        assert isinstance(report, EvaluationReport)
        assert report.n_objects == 80
        assert 0.9 < report.explained_variance <= 1.0
        assert report.violations.n_inversions == 0
        assert len(report.top) == 5 and len(report.bottom) == 5

    def test_meta_rules_all_pass_for_rpc(self, fitted):
        model, cloud = fitted
        report = evaluate_rpc_ranking(model, cloud.X)
        assert report.meta_rules.all_passed, report.meta_rules.summary()

    def test_render_is_readable(self, fitted):
        model, cloud = fitted
        labels = [f"obj{i}" for i in range(cloud.X.shape[0])]
        text = evaluate_rpc_ranking(model, cloud.X, labels=labels).render()
        assert "explained variance" in text
        assert "meta-rule report: 5/5 passed" in text
        assert "top of the list:" in text
        assert "obj" in text

    def test_custom_extremes_count(self, fitted):
        model, cloud = fitted
        report = evaluate_rpc_ranking(model, cloud.X, k_extremes=2)
        assert len(report.top) == 2 and len(report.bottom) == 2

    def test_custom_refit_closure_used(self, fitted):
        model, cloud = fitted
        calls = []

        def refit(X):
            calls.append(X.shape)
            return X.sum(axis=1)

        evaluate_rpc_ranking(model, cloud.X, refit=refit)
        assert calls  # the invariance check exercised the closure
