"""Tests for the five meta-rules as executable assessments."""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from repro.core.meta_rules import (
    MetaRuleReport,
    assess_ranking_model,
    check_capacity,
    check_explicitness,
    check_invariance,
    check_smoothness,
    check_strict_monotonicity,
)
from repro.core.order import RankingOrder
from repro.core.rpc import RankingPrincipalCurve
from repro.data.synthetic import sample_monotone_cloud


class _StubModel:
    """Configurable capability stub for the declared-rule checks."""

    def __init__(self, linear=True, nonlinear=True, size=7):
        self._linear = linear
        self._nonlinear = nonlinear
        self._size = size

    @property
    def has_linear_capacity(self):
        return self._linear

    @property
    def has_nonlinear_capacity(self):
        return self._nonlinear

    @property
    def parameter_size(self):
        return self._size


@pytest.fixture
def cloud2d():
    return sample_monotone_cloud(
        alpha=np.array([1.0, 1.0]), n=60, seed=5, noise=0.02
    )


class TestDeclaredRules:
    def test_capacity_pass(self):
        check = check_capacity(_StubModel())
        assert check.passed

    def test_capacity_fail_linear_only(self):
        check = check_capacity(_StubModel(nonlinear=False))
        assert not check.passed
        assert "nonlinear=False" in check.detail

    def test_explicitness_pass(self):
        assert check_explicitness(_StubModel(size=12)).passed

    def test_explicitness_fail(self):
        check = check_explicitness(_StubModel(size=None))
        assert not check.passed
        assert "unknown" in check.detail


class TestStrictMonotonicityCheck:
    def test_monotone_scorer_passes(self, cloud2d):
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        scorer = lambda X: X.sum(axis=1)  # noqa: E731 - test stub
        check = check_strict_monotonicity(scorer, cloud2d.X, order)
        assert check.passed

    def test_constant_scorer_fails(self, cloud2d):
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        scorer = lambda X: np.zeros(X.shape[0])  # noqa: E731
        check = check_strict_monotonicity(scorer, cloud2d.X, order)
        assert not check.passed

    def test_single_coordinate_scorer_fails_on_ties(self):
        # Score = x0 only: ties all pairs differing only in x1
        # (Example 1's x1 vs x2 failure).
        order = RankingOrder(alpha=np.array([1.0, 1.0]))
        X = np.array([[58.0, 1.4], [58.0, 16.2], [60.0, 5.0]])
        scorer = lambda X: X[:, 0]  # noqa: E731
        check = check_strict_monotonicity(scorer, X, order)
        assert not check.passed


class TestInvarianceCheck:
    def test_normalised_pipeline_passes(self, cloud2d, rng):
        def fit_and_score(X):
            lo, hi = X.min(axis=0), X.max(axis=0)
            U = (X - lo) / np.where(hi - lo <= 0, 1, hi - lo)
            return U.sum(axis=1)

        check = check_invariance(fit_and_score, cloud2d.X, rng)
        assert check.passed

    def test_unnormalised_pipeline_fails(self, cloud2d, rng):
        # Raw sums change order when one attribute is rescaled.
        check = check_invariance(
            lambda X: X.sum(axis=1), cloud2d.X, rng, n_transforms=5
        )
        assert not check.passed


class TestSmoothnessCheck:
    def test_linear_scorer_smooth(self, cloud2d, rng):
        check = check_smoothness(
            lambda X: X.sum(axis=1), cloud2d.X, rng
        )
        assert check.passed

    def test_absolute_value_kink_detected(self, rng):
        X = np.random.default_rng(0).uniform(-1, 1, size=(50, 2))
        scorer = lambda X: np.abs(X[:, 0])  # noqa: E731
        check = check_smoothness(scorer, X, rng, n_paths=16)
        assert not check.passed

    def test_polyline_projection_kink_detected(self, rng):
        # The Fig. 2(a) failure: polyline projection indices are C0 but
        # not C1 at vertex boundaries.
        from repro.data.normalize import normalize_unit_cube
        from repro.data.synthetic import sample_crescent
        from repro.princurve import PolygonalLineCurve

        X = normalize_unit_cube(sample_crescent(n=150, seed=2).X)
        model = PolygonalLineCurve(n_vertices=6).fit(X)
        check = check_smoothness(model.score_samples, X, rng, n_paths=24)
        assert not check.passed


class TestAggregateReport:
    def test_rpc_passes_all_five(self, cloud2d):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            model = RankingPrincipalCurve(
                alpha=[1, 1], random_state=0, n_restarts=1, init="linear"
            ).fit(cloud2d.X)

            def fit_and_score(X):
                refit = RankingPrincipalCurve(
                    alpha=[1, 1], random_state=0, n_restarts=1, init="linear"
                ).fit(X)
                return refit.score_samples(X)

            report = assess_ranking_model(
                model=model,
                scorer=model.score_samples,
                fit_and_score=fit_and_score,
                X=cloud2d.X,
                order=RankingOrder(alpha=np.array([1.0, 1.0])),
                rng=np.random.default_rng(1),
            )
        assert isinstance(report, MetaRuleReport)
        assert report.all_passed, report.summary()
        assert report.n_passed == 5

    def test_summary_format(self):
        from repro.core.meta_rules import RuleCheck

        report = MetaRuleReport(
            invariance=RuleCheck("scale and translation invariance", True, "ok"),
            strict_monotonicity=RuleCheck("strict monotonicity", False, "2 bad"),
            capacity=RuleCheck("linear/nonlinear capacity", True, "ok"),
            smoothness=RuleCheck("smoothness (C1)", True, "ok"),
            explicitness=RuleCheck("explicitness", True, "8"),
        )
        text = report.summary()
        assert "4/5" in text
        assert "[FAIL] strict monotonicity" in text
