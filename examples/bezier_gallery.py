#!/usr/bin/env python
"""Fig. 4 gallery: the four basic monotone cubic Bezier shapes.

Renders the concave, convex, S and reverse-S shapes of Fig. 4 with
their control polylines, verifies each satisfies the Proposition 1
monotonicity certificate empirically, and demonstrates the Fig. 2
failure modes on the Example 1 points: a polyline ranking rule ties
x1/x2, a non-monotone curve mis-orders x3/x4 — while every
RPC-feasible cubic orders all three pairs correctly.

Run:  python examples/bezier_gallery.py
"""

from __future__ import annotations

import numpy as np

from repro.core.projection import project_points
from repro.data import example1_points
from repro.data.normalize import MinMaxNormalizer
from repro.geometry import (
    BezierCurve,
    basic_shapes_2d,
    empirical_monotonicity_violations,
)
from repro.princurve import project_to_polyline
from repro.viz import ascii_scatter


def main() -> None:
    alpha = np.array([1.0, 1.0])

    print("=== Fig. 4: the four basic monotone cubic shapes ===")
    for name, curve in basic_shapes_2d().items():
        report = empirical_monotonicity_violations(curve, alpha)
        pts = curve.evaluate(np.linspace(0, 1, 400)).T
        poly = curve.control_points.T
        print(
            ascii_scatter(
                poly,
                curve=pts,
                width=46,
                height=13,
                point_char="o",
                title=(
                    f"{name}  (control points 'o', curve '#', "
                    f"monotone={report.is_monotone})"
                ),
            )
        )
        print()

    print("=== Fig. 2 / Example 1: failure modes on country points ===")
    pts = example1_points()
    # Normalise the six illustration points jointly.
    X = np.vstack(list(pts.values()))
    norm = MinMaxNormalizer().fit(X)
    U = {k: norm.transform(v[np.newaxis, :])[0] for k, v in pts.items()}

    # (a) A polyline with a horizontal piece (Fig. 2(a)).
    polyline = np.array([[0.0, 0.0], [0.45, 0.0], [1.0, 1.0]])
    s1, _ = project_to_polyline(U["x1"][np.newaxis, :], polyline)
    s2, _ = project_to_polyline(U["x2"][np.newaxis, :], polyline)
    print(f"polyline scores: x1={s1[0]:.4f}  x2={s2[0]:.4f}  "
          f"-> {'TIED (non-strict!)' if abs(s1[0]-s2[0]) < 1e-9 else 'ordered'}")

    # (b) A non-monotone "hook" curve (Fig. 2(b)): x backtracks, so two
    # points at the same x with different quality can project together.
    hook = BezierCurve(
        np.array([[0.0, 1.3, -0.3, 1.0], [0.0, 0.1, 0.9, 1.0]])
    )
    hook_report = empirical_monotonicity_violations(hook, alpha)
    s3 = project_points(hook, U["x3"][np.newaxis, :])[0]
    s4 = project_points(hook, U["x4"][np.newaxis, :])[0]
    print(f"hook curve monotone: {hook_report.is_monotone}")
    print(f"hook scores: x3={s3:.4f}  x4={s4:.4f}  "
          f"-> {'x4 NOT ranked above x3!' if s4 <= s3 + 1e-6 else 'ordered correctly'}")

    # (c) Any RPC-feasible cubic orders all three pairs strictly.
    from repro.geometry import cubic_from_interior_points

    rpc_curve = cubic_from_interior_points(
        alpha, p1=[0.15, 0.5], p2=[0.7, 0.85]
    )
    print("\nRPC-feasible cubic on the same pairs:")
    for worse, better in (("x1", "x2"), ("x3", "x4"), ("x5", "x6")):
        sw = project_points(rpc_curve, U[worse][np.newaxis, :])[0]
        sb = project_points(rpc_curve, U[better][np.newaxis, :])[0]
        verdict = "OK" if sb > sw else "VIOLATION"
        print(f"  {worse}={sw:.4f}  {better}={sb:.4f}  [{verdict}]")

    print("\nStrict monotonicity is not cosmetic: it is the property that "
          "makes these orderings come out right by construction.")


if __name__ == "__main__":
    main()
