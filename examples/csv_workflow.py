#!/usr/bin/env python
"""End-to-end CSV workflow: the downstream user's path through the API.

1. Export the bundled country table to a CSV (as a stand-in for "your
   own data file").
2. Load it back with :func:`repro.data.load_csv`, declare attribute
   directions with the '+NAME/-NAME' spec, fit an RPC.
3. Write the ranking to ``ranking.csv`` and print a stability report
   for the extremes (bootstrap confidence for a label-free ranking).

The same flow is available non-programmatically as::

    python -m repro rank countries.csv --alpha "+GDP,+LEB,-IMR,-Tuberculosis"

Run:  python examples/csv_workflow.py
"""

from __future__ import annotations

import tempfile
import pathlib

from repro import RankingPrincipalCurve
from repro.data import (
    COUNTRY_ATTRIBUTES,
    load_countries,
    load_csv,
    parse_alpha_spec,
    save_csv,
    save_ranking_csv,
)
from repro.evaluation import bootstrap_rank_stability


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-csv-"))
    data_path = workdir / "countries.csv"
    ranking_path = workdir / "ranking.csv"

    # 1. Export the bundled table (pretend this is the user's file).
    source = load_countries(n_countries=60)
    save_csv(
        data_path,
        source.labels,
        source.X,
        COUNTRY_ATTRIBUTES,
        label_column="country",
    )
    print(f"wrote {data_path} ({source.n_countries} rows)")

    # 2. Load + declare directions + fit.
    table = load_csv(data_path, label_column="country")
    alpha = parse_alpha_spec(
        "+GDP,+LEB,-IMR,-Tuberculosis", table.attribute_names
    )
    model = RankingPrincipalCurve(alpha=alpha, random_state=0)
    import warnings

    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ranking = model.fit_rank(table.X, labels=table.labels)
    print(f"fitted RPC: explained variance "
          f"{model.explained_variance(table.X):.3f}")

    # 3. Persist the ranking and show the extremes.
    save_ranking_csv(ranking_path, ranking)
    print(f"wrote {ranking_path}\n")
    print("top 5:")
    for label, score in ranking.top(5):
        print(f"  {score:.4f}  {label}")
    print("bottom 3:")
    for label, score in ranking.bottom(3):
        print(f"  {score:.4f}  {label}")

    # 4. How confident is the list?  Bootstrap the fit.
    def factory():
        return RankingPrincipalCurve(
            alpha=alpha, random_state=0, n_restarts=1, init="linear"
        )

    report = bootstrap_rank_stability(
        factory,
        table.X,
        labels=table.labels,
        n_resamples=6,
        random_state=1,
    )
    interesting = [ranking.labels[i] for i in ranking.order[:3]] + [
        ranking.labels[i] for i in ranking.order[-3:]
    ]
    print("\nbootstrap position stability (6 resamples):")
    print(report.table(rows=interesting))
    print("\nTight spreads at the extremes mean the top/bottom of the "
          "list would survive resampling the dataset — a label-free "
          "confidence statement to accompany the ranking.")


if __name__ == "__main__":
    main()
