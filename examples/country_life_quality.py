#!/usr/bin/env python
"""Country life-quality ranking (the paper's Section 6.2.1 experiment).

Ranks 171 countries on four GAPMINDER-style indicators — GDP per
capita, life expectancy at birth (benefits), infant mortality and
tuberculosis incidence (costs) — with ``alpha = (+1, +1, -1, -1)``.
Reproduces the Table 2 presentation: RPC scores/orders next to an
Elmap comparator, the learned control points in original units, and
the explained-variance comparison, plus Fig. 7's pairwise panels.

Run:  python examples/country_life_quality.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import RankingPrincipalCurve
from repro.data import (
    PAPER_EXPLAINED_VARIANCE,
    PAPER_TABLE2_RPC,
    load_countries,
)
from repro.data.normalize import MinMaxNormalizer
from repro.princurve import ElasticMapCurve
from repro.viz import pairwise_panels, render_panels


def main() -> None:
    data = load_countries()
    print(f"countries: {data.n_countries}   attributes: GDP, LEB, IMR, TB")
    print(f"alpha = {data.alpha}   ({int(data.is_from_paper.sum())} rows "
          "embedded verbatim from Table 2, rest synthesised — see DESIGN.md)")

    model = RankingPrincipalCurve(alpha=data.alpha, random_state=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ranking = model.fit_rank(data.X, labels=data.labels)

    # Elmap comparator at the paper's regularisation level.
    normalizer = MinMaxNormalizer().fit(data.X)
    X_unit = normalizer.transform(data.X)
    elmap = ElasticMapCurve(
        n_nodes=10, stretch=0.1, bend=1.0, orient_alpha=data.alpha
    ).fit(X_unit)
    elmap_scores = elmap.score_samples(X_unit)

    print("\n=== Explained variance (Table 2 headline) ===")
    print(f"RPC  : {model.explained_variance(data.X):.3f}   "
          f"(paper: {PAPER_EXPLAINED_VARIANCE['rpc']:.2f})")
    print(f"Elmap: {elmap.explained_variance(X_unit):.3f}   "
          f"(paper: {PAPER_EXPLAINED_VARIANCE['elmap']:.2f})")

    print("\n=== Table 2 rows: paper vs measured ===")
    header = (
        f"{'Country':<16}{'RPC score':>11}{'RPC order':>11}"
        f"{'paper score':>13}{'paper order':>13}{'Elmap score':>13}"
    )
    print(header)
    print("-" * len(header))
    for name, (paper_score, paper_order) in PAPER_TABLE2_RPC.items():
        idx = data.labels.index(name)
        print(
            f"{name:<16}{ranking.scores[idx]:>11.4f}"
            f"{ranking.positions[idx]:>11d}{paper_score:>13.4f}"
            f"{paper_order:>13d}{elmap_scores[idx]:>13.4f}"
        )

    print("\n=== Learned control points (original units, Table 2 bottom) ===")
    P = model.control_points_original_
    names = ["GDP", "LEB", "IMR", "TB"]
    for j, attr in enumerate(names):
        cells = "".join(f"{P[j, r]:>12.2f}" for r in range(P.shape[1]))
        print(f"  {attr:<4} p0..p3: {cells}")

    print("\n=== Fig. 7: pairwise projections (GDP/LEB panel) ===")
    panels = pairwise_panels(X_unit, model.curve_, attribute_names=names)
    gdp_leb = next(p for p in panels if p.names == ("GDP", "LEB"))
    print(render_panels([gdp_leb], width=64, height=18))

    print("\nInterpretation: the curve climbs steeply at low GDP — small "
          "income gains buy large LEB/IMR improvements — then flattens, "
          "matching the paper's reading of the $14300 threshold.")

    # The diminishing-returns observation, quantified: LEB gain along
    # the curve in the first GDP quintile vs the last.
    s = np.linspace(0.0, 1.0, 101)
    curve_orig = model.reconstruct(s)
    gdp_curve, leb_curve = curve_orig[:, 0], curve_orig[:, 1]
    low = gdp_curve <= np.quantile(gdp_curve, 0.2)
    high = gdp_curve >= np.quantile(gdp_curve, 0.8)
    gain_low = (leb_curve[low].max() - leb_curve[low].min()) / max(
        gdp_curve[low].max() - gdp_curve[low].min(), 1e-9
    )
    gain_high = (leb_curve[high].max() - leb_curve[high].min()) / max(
        gdp_curve[high].max() - gdp_curve[high].min(), 1e-9
    )
    print(f"\nLEB years gained per extra $1000 of GDP:")
    print(f"  poorest curve segment : {1000 * gain_low:.2f}")
    print(f"  richest curve segment : {1000 * gain_high:.2f}")


if __name__ == "__main__":
    main()
