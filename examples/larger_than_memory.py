#!/usr/bin/env python
"""Scoring inputs larger than memory: the full streaming toolkit.

A fitted Ranking Principal Curve is a tiny object, but the inputs it
scores need not be.  This example walks the three streaming termini on
a gzipped CSV, with every knob that bounds memory spelled out:

1. ``stream_score_csv`` — scores in *input* order, ``O(chunk_size)``
   rows resident.  Use it when a downstream system does the ordering.
2. ``stream_rank_topk`` — the best ``k`` rows via a bounded heap,
   ``O(chunk_size + k)`` resident.  Use it for leaderboards.
3. ``stream_rank_csv`` — the **complete** ranking via an external
   merge sort: scored chunks spill to sorted run files whenever more
   than ``memory_budget_rows`` rows are buffered, and a k-way merge
   writes the final list incrementally.  Byte-identical to the
   in-memory ``build_ranking_list`` path — same scores, same stable
   tie-breaks — which this script verifies at the end.

The same flows are available from the shell::

    python -m repro score model.json huge.csv.gz --stream
    python -m repro score model.json huge.csv.gz --stream --top-k 10
    python -m repro score model.json huge.csv.gz --stream --rank \
        --memory-budget-rows 100000 --output ranking.csv

Memory model of the ``--rank`` path: peak resident rows =
``chunk_size * jobs`` (scoring buffer) + ``memory_budget_rows``
(sorter buffer), plus ``max_open_runs`` open files during the merge;
spill files live in a temp directory that is removed on success,
error and Ctrl-C alike.

Run:  python examples/larger_than_memory.py
"""

from __future__ import annotations

import csv
import gzip
import pathlib
import random
import tempfile
import warnings

from repro import RankingPrincipalCurve, build_ranking_list
from repro.data import parse_alpha_spec, save_ranking_csv
from repro.serving import (
    iter_csv_chunks,
    save_model,
    score_batch,
    stream_rank_csv,
    stream_rank_topk,
    stream_score_csv,
)

N_ROWS = 5000  # stands in for "far more rows than RAM"
MEMORY_BUDGET_ROWS = 500  # forces ~10 sorted spill runs


def _write_big_gz(path: pathlib.Path, n_rows: int) -> None:
    """A gzipped CSV written row by row — never held in memory."""
    random.seed(20)
    with gzip.open(path, "wt", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(["item", "quality", "price", "defects"])
        for i in range(n_rows):
            s = round(random.random(), 2)  # coarse => plenty of ties
            writer.writerow(
                [
                    f"item{i:05d}",
                    round(s + random.gauss(0, 0.02), 6),
                    round(1.0 - s + random.gauss(0, 0.02), 6),
                    round(0.5 - 0.4 * s + random.gauss(0, 0.02), 6),
                ]
            )


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-bigcsv-"))
    big_csv = workdir / "big.csv.gz"
    _write_big_gz(big_csv, N_ROWS)
    print(f"wrote {big_csv} ({N_ROWS} rows, gzipped)")

    # Fit on a small labelled sample, persist, then stream-score the
    # big file with the saved model — the fit-once/serve-many split.
    # (In production only the sample would be materialised; the full
    # table is loaded here so the end of this script can verify the
    # streamed ranking against the in-memory path.)
    table = next(iter_csv_chunks(big_csv, chunk_size=N_ROWS))
    sample = table.X[:400]
    alpha = parse_alpha_spec(
        "+quality,-price,-defects", table.attribute_names
    )
    model = RankingPrincipalCurve(alpha=alpha, random_state=0, n_restarts=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(sample)
    model_path = workdir / "model.json"
    save_model(model, model_path, feature_names=table.attribute_names)
    print(f"fitted on a {sample.shape[0]}-row sample, saved {model_path}")

    # 1. Scores in input order, O(chunk_size) resident.
    scores_csv = workdir / "scores.csv"
    n = stream_score_csv(model, big_csv, scores_csv, chunk_size=512)
    print(f"\n[stream_score_csv] scored {n} rows -> {scores_csv}")

    # 2. Leaderboard: best 5 via a bounded heap.
    top, _ = stream_rank_topk(model, big_csv, k=5, chunk_size=512)
    print("[stream_rank_topk] top 5 of the stream:")
    for label, score in top:
        print(f"  {score:.4f}  {label}")

    # 3. Complete ranking under a fixed memory budget: the external
    #    merge sort spills sorted runs and merges them back.
    ranking_csv = workdir / "ranking.csv"
    n, head = stream_rank_csv(
        model,
        big_csv,
        ranking_csv,
        chunk_size=512,
        memory_budget_rows=MEMORY_BUDGET_ROWS,
        head=3,
    )
    print(
        f"[stream_rank_csv] full ranking of {n} rows -> {ranking_csv} "
        f"(never more than {MEMORY_BUDGET_ROWS} rows buffered)"
    )
    for position, (label, score) in enumerate(head, start=1):
        print(f"  #{position}  {score:.4f}  {label}")

    # Verify the promise: byte-identical to the in-memory path.
    reference_csv = workdir / "reference.csv"
    ranking = build_ranking_list(
        score_batch(model, table.X), labels=table.labels
    )
    save_ranking_csv(reference_csv, ranking)
    identical = ranking_csv.read_bytes() == reference_csv.read_bytes()
    print(f"\nbyte-identical to in-memory build_ranking_list: {identical}")
    assert identical


if __name__ == "__main__":
    main()
