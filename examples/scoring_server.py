#!/usr/bin/env python
"""Serve fitted models over HTTP: fit → save → serve → query.

The full production workflow of the serving subsystem, in-process:

1. fit a Ranking Principal Curve on the bundled country data and
   persist it with :func:`repro.serving.save_model`; fit an
   elastic-map principal curve on the same data and persist it as a
   manifest directory — two model *families* behind one API;
2. load both into a :class:`repro.server.ModelRegistry` and boot the
   stdlib HTTP daemon (:class:`repro.server.ScoringHTTPServer`) on an
   ephemeral port — the same server that ``python -m repro serve``
   runs in the foreground;
3. query every endpoint with nothing but :mod:`urllib`: health, the
   registry listing (now reporting each entry's family), single-row
   and batch scoring against either family, a ranking, and the
   request metrics;
4. overwrite a model file and watch hot reload pick it up — no
   restart.

Run:  python examples/scoring_server.py
"""

from __future__ import annotations

import json
import pathlib
import tempfile
import threading
import urllib.request
import warnings

from repro import RankingPrincipalCurve
from repro.data import COUNTRY_ATTRIBUTES, load_countries
from repro.families import build_model
from repro.server import ModelRegistry, ScoringHTTPServer
from repro.serving import save_model


def call(url: str, payload: dict | None = None) -> dict:
    """One-line JSON client: GET, or POST when a payload is given."""
    request = urllib.request.Request(
        url,
        data=None if payload is None else json.dumps(payload).encode(),
        method="GET" if payload is None else "POST",
    )
    with urllib.request.urlopen(request, timeout=10) as response:
        return json.loads(response.read())


def main() -> None:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-serve-"))
    model_path = workdir / "wellbeing.json"

    # 1. Fit once, persist.
    data = load_countries()
    model = RankingPrincipalCurve(alpha=data.alpha, random_state=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(data.X)
    save_model(model, model_path, feature_names=COUNTRY_ATTRIBUTES)
    print(f"saved fitted model to {model_path}")

    # A second family on the same data: the elastic-map principal
    # curve, persisted as a manifest directory (the layout for models
    # with sharded array state — see docs/models.md).
    elmap = build_model("elastic-map", alpha=data.alpha)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        elmap.fit(data.X)
    elmap_path = save_model(
        elmap, workdir / "elmap", feature_names=COUNTRY_ATTRIBUTES
    )
    print(f"saved elastic-map manifest to {elmap_path}")

    # 2. Boot the daemon on an ephemeral port.  Equivalent shell:
    #    python -m repro serve --model wellbeing=wellbeing.json \
    #                          --model elmap=elmap
    registry = ModelRegistry()
    registry.register("wellbeing", model_path)
    registry.register("elmap", elmap_path)
    server = ScoringHTTPServer(("127.0.0.1", 0), registry, n_jobs=2)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    host, port = server.server_address[:2]
    base = f"http://{host}:{port}"
    print(f"daemon listening on {base}\n")

    # 3. Query it like any other HTTP service.
    print("GET /healthz        ->", call(f"{base}/healthz"))
    for listing in call(f"{base}/v1/models")["models"]:
        print("GET /v1/models      ->", {k: listing[k] for k in
                                         ("name", "family", "format",
                                          "n_attributes")})

    row = data.X[0].tolist()
    single = call(f"{base}/v1/models/wellbeing/score", {"row": row})
    print(f"POST score (1 row)  -> score={single['score']:.4f} "
          f"({data.labels[0]})")

    batch = call(
        f"{base}/v1/models/wellbeing/score",
        {"rows": data.X[:50].tolist()},
    )
    print(f"POST score (batch)  -> {batch['n']} scores, "
          f"first={batch['scores'][0]:.4f}")

    # Same endpoint shape, different family — only the model name in
    # the URL changes.
    elmap_batch = call(
        f"{base}/v1/models/elmap/score",
        {"rows": data.X[:50].tolist()},
    )
    print(f"POST score (elmap)  -> {elmap_batch['n']} scores, "
          f"first={elmap_batch['scores'][0]:.4f}")

    ranked = call(
        f"{base}/v1/models/wellbeing/rank",
        {"rows": data.X[:8].tolist(), "labels": data.labels[:8]},
    )
    print("POST rank (top 3)   ->")
    for entry in ranked["ranking"][:3]:
        print(f"    {entry['position']}. {entry['label']}"
              f"  ({entry['score']:.4f})")

    # 4. Hot reload: overwrite the file, the next request serves the
    #    new fit.  (A fresh seed gives a slightly different curve.)
    refit = RankingPrincipalCurve(alpha=data.alpha, random_state=7)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        refit.fit(data.X)
    save_model(refit, model_path, feature_names=COUNTRY_ATTRIBUTES)
    reloaded = call(f"{base}/v1/models/wellbeing/score", {"row": row})
    print(f"\nafter overwrite     -> score={reloaded['score']:.4f} "
          "(hot-reloaded, no restart)")

    metrics = call(f"{base}/metrics")
    score_stats = metrics["endpoints"]["POST /v1/models/{name}/score"]
    print(f"GET /metrics        -> {metrics['requests_total']} requests, "
          f"{metrics['rows_scored_total']} rows scored, "
          f"score p50={score_stats['latency_ms']['p50']}ms")

    server.shutdown()
    server.server_close()
    print("\ndaemon stopped cleanly")


if __name__ == "__main__":
    main()
