#!/usr/bin/env python
"""Missing data: the paper dropped 58 of 451 journals — can we do better?

Section 6.2.2 removes every journal with a missing indicator before
fitting.  This example knocks random cells out of the journal table
and compares three strategies:

1. **drop** — the paper's choice: fit and rank only complete rows
   (incomplete journals get no rank at all);
2. **median impute** — fill holes with the attribute median, rank all;
3. **curve impute** — fit the RPC on complete rows, project incomplete
   rows through their observed coordinates (masked projection), rank
   all and reconstruct the holes from the curve.

Ground truth for the comparison is the ranking fitted on the original
complete table.

Run:  python examples/missing_data.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import RankingPrincipalCurve
from repro.data import load_journals
from repro.data.missing import (
    CurveImputer,
    drop_missing_rows,
    median_impute,
    missing_summary,
)
from repro.evaluation import kendall_tau


def main() -> None:
    data = load_journals(n_journals=200)
    rng = np.random.default_rng(7)

    # Reference ranking on the intact table.
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        reference = RankingPrincipalCurve(
            alpha=data.alpha, random_state=0, n_restarts=1, init="linear"
        ).fit(data.X)
    ref_scores = reference.score_samples(data.X)

    # Knock out ~8% of cells (keeping 60 rows intact to fit from).
    X_holey = data.X.copy()
    holes = rng.uniform(size=X_holey.shape) < 0.08
    holes[:60] = False
    empty_rows = holes.all(axis=1)
    holes[empty_rows, 0] = False
    X_holey[holes] = np.nan

    summary = missing_summary(X_holey)
    print(f"journals: {summary['n_rows']}   missing cells: "
          f"{summary['n_missing_cells']} "
          f"({100 * summary['cell_missing_rate']:.1f}%)   incomplete rows: "
          f"{summary['n_incomplete_rows']}")

    # Strategy 1: drop (the paper's).
    complete, labels_c, kept = drop_missing_rows(X_holey, labels=data.labels)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        dropped_model = RankingPrincipalCurve(
            alpha=data.alpha, random_state=0, n_restarts=1, init="linear"
        ).fit(complete)
    tau_drop = kendall_tau(
        dropped_model.score_samples(complete), ref_scores[kept]
    )

    # Strategy 2: median imputation.
    X_median = median_impute(X_holey)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        median_model = RankingPrincipalCurve(
            alpha=data.alpha, random_state=0, n_restarts=1, init="linear"
        ).fit(X_median)
    tau_median = kendall_tau(
        median_model.score_samples(X_median), ref_scores
    )

    # Strategy 3: curve imputation + masked scoring.
    imputer = CurveImputer(
        alpha=data.alpha, random_state=0, n_restarts=1, init="linear"
    )
    result = imputer.fit_transform(X_holey)
    tau_curve = kendall_tau(result.scores, ref_scores)
    cell_error = float(
        np.mean(np.abs(result.X_imputed[holes] - data.X[holes]))
    )

    print("\n=== Agreement with the intact-table ranking (Kendall tau) ===")
    print(f"drop incomplete rows : {tau_drop:.4f}  "
          f"(but ranks only {len(kept)}/{summary['n_rows']} journals)")
    print(f"median imputation    : {tau_median:.4f}  (ranks all)")
    print(f"curve imputation     : {tau_curve:.4f}  (ranks all)")
    print(f"\ncurve-imputed cell mean abs error: {cell_error:.4f} "
          "(original units)")
    print("\nThe masked projection ranks every journal — including the "
          "ones the paper had to discard — while staying consistent "
          "with the complete-data ranking.")


if __name__ == "__main__":
    main()
