#!/usr/bin/env python
"""Compare RPC against every baseline on one dataset, meta-rules included.

Fits RPC, first PCA, kernel PCA, weighted summation, median rank
aggregation and three principal-curve baselines (Hastie–Stuetzle,
polygonal line, elastic map) on a crescent-shaped cloud (Fig. 5(a)),
then reports:

* ranking agreement (Kendall tau) between all model pairs;
* strict-monotonicity violations committed by each model;
* which of the five meta-rules each model family satisfies —
  the qualitative comparison that motivates the paper.

Also demonstrates PageRank on link data to make the Fig. 1 taxonomy
concrete: link-structure rankers and attribute rankers answer
different questions.

Run:  python examples/compare_baselines.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import RankingPrincipalCurve
from repro.baselines import (
    FirstPCARanker,
    KernelPCARanker,
    MedianRankAggregator,
    WeightedSumRanker,
    pagerank,
)
from repro.core.order import RankingOrder
from repro.data import sample_crescent, sample_linked_graph
from repro.data.normalize import normalize_unit_cube
from repro.evaluation import compare_rankers, count_order_violations
from repro.princurve import (
    ElasticMapCurve,
    HastieStuetzleCurve,
    PolygonalLineCurve,
)


class _UnitCubeAdapter:
    """Adapt a principal-curve baseline to raw-data fit/score calls."""

    def __init__(self, model):
        self._model = model
        self._lo = None
        self._hi = None

    def fit(self, X):
        self._lo = X.min(axis=0)
        self._hi = X.max(axis=0)
        self._model.fit(self._transform(X))
        return self

    def score_samples(self, X):
        return self._model.score_samples(self._transform(X))

    def _transform(self, X):
        span = np.where(self._hi - self._lo <= 0, 1.0, self._hi - self._lo)
        return (X - self._lo) / span


def main() -> None:
    alpha = np.array([1.0, 1.0])
    cloud = sample_crescent(n=200, seed=3, width=0.03)
    labels = [f"obj-{i:03d}" for i in range(cloud.X.shape[0])]
    order = RankingOrder(alpha=alpha)

    models = {
        "RPC": RankingPrincipalCurve(alpha=alpha, random_state=0),
        "PCA": FirstPCARanker(alpha=alpha),
        "kPCA": KernelPCARanker(alpha=alpha, gamma=5.0),
        "WSum": WeightedSumRanker(alpha=alpha),
        "RankAgg": MedianRankAggregator(alpha=alpha),
        "HS": _UnitCubeAdapter(HastieStuetzleCurve(orient_alpha=alpha)),
        "Polyline": _UnitCubeAdapter(
            PolygonalLineCurve(n_vertices=8, orient_alpha=alpha)
        ),
        "Elmap": _UnitCubeAdapter(ElasticMapCurve(orient_alpha=alpha)),
    }

    print("=== Fitting all models on a crescent cloud (n=200) ===")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        comparison = compare_rankers(models, cloud.X, labels=labels)

    print("\n=== Pairwise Kendall tau vs RPC ===")
    agreement = comparison.agreement_matrix()
    for (a, b), tau in sorted(agreement.items()):
        if "RPC" in (a, b):
            other = b if a == "RPC" else a
            print(f"  RPC vs {other:<9} tau = {tau:+.3f}")

    print("\n=== Strict-monotonicity violations (comparable pairs) ===")
    X_unit = normalize_unit_cube(cloud.X)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        for name, model in models.items():
            model.fit(cloud.X)
            summary = count_order_violations(
                model.score_samples, cloud.X, order, tie_tol=1e-9
            )
            print(
                f"  {name:<9} inversions={summary.n_inversions:>5d}  "
                f"ties={summary.n_ties:>5d}  "
                f"rate={summary.violation_rate:.4f}"
            )

    print("\n=== Meta-rule scoreboard (declared capabilities) ===")
    print(f"  {'model':<9} {'linear':>7} {'nonlinear':>10} {'param size':>11}")
    scoreboard = {
        "RPC": RankingPrincipalCurve(alpha=alpha),
        "PCA": FirstPCARanker(alpha=alpha),
        "kPCA": KernelPCARanker(alpha=alpha),
        "WSum": WeightedSumRanker(alpha=alpha),
        "RankAgg": MedianRankAggregator(alpha=alpha),
        "HS": HastieStuetzleCurve(),
        "Elmap": ElasticMapCurve(),
    }
    for name, model in scoreboard.items():
        size = model.parameter_size
        print(
            f"  {name:<9} {str(model.has_linear_capacity):>7} "
            f"{str(model.has_nonlinear_capacity):>10} "
            f"{str(size) if size is not None else 'unknown':>11}"
        )

    print("\n=== And for link-structure data: PageRank (Fig. 1 contrast) ===")
    A = sample_linked_graph(n=20, p_edge=0.2, seed=1)
    result = pagerank(A)
    top = np.argsort(-result.scores)[:3]
    print(f"  20-node random graph, converged in {result.n_iterations} "
          "iterations")
    print("  top nodes by PageRank:", ", ".join(
        f"node {i} ({result.scores[i]:.4f})" for i in top
    ))
    print("  (PageRank needs links; RPC needs attributes — the two "
          "families are complementary, per the paper's taxonomy.)")


if __name__ == "__main__":
    main()
