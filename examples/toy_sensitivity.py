#!/usr/bin/env python
"""Table 1 / Fig. 6: RPC detects ordinal information RankAgg discards.

Three objects A, B, C are observed on two attributes.  Median rank
aggregation ties A and B (average position 1.5 each) and is completely
insensitive to moving A to A' because no per-attribute order changes.
RPC, ranking from the numeric observations along an S-type curve,
separates A from B — and flips their order when A moves to A'.

Run:  python examples/toy_sensitivity.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import RankingPrincipalCurve
from repro.baselines import MedianRankAggregator
from repro.data import (
    sample_around_curve,
    table1a_objects,
    table1b_objects,
)
from repro.geometry import cubic_from_interior_points
from repro.viz import ascii_scatter


def fit_on_s_curve(toy):
    """Fit an RPC against the Fig. 6 S-type supporting cloud."""
    s_curve = cubic_from_interior_points(
        toy.alpha, p1=[0.1, 0.6], p2=[0.9, 0.4]
    )
    support = sample_around_curve(s_curve, n=80, noise=0.02, seed=1)
    X = np.vstack([toy.X, support.X, [[0.0, 0.0], [1.0, 1.0]]])
    model = RankingPrincipalCurve(
        alpha=toy.alpha, random_state=0, n_restarts=1, init="linear"
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(X)
    return model, support


def report(tag, toy, model):
    agg = MedianRankAggregator(alpha=toy.alpha)
    kappa = agg.aggregate_positions(toy.X)
    scores = model.score_samples(toy.X)
    order = np.argsort(-scores)
    print(f"\n=== Table 1({tag}) ===")
    print(f"{'object':<8}{'x1':>7}{'x2':>7}{'RankAgg':>9}{'RPC score':>11}")
    for i, label in enumerate(toy.labels):
        print(
            f"{label:<8}{toy.X[i, 0]:>7.2f}{toy.X[i, 1]:>7.2f}"
            f"{kappa[i]:>9.2f}{scores[i]:>11.4f}"
        )
    ranked = " < ".join(toy.labels[i] for i in np.argsort(scores))
    print(f"RPC order (worst to best): {ranked}")
    return scores, kappa


def main() -> None:
    toy_a = table1a_objects()
    toy_b = table1b_objects()

    model_a, support = fit_on_s_curve(toy_a)
    scores_a, kappa_a = report("a", toy_a, model_a)

    model_b, _ = fit_on_s_curve(toy_b)
    scores_b, kappa_b = report("b", toy_b, model_b)

    print("\n=== What changed when A moved to A'? ===")
    print(f"RankAgg values: unchanged ({kappa_a[0]:.2f} vs {kappa_b[0]:.2f}) "
          "— aggregation never saw the numeric shift.")
    flip_a = "A below B" if scores_a[0] < scores_a[1] else "A above B"
    flip_b = "A' below B" if scores_b[0] < scores_b[1] else "A' above B"
    print(f"RPC: {flip_a} in (a), but {flip_b} in (b) — the model reads "
          "the observation itself, not just its per-attribute positions.")

    print("\n=== Fig. 6: objects against the learned S-type curve ===")
    s_dense = np.linspace(0.0, 1.0, 200)
    curve_pts = model_a.reconstruct(s_dense)
    canvas = np.vstack([toy_a.X, support.X])
    print(
        ascii_scatter(
            canvas,
            curve=curve_pts,
            width=60,
            height=18,
            title="supporting cloud '.' with RPC '#' (A, B, C among them)",
        )
    )


if __name__ == "__main__":
    main()
