#!/usr/bin/env python
"""Feature selection with RPCs — the paper's Section 7 future work.

Adds two deliberately useless indicators to the country life-quality
table (a pure-noise column and a constant-plus-jitter column), then

1. scores every indicator's contribution to the learned ranking
   (curve-span and leave-one-out importance);
2. runs greedy backward elimination under a ranking-consistency
   budget and shows the junk indicators are eliminated first;
3. verifies the reduced ranking agrees with the full one.

Run:  python examples/feature_selection.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import RankingPrincipalCurve
from repro.core.feature_selection import (
    attribute_importances,
    select_features,
)
from repro.data import load_countries
from repro.evaluation import kendall_tau


def main() -> None:
    data = load_countries(n_countries=100)
    rng = np.random.default_rng(42)

    # Two junk indicators: uniform noise and near-constant jitter.
    noise = rng.uniform(0.0, 100.0, size=(data.X.shape[0], 1))
    jitter = 50.0 + rng.normal(0.0, 0.5, size=(data.X.shape[0], 1))
    X = np.hstack([data.X, noise, jitter])
    names = ["GDP", "LEB", "IMR", "TB", "NOISE", "JITTER"]
    alpha = np.concatenate([data.alpha, [1.0, 1.0]])

    print(f"countries: {X.shape[0]}   indicators: {', '.join(names)}")
    print("(NOISE and JITTER are synthetic junk added for this demo)\n")

    print("=== Per-indicator importance ===")
    reports = attribute_importances(X, alpha, attribute_names=names)
    print(f"{'indicator':<10}{'curve span / noise':>20}{'LOO tau':>10}"
          f"{'influence':>11}")
    for r in sorted(reports, key=lambda r: -r.influence):
        print(f"{r.name:<10}{r.curve_span:>20.2f}{r.loo_tau:>10.4f}"
              f"{r.influence:>11.4f}")

    print("\n=== Greedy backward elimination (tau budget 0.9) ===")
    result = select_features(
        X, alpha, attribute_names=names, min_tau=0.9, min_attributes=2
    )
    print(f"dropped (in order): "
          f"{[names[j] for j in result.dropped] or 'nothing'}")
    print(f"selected          : {[names[j] for j in result.selected]}")
    print(f"final Kendall tau vs full ranking: {result.final_tau:.4f}")

    print("\n=== Sanity: reduced model vs full model ===")
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        full = RankingPrincipalCurve(
            alpha=alpha, random_state=0, n_restarts=1, init="linear"
        ).fit(X)
        keep = result.selected
        reduced = RankingPrincipalCurve(
            alpha=alpha[keep], random_state=0, n_restarts=1, init="linear"
        ).fit(X[:, keep])
    tau = kendall_tau(
        full.score_samples(X), reduced.score_samples(X[:, keep])
    )
    print(f"Kendall tau (full d={X.shape[1]} vs reduced "
          f"d={len(keep)}): {tau:.4f}")
    print("\nReading the two tools together: the curve-span column flags "
          "the junk indicators (the skeleton barely moves along NOISE "
          "and JITTER relative to their scatter), while backward "
          "elimination removes whatever is *redundant for the ordering* "
          "— which can also include a real indicator that duplicates "
          "another (here TB, which tracks IMR).  Both diagnostics are "
          "label-free.")


if __name__ == "__main__":
    main()
