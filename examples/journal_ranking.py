#!/usr/bin/env python
"""Journal ranking on JCR2012-style indicators (Section 6.2.2).

Ranks 393 computer-science journals on five citation indicators (IF,
5-year IF, Immediacy Index, Eigenfactor, Article Influence Score), all
benefits.  Reproduces the Table 3 presentation and the paper's
headline reading: a single indicator (raw IF) does not tell the whole
story — RPC's comprehensive score pulls TKDE level with SMC-A despite
SMC-A's higher IF.

Run:  python examples/journal_ranking.py
"""

from __future__ import annotations

import warnings

from repro import RankingPrincipalCurve, build_ranking_list
from repro.data import PAPER_TABLE3_RPC, load_journals
from repro.data.normalize import MinMaxNormalizer
from repro.evaluation import kendall_tau
from repro.viz import pairwise_panels, render_panels


def main() -> None:
    data = load_journals()
    print(f"journals: {data.n_journals}   attributes: IF, 5IF, ImmInd, "
          "Eigenfactor, IS")
    print(f"({int(data.is_from_paper.sum())} rows embedded verbatim from "
          "Table 3, rest synthesised — see DESIGN.md)")

    model = RankingPrincipalCurve(alpha=data.alpha, random_state=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ranking = model.fit_rank(data.X, labels=data.labels)

    print("\n=== Table 3 rows: paper vs measured ===")
    header = (
        f"{'Journal':<22}{'RPC score':>11}{'RPC order':>11}"
        f"{'paper score':>13}{'paper order':>13}"
    )
    print(header)
    print("-" * len(header))
    for name, (paper_score, paper_order) in PAPER_TABLE3_RPC.items():
        idx = data.labels.index(name)
        print(
            f"{name:<22}{ranking.scores[idx]:>11.4f}"
            f"{ranking.positions[idx]:>11d}{paper_score:>13.4f}"
            f"{paper_order:>13d}"
        )

    print("\n=== One indicator does not tell the whole story ===")
    if_ranking = build_ranking_list(data.X[:, 0], labels=data.labels)
    tau = kendall_tau(ranking.scores, data.X[:, 0])
    print(f"Kendall tau between RPC order and raw-IF order: {tau:.3f}")
    for name in ("IEEE T KNOWL DATA EN", "IEEE T SYST MAN CY A"):
        idx = data.labels.index(name)
        print(
            f"  {name:<22} IF={data.X[idx, 0]:.3f} "
            f"(IF rank {if_ranking.position_of(name):>3d})   "
            f"IS={data.X[idx, 4]:.3f}   "
            f"RPC rank {ranking.position_of(name):>3d}"
        )
    gap_if = if_ranking.position_of(
        "IEEE T KNOWL DATA EN"
    ) - if_ranking.position_of("IEEE T SYST MAN CY A")
    gap_rpc = ranking.position_of(
        "IEEE T KNOWL DATA EN"
    ) - ranking.position_of("IEEE T SYST MAN CY A")
    print(f"  TKDE-vs-SMCA position gap: {gap_if:+d} by IF, {gap_rpc:+d} "
          "by RPC — the influence score compensates for the lower IF.")

    print("\n=== Fig. 8: IF vs 5IF panel (nearly linear relationship) ===")
    normalizer = MinMaxNormalizer().fit(data.X)
    panels = pairwise_panels(
        normalizer.transform(data.X),
        model.curve_,
        attribute_names=["IF", "5IF", "ImmInd", "Eigenfactor", "IS"],
    )
    if_5if = next(p for p in panels if p.names == ("IF", "5IF"))
    print(render_panels([if_5if], width=64, height=18))

    print("\n=== Top 10 journals by RPC score ===")
    for label, score in ranking.top(10):
        print(f"  {score:.4f}  {label}")


if __name__ == "__main__":
    main()
