#!/usr/bin/env python
"""Quickstart: rank synthetic multi-attribute objects with an RPC.

This example walks through the whole public API on a synthetic
dataset whose ground-truth latent quality is known:

1. generate noisy observations along a strictly monotone curve
   (the generative model ``x = f(s) + eps`` of Eq.(11));
2. fit a :class:`repro.RankingPrincipalCurve`;
3. inspect scores, the ranking list, the learned control points and
   the optimisation trace;
4. verify the five meta-rules hold for the fitted model.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import warnings

import numpy as np

from repro import RankingPrincipalCurve
from repro.core.meta_rules import assess_ranking_model
from repro.core.order import RankingOrder
from repro.data import sample_monotone_cloud
from repro.evaluation import spearman_rho
from repro.viz import ascii_scatter


def main() -> None:
    # Three attributes: two benefits ("quality", "coverage") and one
    # cost ("defect rate").
    alpha = np.array([1.0, 1.0, -1.0])
    cloud = sample_monotone_cloud(alpha=alpha, n=200, noise=0.02, seed=7)
    labels = [f"item-{i:03d}" for i in range(cloud.X.shape[0])]

    print("=== Fit ===")
    model = RankingPrincipalCurve(alpha=alpha, random_state=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ranking = model.fit_rank(cloud.X, labels=labels)

    trace = model.trace_
    print(f"iterations        : {trace.n_iterations}")
    print(f"final objective J : {trace.final_objective:.6f}")
    print(f"monotone descent  : {trace.is_monotone_decreasing()}")
    print(f"explained variance: {model.explained_variance(cloud.X):.4f}")

    print("\n=== Ranking list (top and bottom 5) ===")
    for label, score in ranking.top(5):
        print(f"  {label}  score={score:.4f}")
    print("  ...")
    for label, score in ranking.bottom(5):
        print(f"  {label}  score={score:.4f}")

    rho = spearman_rho(model.score_samples(cloud.X), cloud.latent)
    print(f"\nSpearman rho vs ground-truth latent: {rho:.4f}")

    print("\n=== Learned control points (original units) ===")
    print(np.array_str(model.control_points_original_, precision=4))

    print("\n=== Meta-rule assessment ===")

    def fit_and_score(X: np.ndarray) -> np.ndarray:
        refit = RankingPrincipalCurve(
            alpha=alpha, random_state=0, n_restarts=1, init="linear"
        )
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            refit.fit(X)
        return refit.score_samples(X)

    report = assess_ranking_model(
        model=model,
        scorer=model.score_samples,
        fit_and_score=fit_and_score,
        X=cloud.X,
        order=RankingOrder(alpha=alpha),
    )
    print(report.summary())

    print("\n=== First two attributes with the fitted curve ===")
    s_dense = np.linspace(0.0, 1.0, 150)
    curve_pts = model.reconstruct(s_dense)
    print(
        ascii_scatter(
            cloud.X[:, :2],
            curve=curve_pts[:, :2],
            width=64,
            height=18,
            title="attribute 1 (x) vs attribute 0 (y)... data '.' curve '#'",
        )
    )


if __name__ == "__main__":
    main()
