"""Elastic-map principal curves (Gorban & Zinovyev's Elmap).

The paper's main experimental comparator (Table 2) is Gorban &
Zinovyev's elastic-map method, which fits a chain of nodes
``y_1..y_m`` minimising the energy

    ``U = U_approx + lambda * U_stretch + mu * U_bend``

with

* ``U_approx`` — mean squared distance from each data point to its
  closest node (soft Voronoi assignment in the original; hard here);
* ``U_stretch = sum ‖y_{k+1} − y_k‖²`` — edge elasticity;
* ``U_bend = sum ‖y_{k+1} − 2 y_k + y_{k-1}‖²`` — rib bending
  elasticity.

Minimisation alternates hard assignment with an exact linear solve for
the node positions (the energy is quadratic in the nodes).  Scores are
arc-length projection indices on the fitted chain, *centred* the way
Gorban et al. report them (zero mean over the training data) — the
paper criticises exactly this: no country sits at score 0 as a
reference, and the parameter count is not explicit.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.princurve.base import PrincipalCurveModel, project_to_polyline


class ElasticMapCurve(PrincipalCurveModel):
    """1-D elastic map (principal curve flavour of Elmap).

    Parameters
    ----------
    n_nodes:
        Number of chain nodes.
    stretch:
        Elastic edge coefficient ``lambda``.
    bend:
        Rib bending coefficient ``mu``.
    max_iter:
        Cap on assignment/solve alternations.
    tol:
        Relative energy-decrease stopping threshold.
    centered_scores:
        When True (default, matching Gorban et al.'s reporting), scores
        are mean-centred arc-length indices; when False, raw ``[0, 1]``
        indices are returned.
    """

    def __init__(
        self,
        n_nodes: int = 30,
        stretch: float = 0.05,
        bend: float = 0.5,
        max_iter: int = 100,
        tol: float = 1e-6,
        centered_scores: bool = True,
        orient_alpha: Optional[np.ndarray] = None,
    ):
        super().__init__(orient_alpha=orient_alpha)
        if n_nodes < 3:
            raise ConfigurationError(f"n_nodes must be >= 3, got {n_nodes}")
        if stretch < 0 or bend < 0:
            raise ConfigurationError(
                f"elastic coefficients must be >= 0, got stretch={stretch}, "
                f"bend={bend}"
            )
        self.n_nodes = int(n_nodes)
        self.stretch = float(stretch)
        self.bend = float(bend)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.centered_scores = bool(centered_scores)
        self.nodes_: Optional[np.ndarray] = None
        self.energy_trace_: list[float] = []
        self._score_offset: float = 0.0

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray) -> None:
        n, d = X.shape
        m = self.n_nodes
        # Initialise nodes along the first principal component.
        mean = X.mean(axis=0)
        centred = X - mean
        _u, _s, vt = np.linalg.svd(centred, full_matrices=False)
        direction = vt[0]
        proj = centred @ direction
        ts = np.linspace(float(proj.min()), float(proj.max()), m)
        nodes = mean[np.newaxis, :] + ts[:, np.newaxis] * direction[np.newaxis, :]

        E = _stretch_matrix(m) * self.stretch
        B = _bend_matrix(m) * self.bend
        penalty = E + B

        prev_energy = np.inf
        self.energy_trace_ = []
        for _ in range(self.max_iter):
            # Hard assignment to the closest node.
            d2 = (
                np.sum(X**2, axis=1)[:, np.newaxis]
                - 2.0 * X @ nodes.T
                + np.sum(nodes**2, axis=1)[np.newaxis, :]
            )
            assignment = np.argmin(d2, axis=1)
            counts = np.bincount(assignment, minlength=m).astype(float)
            sums = np.zeros((m, d))
            np.add.at(sums, assignment, X)

            # Quadratic solve: (diag(counts)/n + penalty) Y = sums/n.
            A = np.diag(counts / n) + penalty
            nodes = np.linalg.solve(A, sums / n)

            energy = self._energy(X, nodes, assignment)
            self.energy_trace_.append(energy)
            if prev_energy - energy < self.tol * max(abs(prev_energy), 1e-12):
                break
            prev_energy = energy

        self.nodes_ = nodes
        s_raw, _pts = project_to_polyline(X, nodes)
        self._score_offset = float(s_raw.mean()) if self.centered_scores else 0.0

    def _energy(
        self, X: np.ndarray, nodes: np.ndarray, assignment: np.ndarray
    ) -> float:
        approx = float(np.mean(np.sum((X - nodes[assignment]) ** 2, axis=1)))
        edges = np.diff(nodes, axis=0)
        stretch = float(np.sum(edges**2)) * self.stretch
        ribs = nodes[2:] - 2.0 * nodes[1:-1] + nodes[:-2]
        bend = float(np.sum(ribs**2)) * self.bend
        return approx + stretch + bend

    def _project(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self.nodes_ is not None
        s, points = project_to_polyline(X, self.nodes_)
        return s - self._score_offset, points

    # ------------------------------------------------------------------
    # Meta-rule capability declarations
    # ------------------------------------------------------------------
    @property
    def has_linear_capacity(self) -> bool:
        """High elasticity collapses the chain to a straight segment."""
        return True

    @property
    def has_nonlinear_capacity(self) -> bool:
        """Low elasticity lets the chain bend with the data."""
        return True

    @property
    def parameter_size(self) -> Optional[int]:
        """Unknown a priori — the paper's explicitness criticism of Elmap.

        The node count is a resolution knob, not a model order; the
        effective parameter size depends on the elastic coefficients in
        a way that is not explicit, so this model reports ``None``.
        """
        return None


def _stretch_matrix(m: int) -> np.ndarray:
    """Quadratic-form matrix of ``sum_k ‖y_{k+1} − y_k‖²``."""
    D = np.zeros((m - 1, m))
    for k in range(m - 1):
        D[k, k] = -1.0
        D[k, k + 1] = 1.0
    return D.T @ D


def _bend_matrix(m: int) -> np.ndarray:
    """Quadratic-form matrix of ``sum_k ‖y_{k+1} − 2 y_k + y_{k-1}‖²``."""
    D = np.zeros((m - 2, m))
    for k in range(m - 2):
        D[k, k] = 1.0
        D[k, k + 1] = -2.0
        D[k, k + 2] = 1.0
    return D.T @ D
