"""Common interface for principal-curve models.

Appendix A of the paper reviews principal curves: a smooth 1-D manifold
``f(s)`` summarising a data cloud, with each point projected to its
nearest curve location (the projection index ``s_f(x)`` of Eq.(A-2))
and quality measured by the expected squared distance ``J(f)`` of
Eq.(A-3).  Every comparator we implement — Hastie–Stuetzle, the Kégl
polygonal line, and the Gorban–Zinovyev elastic map — realises this
interface so that the evaluation layer can treat RPC and all baselines
uniformly.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.core.exceptions import DataValidationError, NotFittedError


class PrincipalCurveModel(abc.ABC):
    """Abstract base for 1-D principal-curve fitters.

    Subclasses implement :meth:`_fit` and :meth:`_project`; the base
    class provides validation, the not-fitted guard, projection-index
    scoring and the explained-variance metric used throughout the
    experiments.

    Parameters
    ----------
    orient_alpha:
        Optional task direction vector.  A principal curve's arc-length
        direction is arbitrary (the curve may run best-to-worst); when
        ``orient_alpha`` is given, the fitted scores are flipped if they
        anti-correlate with the naive signed attribute sum
        ``X @ alpha`` on the training data, so that *higher score =
        better object*.  This mirrors how a practitioner would orient
        Elmap's output before publishing a ranking list, and it is the
        only task knowledge the baselines receive.
    """

    def __init__(self, orient_alpha: Optional[np.ndarray] = None) -> None:
        self._fitted_X: Optional[np.ndarray] = None
        self.orient_alpha = (
            None
            if orient_alpha is None
            else np.asarray(orient_alpha, dtype=float).ravel()
        )
        self._flip: bool = False

    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _fit(self, X: np.ndarray) -> None:
        """Fit internal curve state on validated data."""

    @abc.abstractmethod
    def _project(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(s, points)``: projection indices scaled to ``[0, 1]``
        and the projected curve points of shape ``(n, d)``."""

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "PrincipalCurveModel":
        """Fit the curve on a data matrix of shape ``(n, d)``."""
        X = self._validate(X, min_rows=2)
        self._fit(X)
        self._fitted_X = X
        self._flip = False
        if self.orient_alpha is not None:
            if self.orient_alpha.size != X.shape[1]:
                raise DataValidationError(
                    f"orient_alpha has {self.orient_alpha.size} entries but "
                    f"data has {X.shape[1]} attributes"
                )
            s, _points = self._project(X)
            reference = X @ self.orient_alpha
            if np.std(s) > 0 and np.std(reference) > 0:
                corr = float(np.corrcoef(s, reference)[0, 1])
                self._flip = corr < 0.0
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Projection indices — the curve's ranking scores.

        Raw indices live in ``[0, 1]`` (or are mean-centred for the
        elastic map); when orientation flipped at fit time the scores
        are negated so higher always means better for oriented models.
        """
        self._require_fit()
        X = self._validate(X)
        s, _points = self._project(X)
        return -s if self._flip else s

    def project_points(self, X: np.ndarray) -> np.ndarray:
        """Nearest curve points ``f(s_f(x))`` for each row, shape ``(n, d)``."""
        self._require_fit()
        X = self._validate(X)
        _s, points = self._project(X)
        return points

    def reconstruction_error(self, X: np.ndarray) -> float:
        """Empirical ``J(f)``: summed squared distances to the curve."""
        points = self.project_points(X)
        X = np.asarray(X, dtype=float)
        return float(np.sum((X - points) ** 2))

    def explained_variance(self, X: np.ndarray) -> float:
        """``1 − SS_residual / SS_total`` of the curve fit."""
        X = self._validate(X)
        ss_res = self.reconstruction_error(X)
        ss_tot = float(np.sum((X - X.mean(axis=0)) ** 2))
        if ss_tot <= 0.0:
            return 1.0
        return 1.0 - ss_res / ss_tot

    # ------------------------------------------------------------------
    def _require_fit(self) -> None:
        if self._fitted_X is None:
            raise NotFittedError(type(self).__name__)

    @staticmethod
    def _validate(X: np.ndarray, min_rows: int = 1) -> np.ndarray:
        # Fitting needs >= 2 points to define a curve; scoring against
        # an already-fitted curve is a per-row projection and must
        # accept single rows (the serving layer chunks arbitrarily and
        # the daemon takes one-row requests).
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise DataValidationError(f"X must be 2-D, got ndim={X.ndim}")
        if X.shape[0] < min_rows:
            raise DataValidationError(
                f"need at least {min_rows} data points, got {X.shape[0]}"
            )
        if not np.all(np.isfinite(X)):
            raise DataValidationError("X contains NaN or inf entries")
        return X


def project_to_polyline(
    X: np.ndarray, vertices: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Project points onto a polyline, returning arc-length indices.

    Parameters
    ----------
    X:
        Points of shape ``(n, d)``.
    vertices:
        Ordered polyline vertices of shape ``(m, d)``, ``m >= 2``.

    Returns
    -------
    (s, points):
        ``s`` — normalised arc-length position in ``[0, 1]`` of each
        projection; ``points`` — the projected coordinates, ``(n, d)``.

    This helper is shared by the polygonal-line model, the elastic map
    (whose fitted node chain is a polyline) and the Hastie–Stuetzle
    implementation (whose smoothed curve is stored as a dense polyline).
    """
    X = np.asarray(X, dtype=float)
    V = np.asarray(vertices, dtype=float)
    if V.ndim != 2 or V.shape[0] < 2:
        raise DataValidationError(
            f"polyline needs >= 2 vertices in a 2-D array, got shape {V.shape}"
        )
    seg_start = V[:-1]  # (m-1, d)
    seg_vec = V[1:] - V[:-1]  # (m-1, d)
    seg_len2 = np.sum(seg_vec**2, axis=1)
    seg_len2 = np.where(seg_len2 <= 0.0, 1e-30, seg_len2)
    seg_len = np.sqrt(seg_len2)
    cum_len = np.concatenate([[0.0], np.cumsum(seg_len)])
    total = cum_len[-1] if cum_len[-1] > 0 else 1.0

    # Parameter of each point on each segment, clamped to [0, 1]:
    # t[i, k] = <x_i - v_k, e_k> / |e_k|^2.
    diff = X[:, np.newaxis, :] - seg_start[np.newaxis, :, :]  # (n, m-1, d)
    t = np.einsum("nkd,kd->nk", diff, seg_vec) / seg_len2[np.newaxis, :]
    t = np.clip(t, 0.0, 1.0)
    proj = seg_start[np.newaxis, :, :] + t[:, :, np.newaxis] * seg_vec[np.newaxis, :, :]
    dist2 = np.sum((X[:, np.newaxis, :] - proj) ** 2, axis=2)  # (n, m-1)
    best = np.argmin(dist2, axis=1)
    idx = np.arange(X.shape[0])
    points = proj[idx, best]
    s = (cum_len[best] + t[idx, best] * seg_len[best]) / total
    return s, points
