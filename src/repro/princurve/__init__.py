"""Principal-curve substrate and the paper's comparator models.

* :mod:`repro.princurve.base` — common fit/score interface and shared
  polyline projection.
* :mod:`repro.princurve.smoothers` — scatterplot smoothers (kernel,
  local linear, running mean).
* :mod:`repro.princurve.hastie_stuetzle` — the classic smooth
  principal curve (Fig. 5(c) comparator: smooth but not monotone).
* :mod:`repro.princurve.polyline` — Kégl-style polygonal line
  (Fig. 5(b) comparator: neither smooth nor strictly monotone).
* :mod:`repro.princurve.elmap` — the Gorban–Zinovyev elastic map, the
  paper's Table 2 comparator.
"""

from repro.princurve.base import PrincipalCurveModel, project_to_polyline
from repro.princurve.elmap import ElasticMapCurve
from repro.princurve.hastie_stuetzle import HastieStuetzleCurve
from repro.princurve.polyline import PolygonalLineCurve
from repro.princurve.probabilistic import TibshiraniCurve
from repro.princurve.smoothers import (
    SMOOTHERS,
    kernel_smooth,
    local_linear_smooth,
    running_mean_smooth,
)

__all__ = [
    "SMOOTHERS",
    "ElasticMapCurve",
    "HastieStuetzleCurve",
    "PolygonalLineCurve",
    "PrincipalCurveModel",
    "TibshiraniCurve",
    "kernel_smooth",
    "local_linear_smooth",
    "project_to_polyline",
    "running_mean_smooth",
]
