"""Scatterplot smoothers used by the Hastie–Stuetzle algorithm.

Hastie & Stuetzle's principal-curve iteration replaces each coordinate
function by a scatterplot smooth of the data against the current
projection indices.  We implement two classic smoothers from scratch:

* :func:`kernel_smooth` — Nadaraya–Watson with a Gaussian kernel;
* :func:`local_linear_smooth` — local linear regression, which fixes
  the boundary bias of kernel smoothing (important here because ranking
  scores concentrate mass at the curve ends);
* :func:`running_mean_smooth` — the simple running-mean smoother of the
  original 1989 paper, kept for fidelity and for tests.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError, DataValidationError


def _validate_xy(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x, dtype=float).ravel()
    y = np.asarray(y, dtype=float).ravel()
    if x.size != y.size:
        raise DataValidationError(
            f"x and y must have the same length, got {x.size} and {y.size}"
        )
    if x.size < 2:
        raise DataValidationError("need at least 2 points to smooth")
    if not (np.all(np.isfinite(x)) and np.all(np.isfinite(y))):
        raise DataValidationError("smoother inputs contain NaN or inf")
    return x, y


def kernel_smooth(
    x: np.ndarray,
    y: np.ndarray,
    eval_points: np.ndarray,
    bandwidth: float = 0.1,
) -> np.ndarray:
    """Nadaraya–Watson Gaussian-kernel regression of ``y`` on ``x``.

    Parameters
    ----------
    x, y:
        Training pairs.
    eval_points:
        Locations at which to evaluate the smooth.
    bandwidth:
        Gaussian kernel standard deviation (in ``x`` units).
    """
    if bandwidth <= 0.0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
    x, y = _validate_xy(x, y)
    t = np.asarray(eval_points, dtype=float).ravel()
    # (m, n) kernel weights; subtract row max in the exponent for stability.
    z = (t[:, np.newaxis] - x[np.newaxis, :]) / bandwidth
    logw = -0.5 * z**2
    logw -= logw.max(axis=1, keepdims=True)
    w = np.exp(logw)
    denom = w.sum(axis=1)
    denom = np.where(denom <= 0.0, 1.0, denom)
    return (w @ y) / denom


def local_linear_smooth(
    x: np.ndarray,
    y: np.ndarray,
    eval_points: np.ndarray,
    bandwidth: float = 0.1,
    ridge: float = 1e-10,
) -> np.ndarray:
    """Local linear regression with a Gaussian kernel.

    Solves, at every evaluation point ``t``, the weighted least squares
    problem ``min_{a,b} sum_i w_i(t) (y_i − a − b (x_i − t))²`` and
    returns the intercept ``a``.  Unlike Nadaraya–Watson this is exact
    for globally linear data (no boundary bias), which the property
    tests assert.
    """
    if bandwidth <= 0.0:
        raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
    x, y = _validate_xy(x, y)
    t = np.asarray(eval_points, dtype=float).ravel()
    z = (t[:, np.newaxis] - x[np.newaxis, :]) / bandwidth
    logw = -0.5 * z**2
    logw -= logw.max(axis=1, keepdims=True)
    w = np.exp(logw)  # (m, n)
    dx = x[np.newaxis, :] - t[:, np.newaxis]  # (m, n)
    s0 = w.sum(axis=1)
    s1 = (w * dx).sum(axis=1)
    s2 = (w * dx**2).sum(axis=1)
    b0 = (w * y[np.newaxis, :]).sum(axis=1)
    b1 = (w * dx * y[np.newaxis, :]).sum(axis=1)
    # Closed-form 2x2 solve for the intercept:
    # [s0 s1; s1 s2] [a; b] = [b0; b1]  =>  a = (s2 b0 - s1 b1) / det.
    det = s0 * s2 - s1**2 + ridge
    a = (s2 * b0 - s1 * b1) / det
    # Fall back to the kernel mean where the local design is degenerate
    # (all weight on one x value).
    degenerate = det <= ridge * 10.0
    if np.any(degenerate):
        fallback = b0 / np.where(s0 <= 0.0, 1.0, s0)
        a = np.where(degenerate, fallback, a)
    return a


def running_mean_smooth(
    x: np.ndarray,
    y: np.ndarray,
    eval_points: np.ndarray,
    span: float = 0.2,
) -> np.ndarray:
    """Running-mean smoother: average of the ``span`` nearest neighbours.

    The smoother of the original Hastie–Stuetzle paper.  ``span`` is
    the neighbourhood fraction of the sample (0 < span <= 1).
    """
    if not 0.0 < span <= 1.0:
        raise ConfigurationError(f"span must be in (0, 1], got {span}")
    x, y = _validate_xy(x, y)
    t = np.asarray(eval_points, dtype=float).ravel()
    k = max(int(np.ceil(span * x.size)), 2)
    order = np.argsort(x, kind="stable")
    xs = x[order]
    ys = y[order]
    out = np.empty(t.size)
    for i, ti in enumerate(t):
        # k nearest neighbours of ti in sorted x.
        pos = np.searchsorted(xs, ti)
        lo = max(0, pos - k)
        hi = min(xs.size, pos + k)
        window_x = xs[lo:hi]
        window_y = ys[lo:hi]
        dist = np.abs(window_x - ti)
        nearest = np.argsort(dist, kind="stable")[:k]
        out[i] = float(np.mean(window_y[nearest]))
    return out


SMOOTHERS = {
    "kernel": kernel_smooth,
    "local_linear": local_linear_smooth,
    "running_mean": running_mean_smooth,
}
