"""Kégl-style polygonal-line principal curves.

Kégl, Krzyżak, Linder & Zeger (2000) fit a principal curve as a
polyline with a growing number of vertices, alternating a projection
step with a penalised vertex-optimisation step.  The RPC paper uses
polyline approximations as the canonical example of a ranking rule that
violates two meta-rules:

* **smoothness** — the projection index is only C⁰ at vertex Voronoi
  boundaries (Fig. 2(a)'s kink);
* **strict monotonicity** — a horizontal/vertical segment maps many
  distinct points to the same score (Example 1's x1, x2).

This implementation follows the spirit of the published algorithm at a
scale adequate for the reproduction: vertices are inserted at the
segment with the largest local reconstruction error, and vertex
positions are relaxed towards the mean of their assigned points with a
curvature (angle) penalty.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.princurve.base import PrincipalCurveModel, project_to_polyline


class PolygonalLineCurve(PrincipalCurveModel):
    """Principal curve as a penalised polygonal line.

    Parameters
    ----------
    n_vertices:
        Final number of polyline vertices (>= 2).  The classic heuristic
        of ``O(n^{1/3})`` vertices is a good default for data of a few
        hundred points.
    curvature_penalty:
        Weight of the angle penalty pulling each interior vertex toward
        the midpoint of its neighbours; larger values give straighter
        lines.
    n_relaxations:
        Vertex-optimisation sweeps performed after every insertion.
    """

    def __init__(
        self,
        n_vertices: int = 8,
        curvature_penalty: float = 0.1,
        n_relaxations: int = 10,
        orient_alpha: Optional[np.ndarray] = None,
    ):
        super().__init__(orient_alpha=orient_alpha)
        if n_vertices < 2:
            raise ConfigurationError(f"n_vertices must be >= 2, got {n_vertices}")
        if curvature_penalty < 0.0:
            raise ConfigurationError(
                f"curvature_penalty must be >= 0, got {curvature_penalty}"
            )
        self.n_vertices = int(n_vertices)
        self.curvature_penalty = float(curvature_penalty)
        self.n_relaxations = int(n_relaxations)
        self.vertices_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray) -> None:
        # Start from the first-principal-component segment spanning the
        # data (the paper's initialisation).
        mean = X.mean(axis=0)
        centred = X - mean
        _u, _s, vt = np.linalg.svd(centred, full_matrices=False)
        direction = vt[0]
        proj = centred @ direction
        lo, hi = float(proj.min()), float(proj.max())
        vertices = np.vstack([mean + lo * direction, mean + hi * direction])

        while True:
            vertices = self._relax(X, vertices)
            if vertices.shape[0] >= self.n_vertices:
                break
            vertices = self._insert_vertex(X, vertices)

        self.vertices_ = vertices

    def _relax(self, X: np.ndarray, vertices: np.ndarray) -> np.ndarray:
        """Vertex-optimisation sweeps at fixed topology."""
        V = vertices.copy()
        for _ in range(self.n_relaxations):
            s, _points = project_to_polyline(X, V)
            # Assign each point to its nearest vertex along the line.
            cum = _cumulative_arclength(V)
            assignment = np.argmin(
                np.abs(s[:, np.newaxis] - cum[np.newaxis, :]), axis=1
            )
            new_V = V.copy()
            for k in range(V.shape[0]):
                assigned = X[assignment == k]
                target = assigned.mean(axis=0) if assigned.size else V[k]
                if 0 < k < V.shape[0] - 1 and self.curvature_penalty > 0.0:
                    midpoint = 0.5 * (V[k - 1] + V[k + 1])
                    w = self.curvature_penalty
                    target = (target + w * midpoint) / (1.0 + w)
                new_V[k] = target
            if np.allclose(new_V, V, atol=1e-12):
                V = new_V
                break
            V = new_V
        return V

    @staticmethod
    def _insert_vertex(X: np.ndarray, vertices: np.ndarray) -> np.ndarray:
        """Split the segment carrying the largest reconstruction error."""
        s, points = project_to_polyline(X, vertices)
        cum = _cumulative_arclength(vertices)
        errors = np.sum((X - points) ** 2, axis=1)
        seg_of_point = np.clip(
            np.searchsorted(cum, s, side="right") - 1, 0, vertices.shape[0] - 2
        )
        seg_error = np.zeros(vertices.shape[0] - 1)
        np.add.at(seg_error, seg_of_point, errors)
        worst = int(np.argmax(seg_error))
        midpoint = 0.5 * (vertices[worst] + vertices[worst + 1])
        return np.insert(vertices, worst + 1, midpoint, axis=0)

    def _project(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self.vertices_ is not None
        return project_to_polyline(X, self.vertices_)

    # ------------------------------------------------------------------
    # Meta-rule capability declarations
    # ------------------------------------------------------------------
    @property
    def has_linear_capacity(self) -> bool:
        """A two-vertex polyline is a straight line."""
        return True

    @property
    def has_nonlinear_capacity(self) -> bool:
        """More vertices approximate any continuous curve."""
        return True

    @property
    def parameter_size(self) -> Optional[int]:
        """``n_vertices x d`` — known, but the projection is not smooth.

        Explicitness holds for the polyline; it is smoothness and
        strict monotonicity that fail (Fig. 2(a)), which the
        meta-rule report demonstrates.
        """
        if self.vertices_ is None:
            return None
        return int(self.vertices_.size)


def _cumulative_arclength(vertices: np.ndarray) -> np.ndarray:
    """Normalised cumulative arc length of each vertex in ``[0, 1]``."""
    seg = np.linalg.norm(np.diff(vertices, axis=0), axis=1)
    cum = np.concatenate([[0.0], np.cumsum(seg)])
    total = cum[-1] if cum[-1] > 0 else 1.0
    return cum / total
