"""Tibshirani-style probabilistic principal curves (reference [30]).

Tibshirani (1992) recast principal curves generatively: a latent
coordinate ``s`` is drawn from a prior over curve nodes, and the
observation is Gaussian around the curve point,

    ``x | s ~ N(f(s), sigma^2 I)``.

Fitting maximises the (penalised) likelihood by EM: the E-step
computes soft responsibilities of every node for every point, the
M-step re-estimates node locations (with a second-difference roughness
penalty keeping the chain smooth) and the noise variance.

The RPC paper's Appendix A criticism of this family — "employed
Gaussian mixture model to generally formulate the principal curve
which brings model bias and makes interpretation even harder" — is
testable here: the model's effective parameter count is the full node
set plus mixture machinery (``parameter_size`` is ``None``), and its
scores carry no monotonicity guarantee.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.princurve.base import PrincipalCurveModel, project_to_polyline


class TibshiraniCurve(PrincipalCurveModel):
    """EM-fitted probabilistic principal curve.

    Parameters
    ----------
    n_nodes:
        Number of latent curve nodes (mixture components).
    smoothness:
        Weight of the second-difference roughness penalty on node
        locations; 0 reduces to a plain Gaussian mixture along the
        initial ordering.
    max_iter:
        EM iteration cap.
    tol:
        Relative log-likelihood improvement stopping threshold.
    min_variance:
        Floor on the shared noise variance (prevents collapse).
    orient_alpha:
        Optional task direction for score orientation (see base class).
    """

    def __init__(
        self,
        n_nodes: int = 25,
        smoothness: float = 1e-3,
        max_iter: int = 100,
        tol: float = 1e-6,
        min_variance: float = 1e-8,
        orient_alpha: Optional[np.ndarray] = None,
    ):
        super().__init__(orient_alpha=orient_alpha)
        if n_nodes < 3:
            raise ConfigurationError(f"n_nodes must be >= 3, got {n_nodes}")
        if smoothness < 0:
            raise ConfigurationError(
                f"smoothness must be >= 0, got {smoothness}"
            )
        self.n_nodes = int(n_nodes)
        self.smoothness = float(smoothness)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.min_variance = float(min_variance)
        self.nodes_: Optional[np.ndarray] = None
        self.variance_: float = float("nan")
        self.log_likelihood_trace_: list[float] = []

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray) -> None:
        n, d = X.shape
        m = self.n_nodes
        # Initialise nodes along the first principal component.
        mean = X.mean(axis=0)
        centred = X - mean
        _u, sv, vt = np.linalg.svd(centred, full_matrices=False)
        direction = vt[0]
        proj = centred @ direction
        ts = np.linspace(float(proj.min()), float(proj.max()), m)
        nodes = mean[np.newaxis, :] + ts[:, np.newaxis] * direction[np.newaxis, :]
        variance = max(
            float(np.mean(np.sum(centred**2, axis=1))) / d * 0.25,
            self.min_variance,
        )

        # Roughness penalty quadratic form (second differences).
        D = np.zeros((m - 2, m))
        for k in range(m - 2):
            D[k, k] = 1.0
            D[k, k + 1] = -2.0
            D[k, k + 2] = 1.0
        penalty = self.smoothness * (D.T @ D)

        prev_ll = -np.inf
        self.log_likelihood_trace_ = []
        for _ in range(self.max_iter):
            # E-step: responsibilities under equal node priors.
            d2 = (
                np.sum(X**2, axis=1)[:, np.newaxis]
                - 2.0 * X @ nodes.T
                + np.sum(nodes**2, axis=1)[np.newaxis, :]
            )
            log_resp = -0.5 * d2 / variance
            log_norm = log_resp.max(axis=1, keepdims=True)
            resp = np.exp(log_resp - log_norm)
            resp_sum = resp.sum(axis=1, keepdims=True)
            resp /= resp_sum

            # Observed-data log-likelihood (up to constants shared
            # across iterations for fixed d).
            ll = float(
                np.sum(np.log(resp_sum.ravel()) + log_norm.ravel())
                - 0.5 * n * d * np.log(2.0 * np.pi * variance)
                - np.log(m) * n
            )
            self.log_likelihood_trace_.append(ll)

            # M-step: penalised node update solves
            # (diag(Nk)/n + penalty') mu = R^T X / n with the penalty
            # scaled by the variance so units match the likelihood.
            weights = resp.sum(axis=0)  # (m,)
            A = np.diag(weights / n) + penalty * variance
            B = resp.T @ X / n
            nodes = np.linalg.solve(A, B)

            # Variance update.
            d2_new = (
                np.sum(X**2, axis=1)[:, np.newaxis]
                - 2.0 * X @ nodes.T
                + np.sum(nodes**2, axis=1)[np.newaxis, :]
            )
            variance = max(
                float(np.sum(resp * d2_new)) / (n * d), self.min_variance
            )

            if ll - prev_ll < self.tol * max(abs(prev_ll), 1.0) and np.isfinite(
                prev_ll
            ):
                break
            prev_ll = ll

        self.nodes_ = nodes
        self.variance_ = variance

    def _project(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self.nodes_ is not None
        return project_to_polyline(X, self.nodes_)

    # ------------------------------------------------------------------
    def posterior_responsibilities(self, X: np.ndarray) -> np.ndarray:
        """Soft node assignments ``p(node | x)``, shape ``(n, m)``."""
        self._require_fit()
        assert self.nodes_ is not None
        X = self._validate(X)
        d2 = (
            np.sum(X**2, axis=1)[:, np.newaxis]
            - 2.0 * X @ self.nodes_.T
            + np.sum(self.nodes_**2, axis=1)[np.newaxis, :]
        )
        log_resp = -0.5 * d2 / self.variance_
        log_resp -= log_resp.max(axis=1, keepdims=True)
        resp = np.exp(log_resp)
        return resp / resp.sum(axis=1, keepdims=True)

    # ------------------------------------------------------------------
    # Meta-rule capability declarations
    # ------------------------------------------------------------------
    @property
    def has_linear_capacity(self) -> bool:
        """A heavily penalised chain degenerates to a line."""
        return True

    @property
    def has_nonlinear_capacity(self) -> bool:
        """The node chain bends with the data."""
        return True

    @property
    def parameter_size(self) -> Optional[int]:
        """Unknown — the paper's model-bias / interpretability critique.

        The raw count (``m x d`` nodes + variance) is a resolution
        artefact, not an interpretable model order, so the family
        reports ``None`` like the other nonparametric curves.
        """
        return None
