"""Hastie–Stuetzle principal curves (the Appendix A reference model).

The original principal-curve algorithm alternates

1. **Projection** — compute the projection index of every point on the
   current curve (stored as a dense polyline);
2. **Expectation/smoothing** — replace each coordinate function by a
   scatterplot smooth of that coordinate against the projection
   indices (the finite-sample surrogate of the self-consistency
   condition ``f(s) = E[x | s_f(x) = s]``).

The fitted curve is a *general* smooth principal curve: it follows the
data skeleton but — as Fig. 5(c) of the RPC paper illustrates — nothing
constrains it to be monotone, so its projection-index scores can break
the strict-monotonicity meta-rule.  The benchmarks use this model to
reproduce exactly that failure mode.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.princurve.base import PrincipalCurveModel, project_to_polyline
from repro.princurve.smoothers import SMOOTHERS


class HastieStuetzleCurve(PrincipalCurveModel):
    """Classic principal curve via projection/smoothing iterations.

    Parameters
    ----------
    smoother:
        ``"local_linear"`` (default), ``"kernel"`` or ``"running_mean"``.
    bandwidth:
        Smoother bandwidth as a fraction of the projection-index range;
        for ``"running_mean"`` this is interpreted as the span.
    n_nodes:
        Resolution of the polyline that stores the curve.
    max_iter:
        Cap on projection/smoothing alternations.
    tol:
        Stop when the relative change of the reconstruction error drops
        below this threshold.
    """

    def __init__(
        self,
        smoother: Literal["kernel", "local_linear", "running_mean"] = "local_linear",
        bandwidth: float = 0.15,
        n_nodes: int = 100,
        max_iter: int = 30,
        tol: float = 1e-4,
        orient_alpha: Optional[np.ndarray] = None,
    ):
        super().__init__(orient_alpha=orient_alpha)
        if smoother not in SMOOTHERS:
            raise ConfigurationError(
                f"unknown smoother {smoother!r}; valid: {sorted(SMOOTHERS)}"
            )
        if bandwidth <= 0.0:
            raise ConfigurationError(f"bandwidth must be positive, got {bandwidth}")
        if n_nodes < 3:
            raise ConfigurationError(f"n_nodes must be >= 3, got {n_nodes}")
        self.smoother = smoother
        self.bandwidth = float(bandwidth)
        self.n_nodes = int(n_nodes)
        self.max_iter = int(max_iter)
        self.tol = float(tol)
        self.nodes_: Optional[np.ndarray] = None
        self.n_iterations_: int = 0

    # ------------------------------------------------------------------
    def _fit(self, X: np.ndarray) -> None:
        n, d = X.shape
        # Initialise with the first principal component line (the
        # textbook starting point).
        mean = X.mean(axis=0)
        centred = X - mean
        _u, _s, vt = np.linalg.svd(centred, full_matrices=False)
        direction = vt[0]
        s = centred @ direction
        s = _normalize_index(s)

        grid = np.linspace(0.0, 1.0, self.n_nodes)
        nodes = np.empty((self.n_nodes, d))
        prev_error = np.inf
        smooth = SMOOTHERS[self.smoother]

        for iteration in range(self.max_iter):
            # Smoothing step: coordinatewise smooth against s.
            for j in range(d):
                if self.smoother == "running_mean":
                    nodes[:, j] = smooth(s, X[:, j], grid, span=self.bandwidth)
                else:
                    nodes[:, j] = smooth(
                        s, X[:, j], grid, bandwidth=self.bandwidth
                    )
            # Projection step onto the refreshed polyline.
            s, proj = project_to_polyline(X, nodes)
            s = _normalize_index(s)
            error = float(np.sum((X - proj) ** 2))
            self.n_iterations_ = iteration + 1
            if prev_error - error < self.tol * max(prev_error, 1e-12):
                break
            prev_error = error

        self.nodes_ = nodes

    def _project(self, X: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        assert self.nodes_ is not None
        s, points = project_to_polyline(X, self.nodes_)
        return s, points

    # ------------------------------------------------------------------
    # Meta-rule capability declarations
    # ------------------------------------------------------------------
    @property
    def has_linear_capacity(self) -> bool:
        """Smoothers reproduce linear trends (local-linear exactly)."""
        return True

    @property
    def has_nonlinear_capacity(self) -> bool:
        """Nonparametric smoothing captures arbitrary smooth shapes."""
        return True

    @property
    def parameter_size(self) -> Optional[int]:
        """Unknown: the effective parameters depend on data and bandwidth.

        This is the explicitness failure the paper attributes to
        nonparametric principal-curve models — the stored polyline has
        ``n_nodes x d`` numbers but they are not interpretable model
        parameters of fixed, a-priori-known size.
        """
        return None


def _normalize_index(s: np.ndarray) -> np.ndarray:
    """Affinely map projection indices onto ``[0, 1]``."""
    s = np.asarray(s, dtype=float)
    lo = float(s.min())
    hi = float(s.max())
    if hi - lo <= 0.0:
        return np.full_like(s, 0.5)
    return (s - lo) / (hi - lo)
