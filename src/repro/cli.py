"""Command-line interface: rank a CSV of multi-attribute objects.

Usage::

    python -m repro rank data.csv --alpha "+GDP,+LEB,-IMR,-TB" \
        --output ranking.csv --top 10
    python -m repro demo countries        # run a bundled experiment
    python -m repro demo journals

The ``rank`` command loads a headered CSV (first column = labels by
default), fits a Ranking Principal Curve with the given attribute
directions, prints the top of the ranking list and optionally writes
the full list to a CSV.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Optional, Sequence

import numpy as np

from repro.core.exceptions import ReproError
from repro.core.rpc import RankingPrincipalCurve
from repro.data.loaders import load_csv, parse_alpha_spec, save_ranking_csv


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unsupervised ranking with Ranking Principal Curves",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rank = sub.add_parser("rank", help="rank objects from a CSV file")
    rank.add_argument("csv_path", help="input CSV with a header row")
    rank.add_argument(
        "--alpha",
        required=True,
        help="attribute directions, e.g. '+GDP,+LEB,-IMR,-TB'",
    )
    rank.add_argument(
        "--label-column",
        default=None,
        help="header of the identifier column (default: first column)",
    )
    rank.add_argument(
        "--output", default=None, help="write the full ranking CSV here"
    )
    rank.add_argument(
        "--top", type=int, default=10, help="rows to print (default 10)"
    )
    rank.add_argument(
        "--degree", type=int, default=3, help="Bezier degree (default 3)"
    )
    rank.add_argument(
        "--restarts", type=int, default=4, help="random restarts (default 4)"
    )
    rank.add_argument(
        "--seed", type=int, default=0, help="random seed (default 0)"
    )

    demo = sub.add_parser("demo", help="run a bundled experiment")
    demo.add_argument(
        "dataset",
        choices=("countries", "journals"),
        help="which bundled dataset to rank",
    )
    demo.add_argument("--top", type=int, default=10)
    return parser


def _run_rank(args: argparse.Namespace) -> int:
    table = load_csv(args.csv_path, label_column=args.label_column)
    alpha = parse_alpha_spec(args.alpha, table.attribute_names)
    model = RankingPrincipalCurve(
        alpha=alpha,
        degree=args.degree,
        n_restarts=args.restarts,
        random_state=args.seed,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ranking = model.fit_rank(table.X, labels=table.labels)

    print(f"ranked {len(table.labels)} objects on "
          f"{len(table.attribute_names)} attributes "
          f"(explained variance {model.explained_variance(table.X):.3f})")
    print(f"{'pos':>4}  {'score':>8}  label")
    for label, score in ranking.top(args.top):
        print(f"{ranking.position_of(label):>4}  {score:>8.4f}  {label}")
    if args.output:
        save_ranking_csv(args.output, ranking)
        print(f"full ranking written to {args.output}")
    return 0


def _run_demo(args: argparse.Namespace) -> int:
    if args.dataset == "countries":
        from repro.data.countries import load_countries

        data = load_countries()
        alpha = data.alpha
        X, labels = data.X, data.labels
    else:
        from repro.data.journals import load_journals

        jdata = load_journals()
        alpha = jdata.alpha
        X, labels = jdata.X, jdata.labels

    model = RankingPrincipalCurve(alpha=alpha, random_state=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ranking = model.fit_rank(X, labels=labels)
    print(f"{args.dataset}: {X.shape[0]} objects, "
          f"explained variance {model.explained_variance(X):.3f}")
    for label, score in ranking.top(args.top):
        print(f"  {score:.4f}  {label}")
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "rank":
            return _run_rank(args)
        return _run_demo(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
