"""Command-line interface: rank a CSV of multi-attribute objects.

Usage::

    python -m repro rank data.csv --alpha "+GDP,+LEB,-IMR,-TB" \
        --output ranking.csv --top 10
    python -m repro demo countries        # run a bundled experiment
    python -m repro demo journals

    # fit-once / serve-many workflow
    python -m repro save data.csv --alpha "+GDP,+LEB,-IMR,-TB" \
        --model model.json
    python -m repro load model.json       # inspect a saved model
    python -m repro score model.json fresh.csv --output ranking.csv

The ``rank`` command loads a headered CSV (first column = labels by
default), fits a Ranking Principal Curve with the given attribute
directions, prints the top of the ranking list and optionally writes
the full list to a CSV.  ``save`` fits the same way but persists the
fitted model (JSON or ``.npz`` by suffix) instead of discarding it;
``score`` reloads such a model in a fresh process and scores new rows
with chunked, bounded-memory batch projection — no refitting.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Optional, Sequence

import numpy as np

from repro.core.exceptions import DataValidationError, ReproError
from repro.core.rpc import RankingPrincipalCurve
from repro.core.scoring import build_ranking_list
from repro.data.loaders import load_csv, parse_alpha_spec, save_ranking_csv
from repro.serving.batch import score_batch
from repro.serving.persistence import check_model_path, load_model, save_model


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unsupervised ranking with Ranking Principal Curves",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rank = sub.add_parser("rank", help="rank objects from a CSV file")
    rank.add_argument("csv_path", help="input CSV with a header row")
    rank.add_argument(
        "--alpha",
        required=True,
        help="attribute directions, e.g. '+GDP,+LEB,-IMR,-TB'",
    )
    rank.add_argument(
        "--label-column",
        default=None,
        help="header of the identifier column (default: first column)",
    )
    rank.add_argument(
        "--output", default=None, help="write the full ranking CSV here"
    )
    rank.add_argument(
        "--top", type=int, default=10, help="rows to print (default 10)"
    )
    rank.add_argument(
        "--degree", type=int, default=3, help="Bezier degree (default 3)"
    )
    rank.add_argument(
        "--restarts", type=int, default=4, help="random restarts (default 4)"
    )
    rank.add_argument(
        "--seed", type=int, default=0, help="random seed (default 0)"
    )

    demo = sub.add_parser("demo", help="run a bundled experiment")
    demo.add_argument(
        "dataset",
        choices=("countries", "journals"),
        help="which bundled dataset to rank",
    )
    demo.add_argument("--top", type=int, default=10)

    save = sub.add_parser(
        "save", help="fit a model on a CSV and persist it"
    )
    save.add_argument("csv_path", help="input CSV with a header row")
    save.add_argument(
        "--alpha",
        required=True,
        help="attribute directions, e.g. '+GDP,+LEB,-IMR,-TB'",
    )
    save.add_argument(
        "--model",
        required=True,
        help="destination model file (.json or .npz)",
    )
    save.add_argument("--label-column", default=None)
    save.add_argument("--degree", type=int, default=3)
    save.add_argument("--restarts", type=int, default=4)
    save.add_argument("--seed", type=int, default=0)
    save.add_argument(
        "--warm-start",
        action="store_true",
        help="use warm-started projection during fitting",
    )

    load = sub.add_parser("load", help="inspect a saved model")
    load.add_argument("model_path", help="model file written by 'save'")

    score = sub.add_parser(
        "score", help="score a CSV with a saved model (no refitting)"
    )
    score.add_argument("model_path", help="model file written by 'save'")
    score.add_argument("csv_path", help="CSV of new objects to score")
    score.add_argument("--label-column", default=None)
    score.add_argument(
        "--output", default=None, help="write the full ranking CSV here"
    )
    score.add_argument(
        "--top", type=int, default=10, help="rows to print (default 10)"
    )
    score.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="rows per projection chunk (default 4096)",
    )
    return parser


def _print_ranking(ranking, top: int, output: Optional[str]) -> None:
    """Shared ranking display of the ``rank`` and ``score`` commands."""
    print(f"{'pos':>4}  {'score':>8}  label")
    for label, score in ranking.top(top):
        print(f"{ranking.position_of(label):>4}  {score:>8.4f}  {label}")
    if output:
        save_ranking_csv(output, ranking)
        print(f"full ranking written to {output}")


def _run_rank(args: argparse.Namespace) -> int:
    table = load_csv(args.csv_path, label_column=args.label_column)
    alpha = parse_alpha_spec(args.alpha, table.attribute_names)
    model = RankingPrincipalCurve(
        alpha=alpha,
        degree=args.degree,
        n_restarts=args.restarts,
        random_state=args.seed,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ranking = model.fit_rank(table.X, labels=table.labels)

    print(f"ranked {len(table.labels)} objects on "
          f"{len(table.attribute_names)} attributes "
          f"(explained variance {model.explained_variance(table.X):.3f})")
    _print_ranking(ranking, args.top, args.output)
    return 0


def _run_demo(args: argparse.Namespace) -> int:
    if args.dataset == "countries":
        from repro.data.countries import load_countries

        data = load_countries()
        alpha = data.alpha
        X, labels = data.X, data.labels
    else:
        from repro.data.journals import load_journals

        jdata = load_journals()
        alpha = jdata.alpha
        X, labels = jdata.X, jdata.labels

    model = RankingPrincipalCurve(alpha=alpha, random_state=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ranking = model.fit_rank(X, labels=labels)
    print(f"{args.dataset}: {X.shape[0]} objects, "
          f"explained variance {model.explained_variance(X):.3f}")
    for label, score in ranking.top(args.top):
        print(f"  {score:.4f}  {label}")
    return 0


def _run_save(args: argparse.Namespace) -> int:
    # Validate the destination format before paying for the fit.
    check_model_path(args.model)
    table = load_csv(args.csv_path, label_column=args.label_column)
    alpha = parse_alpha_spec(args.alpha, table.attribute_names)
    model = RankingPrincipalCurve(
        alpha=alpha,
        degree=args.degree,
        n_restarts=args.restarts,
        random_state=args.seed,
        warm_start=args.warm_start,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(table.X)
    path = save_model(model, args.model, feature_names=table.attribute_names)
    print(
        f"fitted on {table.X.shape[0]} objects x "
        f"{table.X.shape[1]} attributes "
        f"(final objective {model.trace_.final_objective:.6f}, "
        f"{model.trace_.n_iterations} iterations)"
    )
    print(f"model written to {path}")
    return 0


def _run_load(args: argparse.Namespace) -> int:
    model = load_model(args.model_path)
    print(f"model: {model!r}")
    if model.feature_names_ is not None:
        print(f"attributes: {', '.join(model.feature_names_)}")
    if not model.is_fitted:
        print("state: not fitted")
        return 0
    trace = model.trace_
    print(
        f"state: fitted ({trace.n_iterations} iterations, "
        f"final objective {trace.final_objective:.6f}, "
        f"converged={trace.converged})"
    )
    print("control points (normalised coordinates):")
    for r, column in enumerate(model.control_points_.T):
        coords = ", ".join(f"{v:.4f}" for v in column)
        print(f"  p{r} = ({coords})")
    return 0


def _run_score(args: argparse.Namespace) -> int:
    model = load_model(args.model_path)
    table = load_csv(
        args.csv_path,
        label_column=args.label_column,
        attribute_columns=model.feature_names_,
    )
    if table.X.shape[1] != model.alpha.size:
        raise DataValidationError(
            f"model expects {model.alpha.size} attributes but "
            f"{args.csv_path} provides {table.X.shape[1]}"
        )
    scores = score_batch(model, table.X, chunk_size=args.chunk_size)
    ranking = build_ranking_list(scores, labels=table.labels)
    print(
        f"scored {table.X.shape[0]} objects with saved model "
        f"{args.model_path}"
    )
    _print_ranking(ranking, args.top, args.output)
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "rank": _run_rank,
        "demo": _run_demo,
        "save": _run_save,
        "load": _run_load,
        "score": _run_score,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
