"""Command-line interface: rank a CSV of multi-attribute objects.

Usage::

    python -m repro rank data.csv --alpha "+GDP,+LEB,-IMR,-TB" \
        --output ranking.csv --top 10
    python -m repro demo countries        # run a bundled experiment
    python -m repro demo journals

    # fit-once / serve-many workflow
    python -m repro save data.csv --alpha "+GDP,+LEB,-IMR,-TB" \
        --model model.json
    python -m repro load model.json       # inspect a saved model
    python -m repro score model.json fresh.csv --output ranking.csv
    python -m repro score model.json huge.csv --stream --jobs 4
    python -m repro score model.json huge.csv.gz --stream --top-k 10
    python -m repro score model.json huge.csv.gz --stream --rank \
        --memory-budget-rows 100000 --output ranking.csv

    # long-running scoring daemon (JSON over HTTP)
    python -m repro serve --model wellbeing=model.json --port 8000
    # pre-fork worker fleet with request micro-batching
    python -m repro serve --model wellbeing=model.json --port 8000 \
        --workers 4 --batch-window-ms 2

The ``rank`` command loads a headered CSV (first column = labels by
default), fits a Ranking Principal Curve with the given attribute
directions, prints the top of the ranking list and optionally writes
the full list to a CSV.  ``save`` fits the same way but persists the
fitted model (JSON, ``.npz``, or a manifest directory) instead of
discarding it — any registered model family (``--family``);
``score`` reloads such a model in a fresh process and scores new rows
with chunked, bounded-memory batch projection — no refitting; with
``--stream`` the CSV (gzipped or plain) is read incrementally so
inputs larger than memory score in ``O(chunk_size)`` space, ``--jobs``
fans chunks out over worker threads, ``--top-k N`` folds the stream
into a bounded heap so even the ranking list never materialises, and
``--rank`` produces the *complete* ranking through a spill-to-disk
external merge sort (``--memory-budget-rows`` bounds the buffered
rows) with output byte-identical to the in-memory path.  ``serve``
keeps any number of saved models
resident behind an HTTP daemon (see :mod:`repro.server`) instead of
paying a process start per scoring run.
"""

from __future__ import annotations

import argparse
import json
import sys
import warnings
from typing import Optional, Sequence

import numpy as np

from repro.core.exceptions import (
    ConfigurationError,
    DataValidationError,
    ReproError,
)
from repro.core.rpc import RankingPrincipalCurve
from repro.core.scoring import build_ranking_list
from repro.data.loaders import load_csv, parse_alpha_spec, save_ranking_csv
from repro.linalg.backend import BACKEND_CHOICES, SCORE_DTYPE_CHOICES
from repro.serving.batch import score_batch
from repro.families import build_model, family_names
from repro.serving.persistence import check_model_path, load_model, save_model
from repro.serving.stream import (
    iter_stream_scores,
    stream_rank_csv,
    stream_rank_topk,
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Unsupervised ranking with Ranking Principal Curves",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    rank = sub.add_parser("rank", help="rank objects from a CSV file")
    rank.add_argument("csv_path", help="input CSV with a header row")
    rank.add_argument(
        "--alpha",
        required=True,
        help="attribute directions, e.g. '+GDP,+LEB,-IMR,-TB'",
    )
    rank.add_argument(
        "--label-column",
        default=None,
        help="header of the identifier column (default: first column)",
    )
    rank.add_argument(
        "--output", default=None, help="write the full ranking CSV here"
    )
    rank.add_argument(
        "--top", type=int, default=10, help="rows to print (default 10)"
    )
    rank.add_argument(
        "--degree", type=int, default=3, help="Bezier degree (default 3)"
    )
    rank.add_argument(
        "--restarts", type=int, default=4, help="random restarts (default 4)"
    )
    rank.add_argument(
        "--seed", type=int, default=0, help="random seed (default 0)"
    )

    demo = sub.add_parser("demo", help="run a bundled experiment")
    demo.add_argument(
        "dataset",
        choices=("countries", "journals"),
        help="which bundled dataset to rank",
    )
    demo.add_argument("--top", type=int, default=10)

    save = sub.add_parser(
        "save", help="fit a model on a CSV and persist it"
    )
    save.add_argument("csv_path", help="input CSV with a header row")
    save.add_argument(
        "--alpha",
        required=True,
        help="attribute directions, e.g. '+GDP,+LEB,-IMR,-TB'",
    )
    save.add_argument(
        "--model",
        required=True,
        help="destination: a .json or .npz file, or a manifest "
        "directory (no suffix)",
    )
    save.add_argument(
        "--family",
        choices=family_names(),
        default="rpc",
        help="model family to fit (default 'rpc', the Bézier ranking "
        "principal curve; other families use their default "
        "hyperparameters and ignore --degree/--restarts/--seed/"
        "--warm-start; 'pagerank' reads the CSV matrix as an "
        "adjacency matrix)",
    )
    save.add_argument("--label-column", default=None)
    save.add_argument("--degree", type=int, default=3)
    save.add_argument("--restarts", type=int, default=4)
    save.add_argument("--seed", type=int, default=0)
    save.add_argument(
        "--warm-start",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="warm-started projection during fitting (on by default; "
        "--no-warm-start restores the cold per-iteration grid scan)",
    )

    load = sub.add_parser("load", help="inspect a saved model")
    load.add_argument(
        "model_path",
        help="model file or manifest directory written by 'save'",
    )

    score = sub.add_parser(
        "score", help="score a CSV with a saved model (no refitting)"
    )
    score.add_argument(
        "model_path",
        help="model file or manifest directory written by 'save'",
    )
    score.add_argument("csv_path", help="CSV of new objects to score")
    score.add_argument("--label-column", default=None)
    score.add_argument(
        "--output", default=None, help="write the full ranking CSV here"
    )
    score.add_argument(
        "--top", type=int, default=10, help="rows to print (default 10)"
    )
    score.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="rows per projection chunk (default 4096)",
    )
    score.add_argument(
        "--stream",
        action="store_true",
        help="read the CSV incrementally (never materialises the "
        "input; output is identical to the in-memory path)",
    )
    score.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker threads for chunk dispatch (-1 = all cores)",
    )
    score.add_argument(
        "--top-k",
        type=int,
        default=None,
        dest="top_k",
        metavar="N",
        help="streaming rank: keep only the best N rows in a bounded "
        "heap so the full ranking never materialises (requires "
        "--stream; prints and writes just those N rows)",
    )
    score.add_argument(
        "--rank",
        action="store_true",
        help="full streaming rank: order ALL rows via a spill-to-disk "
        "external merge sort (requires --stream; output is "
        "byte-identical to the in-memory ranking path while peak "
        "buffered rows stay within --memory-budget-rows)",
    )
    score.add_argument(
        "--memory-budget-rows",
        type=int,
        default=None,
        dest="memory_budget_rows",
        metavar="N",
        help="rows buffered in memory before the external sort spills "
        "a sorted run to disk (with --rank; default 1000000)",
    )
    score.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="auto",
        help="projection kernel backend: 'auto' (default) picks the "
        "fastest available (numba if importable, else closed-form), "
        "'numpy' is the eigenvalue reference, 'closed-form' solves "
        "stationary polynomials analytically, 'numba' requires the "
        "optional numba package (see docs/performance.md)",
    )
    score.add_argument(
        "--score-dtype",
        choices=SCORE_DTYPE_CHOICES,
        default="float64",
        dest="score_dtype",
        help="working precision for the projection solve; 'float32' "
        "halves memory bandwidth at ~1e-3 score tolerance (output "
        "scores are always float64; default 'float64')",
    )

    serve = sub.add_parser(
        "serve",
        help="run the long-running HTTP scoring daemon",
        epilog="operations guide (worker sizing, batching trade-offs, "
        "overload behaviour and tuning, metrics semantics, TLS/auth "
        "proxy): docs/ops.md",
    )
    serve.add_argument(
        "--model",
        action="append",
        required=True,
        metavar="NAME=PATH",
        dest="models",
        help="serve the saved model (file or manifest directory) at "
        "PATH under NAME (repeatable; families may be mixed)",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default local)"
    )
    serve.add_argument(
        "--port", type=int, default=8000, help="TCP port (default 8000)"
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="worker processes sharing the listening socket "
        "(pre-fork; default 1 = single-process daemon)",
    )
    serve.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="threads per scoring request for chunk dispatch "
        "(-1 = all cores; default serial)",
    )
    serve.add_argument(
        "--batch-window-ms",
        type=float,
        default=0.0,
        dest="batch_window_ms",
        metavar="MS",
        help="micro-batching: coalesce small concurrent /score and "
        "/rank requests arriving within this window into one engine "
        "call (responses stay byte-identical; 0 = off, the default). "
        "Under the default adaptive policy this is the window CAP: "
        "the live window grows toward it under load and collapses to "
        "zero when traffic is sparse",
    )
    serve.add_argument(
        "--max-batch-rows",
        type=int,
        default=None,
        dest="max_batch_rows",
        metavar="N",
        help="rows per coalesced micro-batch before it is flushed "
        "early; requests this large bypass batching (default 1024)",
    )
    serve.add_argument(
        "--batch-policy",
        choices=("adaptive", "fixed"),
        default="adaptive",
        dest="batch_policy",
        help="micro-batch window policy: 'adaptive' (default) scales "
        "the coalescing window with queue depth, 'fixed' always waits "
        "the full --batch-window-ms",
    )
    serve.add_argument(
        "--max-inflight",
        type=int,
        default=None,
        dest="max_inflight",
        metavar="N",
        help="admission control: concurrently admitted scoring "
        "requests per worker before new ones are shed with 429 + "
        "Retry-After (0 = unbounded; default 64)",
    )
    serve.add_argument(
        "--max-inflight-per-model",
        type=int,
        default=0,
        dest="max_inflight_per_model",
        metavar="N",
        help="per-model concurrency quota so one hot model cannot "
        "starve the rest (0 = no per-model quota, the default)",
    )
    serve.add_argument(
        "--retry-after",
        type=float,
        default=None,
        dest="retry_after",
        metavar="SECONDS",
        help="Retry-After advice attached to shed (429) responses "
        "(default 1)",
    )
    serve.add_argument(
        "--keepalive-timeout",
        type=float,
        default=30.0,
        dest="keepalive_timeout",
        metavar="SECONDS",
        help="idle seconds before a kept-alive connection is closed; "
        "must be > 0 (default 30)",
    )
    serve.add_argument(
        "--tuning-file",
        default=None,
        dest="tuning_file",
        metavar="PATH",
        help="JSON file of batching/admission knobs re-read on SIGHUP "
        "for zero-downtime retuning (see docs/ops.md)",
    )
    serve.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="rows per projection chunk (default 4096)",
    )
    serve.add_argument(
        "--no-reload",
        action="store_true",
        help="disable hot-reloading models when their file changes",
    )
    serve.add_argument(
        "--trace",
        choices=("off", "sampled", "on"),
        default="off",
        dest="trace",
        help="per-request stage tracing: 'on' traces every request, "
        "'sampled' every --trace-sample'th, 'off' (default) none; "
        "traces are served by GET /v1/debug/trace/<request-id> "
        "(see docs/observability.md)",
    )
    serve.add_argument(
        "--trace-sample",
        type=int,
        default=64,
        dest="trace_sample",
        metavar="N",
        help="with --trace sampled, record every N-th request "
        "(default 64)",
    )
    serve.add_argument(
        "--trace-buffer",
        type=int,
        default=256,
        dest="trace_buffer",
        metavar="N",
        help="recent traces retained per worker for the debug "
        "endpoint (default 256)",
    )
    serve.add_argument(
        "--access-log",
        default=None,
        dest="access_log",
        metavar="PATH",
        help="append one JSON line per request (request id, stage "
        "timings, batch id) to PATH; '-' logs to stderr",
    )
    serve.add_argument(
        "--backend",
        choices=BACKEND_CHOICES,
        default="auto",
        help="projection kernel backend for every scoring request: "
        "'auto' (default) picks the fastest available, 'numpy' is the "
        "eigenvalue reference, 'closed-form' solves stationary "
        "polynomials analytically, 'numba' requires the optional "
        "numba package (see docs/performance.md)",
    )
    serve.add_argument(
        "--score-dtype",
        choices=SCORE_DTYPE_CHOICES,
        default="float64",
        dest="score_dtype",
        help="working precision for the projection solve; 'float32' "
        "halves memory bandwidth at ~1e-3 score tolerance (responses "
        "stay float64; default 'float64')",
    )

    shard = sub.add_parser(
        "shard",
        help="coordinate a score/rank job across shard daemons",
        epilog="sharded serving guide (topology, consistent-hash "
        "partitioning, shard-death reroute and exactly-once semantics, "
        "coordinator metrics roll-up): docs/ops.md, section "
        "'Sharded scoring and rank'",
    )
    shard.add_argument(
        "csv_path", help="CSV (or .csv.gz) of objects to score or rank"
    )
    shard.add_argument(
        "--shard",
        action="append",
        default=None,
        metavar="URL",
        dest="shards",
        help="base URL of a shard daemon, e.g. http://host:8000 "
        "(repeatable; every shard must serve --model-name)",
    )
    shard.add_argument(
        "--local-workers",
        type=int,
        default=0,
        dest="local_workers",
        metavar="N",
        help="instead of --shard URLs, spawn N throwaway local shard "
        "daemons serving --model-path on ephemeral ports (testing/CI "
        "topology; they are torn down when the job ends)",
    )
    shard.add_argument(
        "--model-name",
        default="shard-model",
        dest="model_name",
        help="registered model name to score with on every shard "
        "(default 'shard-model', which is what --local-workers "
        "registers)",
    )
    shard.add_argument(
        "--model-path",
        default=None,
        dest="model_path",
        help="saved model the --local-workers daemons serve "
        "(required with --local-workers, ignored with --shard)",
    )
    shard.add_argument(
        "--mode",
        choices=("rank", "score"),
        default="rank",
        help="'rank' (default) writes the complete ranking CSV, "
        "byte-identical to the single-box streaming rank; 'score' "
        "writes label,score rows in input order, byte-identical to "
        "'repro score --stream'",
    )
    shard.add_argument(
        "--output", default=None, help="write the result CSV here"
    )
    shard.add_argument(
        "--rows-per-block",
        type=int,
        default=None,
        dest="rows_per_block",
        metavar="N",
        help="rows per shard block — the retry/exactly-once unit "
        "(default 16384; keep it a multiple of the daemons' "
        "--chunk-size so chunk boundaries match a single box)",
    )
    shard.add_argument("--label-column", default=None)
    shard.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-block shard request timeout before the shard is "
        "presumed dead and the block reroutes (default 60)",
    )
    shard.add_argument(
        "--max-open-runs",
        type=int,
        default=None,
        dest="max_open_runs",
        metavar="N",
        help="merge fan-in budget for the coordinator's k-way merge "
        "(default 64; more blocks than this triggers multi-pass "
        "merging)",
    )
    shard.add_argument(
        "--top", type=int, default=10, help="rows to print (default 10)"
    )
    shard.add_argument(
        "--metrics-json",
        default=None,
        dest="metrics_json",
        metavar="PATH",
        help="after the job, fetch every live shard's /metrics and "
        "write the exact coordinator-level roll-up (summed counters, "
        "merged latency histograms) as JSON to PATH",
    )
    return parser


def _print_ranking(
    ranking, top: int, output: Optional[str], saved_as: str = "full ranking"
) -> None:
    """Shared ranking display of the ``rank`` and ``score`` commands."""
    print(f"{'pos':>4}  {'score':>8}  label")
    for label, score in ranking.top(top):
        print(f"{ranking.position_of(label):>4}  {score:>8.4f}  {label}")
    if output:
        save_ranking_csv(output, ranking)
        print(f"{saved_as} written to {output}")


def _run_rank(args: argparse.Namespace) -> int:
    table = load_csv(args.csv_path, label_column=args.label_column)
    alpha = parse_alpha_spec(args.alpha, table.attribute_names)
    model = RankingPrincipalCurve(
        alpha=alpha,
        degree=args.degree,
        n_restarts=args.restarts,
        random_state=args.seed,
    )
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ranking = model.fit_rank(table.X, labels=table.labels)

    print(f"ranked {len(table.labels)} objects on "
          f"{len(table.attribute_names)} attributes "
          f"(explained variance {model.explained_variance(table.X):.3f})")
    _print_ranking(ranking, args.top, args.output)
    return 0


def _run_demo(args: argparse.Namespace) -> int:
    if args.dataset == "countries":
        from repro.data.countries import load_countries

        data = load_countries()
        alpha = data.alpha
        X, labels = data.X, data.labels
    else:
        from repro.data.journals import load_journals

        jdata = load_journals()
        alpha = jdata.alpha
        X, labels = jdata.X, jdata.labels

    model = RankingPrincipalCurve(alpha=alpha, random_state=0)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        ranking = model.fit_rank(X, labels=labels)
    print(f"{args.dataset}: {X.shape[0]} objects, "
          f"explained variance {model.explained_variance(X):.3f}")
    for label, score in ranking.top(args.top):
        print(f"  {score:.4f}  {label}")
    return 0


def _run_save(args: argparse.Namespace) -> int:
    # Validate the destination format before paying for the fit.
    check_model_path(args.model)
    table = load_csv(args.csv_path, label_column=args.label_column)
    alpha = parse_alpha_spec(args.alpha, table.attribute_names)
    if args.family == "rpc":
        # The Bézier family keeps its dedicated knobs; other families
        # fit with their registered default hyperparameters.
        model = RankingPrincipalCurve(
            alpha=alpha,
            degree=args.degree,
            n_restarts=args.restarts,
            random_state=args.seed,
            warm_start=args.warm_start,
        )
    else:
        model = build_model(args.family, alpha=alpha)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore")
        model.fit(table.X)
    path = save_model(model, args.model, feature_names=table.attribute_names)
    summary = (
        f"fitted {args.family} model on {table.X.shape[0]} objects x "
        f"{table.X.shape[1]} attributes"
    )
    trace = getattr(model, "trace_", None)
    if trace is not None:
        summary += (
            f" (final objective {trace.final_objective:.6f}, "
            f"{trace.n_iterations} iterations)"
        )
    print(summary)
    print(f"model written to {path}")
    return 0


def _run_load(args: argparse.Namespace) -> int:
    model = load_model(args.model_path)
    print(f"model: {model!r}")
    print(f"family: {getattr(model, 'family', type(model).__name__)}")
    if model.feature_names_ is not None:
        print(f"attributes: {', '.join(model.feature_names_)}")
    if not model.is_fitted:
        print("state: not fitted")
        return 0
    trace = getattr(model, "trace_", None)
    if trace is not None:
        print(
            f"state: fitted ({trace.n_iterations} iterations, "
            f"final objective {trace.final_objective:.6f}, "
            f"converged={trace.converged})"
        )
    else:
        n_attrs = model.n_attributes
        print(
            "state: fitted"
            + (f" ({n_attrs} attributes)" if n_attrs is not None else "")
        )
    control_points = getattr(model, "control_points_", None)
    if control_points is not None:
        print("control points (normalised coordinates):")
        for r, column in enumerate(control_points.T):
            coords = ", ".join(f"{v:.4f}" for v in column)
            print(f"  p{r} = ({coords})")
    return 0


def _run_score(args: argparse.Namespace) -> int:
    model = load_model(args.model_path)
    if args.rank and not args.stream:
        raise ConfigurationError(
            "--rank is a streaming rank mode; combine it with --stream"
        )
    if args.rank and args.top_k is not None:
        raise ConfigurationError(
            "--top-k and --rank are mutually exclusive: --top-k keeps "
            "the best N rows, --rank orders all of them"
        )
    if args.memory_budget_rows is not None and not args.rank:
        raise ConfigurationError(
            "--memory-budget-rows tunes the external sort; it requires "
            "--stream --rank"
        )
    if args.rank:
        # Full streaming rank: scored chunks spill to sorted run files
        # whenever more than --memory-budget-rows rows are buffered,
        # and a k-way merge writes the complete ranking incrementally —
        # byte-identical to the in-memory path below, without ever
        # materialising the input, the scores, or the ranking list.
        n_rows, head = stream_rank_csv(
            model,
            args.csv_path,
            args.output,
            chunk_size=args.chunk_size,
            label_column=args.label_column,
            n_jobs=args.jobs,
            backend=args.backend,
            dtype=args.score_dtype,
            memory_budget_rows=args.memory_budget_rows,
            head=max(args.top, 0),
        )
        print(
            f"scored {n_rows} objects with saved model {args.model_path}"
        )
        print(f"{'pos':>4}  {'score':>8}  label")
        for position, (label, score) in enumerate(head, start=1):
            print(f"{position:>4}  {score:>8.4f}  {label}")
        if args.output:
            print(f"full ranking written to {args.output}")
        return 0
    if args.top_k is not None:
        if not args.stream:
            raise ConfigurationError(
                "--top-k is a streaming rank mode; combine it with --stream"
            )
        # Bounded-heap rank: neither the input matrix nor the ranking
        # list is ever materialised — only the k best entries survive.
        top, n_rows = stream_rank_topk(
            model,
            args.csv_path,
            args.top_k,
            chunk_size=args.chunk_size,
            label_column=args.label_column,
            n_jobs=args.jobs,
            backend=args.backend,
            dtype=args.score_dtype,
        )
        print(
            f"scored {n_rows} objects with saved model {args.model_path} "
            f"(top {len(top)} kept)"
        )
        ranking = build_ranking_list(
            np.asarray([score for _, score in top]),
            labels=[label for label, _ in top],
        )
        _print_ranking(
            ranking, len(top), args.output, saved_as=f"top-{len(top)} ranking"
        )
        return 0
    if args.stream:
        # Streaming path: the input matrix is never materialised —
        # only the (small) label and score vectors accumulate, so the
        # ranking and every printed line match the in-memory path
        # exactly while peak memory stays O(chunk_size * d).
        labels: list[str] = []
        score_chunks = []
        for chunk_labels, chunk_scores in iter_stream_scores(
            model,
            args.csv_path,
            chunk_size=args.chunk_size,
            label_column=args.label_column,
            n_jobs=args.jobs,
            backend=args.backend,
            dtype=args.score_dtype,
        ):
            labels.extend(chunk_labels)
            score_chunks.append(chunk_scores)
        scores = np.concatenate(score_chunks)
    else:
        table = load_csv(
            args.csv_path,
            label_column=args.label_column,
            attribute_columns=model.feature_names_,
        )
        expected = model.n_attributes
        if expected is not None and table.X.shape[1] != expected:
            raise DataValidationError(
                f"model expects {expected} attributes but "
                f"{args.csv_path} provides {table.X.shape[1]}"
            )
        labels = table.labels
        scores = score_batch(
            model,
            table.X,
            chunk_size=args.chunk_size,
            n_jobs=args.jobs,
            backend=args.backend,
            dtype=args.score_dtype,
        )
    ranking = build_ranking_list(scores, labels=labels)
    print(
        f"scored {len(labels)} objects with saved model "
        f"{args.model_path}"
    )
    _print_ranking(ranking, args.top, args.output)
    return 0


def parse_model_specs(specs: Sequence[str]) -> list[tuple[str, str]]:
    """Split repeated ``NAME=PATH`` arguments of ``repro serve``."""
    pairs = []
    seen = set()
    for spec in specs:
        name, sep, path = spec.partition("=")
        name = name.strip()
        if not sep or not name or not path:
            raise ConfigurationError(
                f"--model expects NAME=PATH, got {spec!r}"
            )
        if name in seen:
            raise ConfigurationError(f"model name {name!r} given twice")
        seen.add(name)
        pairs.append((name, path))
    return pairs


def _run_serve(args: argparse.Namespace) -> int:
    from repro.server import (
        ModelRegistry,
        ScoringHTTPServer,
        WorkerPool,
        install_graceful_shutdown,
        install_tuning_reload,
        load_tuning_file,
    )
    from repro.server.admission import (
        DEFAULT_MAX_INFLIGHT,
        DEFAULT_RETRY_AFTER,
    )

    if args.workers < 1:
        raise ConfigurationError(
            f"--workers must be >= 1, got {args.workers}"
        )
    if args.batch_window_ms < 0:
        raise ConfigurationError(
            f"--batch-window-ms must be >= 0, got {args.batch_window_ms}"
        )
    if args.tuning_file is not None:
        # Fail the boot on an unreadable or invalid tuning file rather
        # than discovering it at the first SIGHUP under load.
        load_tuning_file(args.tuning_file)
    max_inflight = (
        DEFAULT_MAX_INFLIGHT
        if args.max_inflight is None
        else args.max_inflight
    )
    retry_after = (
        DEFAULT_RETRY_AFTER
        if args.retry_after is None
        else args.retry_after
    )
    specs = parse_model_specs(args.models)
    # Load every model once up front, whatever the worker count: a
    # missing or corrupt model file must fail the boot, not surface as
    # a crash-looping worker fleet minutes later.
    registry = ModelRegistry(check_mtime=not args.no_reload)
    for name, path in specs:
        entry = registry.register(name, path)
        state = "fitted" if entry.model.is_fitted else "NOT FITTED"
        print(f"registered {name!r} from {path} ({state})")

    batch_window = args.batch_window_ms / 1e3

    if args.workers > 1:
        pool = WorkerPool(
            specs,
            host=args.host,
            port=args.port,
            workers=args.workers,
            chunk_size=args.chunk_size,
            n_jobs=args.jobs,
            batch_window=batch_window,
            max_batch_rows=args.max_batch_rows,
            batch_policy=args.batch_policy,
            max_inflight=max_inflight,
            max_inflight_per_model=args.max_inflight_per_model,
            retry_after=retry_after,
            keepalive_timeout=args.keepalive_timeout,
            tuning_file=args.tuning_file,
            backend=args.backend,
            score_dtype=args.score_dtype,
            check_mtime=not args.no_reload,
            trace_mode=args.trace,
            trace_sample=args.trace_sample,
            trace_buffer=args.trace_buffer,
            access_log=args.access_log,
        )
        host, port = pool.bind()
        print(
            f"serving {len(registry)} model(s) on http://{host}:{port} "
            f"with {args.workers} worker processes"
        )
        print("endpoints: /healthz /metrics /v1/models "
              "/v1/models/<name>/score /v1/models/<name>/rank")
        print("ops guide: docs/ops.md", flush=True)
        code = pool.serve()
        print("pool shut down")
        return code

    tracer = None
    if args.trace != "off" or args.access_log is not None:
        from repro.obs import AccessLog, Tracer

        if args.trace_sample < 1:
            raise ConfigurationError(
                f"--trace-sample must be >= 1, got {args.trace_sample}"
            )
        if args.trace_buffer < 1:
            raise ConfigurationError(
                f"--trace-buffer must be >= 1, got {args.trace_buffer}"
            )
        tracer = Tracer(
            mode=args.trace,
            sample_every=args.trace_sample,
            capacity=args.trace_buffer,
            access_log=(
                AccessLog(args.access_log)
                if args.access_log is not None
                else None
            ),
        )

    server = ScoringHTTPServer(
        (args.host, args.port),
        registry,
        chunk_size=args.chunk_size,
        n_jobs=args.jobs,
        batch_window=batch_window,
        max_batch_rows=args.max_batch_rows,
        batch_policy=args.batch_policy,
        max_inflight=max_inflight,
        max_inflight_per_model=args.max_inflight_per_model,
        retry_after=retry_after,
        keepalive_timeout=args.keepalive_timeout,
        backend=args.backend,
        score_dtype=args.score_dtype,
        tracer=tracer,
    )
    host, port = server.server_address[:2]
    print(f"serving {len(registry)} model(s) on http://{host}:{port}")
    print("endpoints: /healthz /metrics /v1/models "
          "/v1/models/<name>/score /v1/models/<name>/rank")
    print("ops guide: docs/ops.md", flush=True)
    # SIGTERM (systemd, docker stop, the pool's own drill) and SIGINT
    # both drain gracefully: stop accepting, finish in-flight
    # requests, close the socket, exit 0.
    server.daemon_threads = False
    server.block_on_close = True
    install_graceful_shutdown(server)
    install_tuning_reload(server, args.tuning_file)
    try:
        server.serve_forever(poll_interval=0.05)
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        pass
    finally:
        server.server_close()
    print("shut down")
    return 0


def _run_shard(args: argparse.Namespace) -> int:
    from repro.sharding import (
        LocalShardFleet,
        ShardCoordinator,
        fetch_shard_metrics,
        rollup_metrics,
    )

    if bool(args.shards) == bool(args.local_workers > 0):
        raise ConfigurationError(
            "give either --shard URLs or --local-workers N (not both)"
        )
    if args.mode == "score" and args.output is None:
        raise ConfigurationError("--mode score requires --output")

    def _run_job(urls: Sequence[str]) -> int:
        coordinator = ShardCoordinator(
            urls,
            args.model_name,
            **{
                key: value
                for key, value in {
                    "rows_per_block": args.rows_per_block,
                    "timeout": args.timeout,
                }.items()
                if value is not None
            },
            max_open_runs=args.max_open_runs,
        )
        if args.mode == "score":
            n_rows = coordinator.score_csv(
                args.csv_path, args.output, label_column=args.label_column
            )
            print(
                f"scored {n_rows} objects across "
                f"{len(coordinator.stats()['live_shards'])} shard(s)"
            )
            print(f"scores written to {args.output}")
        else:
            n_rows, head = coordinator.rank_csv(
                args.csv_path,
                args.output,
                label_column=args.label_column,
                head=max(args.top, 0),
            )
            print(
                f"ranked {n_rows} objects across "
                f"{len(coordinator.stats()['live_shards'])} shard(s)"
            )
            print(f"{'pos':>4}  {'score':>8}  label")
            for position, (label, score) in enumerate(head, start=1):
                print(f"{position:>4}  {score:>8.4f}  {label}")
            if args.output:
                print(f"full ranking written to {args.output}")
        stats = coordinator.stats()
        print(
            f"blocks: {stats['n_blocks']} "
            f"(rerouted {stats['retried_blocks']}); "
            f"dead shards: {stats['dead_shards'] or 'none'}"
        )
        if args.metrics_json is not None:
            payloads = [
                fetch_shard_metrics(url)
                for url in stats["live_shards"]
            ]
            rollup = rollup_metrics(payloads, urls=stats["live_shards"])
            with open(args.metrics_json, "w") as handle:
                json.dump(rollup, handle, indent=2, sort_keys=True)
            print(f"coordinator metrics roll-up written to "
                  f"{args.metrics_json}")
        return 0

    if args.local_workers:
        if args.model_path is None:
            raise ConfigurationError(
                "--local-workers needs --model-path (the model the "
                "throwaway daemons will serve)"
            )
        with LocalShardFleet(
            args.model_path,
            n_shards=args.local_workers,
            model_name=args.model_name,
        ) as fleet:
            print(
                f"spawned {len(fleet.urls)} local shard daemon(s): "
                f"{' '.join(fleet.urls)}"
            )
            return _run_job(fleet.urls)
    return _run_job(args.shards)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "rank": _run_rank,
        "demo": _run_demo,
        "save": _run_save,
        "load": _run_load,
        "score": _run_score,
        "serve": _run_serve,
        "shard": _run_shard,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
