"""PageRank — the link-structure ranker RPC is positioned against.

The paper's taxonomy (Fig. 1) splits unsupervised ranking into
link-structure methods (PageRank and variants) and multi-attribute
methods (RPC).  PageRank "does not work for ranking candidates which
have no links"; we implement it from scratch (power iteration with
damping, dangling-node handling and convergence tracking) so examples
can demonstrate the two families side by side on their respective data
types.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError, DataValidationError


@dataclass
class PageRankResult:
    """Outcome of :func:`pagerank`.

    Attributes
    ----------
    scores:
        Stationary probabilities, one per node, summing to one.
    n_iterations:
        Power-iteration steps performed.
    converged:
        Whether the L1 change fell below the tolerance.
    """

    scores: np.ndarray
    n_iterations: int
    converged: bool


def pagerank(
    adjacency: np.ndarray,
    damping: float = 0.85,
    tol: float = 1e-10,
    max_iter: int = 200,
) -> PageRankResult:
    """Compute PageRank scores of a directed graph.

    Parameters
    ----------
    adjacency:
        ``(n, n)`` matrix; ``adjacency[i, j] > 0`` denotes an edge
        ``i -> j`` (a "vote" by ``i`` for ``j``), with the value used
        as an edge weight.
    damping:
        Teleportation damping factor in ``(0, 1)``.
    tol:
        L1 convergence tolerance on the score vector.
    max_iter:
        Iteration cap.

    Notes
    -----
    Rows without outgoing edges (dangling nodes) redistribute their
    mass uniformly, the standard correction.  The returned scores are
    the stationary distribution of the damped random surfer.
    """
    A = np.asarray(adjacency, dtype=float)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise DataValidationError(
            f"adjacency must be square, got shape {A.shape}"
        )
    if np.any(A < 0.0):
        raise DataValidationError("adjacency weights must be non-negative")
    if not 0.0 < damping < 1.0:
        raise ConfigurationError(f"damping must be in (0, 1), got {damping}")
    n = A.shape[0]
    out_degree = A.sum(axis=1)
    dangling = out_degree <= 0.0
    # Row-stochastic transition matrix with dangling rows zeroed; their
    # mass is added back uniformly each step.
    T = np.zeros_like(A)
    nz = ~dangling
    T[nz] = A[nz] / out_degree[nz, np.newaxis]

    scores = np.full(n, 1.0 / n)
    teleport = (1.0 - damping) / n
    converged = False
    iteration = 0
    for iteration in range(1, max_iter + 1):
        dangling_mass = float(scores[dangling].sum()) / n
        new_scores = teleport + damping * (scores @ T + dangling_mass)
        delta = float(np.abs(new_scores - scores).sum())
        scores = new_scores
        if delta < tol:
            converged = True
            break
    return PageRankResult(
        scores=scores, n_iterations=iteration, converged=converged
    )
