"""Rank-aggregation baselines: median rank and Borda count.

Section 6.1 contrasts RPC with median rank aggregation (Dwork et al.,
2001): each attribute induces its own ranking list, and the aggregate
position of an object is the mean of its per-attribute positions
(Eq.(30)).  The method discards the numeric observations, so it cannot
separate objects whose average positions tie (Table 1's A and B) and
it is insensitive to perturbations that do not change any per-attribute
order (Table 1(b)'s A').  Borda count — the classic positional
aggregation rule — is included as a second aggregator with the same
structural blindness.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.exceptions import DataValidationError
from repro.geometry.cubic import validate_direction_vector


def attribute_rankings(X: np.ndarray, alpha: np.ndarray) -> np.ndarray:
    """Per-attribute 1-based positions ``tau_j(i)`` of every object.

    Following the Table 1 convention, attribute ``j`` ranks objects by
    ``alpha_j * x_j`` *ascending*: position 1 is the worst object on
    that attribute and position ``n`` the best, so the aggregate
    ``kappa`` of Eq.(30) is larger for better objects (Table 1 gives
    C — the best object — the largest value, 3).  Tied values receive
    the mean of the positions they straddle (midrank), the standard
    convention for rank statistics.

    Returns
    -------
    Array of shape ``(n, d)``; entry ``[i, j]`` is object ``i``'s
    position in attribute ``j``'s list.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise DataValidationError(f"X must be 2-D, got ndim={X.ndim}")
    alpha = validate_direction_vector(alpha, d=X.shape[1])
    n, d = X.shape
    positions = np.empty((n, d))
    for j in range(d):
        keyed = alpha[j] * X[:, j]
        positions[:, j] = _midrank_ascending(keyed)
    return positions


def _midrank_ascending(values: np.ndarray) -> np.ndarray:
    """1-based positions of values ranked ascending, ties -> midranks."""
    values = np.asarray(values, dtype=float)
    order = np.argsort(values, kind="stable")
    ranks = np.empty(values.size)
    sorted_vals = values[order]
    i = 0
    while i < values.size:
        j = i
        while j + 1 < values.size and sorted_vals[j + 1] == sorted_vals[i]:
            j += 1
        midrank = 0.5 * (i + j) + 1.0  # mean of 1-based positions i+1..j+1
        ranks[order[i : j + 1]] = midrank
        i = j + 1
    return ranks


class MedianRankAggregator:
    """Median (mean-position) rank aggregation, Eq.(30).

    The aggregate "score" ``kappa(i)`` is the mean of object ``i``'s
    per-attribute positions.  With the ascending Table 1 convention
    (position 1 = worst on an attribute) a *higher* ``kappa`` means a
    better object, so :meth:`score_samples` returns ``kappa`` directly.
    """

    def __init__(self, alpha: np.ndarray):
        self.alpha = validate_direction_vector(np.asarray(alpha, dtype=float))

    def fit(self, X: np.ndarray) -> "MedianRankAggregator":
        """Stateless: aggregation happens per-dataset at scoring time."""
        return self

    def aggregate_positions(self, X: np.ndarray) -> np.ndarray:
        """The raw ``kappa(i)`` values of Eq.(30) (higher is better)."""
        positions = attribute_rankings(X, self.alpha)
        return positions.mean(axis=1)

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Mean positions ``kappa`` — already higher-is-better."""
        return self.aggregate_positions(X)

    # ------------------------------------------------------------------
    # Meta-rule capability declarations
    # ------------------------------------------------------------------
    @property
    def has_linear_capacity(self) -> bool:
        """Positions destroy the numeric structure; no functional form."""
        return False

    @property
    def has_nonlinear_capacity(self) -> bool:
        """Aggregation has no notion of an attribute–score function."""
        return False

    @property
    def parameter_size(self) -> Optional[int]:
        """Parameter-free, hence explicit with size zero."""
        return 0


class BordaCountAggregator:
    """Borda count: each attribute awards one point per beaten rival.

    With the ascending position convention an object at position ``p``
    beats ``p − 1`` rivals on that attribute, so its Borda points are
    ``sum_j (tau_j(i) − 1)``.  Equivalent to median rank up to an
    affine transform on complete lists, but stated in the classical
    voting form.  Shares all of the aggregation family's meta-rule
    failures.
    """

    def __init__(self, alpha: np.ndarray):
        self.alpha = validate_direction_vector(np.asarray(alpha, dtype=float))

    def fit(self, X: np.ndarray) -> "BordaCountAggregator":
        """Stateless."""
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Total Borda points per object (higher is better)."""
        X = np.asarray(X, dtype=float)
        positions = attribute_rankings(X, self.alpha)
        return (positions - 1.0).sum(axis=1)

    # ------------------------------------------------------------------
    @property
    def has_linear_capacity(self) -> bool:
        """No functional attribute–score form."""
        return False

    @property
    def has_nonlinear_capacity(self) -> bool:
        """No functional attribute–score form."""
        return False

    @property
    def parameter_size(self) -> Optional[int]:
        """Parameter-free."""
        return 0
