"""Manifold ranking (Zhou et al., the paper's related work [3]).

"Ranking on Data Manifolds" propagates ranking scores over a
similarity graph: given query items, scores diffuse along the
manifold structure via

    ``F_{t+1} = beta * S F_t + (1 - beta) * Y``

where ``S = D^{-1/2} W D^{-1/2}`` is the symmetrically normalised
affinity matrix and ``Y`` marks the queries.  The closed form is
``F* = (I - beta S)^{-1} Y``.

The RPC paper cites this family as the manifold-ranking framework its
own work builds on, while noting the difference: manifold ranking
needs *query* points (it ranks by relevance to exemplars), whereas
RPC is fully unsupervised with the hypercube corners as implicit
worst/best anchors.  This implementation makes that contrast testable:
anchoring the query at the data point closest to the "best corner"
turns manifold ranking into an unsupervised comparator.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
)
from repro.data.normalize import MinMaxNormalizer
from repro.geometry.cubic import pinned_endpoints, validate_direction_vector


def affinity_matrix(X: np.ndarray, sigma: float = 0.2) -> np.ndarray:
    """Gaussian affinity ``W_ij = exp(−‖x_i − x_j‖² / 2σ²)``, zero diag."""
    if sigma <= 0:
        raise ConfigurationError(f"sigma must be positive, got {sigma}")
    X = np.asarray(X, dtype=float)
    d2 = (
        np.sum(X**2, axis=1)[:, np.newaxis]
        - 2.0 * X @ X.T
        + np.sum(X**2, axis=1)[np.newaxis, :]
    )
    W = np.exp(-np.maximum(d2, 0.0) / (2.0 * sigma**2))
    np.fill_diagonal(W, 0.0)
    return W


def normalized_affinity(W: np.ndarray) -> np.ndarray:
    """Symmetric normalisation ``S = D^{-1/2} W D^{-1/2}``."""
    W = np.asarray(W, dtype=float)
    if W.ndim != 2 or W.shape[0] != W.shape[1]:
        raise DataValidationError(f"W must be square, got shape {W.shape}")
    degrees = W.sum(axis=1)
    inv_sqrt = 1.0 / np.sqrt(np.maximum(degrees, 1e-12))
    return W * inv_sqrt[:, np.newaxis] * inv_sqrt[np.newaxis, :]


def manifold_ranking_scores(
    X: np.ndarray,
    query_indices: np.ndarray,
    beta: float = 0.99,
    sigma: float = 0.2,
) -> np.ndarray:
    """Closed-form manifold ranking ``F* = (I − β S)^{-1} Y``.

    Parameters
    ----------
    X:
        Data (already comparable across attributes — normalise first).
    query_indices:
        Rows acting as relevance anchors.
    beta:
        Diffusion parameter in ``(0, 1)``; closer to 1 spreads scores
        farther along the manifold.
    sigma:
        Gaussian affinity bandwidth.
    """
    if not 0.0 < beta < 1.0:
        raise ConfigurationError(f"beta must be in (0, 1), got {beta}")
    X = np.asarray(X, dtype=float)
    n = X.shape[0]
    query_indices = np.asarray(query_indices, dtype=int).ravel()
    if query_indices.size == 0:
        raise ConfigurationError("need at least one query index")
    if query_indices.min() < 0 or query_indices.max() >= n:
        raise ConfigurationError(
            f"query indices out of range for n={n}: {query_indices}"
        )
    S = normalized_affinity(affinity_matrix(X, sigma=sigma))
    Y = np.zeros(n)
    Y[query_indices] = 1.0
    F = np.linalg.solve(np.eye(n) - beta * S, Y)
    return F


class ManifoldRanker:
    """Unsupervised adaptation of Zhou et al.'s manifold ranking.

    The query anchor is chosen automatically as the data point nearest
    the task's *best corner* (the RPC's score-1 reference), making the
    method label-free and directly comparable to RPC.

    Parameters
    ----------
    alpha:
        Task direction vector (locates the best corner).
    beta, sigma:
        Diffusion and affinity parameters.
    n_anchors:
        Number of nearest-to-best-corner points used as queries;
        averaging a few anchors stabilises the diffusion.
    """

    def __init__(
        self,
        alpha: np.ndarray,
        beta: float = 0.99,
        sigma: float = 0.2,
        n_anchors: int = 3,
    ):
        self.alpha = validate_direction_vector(np.asarray(alpha, dtype=float))
        if n_anchors < 1:
            raise ConfigurationError(f"n_anchors must be >= 1, got {n_anchors}")
        self.beta = float(beta)
        self.sigma = float(sigma)
        self.n_anchors = int(n_anchors)
        self._normalizer: Optional[MinMaxNormalizer] = None
        self._train: Optional[np.ndarray] = None
        self._scores: Optional[np.ndarray] = None

    def fit(self, X: np.ndarray) -> "ManifoldRanker":
        """Diffuse relevance from the best-corner anchors over ``X``."""
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.alpha.size:
            raise DataValidationError(
                f"X must have shape (n, {self.alpha.size}), got {X.shape}"
            )
        self._normalizer = MinMaxNormalizer().fit(X)
        U = self._normalizer.transform(X)
        _p0, best = pinned_endpoints(self.alpha)
        dist_to_best = np.linalg.norm(U - best[np.newaxis, :], axis=1)
        anchors = np.argsort(dist_to_best)[: self.n_anchors]
        self._scores = manifold_ranking_scores(
            U, anchors, beta=self.beta, sigma=self.sigma
        )
        self._train = U
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Diffused relevance scores (training rows: exact; new rows:
        nearest-neighbour interpolation over the training graph)."""
        if self._scores is None or self._train is None:
            raise NotFittedError("ManifoldRanker")
        assert self._normalizer is not None
        X = np.asarray(X, dtype=float)
        U = self._normalizer.transform(X)
        # Exact match against training rows where possible.
        d2 = (
            np.sum(U**2, axis=1)[:, np.newaxis]
            - 2.0 * U @ self._train.T
            + np.sum(self._train**2, axis=1)[np.newaxis, :]
        )
        nearest = np.argmin(d2, axis=1)
        return self._scores[nearest]

    # ------------------------------------------------------------------
    # Meta-rule capability declarations
    # ------------------------------------------------------------------
    @property
    def has_linear_capacity(self) -> bool:
        """Graph diffusion has no parametric linear form."""
        return False

    @property
    def has_nonlinear_capacity(self) -> bool:
        """Scores follow arbitrary manifold geometry."""
        return True

    @property
    def parameter_size(self) -> Optional[int]:
        """Unknown: one diffused value per data point (data-sized)."""
        return None
