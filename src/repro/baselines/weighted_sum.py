"""Weighted-summation ranking — the introduction's strawman baseline.

"To rank from multi-attribute objects, weighted summation of attributes
is widely used to provide a scalar score for each object.  But
different weight assignments give different ranking lists such that
ranking results are not convincing enough."  We implement it anyway: it
is linear, smooth, explicit and strictly monotone (for positive
weights), but it has *no nonlinear capacity* and needs an expert to
pick the weights — the two failings the meta-rule report shows.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
)
from repro.data.normalize import MinMaxNormalizer
from repro.geometry.cubic import validate_direction_vector


class WeightedSumRanker:
    """Score by ``theta^T x_hat`` on Eq.(29)-normalised attributes.

    Parameters
    ----------
    alpha:
        Task direction vector; cost attributes enter with a negative
        sign so that higher scores always mean better objects.
    weights:
        Expert-assigned non-negative attribute weights; uniform when
        omitted.  Weights are normalised to sum to one.
    """

    def __init__(
        self,
        alpha: np.ndarray,
        weights: Optional[Sequence[float]] = None,
    ):
        self.alpha = validate_direction_vector(np.asarray(alpha, dtype=float))
        d = self.alpha.size
        if weights is None:
            w = np.full(d, 1.0 / d)
        else:
            w = np.asarray(weights, dtype=float).ravel()
            if w.size != d:
                raise ConfigurationError(
                    f"{w.size} weights for {d} attributes"
                )
            if np.any(w < 0.0):
                raise ConfigurationError("weights must be non-negative")
            total = float(w.sum())
            if total <= 0.0:
                raise ConfigurationError("weights must not all be zero")
            w = w / total
        self.weights = w
        self._normalizer: Optional[MinMaxNormalizer] = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "WeightedSumRanker":
        """Record normalisation bounds (the only data-driven part)."""
        X = self._validate(X)
        self._normalizer = MinMaxNormalizer().fit(X)
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Signed weighted sum of normalised attributes, in ``[0, 1]``.

        Cost attributes contribute ``w_j (1 − x_hat_j)`` so the score
        is 1 at the best corner and 0 at the worst — the same reference
        convention RPC uses.
        """
        if self._normalizer is None:
            raise NotFittedError("WeightedSumRanker")
        X = self._validate(X)
        U = self._normalizer.transform(X)
        oriented = np.where(self.alpha > 0, U, 1.0 - U)
        return oriented @ self.weights

    # ------------------------------------------------------------------
    # Meta-rule capability declarations
    # ------------------------------------------------------------------
    @property
    def has_linear_capacity(self) -> bool:
        """The scorer is exactly linear."""
        return True

    @property
    def has_nonlinear_capacity(self) -> bool:
        """No nonlinearity is expressible — the paper's criticism."""
        return False

    @property
    def parameter_size(self) -> Optional[int]:
        """``d`` weights (Def. 6's canonical example)."""
        return int(self.weights.size)

    # ------------------------------------------------------------------
    def _validate(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise DataValidationError(f"X must be 2-D, got ndim={X.ndim}")
        if X.shape[1] != self.alpha.size:
            raise DataValidationError(
                f"X has {X.shape[1]} attributes but alpha has {self.alpha.size}"
            )
        return X
