"""First-PCA and kernel-PCA ranking baselines (Section 4.1's contrast).

The first principal component is "the simplest ranking rule": project
every observation onto the direction of maximal variance and rank by
the coordinate.  The paper grants it smoothness, explicitness and
affine invariance but shows it fails on curved clouds (Fig. 5(a)) and
can break strict monotonicity when the component aligns with an axis.

Kernel PCA extends the projection nonlinearly, but the feature-space
map is not order-preserving — the motivating criticism in the paper's
introduction — which :mod:`repro.core.meta_rules` exposes empirically.
"""

from __future__ import annotations

from typing import Literal, Optional

import numpy as np

from repro.core.exceptions import (
    ConfigurationError,
    DataValidationError,
    NotFittedError,
)
from repro.data.normalize import MinMaxNormalizer
from repro.geometry.cubic import validate_direction_vector


class FirstPCARanker:
    """Rank by the first principal component (after Eq.(29) normalisation).

    Parameters
    ----------
    alpha:
        Direction vector of the task; used to orient the component so
        that higher scores mean better objects (the raw SVD direction
        has arbitrary sign).
    """

    def __init__(self, alpha: np.ndarray):
        self.alpha = validate_direction_vector(np.asarray(alpha, dtype=float))
        self._normalizer: Optional[MinMaxNormalizer] = None
        self.mean_: Optional[np.ndarray] = None
        self.direction_: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "FirstPCARanker":
        """Learn the component from raw observations."""
        X = self._validate(X)
        self._normalizer = MinMaxNormalizer().fit(X)
        U = self._normalizer.transform(X)
        self.mean_ = U.mean(axis=0)
        centred = U - self.mean_
        _u, _s, vt = np.linalg.svd(centred, full_matrices=False)
        direction = vt[0]
        # Orient towards the task's "best" corner.
        if float(direction @ self.alpha) < 0.0:
            direction = -direction
        self.direction_ = direction
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """First principal components ``w^T (x − mu)`` — higher is better."""
        if self.direction_ is None or self._normalizer is None:
            raise NotFittedError("FirstPCARanker")
        X = self._validate(X)
        U = self._normalizer.transform(X)
        return (U - self.mean_) @ self.direction_

    def explained_variance(self, X: np.ndarray) -> float:
        """Variance fraction captured by the component line."""
        if self.direction_ is None or self._normalizer is None:
            raise NotFittedError("FirstPCARanker")
        X = self._validate(X)
        U = self._normalizer.transform(X)
        centred = U - self.mean_
        along = centred @ self.direction_
        recon = np.outer(along, self.direction_)
        ss_res = float(np.sum((centred - recon) ** 2))
        ss_tot = float(np.sum(centred**2))
        if ss_tot <= 0.0:
            return 1.0
        return 1.0 - ss_res / ss_tot

    # ------------------------------------------------------------------
    # Meta-rule capability declarations
    # ------------------------------------------------------------------
    @property
    def has_linear_capacity(self) -> bool:
        """PCA is exactly a linear scorer."""
        return True

    @property
    def has_nonlinear_capacity(self) -> bool:
        """A straight line cannot express nonlinear attribute links."""
        return False

    @property
    def parameter_size(self) -> Optional[int]:
        """``d`` direction weights plus ``d`` mean entries."""
        return 2 * int(self.alpha.size)

    # ------------------------------------------------------------------
    def _validate(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise DataValidationError(f"X must be 2-D, got ndim={X.ndim}")
        if X.shape[1] != self.alpha.size:
            raise DataValidationError(
                f"X has {X.shape[1]} attributes but alpha has {self.alpha.size}"
            )
        return X


class KernelPCARanker:
    """Rank by the first kernel principal component (RBF or polynomial).

    Implements kernel PCA from scratch: centre the kernel matrix,
    eigendecompose, and score new points by the centred kernel
    projection onto the leading eigenvector.  The paper's point is that
    this map is *not order-preserving*; the meta-rule assessment
    reproduces that failure.

    Parameters
    ----------
    alpha:
        Task direction vector (for orientation only).
    kernel:
        ``"rbf"`` or ``"poly"``.
    gamma:
        RBF width parameter ``exp(−gamma ‖x − y‖²)``.
    degree:
        Polynomial kernel degree for ``kernel="poly"``.
    """

    def __init__(
        self,
        alpha: np.ndarray,
        kernel: Literal["rbf", "poly"] = "rbf",
        gamma: float = 2.0,
        degree: int = 3,
    ):
        self.alpha = validate_direction_vector(np.asarray(alpha, dtype=float))
        if kernel not in ("rbf", "poly"):
            raise ConfigurationError(f"unknown kernel {kernel!r}")
        if gamma <= 0:
            raise ConfigurationError(f"gamma must be positive, got {gamma}")
        self.kernel = kernel
        self.gamma = float(gamma)
        self.degree = int(degree)
        self._normalizer: Optional[MinMaxNormalizer] = None
        self._train: Optional[np.ndarray] = None
        self._row_means: Optional[np.ndarray] = None
        self._total_mean: float = 0.0
        self._component: Optional[np.ndarray] = None

    # ------------------------------------------------------------------
    def _kernel_matrix(self, A: np.ndarray, B: np.ndarray) -> np.ndarray:
        if self.kernel == "rbf":
            d2 = (
                np.sum(A**2, axis=1)[:, np.newaxis]
                - 2.0 * A @ B.T
                + np.sum(B**2, axis=1)[np.newaxis, :]
            )
            return np.exp(-self.gamma * np.maximum(d2, 0.0))
        return (1.0 + A @ B.T) ** self.degree

    def fit(self, X: np.ndarray) -> "KernelPCARanker":
        """Centre the training kernel and extract the leading component."""
        X = self._validate(X)
        self._normalizer = MinMaxNormalizer().fit(X)
        U = self._normalizer.transform(X)
        self._train = U
        K = self._kernel_matrix(U, U)
        self._row_means = K.mean(axis=1)
        self._total_mean = float(K.mean())
        n = K.shape[0]
        centred = (
            K
            - self._row_means[:, np.newaxis]
            - self._row_means[np.newaxis, :]
            + self._total_mean
        )
        eigvals, eigvecs = np.linalg.eigh(centred)
        lead = eigvecs[:, -1]
        lam = max(float(eigvals[-1]), 1e-12)
        self._component = lead / np.sqrt(lam)
        # Orient: correlate with the naive alpha-weighted sum.
        naive = U @ self.alpha
        scores = centred @ self._component
        if float(np.corrcoef(scores, naive)[0, 1]) < 0.0:
            self._component = -self._component
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        """Kernel principal components of (normalised) observations."""
        if self._component is None or self._train is None:
            raise NotFittedError("KernelPCARanker")
        assert self._normalizer is not None and self._row_means is not None
        X = self._validate(X)
        U = self._normalizer.transform(X)
        K = self._kernel_matrix(U, self._train)  # (m, n)
        centred = (
            K
            - K.mean(axis=1)[:, np.newaxis]
            - self._row_means[np.newaxis, :]
            + self._total_mean
        )
        return centred @ self._component

    # ------------------------------------------------------------------
    # Meta-rule capability declarations
    # ------------------------------------------------------------------
    @property
    def has_linear_capacity(self) -> bool:
        """RBF feature space does not contain exactly linear scorers."""
        return self.kernel == "poly"

    @property
    def has_nonlinear_capacity(self) -> bool:
        """Kernel maps are intrinsically nonlinear."""
        return True

    @property
    def parameter_size(self) -> Optional[int]:
        """Unknown: one dual coefficient per training point (data-sized)."""
        return None

    # ------------------------------------------------------------------
    def _validate(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        if X.ndim != 2:
            raise DataValidationError(f"X must be 2-D, got ndim={X.ndim}")
        if X.shape[1] != self.alpha.size:
            raise DataValidationError(
                f"X has {X.shape[1]} attributes but alpha has {self.alpha.size}"
            )
        return X
