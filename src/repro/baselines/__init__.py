"""Baseline rankers the paper compares against or positions RPC beside.

* :mod:`repro.baselines.pca` — first-PCA and kernel-PCA ranking.
* :mod:`repro.baselines.weighted_sum` — expert-weighted summation.
* :mod:`repro.baselines.rank_aggregation` — median rank (Eq.(30)) and
  Borda count.
* :mod:`repro.baselines.pagerank` — the link-structure contrast.
"""

from repro.baselines.manifold_ranking import (
    ManifoldRanker,
    affinity_matrix,
    manifold_ranking_scores,
    normalized_affinity,
)
from repro.baselines.pagerank import PageRankResult, pagerank
from repro.baselines.pca import FirstPCARanker, KernelPCARanker
from repro.baselines.rank_aggregation import (
    BordaCountAggregator,
    MedianRankAggregator,
    attribute_rankings,
)
from repro.baselines.weighted_sum import WeightedSumRanker

__all__ = [
    "BordaCountAggregator",
    "FirstPCARanker",
    "KernelPCARanker",
    "ManifoldRanker",
    "MedianRankAggregator",
    "PageRankResult",
    "WeightedSumRanker",
    "affinity_matrix",
    "attribute_rankings",
    "manifold_ranking_scores",
    "normalized_affinity",
    "pagerank",
]
