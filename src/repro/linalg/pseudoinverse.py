"""Pseudo-inverse solves with conditioning diagnostics.

Eq.(26) of the paper gives the closed-form control-point update
``P = X (M Z)^+`` but immediately warns that ``(M Z)^+`` is expensive
and numerically treacherous when ``Z`` is ill-conditioned — the very
motivation for the Richardson update of Eq.(27).  We keep the
closed-form path available (the ``update="pinv"`` ablation) and expose
condition-number diagnostics so the benchmark can demonstrate *why* the
paper prefers Richardson.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import ConfigurationError


@dataclass
class SolveDiagnostics:
    """Conditioning information attached to a pseudo-inverse solve.

    Attributes
    ----------
    condition_number:
        Ratio of the largest to the smallest *retained* singular value.
    rank:
        Numerical rank at the given cutoff.
    singular_values:
        Full spectrum of the system matrix, descending.
    """

    condition_number: float
    rank: int
    singular_values: np.ndarray


def pinv_solve(
    G: np.ndarray,
    X: np.ndarray,
    rcond: float = 1e-12,
) -> tuple[np.ndarray, SolveDiagnostics]:
    """Solve ``min_P ‖X − P G‖_F`` via the Moore–Penrose pseudo-inverse.

    Parameters
    ----------
    G:
        Design matrix of shape ``(m, n)`` — in RPC terms, ``M Z`` with
        ``m = 4`` Bernstein coefficients and ``n`` data points.
    X:
        Targets of shape ``(d, n)``.
    rcond:
        Relative cutoff for small singular values, forwarded to the SVD
        truncation.

    Returns
    -------
    (P, diagnostics):
        The least-squares solution ``P = X G^+`` of shape ``(d, m)`` and
        the conditioning report.
    """
    G = np.asarray(G, dtype=float)
    X = np.asarray(X, dtype=float)
    if G.ndim != 2 or X.ndim != 2:
        raise ConfigurationError("G and X must both be 2-D matrices")
    if G.shape[1] != X.shape[1]:
        raise ConfigurationError(
            f"G has {G.shape[1]} columns but X has {X.shape[1]}; both index "
            "the same data points and must agree"
        )
    U, s, Vt = np.linalg.svd(G, full_matrices=False)
    cutoff = rcond * (s[0] if s.size else 0.0)
    retained = s > cutoff
    rank = int(np.count_nonzero(retained))
    inv_s = np.zeros_like(s)
    inv_s[retained] = 1.0 / s[retained]
    # G^+ = V diag(1/s) U^T, so P = X G^+ = X V diag(1/s) U^T.
    P = X @ Vt.T @ np.diag(inv_s) @ U.T
    if rank:
        cond = float(s[0] / s[retained][-1])
    else:
        cond = np.inf
    return P, SolveDiagnostics(
        condition_number=cond,
        rank=rank,
        singular_values=s,
    )


def condition_number(G: np.ndarray) -> float:
    """2-norm condition number of a matrix (inf when singular)."""
    G = np.asarray(G, dtype=float)
    s = np.linalg.svd(G, compute_uv=False)
    if s.size == 0 or s[-1] == 0.0:
        return np.inf
    return float(s[0] / s[-1])
