"""Golden Section Search (GSS) for one-dimensional minimisation.

The RPC learning algorithm (Algorithm 1 in the paper) needs, for every
data point ``x_i``, the latent coordinate ``s_i in [0, 1]`` whose curve
point ``f(s_i)`` is closest to ``x_i``.  The first-order condition
Eq.(20) is a quintic polynomial with no closed-form roots, so the paper
adopts Golden Section Search on the squared distance.  This module
provides a careful scalar implementation plus a vectorised variant that
runs one GSS per data point simultaneously — the workhorse of the
projection step.
"""

from __future__ import annotations

from typing import Callable, Optional, Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError

#: The inverse golden ratio, (sqrt(5) - 1) / 2.
INV_PHI = (np.sqrt(5.0) - 1.0) / 2.0

#: Squared inverse golden ratio, used to place the initial interior points.
INV_PHI2 = (3.0 - np.sqrt(5.0)) / 2.0


def golden_section_search(
    func: Callable[[float], float],
    lo: float = 0.0,
    hi: float = 1.0,
    tol: float = 1e-8,
    max_iter: int = 200,
) -> Tuple[float, float]:
    """Minimise a unimodal scalar function on ``[lo, hi]``.

    Parameters
    ----------
    func:
        The objective.  It is assumed unimodal on the bracket; for
        multimodal objectives combine with a coarse grid scan (see
        :func:`bracketed_minimum`).
    lo, hi:
        Bracket endpoints with ``lo < hi``.
    tol:
        Terminate when the bracket width falls below ``tol``.
    max_iter:
        Hard cap on iterations; GSS shrinks the bracket by the golden
        ratio each step so roughly ``log(tol / (hi - lo)) / log(0.618)``
        iterations are needed.

    Returns
    -------
    (x, fx):
        The approximate minimiser and its objective value.
    """
    if not hi > lo:
        raise ConfigurationError(
            f"golden_section_search needs lo < hi, got [{lo}, {hi}]"
        )
    if tol <= 0:
        raise ConfigurationError(f"tol must be positive, got {tol}")

    a, b = float(lo), float(hi)
    h = b - a
    c = a + INV_PHI2 * h
    d = a + INV_PHI * h
    fc = func(c)
    fd = func(d)

    for _ in range(max_iter):
        if h <= tol:
            break
        if fc < fd:
            b, d, fd = d, c, fc
            h = b - a
            c = a + INV_PHI2 * h
            fc = func(c)
        else:
            a, c, fc = c, d, fd
            h = b - a
            d = a + INV_PHI * h
            fd = func(d)

    if fc < fd:
        return c, fc
    return d, fd


def golden_section_search_batch(
    func: Callable[[np.ndarray], np.ndarray],
    lo: np.ndarray,
    hi: np.ndarray,
    tol: float = 1e-8,
    max_iter: int = 200,
    pair_func: Optional[Callable[[np.ndarray], np.ndarray]] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """Run ``n`` independent golden-section searches simultaneously.

    ``func`` must accept a vector ``s`` of shape ``(n,)`` and return the
    per-element objective values, also shape ``(n,)``.  Element ``i`` of
    the search never mixes with element ``j``; the vectorisation is a
    pure speed optimisation over a Python loop of scalar searches.

    Parameters
    ----------
    func:
        Vectorised objective.
    lo, hi:
        Per-search bracket endpoints, each shape ``(n,)``.
    tol, max_iter:
        As in :func:`golden_section_search`.
    pair_func:
        Optional fused objective for precompiled callers: receives both
        initial interior points stacked as an ``(n, 2)`` array and
        returns the ``(n, 2)`` objective values in one call — the
        projection engine supplies a single batched Horner pass here.
        When given, ``pair_func`` must compute exactly ``func``
        column-wise; it is used for the bracket set-up evaluation
        (``func`` still evaluates the loop's single fresh point).

    Returns
    -------
    (x, fx):
        Arrays of shape ``(n,)`` with per-search minimisers and values.

    Notes
    -----
    The loop follows the textbook value-reuse scheme, vectorised: per
    iteration exactly one fresh interior point is evaluated per search
    (the surviving point's objective value is carried over, not
    recomputed), so an iteration costs one ``func`` call over ``(n,)``
    plus branch-free ``np.where`` bookkeeping.

    Each search freezes the moment *its own* bracket width reaches
    ``tol`` — not when the whole batch does.  A row therefore runs an
    iteration count determined solely by its own initial bracket, which
    makes the result bit-identical however the rows are batched
    (chunked vs one-shot scoring, and the serving micro-batcher that
    coalesces rows from unrelated requests).  The earlier
    batch-wide termination kept shrinking already-converged rows while
    slower batchmates finished, so the same row could come back with
    different last bits depending on what it shared a batch with.

    The search is dtype-preserving: float32 brackets (both ``lo`` and
    ``hi``) keep the whole search in float32 for the opt-in float32
    scoring mode; anything else runs the historical float64 path with
    byte-identical arithmetic.
    """
    work_dtype = (
        np.float32
        if getattr(lo, "dtype", None) == np.float32
        and getattr(hi, "dtype", None) == np.float32
        else np.float64
    )
    lo = np.asarray(lo, dtype=work_dtype)
    hi = np.asarray(hi, dtype=work_dtype)
    if lo.shape != hi.shape:
        raise ConfigurationError(
            f"lo and hi must share a shape, got {lo.shape} vs {hi.shape}"
        )
    if np.any(hi < lo):
        raise ConfigurationError("every bracket needs lo <= hi")
    # NEP 50: the module-level np.float64 constants are not weak
    # scalars, so they must be cast or float32 brackets would promote.
    # For float64 input these casts are exact no-ops.
    inv_phi = work_dtype(INV_PHI)
    inv_phi2 = work_dtype(INV_PHI2)

    a = lo.copy()
    b = hi.copy()
    h = b - a
    c = a + inv_phi2 * h
    d = a + inv_phi * h
    if pair_func is not None:
        fcd = pair_func(np.stack([c, d], axis=-1))
        fc, fd = fcd[..., 0], fcd[..., 1]
    else:
        fc = func(c)
        fd = func(d)

    active = h > tol
    for _ in range(max_iter):
        if not np.any(active):
            break
        left = fc < fd
        # Where the left interior point wins, shrink the bracket to
        # [a, d] and reuse c (with its known value fc) as the new right
        # interior point; elsewhere shrink to [c, b] and reuse d as the
        # new left interior point.  Only the remaining interior point is
        # fresh, so each iteration costs a single objective evaluation.
        # Rows whose own bracket already reached ``tol`` are frozen in
        # place (batch-split invariance — see Notes).
        a = np.where(active & ~left, c, a)
        b = np.where(active & left, d, b)
        h = b - a
        fresh = np.where(left, a + inv_phi2 * h, a + inv_phi * h)
        f_fresh = func(fresh)
        c, d = (
            np.where(active, np.where(left, fresh, d), c),
            np.where(active, np.where(left, c, fresh), d),
        )
        fc, fd = (
            np.where(active, np.where(left, f_fresh, fd), fc),
            np.where(active, np.where(left, fc, f_fresh), fd),
        )
        active = h > tol

    x = np.where(fc < fd, c, d)
    fx = np.minimum(fc, fd)
    return x, fx


def bracketed_minimum(
    func: Callable[[np.ndarray], np.ndarray],
    n_grid: int = 32,
    lo: float = 0.0,
    hi: float = 1.0,
) -> Tuple[np.ndarray, np.ndarray]:
    """Coarse grid scan that brackets the global minimum on ``[lo, hi]``.

    GSS assumes unimodality.  The squared distance from a point to a
    cubic Bezier curve can have up to three local minima, so Algorithm 1
    is made robust by first scanning ``n_grid`` evenly spaced values and
    then returning, for each search, the bracket ``[s* - step, s* + step]``
    around the best grid point ``s*``.

    ``func`` takes a grid vector of shape ``(g,)`` broadcast over all
    searches and must return values of shape ``(n, g)`` — one row per
    independent search.

    Returns
    -------
    (bracket_lo, bracket_hi):
        Arrays of shape ``(n,)`` delimiting a per-search bracket that
        contains the best grid point.
    """
    if n_grid < 3:
        raise ConfigurationError(f"n_grid must be >= 3, got {n_grid}")
    grid = np.linspace(lo, hi, n_grid)
    values = func(grid)
    values = np.atleast_2d(values)
    best = np.argmin(values, axis=1)
    step = (hi - lo) / (n_grid - 1)
    bracket_lo = np.clip(grid[best] - step, lo, hi)
    bracket_hi = np.clip(grid[best] + step, lo, hi)
    return bracket_lo, bracket_hi
