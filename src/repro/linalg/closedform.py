"""Closed-form and bracketed real-root solvers — the eigvals-free path.

The ``projection="roots"`` solver needs the real roots of the stationary
polynomial ``D'(s)`` (Eq.(20) of the paper) on ``[0, 1]``.  The batched
reference (:func:`repro.linalg.polyroots.batched_real_roots`) builds one
stacked companion matrix and calls ``np.linalg.eigvals`` — robust, but
an O(deg^3)-per-row LAPACK call that dominates the roots path (flagged
in PR 3 and the ROADMAP).  This module removes ``eigvals`` entirely:

* degree <= 4: classic closed forms with numerically-careful branch
  selection — cancellation-free quadratic (Vieta for the small root),
  trigonometric triple-root / Cardano single-root cubic split on the
  discriminant, and Ferrari's quartic via the largest resolvent-cubic
  root with a biquadratic branch when the depressed odd term vanishes.
  Every batch is finished with a couple of vectorised Newton steps, so
  the analytic branches only need to land in the basin of attraction.
* degree >= 5 (Abel–Ruffini: no algebraic solution exists): recursive
  monotone-interval isolation.  The sign-crossing roots of ``p'`` on
  ``[lo, hi]`` — obtained by recursing until the closed forms take over
  at degree 4 — partition the interval into pieces on which ``p`` is
  monotone; each sign change then brackets exactly one root, pinned by
  a safeguarded vectorised Newton/bisection.

Tangential (even-multiplicity) roots are not reported by the isolation
tier.  That is deliberate and *sufficient* for minimisation: an even
root of ``D'`` is a point where ``D`` is monotone through a flat spot,
never a strict minimiser — and omitting a non-crossing root of ``p'``
from the partition still leaves ``p`` monotone on the merged piece, so
the recursion stays sound.

Per-slot freezes only (no batch-wide reductions feed back into row
results), so the output is batch-split invariant like the rest of the
projection stack.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.linalg.horner import horner_batch, horner_pointwise

#: A coefficient whose magnitude is at most ``lead_tol`` times the
#: row's largest is treated as zero when deciding effective degree —
#: the same relative-deflation convention as ``batched_real_roots``.
DEFAULT_LEAD_TOL = 1e-12

#: Iteration cap for the safeguarded Newton/bisection.  Bisection alone
#: halves the bracket each step, so ~60 iterations resolve a unit
#: interval to 1 ulp; Newton takes over long before that.  Converged
#: slots freeze individually and the loop exits when all are frozen.
_ISOLATE_MAX_ITER = 80


def _effective_degrees(coeffs: np.ndarray, lead_tol: float) -> np.ndarray:
    """Per-row effective degree under relative deflation (-1: zero row)."""
    scale = np.max(np.abs(coeffs), axis=1)
    notsmall = np.abs(coeffs) > lead_tol * scale[:, np.newaxis]
    has_any = notsmall.any(axis=1)
    deg = coeffs.shape[1] - 1
    return np.where(has_any, deg - np.argmax(notsmall[:, ::-1], axis=1), -1)


def _polish(
    coeffs: np.ndarray,
    roots: np.ndarray,
    valid: np.ndarray,
    steps: int = 2,
) -> np.ndarray:
    """Vectorised Newton polish of root candidates against ``coeffs``.

    Steps are accepted only when they shrink ``|f|``: at a multiple
    root both ``f`` and ``f'`` are roundoff-sized and a raw Newton
    step ``f/f'`` can throw an already-correct root O(1) away.
    """
    m = coeffs.shape[1]
    if m < 2 or steps <= 0:
        return roots
    dcoeffs = coeffs[:, 1:] * np.arange(1.0, m)
    x = np.where(valid, roots, 0.0)
    fx = horner_batch(coeffs, x)
    for _ in range(steps):
        dfx = horner_batch(dcoeffs, x)
        safe = np.abs(dfx) > 1e-300
        xn = x - np.where(safe, fx / np.where(safe, dfx, 1.0), 0.0)
        fn = horner_batch(coeffs, xn)
        better = np.abs(fn) < np.abs(fx)
        x = np.where(better, xn, x)
        fx = np.where(better, fn, fx)
    return np.where(valid, x, roots)


def _roots_quadratic(
    a: np.ndarray, b: np.ndarray, c: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Real roots of ``a s^2 + b s + c`` (``a`` non-negligible): (g, 2)."""
    disc = b * b - 4.0 * a * c
    # A discriminant that is zero in exact arithmetic (double root) can
    # round slightly negative; accept it relative to the term scale so
    # double roots are reported instead of silently dropped.
    real = disc >= -1e-12 * (b * b + 4.0 * np.abs(a * c))
    sq = np.sqrt(np.maximum(disc, 0.0))
    # Cancellation-free split: the larger-|.| root from the same-sign
    # numerator q = -(b + sign(b) sqrt(disc)) / 2, the other via Vieta.
    q = -0.5 * (b + np.where(b >= 0.0, sq, -sq))
    r1 = np.where(real, q / a, 0.0)
    safe_q = q != 0.0
    r2 = np.where(real & safe_q, c / np.where(safe_q, q, 1.0), r1)
    roots = np.stack([r1, r2], axis=1)
    valid = np.stack([real, real], axis=1)
    return roots, valid


def _roots_cubic(coeffs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Real roots of ``g`` cubics, ascending coeffs ``(g, 4)``: (g, 3).

    Depress to ``t^3 + p t + q`` and split on the discriminant
    ``-4 p^3 - 27 q^2``: three real roots use the trigonometric form
    (immune to the cancellation Cardano suffers near equal roots), one
    real root uses Cardano with a same-sign cube-root numerator.  Near
    the discriminant-zero boundary the (near-)double root ``cbrt(q/2)``
    is emitted as an extra candidate so callers that need the *largest*
    real root (the quartic resolvent) don't lose it to roundoff.
    """
    inv_lead = 1.0 / coeffs[:, 3]
    c0 = coeffs[:, 0] * inv_lead
    c1 = coeffs[:, 1] * inv_lead
    c2 = coeffs[:, 2] * inv_lead
    shift = c2 / 3.0
    p = c1 - 3.0 * shift * shift
    q = 2.0 * shift**3 - shift * c1 + c0

    disc = -4.0 * p**3 - 27.0 * q * q
    scale_disc = 4.0 * np.abs(p) ** 3 + 27.0 * q * q
    three = disc > 0.0  # implies p < 0 strictly
    border = np.abs(disc) <= 1e-10 * scale_disc

    # Three-real branch: t_k = 2 sqrt(-p/3) cos(theta/3 - 2 pi k / 3).
    pm = np.where(three, p, -1.0)  # placeholder keeps sqrt/arccos defined
    mcoef = 2.0 * np.sqrt(-pm / 3.0)
    arg = np.clip(3.0 * q / (pm * mcoef), -1.0, 1.0)
    theta = np.arccos(arg) / 3.0
    k = np.array([0.0, 1.0, 2.0])
    t3 = mcoef[:, np.newaxis] * np.cos(
        theta[:, np.newaxis] - (2.0 * np.pi / 3.0) * k[np.newaxis, :]
    )

    # One-real branch (Cardano): w = -q/2 - sign(q) sqrt(q^2/4 + p^3/27)
    # adds same-sign terms, u = cbrt(w), t = u - p/(3u).
    halfq = 0.5 * q
    inner = halfq * halfq + (p / 3.0) ** 3
    root_inner = np.sqrt(np.maximum(inner, 0.0))
    w = -halfq - np.where(q >= 0.0, root_inner, -root_inner)
    u = np.cbrt(w)
    safe_u = u != 0.0
    t1 = np.where(safe_u, u - p / (3.0 * np.where(safe_u, u, 1.0)), 0.0)
    # Near disc == 0 the double root is t = cbrt(q/2) = -u.
    t_double = -u

    t = np.where(
        three[:, np.newaxis],
        t3,
        np.stack([t1, t_double, t_double], axis=1),
    )
    valid = np.empty(t.shape, dtype=bool)
    valid[:, 0] = True
    valid[:, 1] = three | border
    valid[:, 2] = three
    return t - shift[:, np.newaxis], valid


def _cubic_largest_root(
    c0: np.ndarray, c1: np.ndarray, c2: np.ndarray
) -> np.ndarray:
    """Largest real root of ``g`` monic cubics ``t^3 + c2 t^2 + c1 t + c0``.

    The Ferrari resolvent only needs the largest root, and in the
    three-real trigonometric branch that is always the ``k = 0`` shift
    (``theta/3`` lies in ``[0, pi/3]``, where the other two cosine
    shifts are smaller) — so the full three-root stack of
    :func:`_roots_cubic` can be skipped on this hot path.  Taking the
    monic coefficients directly also skips the leading-coefficient
    division (the resolvent is constructed monic).
    """
    shift = c2 / 3.0
    sh2 = shift * shift
    p = c1 - 3.0 * sh2
    q = 2.0 * sh2 * shift - shift * c1 + c0

    disc = -4.0 * p**3 - 27.0 * q * q
    scale_disc = 4.0 * np.abs(p) ** 3 + 27.0 * q * q
    three = disc > 0.0
    border = np.abs(disc) <= 1e-10 * scale_disc

    # Evaluate each branch only on its own rows — the transcendental
    # calls (arccos/cos vs cbrt) dominate this helper's cost.
    t = np.empty_like(p)
    if np.any(three):
        p3 = p[three]
        mcoef = 2.0 * np.sqrt(-p3 / 3.0)
        arg = np.clip(3.0 * q[three] / (p3 * mcoef), -1.0, 1.0)
        t[three] = mcoef * np.cos(np.arccos(arg) / 3.0)
    one = ~three
    if np.any(one):
        p1 = p[one]
        q1 = q[one]
        halfq = 0.5 * q1
        inner = halfq * halfq + (p1 / 3.0) ** 3
        root_inner = np.sqrt(np.maximum(inner, 0.0))
        w = -halfq - np.where(q1 >= 0.0, root_inner, -root_inner)
        u = np.cbrt(w)
        safe_u = u != 0.0
        t_one = np.where(
            safe_u, u - p1 / (3.0 * np.where(safe_u, u, 1.0)), 0.0
        )
        t[one] = np.where(border[one], np.maximum(t_one, -u), t_one)

    return t - shift


def _roots_quartic(coeffs: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Real roots of ``g`` quartics, ascending coeffs ``(g, 5)``: (g, 4).

    Ferrari: depress to ``y^4 + p y^2 + q y + r``, take the largest real
    root ``m`` of the resolvent cubic ``m^3 + p m^2 + (p^2/4 - r) m -
    q^2/8``, and factor into two quadratics ``y^2 +- alpha y + beta``
    with ``alpha = sqrt(2 m)``.  When the odd term ``q`` vanishes the
    resolvent root degenerates to ``m = 0`` and ``q / (2 alpha)`` is
    0/0 — those rows take the biquadratic branch instead.
    """
    inv_lead = 1.0 / coeffs[:, 4]
    a = coeffs[:, 3] * inv_lead
    b = coeffs[:, 2] * inv_lead
    c = coeffs[:, 1] * inv_lead
    d = coeffs[:, 0] * inv_lead
    shift = 0.25 * a  # roots_s = roots_y - shift
    sh2 = shift * shift
    p = b - 6.0 * sh2
    q = c - 2.0 * b * shift + 8.0 * sh2 * shift
    r = d - c * shift + b * sh2 - 3.0 * sh2 * sh2

    # Characteristic root magnitude of the depressed quartic; the
    # biquadratic test must be scale-invariant under s -> lambda s.
    y_scale = np.maximum.reduce(
        [
            np.sqrt(np.abs(p)),
            np.cbrt(np.abs(q)),
            np.sqrt(np.sqrt(np.abs(r))),
            np.full_like(p, 1e-150),
        ]
    )
    biquad = np.abs(q) <= 1e-12 * y_scale**3

    g = coeffs.shape[0]
    y = np.zeros((g, 4))
    yvalid = np.zeros((g, 4), dtype=bool)
    bi = np.nonzero(biquad)[0]
    fe = np.nonzero(~biquad)[0]

    # Biquadratic branch: z = y^2, z^2 + p z + r = 0, y = +-sqrt(z).
    # Each branch runs on its own rows only — for generic data the
    # biquadratic rows are rare and the Ferrari arithmetic dominates.
    if bi.size:
        pb = p[bi]
        z, zvalid = _roots_quadratic(np.ones_like(pb), pb, r[bi])
        z_tol = 1e-12 * y_scale[bi] ** 2
        z_ok = zvalid & (z >= -z_tol[:, np.newaxis])
        sqrt_z = np.sqrt(np.maximum(z, 0.0))
        y[bi] = np.stack(
            [sqrt_z[:, 0], -sqrt_z[:, 0], sqrt_z[:, 1], -sqrt_z[:, 1]],
            axis=1,
        )
        yvalid[bi] = np.stack(
            [z_ok[:, 0], z_ok[:, 0], z_ok[:, 1], z_ok[:, 1]], axis=1
        )

    # Ferrari branch.
    if fe.size:
        pf = p[fe]
        qf = q[fe]
        m = np.maximum(
            _cubic_largest_root(
                -qf * qf / 8.0, pf * pf / 4.0 - r[fe], pf
            ),
            0.0,
        )
        alpha = np.sqrt(2.0 * m)
        safe_alpha = alpha > 0.0
        qa = np.where(
            safe_alpha, qf / np.where(safe_alpha, 2.0 * alpha, 1.0), 0.0
        )
        beta1 = 0.5 * pf + m - qa
        beta2 = 0.5 * pf + m + qa
        r12, v12 = _roots_quadratic(np.ones_like(alpha), alpha, beta1)
        r34, v34 = _roots_quadratic(np.ones_like(alpha), -alpha, beta2)
        y[fe] = np.concatenate([r12, r34], axis=1)
        yvalid[fe] = np.concatenate([v12, v34], axis=1)

    return y - shift[:, np.newaxis], yvalid


def closed_form_real_roots(
    coeffs: np.ndarray,
    lead_tol: float = DEFAULT_LEAD_TOL,
    polish_steps: int = 2,
) -> tuple[np.ndarray, np.ndarray]:
    """All real roots of ``n`` polynomials of degree <= 4, analytically.

    Rows are dispatched by effective degree (relative deflation with
    ``lead_tol``, matching ``batched_real_roots``) to the linear,
    quadratic, cubic or quartic closed form, then Newton-polished
    against the deflated coefficients.

    Returns
    -------
    (roots, valid):
        ``roots`` of shape ``(n, deg)`` (junk where invalid) and the
        boolean mask of genuine real roots.
    """
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=float))
    n, m = coeffs.shape
    if m == 0:
        raise ConfigurationError("empty coefficient matrix")
    deg = m - 1
    if deg > 4:
        raise ConfigurationError(
            f"closed_form_real_roots handles degree <= 4, got degree {deg}; "
            "use isolated_real_roots for higher degrees"
        )
    roots = np.zeros((n, deg))
    valid = np.zeros((n, deg), dtype=bool)
    if deg == 0 or n == 0:
        return roots, valid

    eff = _effective_degrees(coeffs, lead_tol)

    # Hot-path shortcut: every row at full degree (the common case for
    # generic batches) skips the per-degree gather/scatter round trip.
    if deg == 4 and np.all(eff == 4):
        r, v = _roots_quartic(coeffs)
        r = _polish(coeffs, r, v, steps=polish_steps)
        return r, v

    rows = eff == 1
    if np.any(rows):
        roots[rows, 0] = -coeffs[rows, 0] / coeffs[rows, 1]
        valid[rows, 0] = True
    if deg >= 2:
        rows = eff == 2
        if np.any(rows):
            r, v = _roots_quadratic(
                coeffs[rows, 2], coeffs[rows, 1], coeffs[rows, 0]
            )
            r = _polish(coeffs[rows, :3], r, v, steps=polish_steps)
            roots[rows, :2] = r
            valid[rows, :2] = v
    if deg >= 3:
        rows = eff == 3
        if np.any(rows):
            r, v = _roots_cubic(coeffs[rows, :4])
            r = _polish(coeffs[rows, :4], r, v, steps=polish_steps)
            roots[rows, :3] = r
            valid[rows, :3] = v
    if deg == 4:
        rows = eff == 4
        if np.any(rows):
            r, v = _roots_quartic(coeffs[rows, :5])
            r = _polish(coeffs[rows, :5], r, v, steps=polish_steps)
            roots[rows, :4] = r
            valid[rows, :4] = v
    return roots, valid


def _bracketed_newton(
    coeffs: np.ndarray,
    dcoeffs: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    fa: np.ndarray,
    fb: np.ndarray,
    active: np.ndarray,
    max_iter: int = _ISOLATE_MAX_ITER,
    width_tol: float = 1e-12,
) -> np.ndarray:
    """Pin one sign-crossing root per active slot of ``[a, b]`` brackets.

    Newton from a secant start, rejected back to bisection whenever
    the step leaves the bracket or the derivative vanishes.  Slots
    freeze individually on convergence and are *compacted out* of the
    working set, so the per-iteration cost tracks the stragglers
    instead of re-evaluating every slot until the last one converges.
    A slot's iterates depend only on its own bracket and coefficients,
    so the compaction keeps results batch-split invariant.
    """
    out = 0.5 * (a + b)
    rows, cols = np.nonzero(active)
    if rows.size == 0:
        return out
    k = a.shape[1]
    ca = np.ascontiguousarray(coeffs[rows])
    da = np.ascontiguousarray(dcoeffs[rows])
    av = a[rows, cols]
    bv = b[rows, cols]
    fav = fa[rows, cols]
    sign_a = fav > 0.0
    fbv = fb[rows, cols]
    # Secant (false-position) start: fa and fb are already evaluated,
    # and the chord typically lands far closer to the root than the
    # midpoint, saving full-width Newton iterations on every slot.
    denom = fbv - fav
    ok = denom != 0.0
    x = np.where(
        ok,
        (av * fbv - bv * fav) / np.where(ok, denom, 1.0),
        0.5 * (av + bv),
    )
    x = np.where((x > av) & (x < bv), x, 0.5 * (av + bv))
    flat = rows * k + cols
    out_flat = out.reshape(-1)
    m = ca.shape[1]
    # Per-slot stop width, fixed from the *initial* bracket scale —
    # brackets only shrink, so this is a conservative (slightly early)
    # stop that saves two reductions per iteration.
    tol_v = width_tol * np.maximum(1.0, np.maximum(np.abs(av), np.abs(bv)))
    # Residual stop: |f(x)| at 1e-12 of the endpoint values means
    # Newton has converged (s-error ~ |f|/|f'|).  Without it, a root
    # that lands exactly on a bracket endpoint strands the slot:
    # every later Newton estimate falls ~1 ulp outside the bracket,
    # is rejected, and the slot bisects all the way to the width stop.
    res_tol = 1e-12 * np.maximum(np.abs(fav), np.abs(fbv))
    with np.errstate(divide="ignore", invalid="ignore"):
        for _ in range(max_iter):
            # Inlined Horner (f and f'): the straggler tail runs on
            # short arrays where `horner_pointwise`'s validation
            # overhead costs more than the arithmetic.
            f = ca[:, -1].copy()
            for j in range(m - 2, -1, -1):
                f *= x
                f += ca[:, j]
            df = da[:, -1].copy()
            for j in range(m - 3, -1, -1):
                df *= x
                df += da[:, j]
            # An exact zero (f == 0) lands on the ~same side as the b
            # end: the root sits on the new bracket boundary and the
            # bracket collapses onto it within a few iterations.
            conv = np.abs(f) <= res_tol
            same = (f > 0.0) == sign_a
            av = np.where(same, x, av)
            bv = np.where(same, bv, x)
            xn = x - f / df
            inside = (xn > av) & (xn < bv)  # NaN/inf -> False -> bisect
            x_next = np.where(inside, xn, 0.5 * (av + bv))
            frozen = conv | ((bv - av) <= tol_v) | (x_next == x)
            # Residual-frozen slots keep the x whose |f| passed the
            # test; everything else advances.
            x = np.where(conv, x, x_next)
            if frozen.any():
                out_flat[flat[frozen]] = x[frozen]
                live = ~frozen
                if not live.any():
                    return out
                ca = np.ascontiguousarray(ca[live])
                da = np.ascontiguousarray(da[live])
                av = av[live]
                bv = bv[live]
                sign_a = sign_a[live]
                x = x[live]
                flat = flat[live]
                tol_v = tol_v[live]
                res_tol = res_tol[live]
    out_flat[flat] = x  # iteration cap: best bracketed estimate
    return out


def isolated_real_roots(
    coeffs: np.ndarray,
    lo: float = 0.0,
    hi: float = 1.0,
    lead_tol: float = DEFAULT_LEAD_TOL,
    polish_steps: int = 2,
    width_tol: float = 1e-12,
) -> tuple[np.ndarray, np.ndarray]:
    """Sign-crossing real roots of ``n`` polynomials inside ``[lo, hi]``.

    Recursive monotone-interval isolation: the crossing roots of the
    derivative (one degree lower — recursion bottoms out in the
    closed forms at degree <= 4) partition ``[lo, hi]`` into pieces on
    which the polynomial is monotone; each sign change over a piece
    brackets exactly one root, pinned by safeguarded Newton/bisection.

    Only odd-multiplicity (sign-crossing) roots are reported — exactly
    the candidates that matter when the polynomial is a derivative
    being scanned for strict extrema.

    Returns
    -------
    (roots, valid) with roots of shape ``(n, deg)``.
    """
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=float))
    n, m = coeffs.shape
    deg = m - 1
    if deg <= 4:
        roots, valid = closed_form_real_roots(
            coeffs, lead_tol=lead_tol, polish_steps=polish_steps
        )
        if roots.shape[1]:
            clipped = np.clip(roots, lo, hi)
            span_tol = 1e-12 * max(abs(lo), abs(hi), 1.0)
            valid = valid & (np.abs(clipped - roots) <= span_tol)
            roots = np.where(valid, clipped, roots)
        return roots, valid

    # Critical points only *partition* [lo, hi] into monotone pieces —
    # a slightly misplaced partition point still brackets every
    # sign-crossing root — so their closed forms skip the Newton
    # polish that the final answer gets.
    dcoeffs = coeffs[:, 1:] * np.arange(1.0, m)
    crit, cvalid = isolated_real_roots(
        dcoeffs, lo, hi, lead_tol=lead_tol, polish_steps=0,
        width_tol=width_tol,
    )

    # Partition points: endpoints plus in-interval critical points
    # (invalid slots parked at hi so sorting pushes them into
    # zero-width intervals that can never register a crossing).
    pts = np.concatenate(
        [
            np.full((n, 1), lo),
            np.where(cvalid, crit, hi),
            np.full((n, 1), hi),
        ],
        axis=1,
    )
    pts.sort(axis=1)
    vals = horner_batch(coeffs, pts)
    a = pts[:, :-1]
    b = pts[:, 1:]
    fa = vals[:, :-1]
    fb = vals[:, 1:]
    za = fa == 0.0
    zb = fb == 0.0
    cross = ((fa > 0.0) != (fb > 0.0)) & ~za & ~zb & (b > a)

    roots = np.where(zb, b, np.where(za, a, 0.0))
    valid = za | zb | cross
    if np.any(cross):
        x = _bracketed_newton(
            coeffs, dcoeffs, a, b, fa, fb, cross, width_tol=width_tol
        )
        roots = np.where(cross, x, roots)

    # Pad/truncate to the (n, deg) slot convention.  The partition has
    # deg + 1 slots but at most deg real roots; keep the first deg.
    if roots.shape[1] > deg:
        order = np.argsort(~valid, axis=1, kind="stable")
        take = np.take_along_axis
        roots = take(roots, order, axis=1)[:, :deg]
        valid = take(valid, order, axis=1)[:, :deg]
    return roots, valid


def closed_form_stationary_roots(
    deriv: np.ndarray,
    lo: float = 0.0,
    hi: float = 1.0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Drop-in ``root_solver`` for ``batched_minimize_on_interval``.

    Matches the ``(roots, valid, fallback)`` convention of
    :func:`repro.linalg.polyroots.batched_real_roots` so the shared
    minimiser applies identical clipping, Newton polish and argmin
    regardless of which solver produced the stationary candidates.
    Degree <= 4 rows get every real root (closed form); higher degrees
    get the sign-crossing roots in ``[lo, hi]``, which is sufficient
    for the downstream minimisation.
    """
    deriv = np.atleast_2d(np.asarray(deriv, dtype=float))
    n, m = deriv.shape
    if m == 0:
        raise ConfigurationError("empty coefficient matrix")
    # ``lo``/``hi`` may be scalars or per-row arrays (the minimiser's
    # convention); isolation needs one envelope interval, parking needs
    # the per-row floor.  Roots found in the envelope but outside a
    # row's own interval are discarded by the shared boundary filter.
    lo_rows = np.broadcast_to(np.asarray(lo, dtype=float).ravel(), (n,))
    hi_rows = np.broadcast_to(np.asarray(hi, dtype=float).ravel(), (n,))
    nz_cols = np.nonzero(np.any(deriv != 0.0, axis=0))[0]
    if nz_cols.size == 0 or nz_cols[-1] == 0:
        return (
            np.zeros((n, 0)),
            np.zeros((n, 0), dtype=bool),
            np.zeros(n, dtype=bool),
        )
    deriv = deriv[:, : nz_cols[-1] + 1]
    if deriv.shape[1] - 1 <= 4:
        roots, valid = closed_form_real_roots(deriv)
    else:
        # Bisection stragglers (Newton-resistant near-multiple roots)
        # stop at a coarse bracket: the shared minimiser's three Newton
        # polish steps drive simple roots from 1e-7 to machine epsilon,
        # and the Newton-resistant slots are distance-tied basins where
        # the agreement contract already tolerates the residual.
        roots, valid = isolated_real_roots(
            deriv, float(lo_rows.min()), float(hi_rows.max()),
            width_tol=1e-7,
        )
    # Park invalid slots on lo, mirroring the reference path's
    # np.where(valid, clipped, lo) so downstream clipping is a no-op.
    roots = np.where(valid, roots, lo_rows[:, np.newaxis])
    return roots, valid, np.zeros(n, dtype=bool)
