"""Pluggable kernel backends for the projection hot path.

The projection engine reduces, after compilation, to three kernel
families: batched Horner evaluation over a shared grid or per-row
points, pointwise Horner over one ``(n,)`` work vector, and the
stationary-point real-root minimisation behind ``projection="roots"``.
This module wraps each family behind a tiny :class:`KernelBackend`
protocol with three implementations:

``numpy``
    The historical kernels, always available, byte-stable — the
    reference every other backend is gated against.  This remains the
    library default so plain ``score_samples()`` output never moves.
``closed-form``
    Same Horner kernels, but the stationary-root solve goes through
    :mod:`repro.linalg.closedform` (analytic quadratic/cubic/quartic +
    recursive monotone-interval isolation) instead of the stacked
    companion-matrix ``eigvals`` — no LAPACK in the roots path at all.
``numba``
    Closed-form roots plus JIT-compiled, block-strided Horner kernels.
    Guarded by :func:`importlib.util.find_spec`: when numba is absent
    the backend refuses to construct and everything else keeps working
    on stdlib + numpy.  Kernels are compiled with ``fastmath=False``
    (separate multiply and add roundings), so float64 results match
    the numpy kernels bit for bit.

``resolve_backend("auto")`` picks ``numba`` when importable and
``closed-form`` otherwise; the CLI and the daemon default to ``auto``,
the library APIs default to ``None`` (= ``numpy``).
"""

from __future__ import annotations

import importlib.util
import threading
from typing import Optional, Union

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.linalg import horner as _horner
from repro.linalg.closedform import closed_form_stationary_roots
from repro.linalg.polyroots import batched_minimize_on_interval

#: CLI-facing backend spellings, in resolution-priority order for "auto".
BACKEND_CHOICES = ("auto", "numpy", "closed-form", "numba")

#: Supported scoring dtypes (fitting always stays float64).
SCORE_DTYPE_CHOICES = ("float64", "float32")


def numba_available() -> bool:
    """True when the optional numba dependency is importable."""
    return importlib.util.find_spec("numba") is not None


class KernelBackend:
    """Protocol for the projection engine's three kernel entry points.

    Subclasses provide a stable ``name`` (reported in ``/metrics`` and
    traces), a ``preferred_dtype``, and the kernels.  All kernels must
    accept/return the same shapes as the numpy reference in
    :mod:`repro.linalg.horner` / :mod:`repro.linalg.polyroots`.
    """

    name: str = "abstract"
    preferred_dtype: np.dtype = np.dtype(np.float64)

    def horner_batch(self, coeffs: np.ndarray, x: np.ndarray) -> np.ndarray:
        """Evaluate ``n`` polynomials on ``(n, p)`` points or a shared grid."""
        raise NotImplementedError

    def horner_pointwise(self, coeffs: np.ndarray, s: np.ndarray) -> np.ndarray:
        """Evaluate polynomial ``i`` at the single point ``s[i]``."""
        raise NotImplementedError

    def minimize_stationary(
        self, coeffs: np.ndarray, lo: float = 0.0, hi: float = 1.0
    ) -> np.ndarray:
        """Row-wise global minimiser of ``n`` polynomials on ``[lo, hi]``."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} name={self.name!r}>"


class NumpyBackend(KernelBackend):
    """The always-on reference: historical numpy kernels + eigvals roots."""

    name = "numpy"

    def horner_batch(self, coeffs: np.ndarray, x: np.ndarray) -> np.ndarray:
        return _horner.horner_batch(coeffs, x)

    def horner_pointwise(self, coeffs: np.ndarray, s: np.ndarray) -> np.ndarray:
        return _horner.horner_pointwise(coeffs, s)

    def minimize_stationary(
        self, coeffs: np.ndarray, lo: float = 0.0, hi: float = 1.0
    ) -> np.ndarray:
        return batched_minimize_on_interval(coeffs, lo, hi)


class ClosedFormBackend(NumpyBackend):
    """Numpy Horner kernels with the analytic (eigvals-free) root solve."""

    name = "closed-form"

    def minimize_stationary(
        self, coeffs: np.ndarray, lo: float = 0.0, hi: float = 1.0
    ) -> np.ndarray:
        return batched_minimize_on_interval(
            coeffs, lo, hi, root_solver=closed_form_stationary_roots
        )


class NumbaBackend(ClosedFormBackend):
    """Closed-form roots + numba-JIT blocked Horner kernels.

    Compilation is lazy (first kernel call) and cached per backend
    instance; :func:`resolve_backend` hands out a process-wide
    singleton so the JIT cost is paid once.  ``fastmath`` stays off:
    the point is removing interpreter and temporary-array overhead,
    not changing the rounding of a single operation, so float64
    results are bit-identical to :class:`NumpyBackend`.
    """

    name = "numba"

    def __init__(self) -> None:
        if not numba_available():
            raise ConfigurationError(
                "backend 'numba' requested but numba is not importable; "
                f"available backends: {available_backend_names()}"
            )
        self._kernels: Optional[dict] = None
        self._lock = threading.Lock()

    def _ensure_kernels(self) -> dict:
        if self._kernels is None:
            with self._lock:
                if self._kernels is None:
                    self._kernels = _build_numba_kernels()
        return self._kernels

    def horner_batch(self, coeffs: np.ndarray, x: np.ndarray) -> np.ndarray:
        coeffs = _horner.work_coeffs(coeffs)
        x = np.asarray(x)
        if x.dtype != coeffs.dtype:
            x = x.astype(coeffs.dtype)
        kernels = self._ensure_kernels()
        coeffs_c = np.ascontiguousarray(coeffs)
        if x.ndim == 1:
            # Shared grid: keep it 1-D instead of materialising the
            # 0-stride broadcast view numba cannot vectorise over.
            out = np.empty((coeffs.shape[0], x.size), dtype=coeffs.dtype)
            kernels["grid"](coeffs_c, np.ascontiguousarray(x), out)
            return out
        if x.ndim != 2 or x.shape[0] != coeffs.shape[0]:
            raise ConfigurationError(
                f"x must be 1-D (shared grid) or ({coeffs.shape[0]}, p), "
                f"got shape {x.shape}"
            )
        out = np.empty(x.shape, dtype=coeffs.dtype)
        kernels["rows"](coeffs_c, np.ascontiguousarray(x), out)
        return out

    def horner_pointwise(self, coeffs: np.ndarray, s: np.ndarray) -> np.ndarray:
        coeffs = _horner.work_coeffs(coeffs)
        s = np.asarray(s).ravel()
        if s.dtype != coeffs.dtype:
            s = s.astype(coeffs.dtype)
        if s.size != coeffs.shape[0]:
            raise ConfigurationError(
                f"s has {s.size} entries for {coeffs.shape[0]} polynomials"
            )
        out = np.empty(coeffs.shape[0], dtype=coeffs.dtype)
        self._ensure_kernels()["pointwise"](
            np.ascontiguousarray(coeffs), np.ascontiguousarray(s), out
        )
        return out


def _build_numba_kernels() -> dict:
    """JIT-compile the blocked Horner kernels (numba import deferred)."""
    import numba

    # Row blocks keep the (block,) work slice hot in L1/L2 while the
    # coefficient columns stream past; the inner loops are contiguous
    # unit-stride multiply-adds LLVM auto-vectorises.  The arithmetic
    # order per element is exactly the numpy kernels' (result * x + c,
    # rounded separately: fastmath stays off), so float64 output is
    # bit-identical to the reference.
    block = 1024

    @numba.njit(cache=False, fastmath=False)
    def pointwise(coeffs, s, out):  # pragma: no cover - jitted
        n, m = coeffs.shape
        for start in range(0, n, block):
            stop = min(start + block, n)
            for i in range(start, stop):
                out[i] = coeffs[i, m - 1]
            for j in range(m - 2, -1, -1):
                for i in range(start, stop):
                    out[i] = out[i] * s[i] + coeffs[i, j]

    @numba.njit(cache=False, fastmath=False)
    def grid(coeffs, x, out):  # pragma: no cover - jitted
        n, m = coeffs.shape
        p = x.shape[0]
        for i in range(n):
            for t in range(p):
                out[i, t] = coeffs[i, m - 1]
            for j in range(m - 2, -1, -1):
                cij = coeffs[i, j]
                for t in range(p):
                    out[i, t] = out[i, t] * x[t] + cij

    @numba.njit(cache=False, fastmath=False)
    def rows(coeffs, x, out):  # pragma: no cover - jitted
        n, m = coeffs.shape
        p = x.shape[1]
        for i in range(n):
            for t in range(p):
                out[i, t] = coeffs[i, m - 1]
            for j in range(m - 2, -1, -1):
                cij = coeffs[i, j]
                for t in range(p):
                    out[i, t] = out[i, t] * x[i, t] + cij

    return {"pointwise": pointwise, "grid": grid, "rows": rows}


_DEFAULT_BACKEND = NumpyBackend()
_BACKEND_CACHE: dict = {"numpy": _DEFAULT_BACKEND}
_BACKEND_CACHE_LOCK = threading.Lock()


def default_backend() -> KernelBackend:
    """The library default (numpy reference — byte-stable scoring)."""
    return _DEFAULT_BACKEND


def available_backend_names() -> tuple:
    """Concrete backend names constructible in this environment."""
    names = ["numpy", "closed-form"]
    if numba_available():
        names.append("numba")
    return tuple(names)


def resolve_backend(
    spec: Optional[Union[str, KernelBackend]] = None,
) -> KernelBackend:
    """Resolve a backend spec (name, instance or None) to an instance.

    ``None``/"default" give the numpy reference; "auto" gives numba when
    importable, else closed-form.  Instances pass through untouched.
    Unknown names and "numba"-without-numba raise ConfigurationError.
    """
    if spec is None:
        return _DEFAULT_BACKEND
    if isinstance(spec, KernelBackend):
        return spec
    name = str(spec).strip().lower().replace("_", "-")
    if name in ("", "default"):
        return _DEFAULT_BACKEND
    if name == "auto":
        name = "numba" if numba_available() else "closed-form"
    if name not in ("numpy", "closed-form", "numba"):
        raise ConfigurationError(
            f"unknown kernel backend {spec!r}; choices: {BACKEND_CHOICES}"
        )
    with _BACKEND_CACHE_LOCK:
        backend = _BACKEND_CACHE.get(name)
        if backend is None:
            backend = (
                ClosedFormBackend() if name == "closed-form" else NumbaBackend()
            )
            _BACKEND_CACHE[name] = backend
    return backend


def resolve_score_dtype(dtype=None) -> np.dtype:
    """Validate an opt-in scoring dtype; ``None`` means float64.

    Only float32 and float64 are accepted — the fit, the persisted
    model and the root solve stay float64 regardless; float32 affects
    the grid/GSS/Newton work vectors of scoring only.
    """
    if dtype is None:
        return np.dtype(np.float64)
    try:
        dt = np.dtype(dtype)
    except TypeError as exc:
        raise ConfigurationError(f"invalid score dtype {dtype!r}") from exc
    if dt not in (np.dtype(np.float64), np.dtype(np.float32)):
        raise ConfigurationError(
            f"score dtype must be one of {SCORE_DTYPE_CHOICES}, got {dtype!r}"
        )
    return dt
