"""Batched Horner evaluation — the projection engine's inner kernel.

The projection hot path (grid scan, batched Golden Section Search,
Newton polish, roots fallback) reduces, once the squared-distance
polynomials are precompiled, to evaluating ``n`` same-degree
polynomials at one or a few points each.  Doing that with Horner's
scheme costs ``deg`` fused multiply-adds per point and — unlike
rebuilding the Bernstein basis and multiplying by the control-point
matrix — carries no factor of the ambient dimension ``d`` and no
``pow`` calls.  Every solver shares the two kernels below so the
arithmetic (and therefore the scores) cannot drift between paths.

Coefficients are ascending throughout: ``coeffs[i, j]`` multiplies
``s**j`` in polynomial ``i``.

Both kernels are dtype-preserving for the opt-in float32 scoring mode:
float32 coefficients stay float32 (evaluation points are cast to the
coefficient dtype), everything else is promoted to float64 exactly as
before — the float64 path is byte-identical to the historical kernels.
"""

from __future__ import annotations

import numpy as np

from repro.core.exceptions import ConfigurationError


def work_coeffs(coeffs: np.ndarray) -> np.ndarray:
    """Coefficients as a 2-D work array: float32 kept, else float64."""
    coeffs = np.atleast_2d(np.asarray(coeffs))
    if coeffs.dtype != np.float32:
        coeffs = coeffs.astype(float, copy=False)
    return coeffs


def horner_batch(coeffs: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Evaluate ``n`` polynomials at per-row point sets, shape ``(n, p)``.

    Parameters
    ----------
    coeffs:
        Matrix of shape ``(n, m)``; row ``i`` holds the ascending-power
        coefficients of polynomial ``i``.
    x:
        Evaluation points.  Shape ``(n, p)`` evaluates row ``i`` of
        ``coeffs`` at ``x[i]``; a 1-D vector of shape ``(p,)`` is a
        shared grid broadcast to every row (the grid-scan case).

    Returns
    -------
    Values of shape ``(n, p)``.
    """
    coeffs = work_coeffs(coeffs)
    x = np.asarray(x)
    if x.dtype != coeffs.dtype:
        x = x.astype(coeffs.dtype)
    if x.ndim == 1:
        x = np.broadcast_to(x, (coeffs.shape[0], x.size))
    elif x.ndim != 2 or x.shape[0] != coeffs.shape[0]:
        raise ConfigurationError(
            f"x must be 1-D (shared grid) or ({coeffs.shape[0]}, p), "
            f"got shape {x.shape}"
        )
    result = np.broadcast_to(coeffs[:, -1:], x.shape).astype(coeffs.dtype, copy=True)
    for j in range(coeffs.shape[1] - 2, -1, -1):
        result *= x
        result += coeffs[:, j : j + 1]
    return result


def horner_pointwise(coeffs: np.ndarray, s: np.ndarray) -> np.ndarray:
    """Evaluate polynomial ``i`` at the single point ``s[i]``, shape ``(n,)``.

    The innermost loop of batched GSS and Newton refinement: everything
    stays 1-D, so each iteration is ``deg`` in-place multiply-adds over
    one ``(n,)`` work vector with no 2-D temporaries.
    """
    coeffs = work_coeffs(coeffs)
    s = np.asarray(s).ravel()
    if s.dtype != coeffs.dtype:
        s = s.astype(coeffs.dtype)
    if s.size != coeffs.shape[0]:
        raise ConfigurationError(
            f"s has {s.size} entries for {coeffs.shape[0]} polynomials"
        )
    result = coeffs[:, -1].copy()
    for j in range(coeffs.shape[1] - 2, -1, -1):
        result *= s
        result += coeffs[:, j]
    return result
