"""Numeric substrate: the solvers Algorithm 1 is built from.

This subpackage isolates the paper's numerical machinery so each piece
can be tested against textbook behaviour independently of the RPC
model:

* :mod:`repro.linalg.golden_section` — scalar and batched Golden
  Section Search (the projection-step solver of Algorithm 1).
* :mod:`repro.linalg.richardson` — the preconditioned Richardson
  control-point update of Eq.(27)–(28).
* :mod:`repro.linalg.horner` — the batched Horner kernels every
  projection-engine solver evaluates its compiled polynomials with.
* :mod:`repro.linalg.polyroots` — companion-matrix real-root finding
  for the quintic first-order condition Eq.(20).
* :mod:`repro.linalg.pseudoinverse` — the closed-form ``P = X (MZ)^+``
  update of Eq.(26) with conditioning diagnostics.
"""

from repro.linalg.golden_section import (
    INV_PHI,
    bracketed_minimum,
    golden_section_search,
    golden_section_search_batch,
)
from repro.linalg.horner import horner_batch, horner_pointwise
from repro.linalg.polyroots import (
    batched_minimize_on_interval,
    batched_real_roots,
    minimize_polynomial_on_interval,
    newton_polish,
    polynomial_derivative,
    polyval_ascending,
    polyval_ascending_batch,
    real_roots,
    real_roots_in_interval,
)
from repro.linalg.pseudoinverse import SolveDiagnostics, condition_number, pinv_solve
from repro.linalg.richardson import (
    RichardsonResult,
    column_norm_preconditioner,
    optimal_step_size,
    richardson_solve,
    richardson_step,
)

__all__ = [
    "INV_PHI",
    "RichardsonResult",
    "SolveDiagnostics",
    "batched_minimize_on_interval",
    "batched_real_roots",
    "bracketed_minimum",
    "column_norm_preconditioner",
    "condition_number",
    "golden_section_search",
    "golden_section_search_batch",
    "horner_batch",
    "horner_pointwise",
    "minimize_polynomial_on_interval",
    "newton_polish",
    "optimal_step_size",
    "pinv_solve",
    "polynomial_derivative",
    "polyval_ascending",
    "polyval_ascending_batch",
    "real_roots",
    "real_roots_in_interval",
    "richardson_solve",
    "richardson_step",
]
