"""Preconditioned Richardson iteration for the control-point update.

Section 5 of the paper replaces the closed-form pseudo-inverse solution
``P = X (M Z)^+`` — which is numerically fragile because ``Z`` is often
ill-conditioned mid-iteration — with a single damped Richardson step

    ``P_{t+1} = P_t - gamma_t (P_t A - B) D^{-1}``,

where ``A = (M Z)(M Z)^T``, ``B = X (M Z)^T``, ``D`` is a diagonal
preconditioner built from the column L2-norms of ``A``, and the step
size ``gamma_t = 2 / (lambda_min + lambda_max)`` uses the extreme
eigenvalues of ``A`` (the classical optimal Richardson parameter for a
symmetric positive-definite system).

This module implements that update in isolation so it can be unit
tested against direct solves, and offers a full iterative solver for
callers who want Richardson to convergence rather than one step.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.core.exceptions import ConfigurationError


def column_norm_preconditioner(A: np.ndarray, eps: float = 1e-12) -> np.ndarray:
    """Diagonal preconditioner with the column L2-norms of ``A``.

    Returns the diagonal entries (not a dense matrix).  Entries are
    floored at ``eps`` so a zero column cannot produce a division by
    zero downstream.
    """
    A = np.asarray(A, dtype=float)
    if A.ndim != 2:
        raise ConfigurationError(f"A must be 2-D, got ndim={A.ndim}")
    norms = np.linalg.norm(A, axis=0)
    return np.maximum(norms, eps)


def optimal_step_size(A: np.ndarray, floor: float = 1e-12) -> float:
    """Return ``2 / (lambda_min + lambda_max)`` for symmetric PSD ``A``.

    Eq.(28) of the paper.  ``A`` is symmetrised before the eigenvalue
    computation to guard against floating-point asymmetry, and the
    denominator is floored to keep the step finite when ``A`` is
    numerically singular.
    """
    A = np.asarray(A, dtype=float)
    if A.ndim != 2 or A.shape[0] != A.shape[1]:
        raise ConfigurationError(f"A must be square, got shape {A.shape}")
    sym = 0.5 * (A + A.T)
    eigvals = np.linalg.eigvalsh(sym)
    lo = float(eigvals[0])
    hi = float(eigvals[-1])
    denom = max(lo + hi, floor)
    return 2.0 / denom


def richardson_step(
    P: np.ndarray,
    A: np.ndarray,
    B: np.ndarray,
    gamma: Optional[float] = None,
    precondition: bool = True,
) -> np.ndarray:
    """One preconditioned Richardson update towards ``P A = B``.

    Parameters
    ----------
    P:
        Current iterate, shape ``(d, m)``.
    A:
        Symmetric PSD system matrix, shape ``(m, m)``.
    B:
        Right-hand side, shape ``(d, m)``.
    gamma:
        Step size; computed by :func:`optimal_step_size` when omitted.
    precondition:
        Apply the column-norm diagonal preconditioner (Eq.(27)).  The
        ablation benchmark toggles this flag.

    Returns
    -------
    The updated iterate, same shape as ``P``.
    """
    P = np.asarray(P, dtype=float)
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    if P.shape != B.shape:
        raise ConfigurationError(
            f"P and B must share a shape, got {P.shape} vs {B.shape}"
        )
    if A.shape != (P.shape[1], P.shape[1]):
        raise ConfigurationError(
            f"A must be ({P.shape[1]}, {P.shape[1]}), got {A.shape}"
        )
    if gamma is None:
        gamma = optimal_step_size(A)
    residual = P @ A - B
    if precondition:
        diag = column_norm_preconditioner(A)
        residual = residual / diag[np.newaxis, :]
    return P - gamma * residual


@dataclass
class RichardsonResult:
    """Outcome of :func:`richardson_solve`.

    Attributes
    ----------
    solution:
        Final iterate.
    n_iterations:
        Number of update steps performed.
    residual_norm:
        Frobenius norm of ``P A - B`` at the final iterate.
    converged:
        Whether the residual tolerance was met within the iteration cap.
    """

    solution: np.ndarray
    n_iterations: int
    residual_norm: float
    converged: bool


def richardson_solve(
    A: np.ndarray,
    B: np.ndarray,
    P0: Optional[np.ndarray] = None,
    tol: float = 1e-10,
    max_iter: int = 10_000,
    precondition: bool = True,
) -> RichardsonResult:
    """Iterate :func:`richardson_step` until ``‖P A − B‖_F <= tol``.

    Used by tests to confirm the single-step update moves towards the
    least-squares solution, and available to callers who prefer an
    inverse-free solve of ``P A = B`` for symmetric PSD ``A``.
    """
    A = np.asarray(A, dtype=float)
    B = np.asarray(B, dtype=float)
    if P0 is None:
        P = np.zeros_like(B)
    else:
        P = np.array(P0, dtype=float, copy=True)
    gamma = optimal_step_size(A)
    residual_norm = float(np.linalg.norm(P @ A - B))
    n = 0
    while residual_norm > tol and n < max_iter:
        P = richardson_step(P, A, B, gamma=gamma, precondition=precondition)
        residual_norm = float(np.linalg.norm(P @ A - B))
        n += 1
    return RichardsonResult(
        solution=P,
        n_iterations=n,
        residual_norm=residual_norm,
        converged=residual_norm <= tol,
    )
