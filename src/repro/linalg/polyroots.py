"""Real-root finding for low-degree polynomials.

The projection step of RPC learning solves the first-order condition
Eq.(20), ``f'(s)^T (x - f(s)) = 0``, which for a cubic Bezier curve is a
*quintic* polynomial in ``s``.  The paper mentions the Jenkins–Traub
algorithm as one option; this module provides the equivalent facility
using the companion-matrix eigenvalue method (the same approach used by
``numpy.roots``) followed by a couple of Newton polishing steps, plus
helpers to keep only real roots inside a bracket.

These routines power the ``projection="roots"`` solver option of the
RPC model, which serves both as a correctness oracle for Golden Section
Search in tests and as an ablation axis in the benchmarks.

Two tiers are provided.  The scalar tier (:func:`real_roots`,
:func:`minimize_polynomial_on_interval`) handles one polynomial at a
time and is kept as the reference implementation.  The batched tier
(:func:`batched_real_roots`, :func:`batched_minimize_on_interval`)
solves ``n`` same-degree polynomials with **one** stacked
companion-matrix ``eigvals`` call instead of a Python loop — this is
what makes ``projection="roots"`` viable as a serving-path solver on
large batches.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.linalg.horner import horner_batch


def real_roots(
    coeffs: np.ndarray,
    imag_tol: float = 1e-9,
    lead_tol: float = 1e-12,
) -> np.ndarray:
    """Real roots of a polynomial given *ascending-power* coefficients.

    Parameters
    ----------
    coeffs:
        ``coeffs[k]`` multiplies ``s**k``.  Trailing (highest-order)
        zeros are trimmed automatically so a degenerate quintic that is
        really a cubic does not poison the companion matrix.
    imag_tol:
        Roots whose imaginary part is below this threshold (in absolute
        value) are treated as real.
    lead_tol:
        Relative deflation threshold: a leading coefficient whose
        magnitude is at most ``lead_tol * max|coeffs|`` is treated as
        zero and the polynomial as one degree lower.  The companion
        matrix divides every other coefficient by the leading one, so a
        quartic whose top coefficient underflowed to ~1e-18 of its
        cubic term would otherwise produce one enormous spurious root
        and three garbage ones instead of the cubic's actual roots.
        ``0`` disables deflation (exact-zero trimming still applies).

    Returns
    -------
    Sorted 1-D array of real roots (possibly empty).
    """
    coeffs = np.asarray(coeffs, dtype=float).ravel()
    if coeffs.size == 0:
        raise ConfigurationError("empty coefficient vector")
    # Trim trailing zero coefficients (highest powers).
    nz = np.nonzero(np.abs(coeffs) > 0.0)[0]
    if nz.size == 0:
        # The zero polynomial: every point is a root; callers treat this
        # as "no informative root".
        return np.empty(0)
    coeffs = coeffs[: nz[-1] + 1]
    # Relative deflation of near-degenerate leading coefficients.
    if lead_tol > 0.0 and coeffs.size > 1:
        scale = np.max(np.abs(coeffs))
        while coeffs.size > 1 and abs(coeffs[-1]) <= lead_tol * scale:
            coeffs = coeffs[:-1]
    if coeffs.size == 1:
        return np.empty(0)  # Non-zero constant: no roots.
    # numpy.roots wants descending powers.
    roots = np.roots(coeffs[::-1])
    mask = np.abs(roots.imag) <= imag_tol
    return np.sort(roots[mask].real)


def real_roots_in_interval(
    coeffs: np.ndarray,
    lo: float = 0.0,
    hi: float = 1.0,
    imag_tol: float = 1e-9,
    boundary_tol: float = 1e-12,
) -> np.ndarray:
    """Real roots restricted to ``[lo, hi]`` (inclusive, with tolerance).

    Roots within ``boundary_tol`` of an endpoint are clipped onto the
    endpoint rather than discarded — the projection index of a point
    near the curve's end legitimately sits at ``s = 0`` or ``s = 1``.
    """
    roots = real_roots(coeffs, imag_tol=imag_tol)
    if roots.size == 0:
        return roots
    clipped = np.clip(roots, lo, hi)
    keep = np.abs(clipped - roots) <= boundary_tol
    return np.unique(clipped[keep])


def newton_polish(
    coeffs: np.ndarray,
    roots: np.ndarray,
    n_steps: int = 3,
) -> np.ndarray:
    """Refine approximate roots with a few Newton iterations.

    Companion-matrix eigenvalues are accurate to roughly machine
    precision times the condition number of the balancing; two or three
    Newton steps typically recover full double accuracy.  Steps that
    would diverge (zero derivative) leave the root unchanged.
    """
    coeffs = np.asarray(coeffs, dtype=float).ravel()
    deriv = polynomial_derivative(coeffs)
    polished = np.array(roots, dtype=float, copy=True)
    for _ in range(n_steps):
        p = polyval_ascending(coeffs, polished)
        dp = polyval_ascending(deriv, polished)
        safe = np.abs(dp) > 1e-300
        step = np.zeros_like(polished)
        step[safe] = p[safe] / dp[safe]
        polished -= step
    return polished


def polynomial_derivative(coeffs: np.ndarray) -> np.ndarray:
    """Ascending-power coefficients of the derivative polynomial."""
    coeffs = np.asarray(coeffs, dtype=float).ravel()
    if coeffs.size <= 1:
        return np.zeros(1)
    powers = np.arange(1, coeffs.size)
    return coeffs[1:] * powers


def polyval_ascending(coeffs: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Evaluate a polynomial with ascending-power coefficients (Horner)."""
    coeffs = np.asarray(coeffs, dtype=float).ravel()
    x = np.asarray(x, dtype=float)
    result = np.full_like(x, coeffs[-1], dtype=float)
    for c in coeffs[-2::-1]:
        result = result * x + c
    return result


def polyval_ascending_batch(coeffs: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Row-wise Horner evaluation of ``n`` polynomials at ``n`` point sets.

    A thin alias of :func:`repro.linalg.horner.horner_batch` (the shared
    projection-engine kernel), kept under its historical name for the
    root-finding call sites in this module.

    Parameters
    ----------
    coeffs:
        Matrix of shape ``(n, m)``; row ``i`` holds the ascending-power
        coefficients of polynomial ``i``.
    x:
        Evaluation points of shape ``(n, k)`` — row ``i`` is evaluated
        under polynomial ``i`` (broadcasting a shared ``(k,)`` vector is
        also accepted).

    Returns
    -------
    Values of shape ``(n, k)``.
    """
    return horner_batch(coeffs, x)


def batched_real_roots(
    coeffs: np.ndarray,
    imag_tol: float = 1e-9,
    lead_tol: float = 1e-12,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Real roots of ``n`` same-degree polynomials via stacked companions.

    All rows are trimmed to the common effective degree (the highest
    power with a non-zero coefficient in *any* row).  Rows whose own
    leading coefficient is degenerate relative to their magnitude are
    **deflated**: a near-cubic quartic (top coefficient underflowed to
    ``~lead_tol`` of the row's largest) is solved as the cubic it really
    is, through a smaller stacked companion batch grouped by effective
    degree, instead of building a companion matrix poisoned by the
    division by a vanishing leading coefficient.

    Parameters
    ----------
    coeffs:
        Matrix of shape ``(n, m)``, ascending powers per row.
    imag_tol:
        Eigenvalues with ``|imag| <= imag_tol`` count as real roots.
    lead_tol:
        Coefficient ``coeffs[i, j]`` is negligible when ``|coeffs[i, j]|
        <= lead_tol * max_j |coeffs[i, j]|``; the row's effective degree
        is its highest non-negligible power.

    Returns
    -------
    (roots, valid, fallback):
        ``roots`` of shape ``(n, deg)`` (junk where invalid), a boolean
        ``valid`` mask of the same shape marking genuine real roots, and
        a boolean ``fallback`` mask of shape ``(n,)``.  The fallback
        mask is now always ``False`` — degenerate rows are deflated in
        batch rather than handed back for a scalar re-solve; the third
        return survives for call-site compatibility.
    """
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=float))
    n, m = coeffs.shape
    if m == 0:
        raise ConfigurationError("empty coefficient matrix")
    # Common trim: drop trailing columns that are zero in every row.
    nz_cols = np.nonzero(np.any(coeffs != 0.0, axis=0))[0]
    if nz_cols.size == 0 or nz_cols[-1] == 0:
        # Constant (or identically zero) polynomials: no informative roots.
        return (
            np.zeros((n, 0)),
            np.zeros((n, 0), dtype=bool),
            np.zeros(n, dtype=bool),
        )
    coeffs = coeffs[:, : nz_cols[-1] + 1]
    deg = coeffs.shape[1] - 1

    # Per-row effective degree: highest power whose coefficient is not
    # negligible relative to the row's own magnitude.  -1 marks a row
    # that is numerically the zero polynomial (no informative roots).
    scale = np.max(np.abs(coeffs), axis=1)
    notsmall = np.abs(coeffs) > lead_tol * scale[:, np.newaxis]
    has_any = notsmall.any(axis=1)
    eff = np.where(has_any, deg - np.argmax(notsmall[:, ::-1], axis=1), -1)

    roots = np.zeros((n, deg))
    valid = np.zeros((n, deg), dtype=bool)

    def _solve_companions(rows: np.ndarray, d: int) -> None:
        sub = coeffs[rows, : d + 1]
        monic = sub[:, :-1] / sub[:, -1, np.newaxis]
        g = monic.shape[0]
        comp = np.zeros((g, d, d))
        idx = np.arange(d - 1)
        comp[:, idx + 1, idx] = 1.0
        comp[:, :, -1] = -monic
        eig = np.linalg.eigvals(comp)  # (g, d), complex
        roots[rows, :d] = eig.real
        valid[rows, :d] = np.abs(eig.imag) <= imag_tol

    full = eff == deg
    if np.any(full):
        _solve_companions(full, deg)
    degenerate_degrees = np.unique(eff[(eff < deg) & (eff >= 1)])
    for d in degenerate_degrees:
        # Deflate: solve the row as the degree it effectively has,
        # dropping the negligible top coefficients.  The tiny truncated
        # terms perturb the true roots by O(lead_tol); callers polish
        # with Newton steps on the full polynomial afterwards.
        _solve_companions(eff == d, int(d))
    return roots, valid, np.zeros(n, dtype=bool)


def batched_minimize_on_interval(
    coeffs: np.ndarray,
    lo: float = 0.0,
    hi: float = 1.0,
    imag_tol: float = 1e-9,
    boundary_tol: float = 1e-12,
    newton_steps: int = 3,
    root_solver=None,
) -> np.ndarray:
    """Row-wise global minimiser of ``n`` polynomials on ``[lo, hi]``.

    The batched counterpart of :func:`minimize_polynomial_on_interval`:
    stationary points come from one stacked companion-matrix eigenvalue
    call (or a pluggable solver), are polished by vectorised Newton
    steps, and the argmin per row is taken over ``{lo, hi}`` plus the
    row's in-interval stationary points.

    Parameters
    ----------
    coeffs:
        Matrix of shape ``(n, m)``, ascending-power coefficients of the
        polynomials to minimise (one per row).
    lo, hi:
        Interval endpoints.
    imag_tol, boundary_tol:
        Real-root classification tolerances, as in
        :func:`real_roots_in_interval`.
    newton_steps:
        Newton polishing iterations applied to the stationary points.
    root_solver:
        Optional replacement for :func:`batched_real_roots`, called as
        ``root_solver(deriv, lo, hi) -> (roots, valid, fallback)`` with
        the same return convention.  This keeps candidate clipping,
        Newton polish and the final argmin byte-for-byte shared between
        the eigvals reference and alternative backends (e.g. the
        closed-form solver in :mod:`repro.linalg.closedform`), so
        backend agreement is structural rather than accidental.

    Returns
    -------
    Array of shape ``(n,)``: the per-row minimiser in ``[lo, hi]``.
    """
    coeffs = np.atleast_2d(np.asarray(coeffs, dtype=float))
    n, m = coeffs.shape
    powers = np.arange(1, m)
    deriv = coeffs[:, 1:] * powers[np.newaxis, :] if m > 1 else np.zeros((n, 1))

    if root_solver is None:
        roots, valid, fallback = batched_real_roots(deriv, imag_tol=imag_tol)
    else:
        roots, valid, fallback = root_solver(deriv, lo, hi)

    out = np.empty(n)
    if roots.shape[1] == 0:
        # No stationary points anywhere: compare the endpoints only.
        endpoints = np.array([lo, hi])
        values = polyval_ascending_batch(coeffs, endpoints)
        out[:] = endpoints[np.argmin(values, axis=1)]
    else:
        # Restrict to the interval (clipping near-boundary roots onto
        # the endpoints, as the scalar path does), then polish.
        clipped = np.clip(roots, lo, hi)
        valid = valid & (np.abs(clipped - roots) <= boundary_tol)
        polished = np.where(valid, clipped, lo)
        if newton_steps > 0 and m > 2:
            dderiv = deriv[:, 1:] * powers[np.newaxis, : m - 2]
            for _ in range(newton_steps):
                p = polyval_ascending_batch(deriv, polished)
                dp = polyval_ascending_batch(dderiv, polished)
                safe = np.abs(dp) > 1e-300
                step = np.where(safe, p / np.where(safe, dp, 1.0), 0.0)
                polished = polished - step
        polished = np.clip(polished, lo, hi)

        candidates = np.concatenate(
            [polished, np.full((n, 1), lo), np.full((n, 1), hi)], axis=1
        )
        values = polyval_ascending_batch(coeffs, candidates)
        values[:, : roots.shape[1]][~valid] = np.inf
        out = candidates[np.arange(n), np.argmin(values, axis=1)]

    if np.any(fallback):
        for i in np.nonzero(fallback)[0]:
            out[i] = minimize_polynomial_on_interval(coeffs[i], lo, hi)
    return out


def minimize_polynomial_on_interval(
    coeffs: np.ndarray,
    lo: float = 0.0,
    hi: float = 1.0,
    derivative_coeffs: Optional[np.ndarray] = None,
) -> float:
    """Global minimiser of a polynomial on a closed interval.

    Evaluates the polynomial at the interval endpoints and at every real
    stationary point inside the interval, returning the argmin.  This is
    exact (up to root-finding accuracy) for the degree-6 squared-distance
    polynomials arising from cubic Bezier projection.
    """
    coeffs = np.asarray(coeffs, dtype=float).ravel()
    if derivative_coeffs is None:
        derivative_coeffs = polynomial_derivative(coeffs)
    candidates = [lo, hi]
    stationary = real_roots_in_interval(derivative_coeffs, lo, hi)
    if stationary.size:
        stationary = newton_polish(derivative_coeffs, stationary)
        stationary = np.clip(stationary, lo, hi)
        candidates.extend(stationary.tolist())
    candidates_arr = np.asarray(candidates, dtype=float)
    values = polyval_ascending(coeffs, candidates_arr)
    return float(candidates_arr[int(np.argmin(values))])
