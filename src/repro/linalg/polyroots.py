"""Real-root finding for low-degree polynomials.

The projection step of RPC learning solves the first-order condition
Eq.(20), ``f'(s)^T (x - f(s)) = 0``, which for a cubic Bezier curve is a
*quintic* polynomial in ``s``.  The paper mentions the Jenkins–Traub
algorithm as one option; this module provides the equivalent facility
using the companion-matrix eigenvalue method (the same approach used by
``numpy.roots``) followed by a couple of Newton polishing steps, plus
helpers to keep only real roots inside a bracket.

These routines power the ``projection="roots"`` solver option of the
RPC model, which serves both as a correctness oracle for Golden Section
Search in tests and as an ablation axis in the benchmarks.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.exceptions import ConfigurationError


def real_roots(
    coeffs: np.ndarray,
    imag_tol: float = 1e-9,
) -> np.ndarray:
    """Real roots of a polynomial given *ascending-power* coefficients.

    Parameters
    ----------
    coeffs:
        ``coeffs[k]`` multiplies ``s**k``.  Trailing (highest-order)
        zeros are trimmed automatically so a degenerate quintic that is
        really a cubic does not poison the companion matrix.
    imag_tol:
        Roots whose imaginary part is below this threshold (in absolute
        value) are treated as real.

    Returns
    -------
    Sorted 1-D array of real roots (possibly empty).
    """
    coeffs = np.asarray(coeffs, dtype=float).ravel()
    if coeffs.size == 0:
        raise ConfigurationError("empty coefficient vector")
    # Trim trailing zero coefficients (highest powers).
    nz = np.nonzero(np.abs(coeffs) > 0.0)[0]
    if nz.size == 0:
        # The zero polynomial: every point is a root; callers treat this
        # as "no informative root".
        return np.empty(0)
    coeffs = coeffs[: nz[-1] + 1]
    if coeffs.size == 1:
        return np.empty(0)  # Non-zero constant: no roots.
    # numpy.roots wants descending powers.
    roots = np.roots(coeffs[::-1])
    mask = np.abs(roots.imag) <= imag_tol
    return np.sort(roots[mask].real)


def real_roots_in_interval(
    coeffs: np.ndarray,
    lo: float = 0.0,
    hi: float = 1.0,
    imag_tol: float = 1e-9,
    boundary_tol: float = 1e-12,
) -> np.ndarray:
    """Real roots restricted to ``[lo, hi]`` (inclusive, with tolerance).

    Roots within ``boundary_tol`` of an endpoint are clipped onto the
    endpoint rather than discarded — the projection index of a point
    near the curve's end legitimately sits at ``s = 0`` or ``s = 1``.
    """
    roots = real_roots(coeffs, imag_tol=imag_tol)
    if roots.size == 0:
        return roots
    clipped = np.clip(roots, lo, hi)
    keep = np.abs(clipped - roots) <= boundary_tol
    return np.unique(clipped[keep])


def newton_polish(
    coeffs: np.ndarray,
    roots: np.ndarray,
    n_steps: int = 3,
) -> np.ndarray:
    """Refine approximate roots with a few Newton iterations.

    Companion-matrix eigenvalues are accurate to roughly machine
    precision times the condition number of the balancing; two or three
    Newton steps typically recover full double accuracy.  Steps that
    would diverge (zero derivative) leave the root unchanged.
    """
    coeffs = np.asarray(coeffs, dtype=float).ravel()
    deriv = polynomial_derivative(coeffs)
    polished = np.array(roots, dtype=float, copy=True)
    for _ in range(n_steps):
        p = polyval_ascending(coeffs, polished)
        dp = polyval_ascending(deriv, polished)
        safe = np.abs(dp) > 1e-300
        step = np.zeros_like(polished)
        step[safe] = p[safe] / dp[safe]
        polished -= step
    return polished


def polynomial_derivative(coeffs: np.ndarray) -> np.ndarray:
    """Ascending-power coefficients of the derivative polynomial."""
    coeffs = np.asarray(coeffs, dtype=float).ravel()
    if coeffs.size <= 1:
        return np.zeros(1)
    powers = np.arange(1, coeffs.size)
    return coeffs[1:] * powers


def polyval_ascending(coeffs: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Evaluate a polynomial with ascending-power coefficients (Horner)."""
    coeffs = np.asarray(coeffs, dtype=float).ravel()
    x = np.asarray(x, dtype=float)
    result = np.full_like(x, coeffs[-1], dtype=float)
    for c in coeffs[-2::-1]:
        result = result * x + c
    return result


def minimize_polynomial_on_interval(
    coeffs: np.ndarray,
    lo: float = 0.0,
    hi: float = 1.0,
    derivative_coeffs: Optional[np.ndarray] = None,
) -> float:
    """Global minimiser of a polynomial on a closed interval.

    Evaluates the polynomial at the interval endpoints and at every real
    stationary point inside the interval, returning the argmin.  This is
    exact (up to root-finding accuracy) for the degree-6 squared-distance
    polynomials arising from cubic Bezier projection.
    """
    coeffs = np.asarray(coeffs, dtype=float).ravel()
    if derivative_coeffs is None:
        derivative_coeffs = polynomial_derivative(coeffs)
    candidates = [lo, hi]
    stationary = real_roots_in_interval(derivative_coeffs, lo, hi)
    if stationary.size:
        stationary = newton_polish(derivative_coeffs, stationary)
        stationary = np.clip(stationary, lo, hi)
        candidates.extend(stationary.tolist())
    candidates_arr = np.asarray(candidates, dtype=float)
    values = polyval_ascending(coeffs, candidates_arr)
    return float(candidates_arr[int(np.argmin(values))])
