"""Structured JSON-lines access log for the scoring daemon.

One line per handled request — request id, route, status, duration,
per-stage timings, micro-batch id — so an operator can grep a client's
reported ``X-Request-Id`` and see exactly where its time went without
the trace having to still be in the debug ring.

Multi-process safety: under ``--workers N`` every worker appends to
the *same* file.  Each record is serialised to one bytes object and
written with a single ``write`` call on an ``O_APPEND`` descriptor;
for lines under ``PIPE_BUF`` (the overwhelmingly common case — a
record is a few hundred bytes) POSIX appends are atomic, so lines
from different workers interleave whole, never torn.  A per-process
lock serialises threads within a worker.
"""

from __future__ import annotations

import json
import sys
import threading


class AccessLog:
    """Append-only JSON-lines writer; ``"-"`` logs to stderr.

    Stderr (not stdout) keeps log lines separable from the daemon's
    boot messages, which the ops tooling parses for the bound address.
    """

    def __init__(self, path: str):
        self.path = str(path)
        self._lock = threading.Lock()
        if self.path == "-":
            self._fh = None
        else:
            # Line-buffered append; opened once so rotation-by-rename
            # keeps old lines intact (reopen requires a restart or a
            # copytruncate-style rotation, documented in docs/observability.md).
            self._fh = open(  # noqa: SIM115 - lifetime = daemon lifetime
                self.path, "a", encoding="utf-8", buffering=1
            )

    def write(self, record: dict) -> None:
        """Append one record as a single JSON line (never raises)."""
        try:
            line = json.dumps(record, separators=(",", ":")) + "\n"
        except (TypeError, ValueError):
            return  # a log line must never take a request down
        with self._lock:
            try:
                if self._fh is None:
                    sys.stderr.write(line)
                    sys.stderr.flush()
                else:
                    self._fh.write(line)
            except (OSError, ValueError):
                pass  # disk full / closed stream: drop the line, serve on

    def close(self) -> None:
        if self._fh is not None:
            try:
                self._fh.close()
            except OSError:
                pass
