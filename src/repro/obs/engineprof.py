"""Solver-level profiling for the projection engine.

The geometry engine (:mod:`repro.geometry.engine`) is the daemon's hot
path, but its internal phases — coarse grid scan, batched GSS, Newton
refinement, exact root enumeration — were invisible from the outside.
This module lets a caller scope an :class:`EngineProfile` over a
region of work; while one is active, the engine's solver methods add
their wall time and row counts to it.

The activation mechanism is a :mod:`contextvars` variable rather than
a parameter threaded through every call: the engine sits under many
entry points (serving, fitting, the CLI) and only the daemon wants
profiles.  The cost to everyone else is exactly one C-level
``ContextVar.get`` and an ``is None`` branch per solver *call* (not
per row or per iteration) — unmeasurable next to the solve itself.

Thread model: ``score_batch(n_jobs=N)`` fans chunks out to pool
threads, which do **not** inherit the submitting thread's context, so
:func:`current` would return ``None`` there and chunked work would go
uncounted.  The dispatch loop therefore captures the active profile
and re-activates it inside each worker (see
:func:`repro.serving.batch.score_batch`); :class:`EngineProfile` takes
a lock per update so concurrent chunks accumulate exactly.
"""

from __future__ import annotations

import contextvars
import threading
from contextlib import contextmanager
from typing import Dict, Optional

#: Engine phases, in pipeline order.  ``grid_scan`` is the coarse
#: bracketing scan, ``gss`` the batched golden-section solve,
#: ``newton`` covers warm-start refinement and final polish, and
#: ``roots`` the exact companion-matrix path.
ENGINE_PHASES = ("grid_scan", "gss", "newton", "roots")

_ACTIVE: contextvars.ContextVar[Optional["EngineProfile"]] = (
    contextvars.ContextVar("repro_engine_profile", default=None)
)


def current() -> Optional["EngineProfile"]:
    """The profile scoped to this context, or ``None`` (the fast path)."""
    return _ACTIVE.get()


@contextmanager
def activate(profile: "EngineProfile"):
    """Scope ``profile`` over a region; restores the previous one after.

    Re-entrant in the sense that a nested activation simply shadows
    the outer profile for its duration — the engine always feeds the
    innermost one.
    """
    token = _ACTIVE.set(profile)
    try:
        yield profile
    finally:
        _ACTIVE.reset(token)


class EngineProfile:
    """Accumulated solver phases and counters for one scoring call.

    All methods are thread-safe (one small lock): with
    ``score_batch(n_jobs=N)`` several chunk threads feed the same
    profile concurrently, and the fleet-metrics mirror requires exact
    totals.
    """

    __slots__ = ("_lock", "phase_seconds", "phase_rows", "counters")

    def __init__(self):
        self._lock = threading.Lock()
        self.phase_seconds: Dict[str, float] = {}
        self.phase_rows: Dict[str, int] = {}
        self.counters: Dict[str, int] = {}

    def add_phase(self, name: str, seconds: float, rows: int = 0) -> None:
        """Add one solver call's wall time (and rows) to a phase."""
        with self._lock:
            self.phase_seconds[name] = (
                self.phase_seconds.get(name, 0.0) + float(seconds)
            )
            if rows:
                self.phase_rows[name] = (
                    self.phase_rows.get(name, 0) + int(rows)
                )

    def count(self, name: str, n: int = 1) -> None:
        """Bump a named counter (Newton iterations, warm-start hits...)."""
        if n:
            with self._lock:
                self.counters[name] = self.counters.get(name, 0) + int(n)

    def totals(self) -> Dict[str, float]:
        """Flat cell-keyed totals for the fleet-metrics mirror.

        Phase wall time maps to ``<phase>_seconds`` and row counts to
        ``<phase>_rows`` (matching
        :data:`repro.server.metrics.ENGINE_CELL_KEYS`); named counters
        pass through as-is.  Empty when the profile saw no work.
        """
        with self._lock:
            out: Dict[str, float] = {}
            for name, seconds in self.phase_seconds.items():
                out[f"{name}_seconds"] = seconds
            for name, rows in self.phase_rows.items():
                out[f"{name}_rows"] = float(rows)
            for name, n in self.counters.items():
                out[name] = float(n)
            return out

    def snapshot(self) -> dict:
        """JSON-serialisable view: phase ms/rows plus raw counters."""
        with self._lock:
            return {
                "phases_ms": {
                    name: round(seconds * 1e3, 4)
                    for name, seconds in sorted(self.phase_seconds.items())
                },
                "phase_rows": dict(sorted(self.phase_rows.items())),
                "counters": dict(sorted(self.counters.items())),
            }
