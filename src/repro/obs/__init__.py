"""Observability: request tracing, engine profiling, exposition.

The serving stack (PRs 2-6) grew micro-batching, admission control and
a pre-forked worker fleet, but its only window was a JSON counter
snapshot — nobody could say where one request's 40 ms went.  This
package is the answer, in three stdlib-only pieces:

* :mod:`repro.obs.trace` — per-request :class:`Trace`/:class:`Span`
  timings (queue wait vs batch execute vs serialize), kept in a
  :class:`Tracer` ring buffer keyed by ``X-Request-Id`` and served via
  ``GET /v1/debug/trace/<id>``, plus a JSON-lines access log.  When
  tracing is off the request path sees only :data:`NULL_TRACE`, a
  shared no-op whose span context manager allocates nothing.
* :mod:`repro.obs.engineprof` — solver-level counters (rows per
  solver, Newton iterations, warm-start bracket hits) accumulated into
  a contextvar-scoped :class:`EngineProfile`; the geometry engine
  checks the contextvar once per solver call, so library users who
  never activate a profile pay a single C-level lookup.
* :mod:`repro.obs.histogram` / :mod:`repro.obs.prometheus` — fixed
  log-spaced latency buckets that sum exactly across worker processes,
  and a Prometheus text-format renderer with a ``promtool check
  metrics``-style linter for CI.

Nothing here imports the server or geometry packages; the dependency
arrow points only inward.
"""

from repro.obs.accesslog import AccessLog
from repro.obs.engineprof import (
    ENGINE_PHASES,
    EngineProfile,
    activate,
    current,
)
from repro.obs.histogram import (
    BATCH_FILL_BUCKETS,
    LATENCY_BUCKET_BOUNDS,
    N_LATENCY_BUCKETS,
    LatencyHistogram,
    bucket_index,
    percentile_from_buckets,
)
from repro.obs.prometheus import lint_exposition, render_exposition
from repro.obs.trace import (
    NULL_TRACE,
    Span,
    Trace,
    TraceError,
    Tracer,
)

__all__ = [
    "AccessLog",
    "ENGINE_PHASES",
    "EngineProfile",
    "activate",
    "current",
    "BATCH_FILL_BUCKETS",
    "LATENCY_BUCKET_BOUNDS",
    "N_LATENCY_BUCKETS",
    "LatencyHistogram",
    "bucket_index",
    "percentile_from_buckets",
    "lint_exposition",
    "render_exposition",
    "NULL_TRACE",
    "Span",
    "Trace",
    "TraceError",
    "Tracer",
]
