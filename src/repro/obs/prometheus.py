"""Prometheus text exposition: a renderer and a stdlib-only linter.

``GET /metrics?format=prometheus`` turns the daemon's telemetry into
the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_ so a
standard scraper can ingest it — counters for requests/rows/errors,
gauges for admission and batching state, and histograms whose buckets
come straight from the shared store's fixed log-spaced layout
(:mod:`repro.obs.histogram`), so PromQL's ``histogram_quantile`` over
summed worker series computes the same estimate the JSON snapshot
reports.

The linter is the CI half: ``promtool check metrics`` is the
canonical validator but is not installable in this environment, so
:func:`lint_exposition` re-implements its load-bearing checks —
name/label syntax, ``TYPE``/``HELP`` placement, family grouping,
duplicate series, counter naming, and histogram invariants
(cumulative buckets, ``le="+Inf"`` present and equal to ``_count``).
It returns a list of problems; CI asserts the list is empty.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

_METRIC_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")

_VALID_TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
class MetricFamily:
    """One family: ``# HELP`` / ``# TYPE`` plus its sample lines."""

    def __init__(self, name: str, mtype: str, help_text: str):
        if not _METRIC_NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        if mtype not in _VALID_TYPES:
            raise ValueError(f"invalid metric type {mtype!r}")
        if mtype == "counter" and not name.endswith("_total"):
            # OpenMetrics naming; promtool warns on it, we refuse it.
            raise ValueError(
                f"counter {name!r} must end with '_total'"
            )
        self.name = name
        self.mtype = mtype
        self.help_text = help_text
        self._lines: List[str] = []

    def add_sample(
        self,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
        suffix: str = "",
    ) -> None:
        self._lines.append(
            f"{self.name}{suffix}{_render_labels(labels)} "
            f"{_format_value(value)}"
        )

    def add_histogram(
        self,
        bucket_counts: Sequence[float],
        total_sum: float,
        bounds: Sequence[float],
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Cumulative ``_bucket``/``_sum``/``_count`` series for one
        label set.  ``bucket_counts`` are per-bucket (not cumulative)
        with one trailing overflow bucket, as stored by
        :class:`~repro.obs.histogram.LatencyHistogram`."""
        if len(bucket_counts) != len(bounds) + 1:
            raise ValueError(
                f"expected {len(bounds) + 1} buckets "
                f"(finite bounds + overflow), got {len(bucket_counts)}"
            )
        labels = dict(labels or {})
        cumulative = 0.0
        for count, bound in zip(bucket_counts, bounds):
            cumulative += float(count)
            self.add_sample(
                cumulative,
                {**labels, "le": _format_bound(bound)},
                suffix="_bucket",
            )
        cumulative += float(bucket_counts[-1])
        self.add_sample(
            cumulative, {**labels, "le": "+Inf"}, suffix="_bucket"
        )
        self.add_sample(float(total_sum), labels, suffix="_sum")
        self.add_sample(cumulative, labels, suffix="_count")

    def render(self) -> str:
        head = (
            f"# HELP {self.name} {_escape_help(self.help_text)}\n"
            f"# TYPE {self.name} {self.mtype}\n"
        )
        return head + "".join(line + "\n" for line in self._lines)


def render_exposition(families: Sequence[MetricFamily]) -> str:
    """Families concatenated into one scrape body (trailing newline)."""
    return "".join(family.render() for family in families)


def _render_labels(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    parts = []
    for name, value in labels.items():
        if not _LABEL_NAME_RE.match(name):
            raise ValueError(f"invalid label name {name!r}")
        parts.append(f'{name}="{_escape_label(str(value))}"')
    return "{" + ",".join(parts) + "}"


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _format_bound(bound: float) -> str:
    return f"{float(bound):.6g}"


def _format_value(value: float) -> str:
    value = float(value)
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


# ----------------------------------------------------------------------
# Linting
# ----------------------------------------------------------------------
def lint_exposition(text: str) -> List[str]:
    """Validate a scrape body; returns problems (empty = clean).

    Covers the checks ``promtool check metrics`` fails or warns on
    that our renderer could plausibly violate; see the module
    docstring for the list.
    """
    problems: List[str] = []
    if text and not text.endswith("\n"):
        problems.append("exposition must end with a newline")
    types: Dict[str, str] = {}
    helps: Dict[str, str] = {}
    # name -> finished flag (samples must be contiguous per family)
    finished: Dict[str, bool] = {}
    current_family: Optional[str] = None
    series_seen = set()
    samples: List[Tuple[str, Dict[str, str], float, int]] = []

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: legal, ignored
            kind, name = parts[1], parts[2]
            if not _METRIC_NAME_RE.match(name):
                problems.append(
                    f"line {lineno}: invalid metric name {name!r} in "
                    f"{kind}"
                )
                continue
            target = types if kind == "TYPE" else helps
            if name in target:
                problems.append(
                    f"line {lineno}: duplicate {kind} for {name}"
                )
            if kind == "TYPE":
                mtype = parts[3].strip() if len(parts) > 3 else ""
                if mtype not in _VALID_TYPES:
                    problems.append(
                        f"line {lineno}: unknown type {mtype!r} for {name}"
                    )
                if any(base(sample[0]) == name for sample in samples):
                    problems.append(
                        f"line {lineno}: TYPE for {name} appears after "
                        f"its samples"
                    )
                types[name] = mtype
            else:
                helps[name] = parts[3] if len(parts) > 3 else ""
            continue
        parsed = _parse_sample(line)
        if parsed is None:
            problems.append(f"line {lineno}: unparseable sample {line!r}")
            continue
        name, labels, value = parsed
        family = base(name)
        if current_family is not None and family != current_family:
            finished[current_family] = True
        if finished.get(family):
            problems.append(
                f"line {lineno}: samples of {family} are not contiguous"
            )
        current_family = family
        key = (name, tuple(sorted(labels.items())))
        if key in series_seen:
            problems.append(
                f"line {lineno}: duplicate series {name}{labels}"
            )
        series_seen.add(key)
        samples.append((name, labels, value, lineno))

    problems.extend(_check_families(samples, types))
    return problems


def base(sample_name: str) -> str:
    """Family name of a sample line (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def _check_families(samples, types) -> List[str]:
    problems: List[str] = []
    for name, labels, value, lineno in samples:
        family = base(name)
        mtype = types.get(family) or types.get(name)
        if mtype is None:
            problems.append(
                f"line {lineno}: sample {name} has no TYPE declaration"
            )
            continue
        if mtype == "counter":
            if not base(name).endswith("_total"):
                problems.append(
                    f"line {lineno}: counter {name} should end in _total"
                )
            if value < 0:
                problems.append(
                    f"line {lineno}: counter {name} is negative"
                )
    # Histogram invariants, grouped by (family, non-le labels).
    hist_groups: Dict[Tuple[str, tuple], Dict[str, object]] = {}
    for name, labels, value, lineno in samples:
        family = base(name)
        if types.get(family) != "histogram":
            continue
        group_key = (
            family,
            tuple(
                sorted(
                    (k, v) for k, v in labels.items() if k != "le"
                )
            ),
        )
        group = hist_groups.setdefault(
            group_key, {"buckets": [], "sum": None, "count": None}
        )
        if name.endswith("_bucket"):
            group["buckets"].append((labels.get("le"), value, lineno))
        elif name.endswith("_sum"):
            group["sum"] = value
        elif name.endswith("_count"):
            group["count"] = value
    for (family, label_key), group in hist_groups.items():
        where = f"histogram {family}{dict(label_key)}"
        buckets = group["buckets"]
        if not buckets:
            problems.append(f"{where}: no _bucket series")
            continue
        inf_value = None
        previous = None
        previous_bound = -math.inf
        for le, value, lineno in buckets:
            if le is None:
                problems.append(
                    f"line {lineno}: {where}: _bucket without an "
                    f"'le' label"
                )
                continue
            bound = math.inf if le == "+Inf" else _parse_float(le)
            if bound is None:
                problems.append(
                    f"line {lineno}: {where}: bad le value {le!r}"
                )
                continue
            if bound <= previous_bound:
                problems.append(
                    f"line {lineno}: {where}: le values not ascending"
                )
            previous_bound = bound
            if previous is not None and value < previous:
                problems.append(
                    f"line {lineno}: {where}: bucket counts are not "
                    f"cumulative"
                )
            previous = value
            if le == "+Inf":
                inf_value = value
        if inf_value is None:
            problems.append(f'{where}: missing le="+Inf" bucket')
        if group["sum"] is None:
            problems.append(f"{where}: missing _sum")
        if group["count"] is None:
            problems.append(f"{where}: missing _count")
        elif inf_value is not None and group["count"] != inf_value:
            problems.append(
                f"{where}: _count ({group['count']}) != +Inf bucket "
                f"({inf_value})"
            )
    return problems


def _parse_sample(line: str):
    """``(name, labels, value)`` of one sample line, or ``None``."""
    rest = line.strip()
    match = re.match(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)", rest)
    if not match:
        return None
    name = match.group(1)
    rest = rest[match.end():]
    labels: Dict[str, str] = {}
    if rest.startswith("{"):
        end = _find_label_end(rest)
        if end is None:
            return None
        parsed = _parse_labels(rest[1:end])
        if parsed is None:
            return None
        labels = parsed
        rest = rest[end + 1:]
    fields = rest.split()
    if not fields or len(fields) > 2:  # value [timestamp]
        return None
    value = _parse_float(fields[0])
    if value is None:
        return None
    if len(fields) == 2 and _parse_float(fields[1]) is None:
        return None
    return name, labels, value


def _find_label_end(rest: str) -> Optional[int]:
    in_quotes = False
    escaped = False
    for i, ch in enumerate(rest):
        if i == 0:
            continue
        if escaped:
            escaped = False
        elif ch == "\\":
            escaped = True
        elif ch == '"':
            in_quotes = not in_quotes
        elif ch == "}" and not in_quotes:
            return i
    return None


def _parse_labels(body: str) -> Optional[Dict[str, str]]:
    labels: Dict[str, str] = {}
    rest = body.strip()
    while rest:
        match = re.match(r'^([a-zA-Z_][a-zA-Z0-9_]*)="', rest)
        if not match:
            return None
        name = match.group(1)
        i = match.end()
        value_chars = []
        while i < len(rest):
            ch = rest[i]
            if ch == "\\":
                if i + 1 >= len(rest):
                    return None
                nxt = rest[i + 1]
                value_chars.append(
                    {"n": "\n", "\\": "\\", '"': '"'}.get(nxt)
                )
                if value_chars[-1] is None:
                    return None
                i += 2
            elif ch == '"':
                break
            else:
                value_chars.append(ch)
                i += 1
        else:
            return None
        labels[name] = "".join(value_chars)
        rest = rest[i + 1:].lstrip()
        if rest.startswith(","):
            rest = rest[1:].lstrip()
        elif rest:
            return None
    return labels


def _parse_float(token: str) -> Optional[float]:
    if token == "+Inf":
        return math.inf
    if token == "-Inf":
        return -math.inf
    try:
        return float(token)
    except ValueError:
        return None
