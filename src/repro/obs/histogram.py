"""Fixed log-spaced latency buckets that merge exactly across workers.

The shared fleet-metrics store used to keep a bounded *ring* of raw
latency samples per worker and pool them at read time.  Rings have two
problems at fleet scale: a percentile over pooled rings is only as
representative as the ring length (old samples are overwritten, so a
burst on one worker silently weights the estimate), and the ring cells
dominate the store's footprint.  Histograms with **fixed, shared
bucket bounds** fix both: bucket counts are plain sums — adding two
workers' histograms *is* the fleet histogram, exactly, with no window
bias — and the same bounds render directly as Prometheus
``_bucket{le=...}`` series, so an external scraper aggregates shards
with the same arithmetic we use in-process.

The bounds are part of the on-disk shared-store layout and of the
exposition format, so they are pinned by :data:`HISTOGRAM_FORMAT_VERSION`
and golden-valued in the test suite: changing them silently would make
two differently-versioned workers disagree about what cell means what.

Bounds: 32 finite upper edges from 100 us to ~4.6 s, geometric ratio
``sqrt(2)`` (two buckets per octave — resolution ~+/-19%, plenty for
p50/p90/p99 on a serving path whose real spread is orders of
magnitude), plus one overflow bucket (``+Inf``).
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Tuple

import numpy as np

#: Version of the bucket layout.  Bump when :data:`LATENCY_BUCKET_BOUNDS`
#: (or :data:`BATCH_FILL_BUCKETS`) change, and teach the shared store a
#: migration; the test suite pins the bounds for the current version.
HISTOGRAM_FORMAT_VERSION = 1

#: Finite upper bucket edges in seconds, ascending.  A sample ``x``
#: lands in the first bucket with ``x <= edge`` (Prometheus ``le``
#: semantics); anything beyond the last edge lands in the overflow
#: bucket.
LATENCY_BUCKET_BOUNDS: Tuple[float, ...] = tuple(
    1e-4 * 2.0 ** (i / 2.0) for i in range(32)
)

#: Finite edges + the overflow (``+Inf``) bucket.
N_LATENCY_BUCKETS = len(LATENCY_BUCKET_BOUNDS) + 1

#: Upper edges (requests per executed micro-batch) of the batch-fill
#: distribution; powers of two because the adaptive window doubles.
BATCH_FILL_BUCKETS: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)

_BOUNDS_ARRAY = np.asarray(LATENCY_BUCKET_BOUNDS)


def bucket_index(seconds: float) -> int:
    """Index of the bucket a latency sample falls in (``le`` semantics)."""
    return int(np.searchsorted(_BOUNDS_ARRAY, seconds, side="left"))


def percentile_from_buckets(
    counts: Sequence[float],
    q: float,
    bounds: Sequence[float] = LATENCY_BUCKET_BOUNDS,
) -> float:
    """Estimate the ``q``-th percentile (0..100) from bucket counts.

    Linear interpolation inside the bucket holding the target rank —
    the same estimate ``histogram_quantile`` makes in PromQL, so the
    numbers an operator sees in Grafana match ``/metrics`` JSON.  The
    overflow bucket has no upper edge; ranks landing there report the
    largest finite edge (a known-undershoot, flagged in the docs).
    Returns ``0.0`` for an empty histogram.
    """
    counts = np.asarray(counts, dtype=float)
    total = counts.sum()
    if total <= 0:
        return 0.0
    rank = total * (float(q) / 100.0)
    cumulative = np.cumsum(counts)
    idx = int(np.searchsorted(cumulative, rank, side="left"))
    idx = min(idx, counts.size - 1)
    if idx >= len(bounds):  # overflow bucket: no finite upper edge
        return float(bounds[-1])
    upper = float(bounds[idx])
    lower = float(bounds[idx - 1]) if idx > 0 else 0.0
    in_bucket = counts[idx]
    if in_bucket <= 0:
        return upper
    prev_rank = cumulative[idx - 1] if idx > 0 else 0.0
    frac = (rank - prev_rank) / in_bucket
    return lower + (upper - lower) * min(max(frac, 0.0), 1.0)


class LatencyHistogram:
    """One endpoint's latency distribution in the shared bucket layout.

    Kept by :class:`~repro.server.metrics.ServerMetrics` per endpoint
    (single-process mode) and mirrored cell-for-cell into the shared
    store (fleet mode).  ``observe`` is one ``searchsorted`` over 32
    floats plus two adds — cheap enough for the request path.
    """

    __slots__ = ("counts", "sum")

    def __init__(self):
        self.counts = np.zeros(N_LATENCY_BUCKETS, dtype=np.float64)
        self.sum = 0.0

    def observe(self, seconds: float) -> None:
        self.counts[bucket_index(seconds)] += 1.0
        self.sum += float(seconds)

    @property
    def count(self) -> int:
        return int(self.counts.sum())

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        merged = LatencyHistogram()
        merged.counts = self.counts + other.counts
        merged.sum = self.sum + other.sum
        return merged

    def percentile(self, q: float) -> float:
        return percentile_from_buckets(self.counts, q)

    def percentiles_ms(self, qs: Iterable[int]) -> Dict[str, float]:
        """The ``latency_ms`` fragment of the ``/metrics`` payload."""
        return {
            f"p{q}": float(round(self.percentile(q) * 1e3, 3)) for q in qs
        }
