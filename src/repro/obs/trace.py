"""Per-request tracing: spans, a ring buffer, and trace retrieval.

One request through the daemon crosses half a dozen subsystems —
admission, body parse, registry reload check, micro-batch queue, the
merged engine call, serialization — on at least two threads when
batching is on.  A :class:`Trace` collects named :class:`Span`
timings along that path; the :class:`Tracer` decides which requests
get one (always / every N-th / only for the access log), keeps the
most recent traces in a ring buffer served by
``GET /v1/debug/trace/<request-id>``, and optionally writes one JSON
line per request to an access log.

Zero-cost when off
------------------
The request path never branches on "is tracing on": it always talks
to a trace object.  When the request is not traced that object is
:data:`NULL_TRACE` — a module-level singleton whose ``span`` returns
one shared no-op context manager — so the untraced hot path costs a
handful of attribute lookups and **zero** allocations.  The benchmark
gate in ``benchmarks/test_bench_serving_obs.py`` holds this to <=2%
of request latency.

Multi-worker retrieval
----------------------
Under ``--workers N`` the worker that served a request and the worker
that answers ``/v1/debug/trace/<id>`` are usually different
processes.  Recorded traces are therefore also spilled as small JSON
files into a directory shared by the fleet (under the pool's metrics
tempdir); retrieval checks the local ring first, then the spill
directory.  Spill files are pruned oldest-first so the directory is
bounded like the ring.

Thread-safety: a single request's trace is written by its handler
thread and (for batched requests) the batch leader thread, but the
leader writes strictly before it wakes the follower (the batch's
``done`` event provides the happens-before edge), so :class:`Trace`
itself needs no lock.  The :class:`Tracer` ring takes one.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import OrderedDict
from typing import Dict, List, Optional

#: Trace ids are used as spill file names; accept exactly the token
#: shape the daemon's ``X-Request-Id`` contract guarantees (no path
#: separators, bounded length) and refuse anything else on lookup.
_SAFE_ID_RE = re.compile(r"^[A-Za-z0-9._:-]{1,128}$")

#: Recognised sampling modes.
TRACE_MODES = ("off", "sampled", "on")

#: Default ring-buffer capacity (traces kept per worker).
DEFAULT_TRACE_BUFFER = 256

#: Default 1-in-N sampling rate for ``mode="sampled"``.
DEFAULT_SAMPLE_EVERY = 64

#: Prune the spill directory back to ring capacity once it exceeds
#: this multiple of it (amortises the directory listing).
_SPILL_SLACK = 2


class TraceError(ValueError):
    """Invalid tracer configuration (mode, sample rate, capacity)."""


class Span:
    """One named, timed stage of a request (perf_counter endpoints)."""

    __slots__ = ("name", "start", "end")

    def __init__(self, name: str, start: float, end: float):
        self.name = name
        self.start = start
        self.end = end


class _SpanTimer:
    """``with trace.span("parse"):`` — times the block into the trace."""

    __slots__ = ("_trace", "_name", "_start")

    def __init__(self, trace: "Trace", name: str):
        self._trace = trace
        self._name = name

    def __enter__(self) -> "_SpanTimer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._trace.spans.append(
            Span(self._name, self._start, time.perf_counter())
        )


class _NullSpan:
    """Shared no-op span context manager (the allocation-free path)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTrace:
    """No-op stand-in so the request path never branches on tracing.

    Every method returns immediately; ``span`` hands back one shared
    context manager.  There is exactly one instance,
    :data:`NULL_TRACE`.
    """

    __slots__ = ()
    enabled = False
    record = False

    def span(self, name: str) -> _NullSpan:
        return _NULL_SPAN

    def add_span(self, name: str, start: float, end: float) -> None:
        pass

    def set(self, key: str, value) -> None:
        pass

    def set_engine(self, snapshot: dict) -> None:
        pass


NULL_TRACE = NullTrace()


class Trace:
    """Span timings and annotations of one request.

    ``record`` distinguishes traces headed for the ring buffer from
    those created only so the access log can report per-stage timings
    (sampling missed, or tracing is off but ``--access-log`` is set).
    """

    __slots__ = (
        "request_id",
        "record",
        "started_wall",
        "t0",
        "spans",
        "meta",
        "endpoint",
        "path",
        "method",
        "status",
        "rows",
        "duration",
        "worker_slot",
    )

    enabled = True

    def __init__(self, request_id: str, record: bool = True):
        self.request_id = request_id
        self.record = record
        self.started_wall = time.time()
        self.t0 = time.perf_counter()
        self.spans: List[Span] = []
        self.meta: Dict[str, object] = {}
        self.endpoint: Optional[str] = None
        self.path: Optional[str] = None
        self.method: Optional[str] = None
        self.status: Optional[int] = None
        self.rows = 0
        self.duration: Optional[float] = None
        self.worker_slot: Optional[int] = None

    def span(self, name: str) -> _SpanTimer:
        """Context manager timing a block as one named span."""
        return _SpanTimer(self, name)

    def add_span(self, name: str, start: float, end: float) -> None:
        """Attach a span timed externally (``time.perf_counter`` pair) —
        how the batch leader writes queue/execute spans into its
        followers' traces."""
        self.spans.append(Span(name, start, end))

    def set(self, key: str, value) -> None:
        """Attach an annotation (e.g. the batch id) to the trace."""
        self.meta[key] = value

    def set_engine(self, snapshot: dict) -> None:
        """Attach an engine-profile snapshot (see ``EngineProfile``)."""
        self.meta["engine"] = snapshot

    def stages_ms(self) -> Dict[str, float]:
        """Total milliseconds per span name (names may repeat)."""
        stages: Dict[str, float] = {}
        for span in self.spans:
            stages[span.name] = (
                stages.get(span.name, 0.0) + (span.end - span.start) * 1e3
            )
        return {name: round(ms, 4) for name, ms in stages.items()}

    def to_dict(self) -> dict:
        """The ``/v1/debug/trace/<id>`` payload (JSON-serialisable)."""
        payload = {
            "request_id": self.request_id,
            "ts": round(self.started_wall, 6),
            "method": self.method,
            "path": self.path,
            "endpoint": self.endpoint,
            "status": self.status,
            "rows": int(self.rows),
            "worker": self.worker_slot,
            "duration_ms": (
                None
                if self.duration is None
                else round(self.duration * 1e3, 4)
            ),
            "spans": [
                {
                    "name": span.name,
                    "start_ms": round((span.start - self.t0) * 1e3, 4),
                    "duration_ms": round((span.end - span.start) * 1e3, 4),
                }
                for span in self.spans
            ],
            "stages_ms": self.stages_ms(),
        }
        for key, value in self.meta.items():
            payload[key] = value
        return payload


class Tracer:
    """Decides which requests are traced; stores and serves the traces.

    Parameters
    ----------
    mode:
        ``"on"`` traces every request, ``"sampled"`` every
        ``sample_every``-th, ``"off"`` none — but when ``access_log``
        is set, *untraced* requests still get a throwaway
        :class:`Trace` (``record=False``) so every access-log line
        carries stage timings; only ring/spill storage follows the
        sampling decision.
    capacity:
        Ring-buffer size (most recent recorded traces kept in memory).
    spill_dir:
        Directory shared by the worker fleet; recorded traces are also
        written there as ``<request-id>.json`` so any worker can serve
        ``/v1/debug/trace/<id>``.  ``None`` keeps traces in-memory
        only (single-process mode).
    worker_slot:
        Stamped into every trace so an operator can see which worker
        served what.
    access_log:
        Optional :class:`~repro.obs.accesslog.AccessLog`.
    """

    def __init__(
        self,
        mode: str = "on",
        sample_every: int = DEFAULT_SAMPLE_EVERY,
        capacity: int = DEFAULT_TRACE_BUFFER,
        spill_dir: Optional[str] = None,
        worker_slot: Optional[int] = None,
        access_log=None,
    ):
        if mode not in TRACE_MODES:
            raise TraceError(
                f"trace mode must be one of {TRACE_MODES}, got {mode!r}"
            )
        if int(sample_every) < 1:
            raise TraceError(
                f"sample_every must be >= 1, got {sample_every}"
            )
        if int(capacity) < 1:
            raise TraceError(f"capacity must be >= 1, got {capacity}")
        self.mode = mode
        self.sample_every = int(sample_every)
        self.capacity = int(capacity)
        self.spill_dir = str(spill_dir) if spill_dir is not None else None
        self.worker_slot = worker_slot
        self.access_log = access_log
        self._lock = threading.Lock()
        self._ring: "OrderedDict[str, dict]" = OrderedDict()
        self._seen = 0
        self._spilled = 0

    # ------------------------------------------------------------------
    # Request-path API
    # ------------------------------------------------------------------
    def begin(self, request_id: str, record_ok: bool = True):
        """A :class:`Trace` for this request, or :data:`NULL_TRACE`.

        ``record_ok=False`` excludes the request from ring storage
        whatever the mode (the debug endpoint itself uses it, so that
        polling for a trace cannot evict the trace being polled for).
        """
        if not record_ok:
            record = False
        elif self.mode == "on":
            record = True
        elif self.mode == "sampled":
            with self._lock:
                n = self._seen
                self._seen += 1
            record = n % self.sample_every == 0
        else:
            record = False
        if not record and self.access_log is None:
            return NULL_TRACE
        trace = Trace(request_id, record=record)
        trace.worker_slot = self.worker_slot
        return trace

    def finish(
        self,
        trace: Trace,
        endpoint: str,
        path: str,
        method: str,
        status: int,
        rows: int = 0,
    ) -> None:
        """Seal a trace: stamp the outcome, store it, log it."""
        trace.endpoint = endpoint
        trace.path = path
        trace.method = method
        trace.status = int(status)
        trace.rows = int(rows)
        trace.duration = time.perf_counter() - trace.t0
        payload = trace.to_dict()
        if trace.record:
            with self._lock:
                # Latest wins on id collision (a client reusing ids
                # gets its most recent request, the useful one).
                self._ring.pop(trace.request_id, None)
                self._ring[trace.request_id] = payload
                while len(self._ring) > self.capacity:
                    self._ring.popitem(last=False)
            if self.spill_dir is not None:
                self._spill(trace.request_id, payload)
        if self.access_log is not None:
            batch = payload.get("batch")
            self.access_log.write(
                {
                    "ts": payload["ts"],
                    "request_id": trace.request_id,
                    "method": method,
                    "path": path,
                    "endpoint": endpoint,
                    "status": int(status),
                    "duration_ms": payload["duration_ms"],
                    "rows": int(rows),
                    "worker": self.worker_slot,
                    "batch_id": (
                        batch.get("id") if isinstance(batch, dict) else None
                    ),
                    "stages_ms": trace.stages_ms(),
                }
            )

    # ------------------------------------------------------------------
    # Retrieval
    # ------------------------------------------------------------------
    def get(self, request_id: str) -> Optional[dict]:
        """The recorded trace for ``request_id``, if still retained."""
        if not _SAFE_ID_RE.match(request_id or ""):
            return None
        with self._lock:
            payload = self._ring.get(request_id)
        if payload is not None:
            return payload
        if self.spill_dir is None:
            return None
        try:
            with open(
                os.path.join(self.spill_dir, request_id + ".json"),
                encoding="utf-8",
            ) as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return None

    def stats(self) -> dict:
        """Tracer gauges for the ``/metrics`` JSON payload."""
        with self._lock:
            buffered = len(self._ring)
        return {
            "mode": self.mode,
            "sample_every": self.sample_every,
            "capacity": self.capacity,
            "buffered": buffered,
            "access_log": self.access_log is not None,
        }

    # ------------------------------------------------------------------
    # Spill files (fleet-shared retrieval)
    # ------------------------------------------------------------------
    def _spill(self, request_id: str, payload: dict) -> None:
        final = os.path.join(self.spill_dir, request_id + ".json")
        tmp = f"{final}.{os.getpid()}.tmp"
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(payload, fh)
            os.replace(tmp, final)  # readers never see a partial file
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            return
        self._spilled += 1
        if self._spilled % 32 == 0:
            self._prune_spill()

    def _prune_spill(self) -> None:
        """Bound the spill directory: drop oldest beyond capacity."""
        try:
            entries = [
                entry
                for entry in os.scandir(self.spill_dir)
                if entry.name.endswith(".json")
            ]
        except OSError:
            return
        if len(entries) <= self.capacity * _SPILL_SLACK:
            return

        def _mtime(entry) -> float:
            try:
                return entry.stat().st_mtime
            except OSError:
                return 0.0

        entries.sort(key=_mtime)
        for entry in entries[: len(entries) - self.capacity]:
            try:
                os.unlink(entry.path)
            except OSError:
                pass
