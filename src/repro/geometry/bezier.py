"""General-degree Bezier curves in ``R^d``.

A :class:`BezierCurve` wraps a ``(d, k + 1)`` control-point matrix and
offers evaluation, derivatives, degree elevation, de Casteljau
subdivision, arc length, and projection of external points onto the
curve.  The RPC model (degree 3, constrained control points) is built
on top of this class; keeping the general machinery separate lets the
geometry be tested against classical Bezier identities independently of
the ranking semantics.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np
from scipy.integrate import quad

from repro.core.exceptions import ConfigurationError
from repro.geometry.bernstein import (
    bernstein_basis,
    bernstein_derivative_basis,
    bernstein_to_power_matrix,
    power_vector,
)
from repro.geometry.engine import ProjectionEngine, squared_distance_coefficients


class BezierCurve:
    """A Bezier curve ``f(s) = sum_r B_r^k(s) p_r`` on ``s in [0, 1]``.

    Parameters
    ----------
    control_points:
        Matrix of shape ``(d, k + 1)``: column ``r`` is the point
        ``p_r``.  The curve starts at column 0 and ends at column ``k``.
        (The paper's Eq.(15) uses the same column convention: ``P =
        (p0, p1, p2, p3)``.)
    """

    def __init__(self, control_points: np.ndarray):
        P = np.asarray(control_points, dtype=float)
        if P.ndim != 2:
            raise ConfigurationError(
                f"control_points must be a (d, k+1) matrix, got ndim={P.ndim}"
            )
        if P.shape[1] < 2:
            raise ConfigurationError(
                "a Bezier curve needs at least two control points "
                f"(degree >= 1), got {P.shape[1]}"
            )
        if not np.all(np.isfinite(P)):
            raise ConfigurationError("control_points contain NaN or inf")
        self._P = P

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def control_points(self) -> np.ndarray:
        """The ``(d, k + 1)`` control-point matrix (a defensive copy)."""
        return self._P.copy()

    @property
    def degree(self) -> int:
        """Polynomial degree ``k`` of the curve."""
        return self._P.shape[1] - 1

    @property
    def dimension(self) -> int:
        """Ambient dimension ``d``."""
        return self._P.shape[0]

    @property
    def start(self) -> np.ndarray:
        """Curve point at ``s = 0`` (equals the first control point)."""
        return self._P[:, 0].copy()

    @property
    def end(self) -> np.ndarray:
        """Curve point at ``s = 1`` (equals the last control point)."""
        return self._P[:, -1].copy()

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def __call__(self, s: np.ndarray) -> np.ndarray:
        """Evaluate the curve; returns shape ``(d, n)`` for 1-D ``s``."""
        return self.evaluate(s)

    def evaluate(self, s: np.ndarray) -> np.ndarray:
        """Evaluate ``f(s)`` for a vector of parameters.

        Parameters
        ----------
        s:
            Parameter values, shape ``(n,)`` (scalars are promoted).

        Returns
        -------
        Array of shape ``(d, n)``.
        """
        s = np.atleast_1d(np.asarray(s, dtype=float))
        basis = bernstein_basis(self.degree, s)  # (k+1, n)
        return self._P @ basis

    def evaluate_de_casteljau(self, s: float) -> np.ndarray:
        """Evaluate one parameter via the de Casteljau recurrence.

        Numerically the most stable evaluation; used in tests as an
        oracle for :meth:`evaluate`.
        """
        pts = self._P.copy()
        k = self.degree
        for level in range(k):
            pts[:, : k - level] = (1.0 - s) * pts[:, : k - level] + s * pts[
                :, 1 : k - level + 1
            ]
        return pts[:, 0].copy()

    def derivative_curve(self) -> "BezierCurve":
        """The hodograph: a degree ``k - 1`` Bezier curve equal to ``f'``.

        Eq.(17): ``f'(s) = k * sum_j B_j^{k-1}(s) (p_{j+1} - p_j)``.
        """
        k = self.degree
        if k == 0:
            raise ConfigurationError("degree-0 curve has no derivative curve")
        diff = k * (self._P[:, 1:] - self._P[:, :-1])
        return BezierCurve(diff) if k >= 2 else BezierCurve(
            np.column_stack([diff[:, 0], diff[:, 0]])
        )

    def derivative(self, s: np.ndarray) -> np.ndarray:
        """Evaluate ``f'(s)``; returns shape ``(d, n)``."""
        s = np.atleast_1d(np.asarray(s, dtype=float))
        dbasis = bernstein_derivative_basis(self.degree, s)
        return self._P @ dbasis

    # ------------------------------------------------------------------
    # Power-basis view
    # ------------------------------------------------------------------
    def power_coefficients(self) -> np.ndarray:
        """Coefficients ``C`` with ``f(s) = C z``, ``z = (1, s, ..., s^k)``.

        Returns shape ``(d, k + 1)``; column ``j`` multiplies ``s^j``.
        This is ``P M`` in the paper's notation.
        """
        M = bernstein_to_power_matrix(self.degree)
        return self._P @ M

    # ------------------------------------------------------------------
    # Geometric operations
    # ------------------------------------------------------------------
    def elevate_degree(self) -> "BezierCurve":
        """Return an equivalent curve of degree ``k + 1``.

        Degree elevation preserves the curve point-for-point; tests use
        it to check that geometric queries are representation
        independent.
        """
        k = self.degree
        P = self._P
        Q = np.empty((self.dimension, k + 2))
        Q[:, 0] = P[:, 0]
        Q[:, -1] = P[:, -1]
        for r in range(1, k + 1):
            w = r / (k + 1.0)
            Q[:, r] = w * P[:, r - 1] + (1.0 - w) * P[:, r]
        return BezierCurve(Q)

    def subdivide(self, s: float) -> Tuple["BezierCurve", "BezierCurve"]:
        """Split the curve at parameter ``s`` into two Bezier curves.

        Both halves are degree ``k``; their union traces exactly the
        original curve (left covers ``[0, s]``, right covers ``[s, 1]``).
        """
        if not 0.0 <= s <= 1.0:
            raise ConfigurationError(f"split parameter must lie in [0,1], got {s}")
        k = self.degree
        pts = self._P.copy()
        left = np.empty_like(self._P)
        right = np.empty_like(self._P)
        left[:, 0] = pts[:, 0]
        right[:, k] = pts[:, k]
        for level in range(k):
            pts[:, : k - level] = (1.0 - s) * pts[:, : k - level] + s * pts[
                :, 1 : k - level + 1
            ]
            left[:, level + 1] = pts[:, 0]
            right[:, k - level - 1] = pts[:, k - level - 1]
        return BezierCurve(left), BezierCurve(right)

    def arc_length(self, lo: float = 0.0, hi: float = 1.0) -> float:
        """Arc length of the curve segment via adaptive quadrature."""
        if not 0.0 <= lo <= hi <= 1.0:
            raise ConfigurationError(
                f"need 0 <= lo <= hi <= 1, got lo={lo}, hi={hi}"
            )

        def speed(t: float) -> float:
            return float(np.linalg.norm(self.derivative(np.array([t]))[:, 0]))

        value, _abserr = quad(speed, lo, hi, limit=200)
        return float(value)

    # ------------------------------------------------------------------
    # Projection of external points
    # ------------------------------------------------------------------
    def project(
        self,
        X: np.ndarray,
        method: str = "gss",
        n_grid: int = 32,
        tol: float = 1e-10,
    ) -> np.ndarray:
        """Projection indices ``s_f(x)`` of Eq.(A-2) for each row of ``X``.

        Parameters
        ----------
        X:
            Data of shape ``(n, d)``.
        method:
            ``"gss"`` — coarse grid scan plus batched Golden Section
            Search (the paper's choice); ``"roots"`` — exact
            minimisation of the squared-distance polynomial via its
            stationary points (companion-matrix root finding).  Both
            run on polynomials compiled once per call by the
            projection engine (:mod:`repro.geometry.engine`) rather
            than on repeated curve evaluations.
        n_grid:
            Grid resolution of the bracketing scan for ``"gss"``.
        tol:
            Bracket tolerance for GSS.  The returned scores are
            additionally Newton-polished onto their basin's stationary
            point, so the effective accuracy is ~1e-14 regardless of
            how coarse ``tol`` is.

        Returns
        -------
        Array of shape ``(n,)`` with values in ``[0, 1]``.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.dimension:
            raise ConfigurationError(
                f"X must have shape (n, {self.dimension}), got {X.shape}"
            )
        if method == "gss":
            return self._project_gss(X, n_grid=n_grid, tol=tol)
        if method == "roots":
            return self._project_roots(X)
        raise ConfigurationError(
            f"unknown projection method {method!r}; use 'gss' or 'roots'"
        )

    def _project_gss(self, X: np.ndarray, n_grid: int, tol: float) -> np.ndarray:
        # Compile the per-point squared-distance polynomials once, then
        # run the grid scan and every GSS iteration as batched Horner
        # evaluations — no per-iteration Bernstein rebuild or
        # control-point matmul (see :mod:`repro.geometry.engine`).
        # GSS only locates the basin (its value comparisons bottom out
        # at the ~eps*|coeffs| evaluation noise of the compiled
        # distance, i.e. ~1e-8 in s); the Newton polish on the
        # derivative polynomial then recovers the stationary point to
        # ~1e-15, which matters for points lying on the curve itself.
        compiled = ProjectionEngine(self).compile(X)
        _, lo, hi = compiled.bracket(n_grid)
        coarse_tol = max(tol, 1e-4)
        s = compiled.solve_gss(lo, hi, tol=coarse_tol)
        return compiled.polish(s, half_width=2.0 * coarse_tol)

    def _project_roots(self, X: np.ndarray) -> np.ndarray:
        # Squared distance ‖x - C z‖² is a polynomial of degree 2k in s;
        # minimise it exactly via stationary-point enumeration.  The
        # coefficient rows for all n points are assembled at once and the
        # stationary quintics solved with a single stacked
        # companion-matrix eigenvalue call (no Python-level point loop).
        return ProjectionEngine(self).compile(X).minimize_exact()

    def distance_polynomials(self, X: np.ndarray) -> np.ndarray:
        """Ascending coefficients of ``s -> ‖x_i − f(s)‖²`` for each row.

        Returns shape ``(n, 2k + 1)``: row ``i`` is the degree-``2k``
        squared-distance polynomial of point ``x_i``.  Shared between the
        batched ``"roots"`` projection, the projection engine and
        diagnostic tooling (the expansion itself lives in
        :func:`repro.geometry.engine.squared_distance_coefficients`).
        """
        X = np.asarray(X, dtype=float)
        return squared_distance_coefficients(self.power_coefficients(), X)

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serialisable representation of the curve.

        Python ``repr`` round-trips floats exactly, so a
        ``to_dict`` → ``json`` → ``from_dict`` cycle reproduces the
        control points bit-for-bit.
        """
        return {
            "type": "BezierCurve",
            "degree": self.degree,
            "dimension": self.dimension,
            "control_points": self._P.tolist(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BezierCurve":
        """Rebuild a curve from :meth:`to_dict` output."""
        if payload.get("type") != "BezierCurve":
            raise ConfigurationError(
                f"payload is not a BezierCurve dict: type={payload.get('type')!r}"
            )
        curve = cls(np.asarray(payload["control_points"], dtype=float))
        if curve.degree != payload.get("degree", curve.degree):
            raise ConfigurationError(
                f"control points imply degree {curve.degree} but payload "
                f"declares {payload['degree']}"
            )
        return curve

    def projection_residuals(self, X: np.ndarray, s: np.ndarray) -> np.ndarray:
        """Residual vectors ``x_i - f(s_i)``, shape ``(n, d)``."""
        pts = self.evaluate(np.asarray(s, dtype=float))
        return np.asarray(X, dtype=float) - pts.T

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BezierCurve(degree={self.degree}, dimension={self.dimension})"
        )
