"""Bezier/Bernstein geometry substrate for the RPC model.

* :mod:`repro.geometry.bernstein` — Bernstein basis, derivative basis,
  and the power-basis conversion matrix (Eq.(13)–(15)).
* :mod:`repro.geometry.bezier` — general-degree :class:`BezierCurve`
  with evaluation, hodograph, subdivision, arc length and point
  projection.
* :mod:`repro.geometry.engine` — the polynomial-evaluation projection
  engine: per-point squared-distance polynomials compiled once, every
  solver iteration a batched Horner evaluation.
* :mod:`repro.geometry.cubic` — the cubic (``k = 3``) specialisation
  the paper ranks with: pinned end points, Fig. 4 shape gallery.
* :mod:`repro.geometry.monotonicity` — Proposition 1 constraint checks
  and monotonicity certificates.
"""

from repro.geometry.bernstein import (
    CUBIC_M,
    bernstein_basis,
    bernstein_derivative_basis,
    bernstein_design_matrix,
    bernstein_to_power_matrix,
    power_vector,
)
from repro.geometry.bezier import BezierCurve
from repro.geometry.engine import (
    CompiledProjection,
    ProjectionEngine,
    squared_distance_coefficients,
)
from repro.geometry.fitting import (
    BezierFitResult,
    chord_length_parameters,
    fit_bezier_least_squares,
)
from repro.geometry.cubic import (
    M,
    basic_shapes_2d,
    cubic_from_interior_points,
    linear_cubic,
    pinned_endpoints,
    validate_direction_vector,
)
from repro.geometry.monotonicity import (
    ViolationReport,
    check_rpc_constraints,
    clip_to_interior,
    empirical_monotonicity_violations,
    is_coordinatewise_monotone,
)

__all__ = [
    "CUBIC_M",
    "M",
    "BezierCurve",
    "BezierFitResult",
    "CompiledProjection",
    "ProjectionEngine",
    "ViolationReport",
    "basic_shapes_2d",
    "bernstein_basis",
    "bernstein_derivative_basis",
    "bernstein_design_matrix",
    "bernstein_to_power_matrix",
    "check_rpc_constraints",
    "chord_length_parameters",
    "clip_to_interior",
    "fit_bezier_least_squares",
    "cubic_from_interior_points",
    "empirical_monotonicity_violations",
    "is_coordinatewise_monotone",
    "linear_cubic",
    "pinned_endpoints",
    "power_vector",
    "squared_distance_coefficients",
    "validate_direction_vector",
]
