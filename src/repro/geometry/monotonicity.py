"""Monotonicity certificates for Bezier curves.

Proposition 1 of the paper: a cubic Bezier curve with end points pinned
at opposite corners of ``[0, 1]^d`` (via the direction vector
``alpha``) and interior control points strictly inside ``(0, 1)^d`` is
strictly monotone in every coordinate.  This module provides

* :func:`check_rpc_constraints` — validate the constraint set that
  *guarantees* monotonicity for the RPC model;
* :func:`is_coordinatewise_monotone` — a certificate for arbitrary
  Bezier curves based on the hodograph's control-point signs (a
  sufficient condition: Bernstein coefficients of one sign imply a
  derivative of that sign);
* :func:`empirical_monotonicity_violations` — a dense sampling check
  used to test curves that fail the certificate, and to demonstrate the
  Fig. 2 failure modes of unconstrained principal curves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.exceptions import MonotonicityError
from repro.geometry.bezier import BezierCurve
from repro.geometry.cubic import pinned_endpoints, validate_direction_vector


def check_rpc_constraints(
    control_points: np.ndarray,
    alpha: np.ndarray,
    atol: float = 1e-9,
) -> None:
    """Raise :class:`MonotonicityError` unless RPC constraints hold.

    Checks (i) the end points equal ``(1 -/+ alpha) / 2`` and (ii) all
    interior control points lie strictly inside ``(0, 1)^d``.
    """
    P = np.asarray(control_points, dtype=float)
    alpha = validate_direction_vector(alpha, d=P.shape[0])
    p0, p_end = pinned_endpoints(alpha)
    if not np.allclose(P[:, 0], p0, atol=atol):
        raise MonotonicityError(
            f"first end point must be (1 - alpha)/2 = {p0}, got {P[:, 0]}"
        )
    if not np.allclose(P[:, -1], p_end, atol=atol):
        raise MonotonicityError(
            f"last end point must be (1 + alpha)/2 = {p_end}, got {P[:, -1]}"
        )
    interior = P[:, 1:-1]
    if interior.size and (np.any(interior <= 0.0) or np.any(interior >= 1.0)):
        raise MonotonicityError(
            "interior control points must lie strictly inside (0, 1)^d; "
            f"got min={interior.min():.6g}, max={interior.max():.6g}"
        )


def clip_to_interior(
    control_points: np.ndarray,
    alpha: np.ndarray,
    margin: float = 1e-6,
) -> np.ndarray:
    """Project control points onto the RPC-feasible set.

    Used after each Richardson step of Algorithm 1: the end points are
    re-pinned to the hypercube corners prescribed by ``alpha`` and the
    interior points are clipped into ``[margin, 1 - margin]^d`` so that
    Proposition 1 continues to certify strict monotonicity.
    """
    P = np.array(control_points, dtype=float, copy=True)
    alpha = validate_direction_vector(alpha, d=P.shape[0])
    p0, p_end = pinned_endpoints(alpha)
    P[:, 0] = p0
    P[:, -1] = p_end
    P[:, 1:-1] = np.clip(P[:, 1:-1], margin, 1.0 - margin)
    return P


def is_coordinatewise_monotone(
    curve: BezierCurve,
    alpha: np.ndarray,
    strict: bool = True,
) -> bool:
    """Sufficient certificate of coordinatewise monotonicity.

    The derivative of a Bezier curve is itself a Bezier curve whose
    control points are the scaled forward differences of the original
    control points (Eq.(17)).  Because Bernstein polynomials are
    non-negative on ``[0, 1]``, *all forward differences of coordinate
    ``j`` sharing the sign of ``alpha_j``* certifies that coordinate is
    monotone in the direction ``alpha_j``.  The converse does not hold,
    so a ``False`` return means "not certified", not "not monotone" —
    use :func:`empirical_monotonicity_violations` to actually hunt for
    violations.
    """
    alpha = validate_direction_vector(alpha, d=curve.dimension)
    diffs = np.diff(curve.control_points, axis=1)  # (d, k)
    signed = diffs * alpha[:, np.newaxis]
    if strict:
        return bool(np.all(signed > 0.0))
    return bool(np.all(signed >= 0.0))


@dataclass
class ViolationReport:
    """Result of a dense empirical monotonicity scan.

    Attributes
    ----------
    n_samples:
        Number of parameter steps examined.
    n_violations:
        Count of steps where some coordinate moved against ``alpha``.
    worst_step:
        The most negative signed coordinate increment observed (0 when
        the curve is monotone on the sample grid).
    violating_parameters:
        Parameter values at the start of each violating step.
    """

    n_samples: int
    n_violations: int
    worst_step: float
    violating_parameters: np.ndarray

    @property
    def is_monotone(self) -> bool:
        """True when no violating step was found on the grid."""
        return self.n_violations == 0


def empirical_monotonicity_violations(
    curve: BezierCurve,
    alpha: np.ndarray,
    n_samples: int = 2048,
) -> ViolationReport:
    """Scan the curve on a dense grid for coordinate reversals.

    For each consecutive grid pair ``(s_t, s_{t+1})`` the signed
    increments ``alpha_j * (f_j(s_{t+1}) - f_j(s_t))`` are checked; a
    negative value means coordinate ``j`` moved against the required
    direction somewhere inside the step.
    """
    alpha = validate_direction_vector(alpha, d=curve.dimension)
    grid = np.linspace(0.0, 1.0, n_samples)
    pts = curve.evaluate(grid)  # (d, n)
    signed_steps = np.diff(pts, axis=1) * alpha[:, np.newaxis]
    violating = np.any(signed_steps < 0.0, axis=0)
    worst = float(signed_steps.min()) if signed_steps.size else 0.0
    return ViolationReport(
        n_samples=n_samples,
        n_violations=int(np.count_nonzero(violating)),
        worst_step=min(worst, 0.0),
        violating_parameters=grid[:-1][violating],
    )
