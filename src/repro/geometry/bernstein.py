"""Bernstein polynomial basis.

The RPC model expresses a principal curve as a Bezier curve, Eq.(12),

    ``f(s) = sum_r B_r^k(s) p_r,    s in [0, 1]``,

built on the Bernstein basis polynomials of Eq.(13)–(14),

    ``B_r^k(s) = C(k, r) (1 - s)^(k - r) s^r``.

This module provides the basis itself, its derivatives, the power-basis
conversion matrix (which for ``k = 3`` is the matrix ``M`` of Eq.(15)),
and utility identities (partition of unity, symmetry) that the property
tests exercise.
"""

from __future__ import annotations

from functools import lru_cache
from math import comb

import numpy as np

from repro.core.exceptions import ConfigurationError


@lru_cache(maxsize=None)
def binomial_coefficients(k: int) -> np.ndarray:
    """Row ``k`` of Pascal's triangle, ``(C(k, 0), ..., C(k, k))``.

    Cached per degree and returned read-only: the basis is rebuilt for
    every curve evaluation, so the ``math.comb`` calls would otherwise
    sit on the projection hot path.
    """
    if k < 0:
        raise ConfigurationError(f"degree must be non-negative, got {k}")
    row = np.array([comb(k, r) for r in range(k + 1)], dtype=float)
    row.setflags(write=False)
    return row


def bernstein_basis(k: int, s: np.ndarray) -> np.ndarray:
    """Evaluate all ``k + 1`` Bernstein polynomials of degree ``k``.

    Parameters
    ----------
    k:
        Polynomial degree, ``k >= 0``.
    s:
        Evaluation points, any shape; values are typically in
        ``[0, 1]`` though the formula is valid everywhere.

    Returns
    -------
    Array of shape ``(k + 1,) + s.shape`` where entry ``[r]`` holds
    ``B_r^k(s)``.
    """
    binom = binomial_coefficients(k)
    s = np.asarray(s, dtype=float)
    one_minus = 1.0 - s
    # Power ladders built by repeated multiplication: ``k`` vectorised
    # multiplies instead of ``2(k + 1)`` elementwise ``pow`` calls.
    s_pow = np.empty((k + 1,) + s.shape, dtype=float)
    omp_pow = np.empty_like(s_pow)
    s_pow[0] = 1.0
    omp_pow[0] = 1.0
    for r in range(1, k + 1):
        np.multiply(s_pow[r - 1], s, out=s_pow[r])
        np.multiply(omp_pow[r - 1], one_minus, out=omp_pow[r])
    return binom.reshape((k + 1,) + (1,) * s.ndim) * omp_pow[::-1] * s_pow


def bernstein_design_matrix(k: int, s: np.ndarray) -> np.ndarray:
    """Design matrix ``[B_r^k(s_i)]`` of shape ``(n, k + 1)``.

    Row ``i`` contains the full basis evaluated at ``s_i``; this is the
    matrix a least-squares Bezier fit regresses against.
    """
    s = np.asarray(s, dtype=float).ravel()
    return bernstein_basis(k, s).T


def bernstein_to_power_matrix(k: int) -> np.ndarray:
    """Conversion matrix ``M`` from control points to power coefficients.

    ``M`` satisfies ``f(s) = P M z`` with ``z = (1, s, ..., s^k)^T`` and
    ``P`` the ``(d, k + 1)`` matrix of control points, generalising the
    cubic matrix printed in Eq.(15).  Entry ``M[r, j]`` is the
    coefficient of ``s^j`` contributed by control point ``p_r``:

        ``M[r, j] = C(k, r) * C(k - r, j - r) * (-1)^(j - r)`` for
        ``j >= r`` and zero otherwise.

    The matrix is cached per degree and returned read-only — the
    projection engine converts control points to power coefficients on
    every projection call, so rebuilding ``M`` from ``math.comb`` would
    be pure per-call overhead.
    """
    if k < 0:
        raise ConfigurationError(f"degree must be non-negative, got {k}")
    return _power_matrix_cached(k)


@lru_cache(maxsize=None)
def _power_matrix_cached(k: int) -> np.ndarray:
    M = np.zeros((k + 1, k + 1))
    for r in range(k + 1):
        for j in range(r, k + 1):
            M[r, j] = comb(k, r) * comb(k - r, j - r) * (-1.0) ** (j - r)
    M.setflags(write=False)
    return M


#: The cubic conversion matrix of Eq.(15), provided as a named constant
#: because the RPC formulation refers to it throughout.
CUBIC_M = bernstein_to_power_matrix(3)


def power_vector(s: np.ndarray, k: int) -> np.ndarray:
    """The monomial vector ``z = (1, s, s^2, ..., s^k)``.

    Returns shape ``(k + 1, n)`` for 1-D input of length ``n`` — the
    matrix ``Z`` of Eq.(23) when ``k = 3``.
    """
    s = np.asarray(s, dtype=float).ravel()
    powers = np.arange(k + 1)[:, np.newaxis]
    return s[np.newaxis, :] ** powers


def bernstein_derivative_basis(k: int, s: np.ndarray) -> np.ndarray:
    """Derivatives ``d B_r^k / ds`` for all ``r``, shape ``(k+1,) + s.shape``.

    Uses the classical identity
    ``dB_r^k/ds = k (B_{r-1}^{k-1}(s) - B_r^{k-1}(s))`` with out-of-range
    basis functions treated as zero.
    """
    if k < 0:
        raise ConfigurationError(f"degree must be non-negative, got {k}")
    s = np.asarray(s, dtype=float)
    if k == 0:
        return np.zeros((1,) + s.shape)
    lower = bernstein_basis(k - 1, s)
    out = np.empty((k + 1,) + s.shape, dtype=float)
    for r in range(k + 1):
        left = lower[r - 1] if r - 1 >= 0 else 0.0
        right = lower[r] if r <= k - 1 else 0.0
        out[r] = k * (left - right)
    return out
