"""Unconstrained least-squares Bezier fitting (Pastva, reference [20]).

The paper cites Pastva's "Bezier Curve Fitting" for the classical
approach: given points with known (or iteratively refined) parameter
values, the control points minimising the summed squared residual
solve a linear least-squares problem in the Bernstein design matrix.
The RPC is this procedure *plus* the corner pinning and interior-cube
constraints; keeping the unconstrained fitter separate lets tests and
benchmarks quantify exactly what the constraints cost (a little fit)
and buy (monotonicity).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.core.exceptions import ConfigurationError, DataValidationError
from repro.geometry.bernstein import bernstein_design_matrix
from repro.geometry.bezier import BezierCurve


@dataclass
class BezierFitResult:
    """Outcome of :func:`fit_bezier_least_squares`.

    Attributes
    ----------
    curve:
        The fitted (unconstrained) Bezier curve.
    parameters:
        Final per-point parameter values ``s_i``.
    residual:
        Summed squared residual at the final iteration.
    n_iterations:
        Parameter-refinement sweeps performed.
    """

    curve: BezierCurve
    parameters: np.ndarray
    residual: float
    n_iterations: int


def chord_length_parameters(X: np.ndarray) -> np.ndarray:
    """Chord-length parametrisation of ordered points.

    The standard initial guess: ``s_i`` proportional to the cumulative
    polyline length through the points in their given order, scaled to
    ``[0, 1]``.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2 or X.shape[0] < 2:
        raise DataValidationError(
            f"need at least two points in a 2-D array, got shape {X.shape}"
        )
    seg = np.linalg.norm(np.diff(X, axis=0), axis=1)
    cum = np.concatenate([[0.0], np.cumsum(seg)])
    total = cum[-1]
    if total <= 0.0:
        return np.linspace(0.0, 1.0, X.shape[0])
    return cum / total


def fit_bezier_least_squares(
    X: np.ndarray,
    degree: int = 3,
    parameters: Optional[np.ndarray] = None,
    n_refinements: int = 5,
    parameterization: Literal["chord", "uniform"] = "chord",
    ridge: float = 0.0,
) -> BezierFitResult:
    """Fit an unconstrained Bezier curve to points by least squares.

    Alternates (a) solving the linear system for control points given
    parameters with (b) re-projecting the points onto the fitted curve
    to refresh the parameters — Pastva's classical loop.

    Parameters
    ----------
    X:
        Points of shape ``(n, d)``, assumed roughly ordered along the
        curve when ``parameters`` is omitted.
    degree:
        Bezier degree ``k`` (``n`` must exceed ``k``).
    parameters:
        Optional initial ``s_i``; computed from the chosen
        parameterization when omitted.
    n_refinements:
        Projection/solve sweeps after the initial solve.
    parameterization:
        ``"chord"`` (default) or ``"uniform"`` initial parameters.
    ridge:
        Optional Tikhonov damping on the normal equations, useful when
        parameters cluster and the design matrix degenerates.
    """
    X = np.asarray(X, dtype=float)
    if X.ndim != 2:
        raise DataValidationError(f"X must be 2-D, got ndim={X.ndim}")
    n, _d = X.shape
    if degree < 1:
        raise ConfigurationError(f"degree must be >= 1, got {degree}")
    if n <= degree:
        raise ConfigurationError(
            f"need more points than degree+0: n={n}, degree={degree}"
        )
    if ridge < 0.0:
        raise ConfigurationError(f"ridge must be >= 0, got {ridge}")

    if parameters is not None:
        s = np.asarray(parameters, dtype=float).ravel()
        if s.size != n:
            raise DataValidationError(
                f"{s.size} parameters for {n} points"
            )
    elif parameterization == "chord":
        s = chord_length_parameters(X)
    elif parameterization == "uniform":
        s = np.linspace(0.0, 1.0, n)
    else:
        raise ConfigurationError(
            f"unknown parameterization {parameterization!r}"
        )

    curve = _solve_control_points(X, s, degree, ridge)
    residual = _residual(X, curve, s)
    iterations = 0
    for iterations in range(1, n_refinements + 1):
        s = curve.project(X)
        curve = _solve_control_points(X, s, degree, ridge)
        new_residual = _residual(X, curve, s)
        if residual - new_residual < 1e-12:
            residual = new_residual
            break
        residual = new_residual
    return BezierFitResult(
        curve=curve,
        parameters=s,
        residual=residual,
        n_iterations=iterations,
    )


def _solve_control_points(
    X: np.ndarray, s: np.ndarray, degree: int, ridge: float
) -> BezierCurve:
    """Linear least-squares control points for fixed parameters."""
    B = bernstein_design_matrix(degree, s)  # (n, k+1)
    if ridge > 0.0:
        gram = B.T @ B + ridge * np.eye(degree + 1)
        P = np.linalg.solve(gram, B.T @ X).T
    else:
        P, *_ = np.linalg.lstsq(B, X, rcond=None)
        P = P.T
    return BezierCurve(P)


def _residual(X: np.ndarray, curve: BezierCurve, s: np.ndarray) -> float:
    return float(np.sum(curve.projection_residuals(X, s) ** 2))
