"""Polynomial-evaluation projection engine for Bezier curves.

The projection step (Eq.(20)'s first-order condition, solved by grid
scan + Golden Section Search in the paper) used to re-derive the
Bernstein basis and pay one ``P @ basis`` matmul per GSS iteration per
batch — an ``O(k * d * n)`` rebuild for what is, per point, a fixed
univariate polynomial.  This module compiles the squared distance

    ``D_i(s) = ||x_i - f(s)||^2``

of every point into plain ascending power coefficients (degree ``2k``,
via the same expansion as :meth:`BezierCurve.distance_polynomials`)
exactly once, and then every solver — grid bracketing, batched GSS,
warm-start refinement, Newton polish, and the exact ``"roots"``
fallback — evaluates those coefficients with the shared batched Horner
kernel of :mod:`repro.linalg.horner`.  Each solver iteration drops to
``O(k * n)`` fused multiply-adds with no basis rebuild and no factor of
the ambient dimension.

Two-level structure:

* :class:`ProjectionEngine` is built once per curve.  It caches the
  power-basis coefficient matrix ``C`` and the data-independent
  self-product coefficients of ``f(s) . f(s)`` so that compiling a new
  batch of points costs one ``X @ C`` matmul plus a row-sum.
* :meth:`ProjectionEngine.compile` binds a data batch, producing a
  :class:`CompiledProjection` that owns the ``(n, 2k + 1)`` coefficient
  matrix, its first two derivative ladders, and every solver primitive.

A :class:`ProjectionEngine` is immutable after construction and a
:class:`CompiledProjection` after compilation, so both are safe to
share across the threaded serving paths (``score_batch(n_jobs=...)``).
"""

from __future__ import annotations

import time
from typing import Tuple

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.linalg.backend import (
    KernelBackend,
    resolve_backend,
    resolve_score_dtype,
)
from repro.linalg.golden_section import golden_section_search_batch
from repro.obs.engineprof import current as _active_profile


def _row_invariant_product(X: np.ndarray, B: np.ndarray) -> np.ndarray:
    """``X @ B`` with per-row bits independent of ``X``'s row count.

    BLAS picks different kernels (gemv vs gemm, different blocking) for
    different ``M``, so ``(X @ B)[i]`` can differ in the last ulp
    between a 1-row and an n-row call — which would leak through the
    compiled coefficients and break the serving contract that scoring
    is bit-identical however rows are chunked or micro-batched.
    Unoptimized ``einsum`` reduces each output element over the (tiny)
    contracted axis in a fixed order, independent of the row count;
    the contracted dimension here is ``d`` or ``k + 1``, small enough
    that the BLAS advantage is a few hundred microseconds per 4096-row
    chunk — noise next to the solver iterations it feeds.
    """
    return np.einsum("ij,jk->ik", X, B)


def curve_self_product_coefficients(C: np.ndarray) -> np.ndarray:
    """Ascending coefficients of ``s -> f(s) . f(s)``, shape ``(2k + 1,)``.

    ``C`` is the ``(d, k + 1)`` power-coefficient matrix of the curve
    (``f(s) = C z``).  The product polynomial's coefficient of ``s^m``
    is the ``m``-th anti-diagonal sum of the Gram matrix ``C^T C``.
    """
    C = np.asarray(C, dtype=float)
    k = C.shape[1] - 1
    gram = C.T @ C
    idx = np.add.outer(np.arange(k + 1), np.arange(k + 1))
    return np.bincount(idx.ravel(), weights=gram.ravel(), minlength=2 * k + 1)


def squared_distance_coefficients(
    C: np.ndarray, X: np.ndarray, ff: np.ndarray = None
) -> np.ndarray:
    """Per-point coefficients of ``s -> ||x_i - C z(s)||^2``, ``(n, 2k + 1)``.

    Expanding the square gives ``f.f - 2 x.f + x.x``: a shared
    data-independent degree-``2k`` part (``ff``, precomputable once per
    curve), a degree-``k`` cross term (one ``X @ C`` matmul), and a
    constant row norm.
    """
    C = np.asarray(C, dtype=float)
    X = np.asarray(X, dtype=float)
    k = C.shape[1] - 1
    if ff is None:
        ff = curve_self_product_coefficients(C)
    coeffs = np.tile(ff, (X.shape[0], 1))
    coeffs[:, : k + 1] -= 2.0 * _row_invariant_product(X, C)
    coeffs[:, 0] += np.sum(X**2, axis=1)
    return coeffs


class ProjectionEngine:
    """Per-curve precompiled projection solvers.

    Construction extracts everything about the curve the solvers need
    (power coefficients and the self-product polynomial); binding a
    data batch with :meth:`compile` is then a single matmul, so one
    engine amortises the setup across many chunks of the same curve —
    the serving paths hold exactly one per fitted model.
    """

    def __init__(self, curve, backend=None):
        self._curve = curve
        self._C = curve.power_coefficients()  # (d, k + 1)
        self._ff = curve_self_product_coefficients(self._C)
        self._backend = resolve_backend(backend)

    @property
    def curve(self):
        """The curve this engine was compiled from."""
        return self._curve

    @property
    def backend(self) -> KernelBackend:
        """The kernel backend compilations default to."""
        return self._backend

    @property
    def degree(self) -> int:
        return self._C.shape[1] - 1

    @property
    def dimension(self) -> int:
        return self._C.shape[0]

    def compile(
        self, X: np.ndarray, backend=None, dtype=None
    ) -> "CompiledProjection":
        """Bind a data batch, returning its compiled distance polynomials.

        ``backend``/``dtype`` override the engine default per
        compilation — backend and scoring dtype are properties of a
        *batch*, not the curve, so the per-model engine cache stays
        valid whatever mix of requests it serves.
        """
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != self.dimension:
            raise ConfigurationError(
                f"X must have shape (n, {self.dimension}), got {X.shape}"
            )
        backend = self._backend if backend is None else resolve_backend(backend)
        work_dtype = resolve_score_dtype(dtype)
        prof = _active_profile()
        if prof is not None:
            prof.count(f"backend_{backend.name.replace('-', '_')}_compiles")
            if work_dtype == np.dtype(np.float32):
                prof.count("float32_rows", X.shape[0])
        return CompiledProjection(
            squared_distance_coefficients(self._C, X, ff=self._ff),
            X=X,
            C=self._C,
            backend=backend,
            dtype=work_dtype,
        )


class CompiledProjection:
    """Squared-distance polynomials of one data batch, plus solvers.

    Holds the ``(n, 2k + 1)`` ascending coefficient matrix and its
    first two derivative ladders; every method below is a thin
    composition of Horner evaluations over those three matrices.
    """

    def __init__(
        self,
        coeffs: np.ndarray,
        X: np.ndarray = None,
        C: np.ndarray = None,
        backend=None,
        dtype=None,
    ):
        self._backend = resolve_backend(backend)
        self.dtype = resolve_score_dtype(dtype)
        coeffs = np.atleast_2d(np.asarray(coeffs))
        if coeffs.dtype != self.dtype:
            # The polynomials are always *compiled* in float64 (the fit
            # is float64); float32 is applied here so every solver work
            # vector below inherits it.
            coeffs = coeffs.astype(self.dtype)
        self.coeffs = coeffs
        m = coeffs.shape[1]
        powers = np.arange(1, m, dtype=coeffs.dtype)
        self.dcoeffs = (
            coeffs[:, 1:] * powers
            if m > 1
            else np.zeros((coeffs.shape[0], 1), dtype=coeffs.dtype)
        )
        self.ddcoeffs = (
            self.dcoeffs[:, 1:] * powers[: m - 2]
            if m > 2
            else np.zeros((coeffs.shape[0], 1), dtype=coeffs.dtype)
        )
        # Optional data/curve views enabling the BLAS grid-scan fast
        # path of :meth:`distance_on_grid`; purely an optimisation, the
        # Horner fallback computes the same distances.
        if X is not None and np.asarray(X).dtype != self.dtype:
            X = np.asarray(X).astype(self.dtype)
        if C is not None and np.asarray(C).dtype != self.dtype:
            C = np.asarray(C).astype(self.dtype)
        self._X = X
        self._C = C
        self._sqnorm = (
            np.sum(X**2, axis=1) if X is not None and C is not None else None
        )

    @property
    def backend(self) -> KernelBackend:
        """The kernel backend this compilation runs on."""
        return self._backend

    def __len__(self) -> int:
        return self.coeffs.shape[0]

    def __getitem__(self, rows) -> "CompiledProjection":
        """A compiled view of a row subset (mask or index array)."""
        return CompiledProjection(
            self.coeffs[rows],
            X=self._X[rows] if self._X is not None else None,
            C=self._C,
            backend=self._backend,
            dtype=self.dtype,
        )

    # ------------------------------------------------------------------
    # Evaluation primitives
    # ------------------------------------------------------------------
    def distance(self, s: np.ndarray) -> np.ndarray:
        """``||x_i - f(s_i)||^2`` per row, shape ``(n,)``."""
        return self._backend.horner_pointwise(self.coeffs, s)

    def distance_on_grid(self, grid: np.ndarray) -> np.ndarray:
        """Distances of every row to ``f`` on a shared grid, ``(n, g)``.

        When the data view is available the ``(n, g)`` matrix is built
        as ``|x|^2 - 2 X F + colnorm(F)`` with ``F`` the curve sampled
        on the grid from its power coefficients — one fused product
        over the ambient dimension instead of ``2k`` Horner passes
        over all ``n * g`` entries (row-invariant by construction, see
        :func:`_row_invariant_product`).
        """
        grid = np.asarray(grid, dtype=self.dtype).ravel()
        if self._X is None or self._C is None:
            return self._backend.horner_batch(self.coeffs, grid)
        k = self._C.shape[1] - 1
        Z = np.empty((k + 1, grid.size), dtype=self.dtype)
        Z[0] = 1.0
        for j in range(1, k + 1):
            np.multiply(Z[j - 1], grid, out=Z[j])
        F = self._C @ Z  # (d, g) — no data rows involved, BLAS is fine
        return (
            self._sqnorm[:, np.newaxis]
            - 2.0 * _row_invariant_product(self._X, F)
            + np.sum(F**2, axis=0)[np.newaxis, :]
        )

    # ------------------------------------------------------------------
    # Solvers
    # ------------------------------------------------------------------
    def bracket(
        self, n_grid: int, lo: float = 0.0, hi: float = 1.0
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Coarse grid scan: per-row ``(s_best, bracket_lo, bracket_hi)``.

        The distance to a degree-``k`` curve can have up to ``2k - 1``
        stationary points, so GSS/Newton need a bracket that isolates
        the global basin first — same contract as
        :func:`repro.linalg.golden_section.bracketed_minimum`.
        """
        if n_grid < 3:
            raise ConfigurationError(f"n_grid must be >= 3, got {n_grid}")
        # Profiling hooks (here and in the other solvers): one
        # ContextVar read and an ``is None`` branch per *call* when no
        # profile is active — see :mod:`repro.obs.engineprof`.
        prof = _active_profile()
        t0 = time.perf_counter() if prof is not None else 0.0
        grid = np.linspace(lo, hi, n_grid, dtype=self.dtype)
        values = self.distance_on_grid(grid)
        best = np.argmin(values, axis=1)
        step = (hi - lo) / (n_grid - 1)
        s_best = grid[best]
        if prof is not None:
            prof.add_phase(
                "grid_scan", time.perf_counter() - t0, rows=len(self)
            )
        return (
            s_best,
            np.clip(s_best - step, lo, hi),
            np.clip(s_best + step, lo, hi),
        )

    def solve_gss(
        self,
        lo: np.ndarray,
        hi: np.ndarray,
        tol: float = 1e-10,
        max_iter: int = 200,
    ) -> np.ndarray:
        """Batched GSS on the compiled distances within ``[lo, hi]``.

        Both interior points of every iteration are evaluated in one
        fused Horner pass (see ``pair_func`` in
        :func:`golden_section_search_batch`).  Under float32 the
        convergence tolerance is clamped to a few float32 ulps (an
        exact no-op for float64 defaults) so already-converged rows
        don't spin against a sub-resolution threshold.
        """
        prof = _active_profile()
        t0 = time.perf_counter() if prof is not None else 0.0
        s_opt, _ = golden_section_search_batch(
            self.distance,
            np.asarray(lo, dtype=self.dtype),
            np.asarray(hi, dtype=self.dtype),
            tol=max(tol, 4.0 * float(np.finfo(self.dtype).eps)),
            max_iter=max_iter,
            pair_func=lambda cd: self._backend.horner_batch(self.coeffs, cd),
        )
        if prof is not None:
            prof.add_phase("gss", time.perf_counter() - t0, rows=len(self))
        return s_opt

    def newton_refine(
        self,
        s: np.ndarray,
        lo: np.ndarray,
        hi: np.ndarray,
        tol: float = 1e-10,
        max_iter: int = 50,
    ) -> np.ndarray:
        """Clamped Newton on Eq.(20) within per-row brackets.

        Eq.(20) is ``-1/2 D'(s) = 0``, so the Newton step is
        ``D'(s) / D''(s)`` on the compiled derivative ladders — the
        same iterate as the curve-based formulation (``g = f'.(x - f)``)
        at a fraction of the cost.  Ends with the usual endpoint
        comparison so constrained optima at bracket edges survive.

        Each row stops iterating the moment *its own* step falls below
        ``tol`` (rather than when the batch-wide maximum does), so the
        iterate a row ends on is independent of which other rows share
        its batch — the bit-level batch-split invariance the serving
        micro-batcher relies on when it coalesces rows from unrelated
        requests into one solve.
        """
        prof = _active_profile()
        t0 = time.perf_counter() if prof is not None else 0.0
        iterations = 0
        tol = max(tol, 4.0 * float(np.finfo(self.dtype).eps))
        s = np.asarray(s, dtype=self.dtype).copy()
        lo = np.asarray(lo, dtype=self.dtype)
        hi = np.asarray(hi, dtype=self.dtype)
        active = np.ones(s.shape, dtype=bool)
        for _ in range(max_iter):
            if not np.any(active):
                break
            iterations += 1
            g = self._backend.horner_pointwise(self.dcoeffs, s)
            dg = self._backend.horner_pointwise(self.ddcoeffs, s)
            safe = active & (np.abs(dg) > 1e-14)
            delta = np.zeros_like(s)
            delta[safe] = g[safe] / dg[safe]
            s_new = np.clip(s - delta, lo, hi)
            active = active & (np.abs(s_new - s) >= tol)
            s = s_new
        candidates = np.stack([s, lo, hi], axis=-1)  # (n, 3)
        dists = self._backend.horner_batch(self.coeffs, candidates)
        pick = np.argmin(dists, axis=1)
        if prof is not None:
            prof.add_phase(
                "newton", time.perf_counter() - t0, rows=len(self)
            )
            prof.count("newton_iterations", iterations)
        return candidates[np.arange(s.size), pick]

    def polish(
        self,
        s: np.ndarray,
        half_width: float = 1e-5,
        tol: float = 1e-14,
    ) -> np.ndarray:
        """Refine GSS scores to the exact stationary point of their basin.

        GSS resolves ``s`` only to about ``sqrt(eps)``; a few clamped
        Newton steps inside a tight bracket recover ~1e-14, making
        results reproducible across bracketing strategies and batch
        splits.  Scores are only replaced where the polished point is
        at least as close, so constrained endpoint optima are kept.

        The acceptance test carries a few-ulp slack: near the optimum a
        genuine improvement of ``O(ds^2)`` sits below the evaluation
        noise of the distance itself, and a strict ``<=`` would reject
        the polished (exactly stationary) point on a coin flip — the
        pre-engine path did exactly that, which is where its residual
        ~1e-8 jitter came from.  The slack admits at most a noise-level
        distance increase, i.e. an ``O(sqrt(eps))``-in-``s`` move.
        """
        s = np.asarray(s, dtype=self.dtype)
        lo = np.clip(s - half_width, 0.0, 1.0)
        hi = np.clip(s + half_width, 0.0, 1.0)
        s_new = self.newton_refine(s, lo, hi, tol=tol, max_iter=4)
        d_old = self.distance(s)
        slack = 64.0 * np.finfo(self.dtype).eps * (1.0 + np.abs(d_old))
        improved = self.distance(s_new) <= d_old + slack
        return np.where(improved, s_new, s)

    def minimize_exact(self, lo: float = 0.0, hi: float = 1.0) -> np.ndarray:
        """The ``"roots"`` path: exact stationary-point enumeration.

        Dispatches to the backend's stationary solver (stacked-eigvals
        reference or the closed-form/isolation path).  Root finding
        always runs in float64 — closed-form discriminants are fragile
        in float32 and the solve is a once-per-batch cost, so the
        float32 mode only accelerates the iterative solvers.
        """
        prof = _active_profile()
        t0 = time.perf_counter() if prof is not None else 0.0
        coeffs = self.coeffs
        if coeffs.dtype != np.float64:
            coeffs = coeffs.astype(np.float64)
        result = self._backend.minimize_stationary(coeffs, lo, hi)
        if prof is not None:
            prof.add_phase(
                "roots", time.perf_counter() - t0, rows=len(self)
            )
        return result
