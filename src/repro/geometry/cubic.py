"""Cubic Bezier specifics: the matrix form of Eq.(15) and Fig. 4 shapes.

The RPC model fixes the degree at ``k = 3``: the paper argues degree 2
cannot represent all monotone shapes while degree 4 overfits.  This
module provides the cubic conversion matrix ``M``, builders for the
four basic monotone shapes of Fig. 4, and helpers for constructing the
pinned end points ``p0 = (1 - alpha) / 2`` and ``p3 = (1 + alpha) / 2``
from a task direction vector ``alpha``.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.geometry.bernstein import CUBIC_M
from repro.geometry.bezier import BezierCurve

#: Eq.(15)'s conversion matrix, re-exported under the paper's name.
M = CUBIC_M


def validate_direction_vector(alpha: np.ndarray, d: int | None = None) -> np.ndarray:
    """Validate and canonicalise a task direction vector ``alpha``.

    ``alpha`` (Eq.(3)) has one entry per attribute: ``+1`` for
    attributes where larger is better (the set ``E``) and ``-1`` where
    smaller is better (the set ``F``).
    """
    alpha = np.asarray(alpha, dtype=float).ravel()
    if d is not None and alpha.size != d:
        raise ConfigurationError(
            f"direction vector has {alpha.size} entries but data has {d} "
            "attributes"
        )
    if not np.all(np.isin(alpha, (-1.0, 1.0))):
        raise ConfigurationError(
            "direction vector entries must be +1 or -1, got "
            f"{np.unique(alpha)}"
        )
    return alpha


def pinned_endpoints(alpha: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """End points ``p0 = (1 - alpha)/2`` and ``p3 = (1 + alpha)/2``.

    These sit at opposite corners of the unit hypercube ``[0, 1]^d``:
    the worst corner (0 on increasing attributes, 1 on decreasing ones)
    and the best corner respectively, so that score 0 means "worst
    reference" and score 1 means "best reference".
    """
    alpha = validate_direction_vector(alpha)
    p0 = 0.5 * (1.0 - alpha)
    p3 = 0.5 * (1.0 + alpha)
    return p0, p3


def cubic_from_interior_points(
    alpha: np.ndarray,
    p1: np.ndarray,
    p2: np.ndarray,
) -> BezierCurve:
    """Assemble a cubic Bezier with pinned ends and given interior points.

    Parameters
    ----------
    alpha:
        Direction vector of length ``d``.
    p1, p2:
        Interior control points, each of length ``d``; the RPC
        constraint requires them strictly inside ``(0, 1)^d`` (checked
        by :func:`repro.geometry.monotonicity.check_rpc_constraints`,
        not here, so this builder stays usable for counter-examples).
    """
    alpha = validate_direction_vector(alpha)
    p1 = np.asarray(p1, dtype=float).ravel()
    p2 = np.asarray(p2, dtype=float).ravel()
    if p1.size != alpha.size or p2.size != alpha.size:
        raise ConfigurationError(
            "interior control points must match the direction vector "
            f"dimension {alpha.size}, got {p1.size} and {p2.size}"
        )
    p0, p3 = pinned_endpoints(alpha)
    return BezierCurve(np.column_stack([p0, p1, p2, p3]))


def basic_shapes_2d() -> Dict[str, BezierCurve]:
    """The four basic monotone cubic shapes of Fig. 4 (in 2-D).

    Hu et al. (1998) showed an increasing cubic Bezier in the unit
    square takes one of four basic nonlinear shapes depending on the
    interior control-point placement: concave, convex, S-shaped
    (concave-then-convex) and reverse-S (convex-then-concave).  The
    returned dictionary maps shape names to curves with ``alpha = (1, 1)``.
    """
    alpha = np.array([1.0, 1.0])
    shapes = {
        # p1 high-left, p2 high-left: rises fast then flattens.
        "concave": cubic_from_interior_points(
            alpha, p1=np.array([0.1, 0.7]), p2=np.array([0.3, 0.95])
        ),
        # p1 low-right, p2 low-right: flat start, fast finish.
        "convex": cubic_from_interior_points(
            alpha, p1=np.array([0.7, 0.1]), p2=np.array([0.95, 0.3])
        ),
        # p1 pulls up early, p2 pulls down late: S shape.
        "s_shape": cubic_from_interior_points(
            alpha, p1=np.array([0.1, 0.6]), p2=np.array([0.9, 0.4])
        ),
        # p1 pulls down early, p2 pulls up late: reverse S.
        "reverse_s": cubic_from_interior_points(
            alpha, p1=np.array([0.6, 0.1]), p2=np.array([0.4, 0.9])
        ),
    }
    return shapes


def linear_cubic(alpha: np.ndarray) -> BezierCurve:
    """The straight-line cubic from the worst to the best corner.

    Placing the interior control points at thirds along the diagonal
    reproduces a perfectly linear ranking rule — demonstrating the
    "linear capacity" meta-rule is available to the cubic model.
    """
    alpha = validate_direction_vector(alpha)
    p0, p3 = pinned_endpoints(alpha)
    p1 = p0 + (p3 - p0) / 3.0
    p2 = p0 + 2.0 * (p3 - p0) / 3.0
    return BezierCurve(np.column_stack([p0, p1, p2, p3]))
