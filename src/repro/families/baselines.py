"""ScorableModel adapters for the ``repro.baselines`` rankers.

Two semantic notes the serving layers rely on:

* The rank aggregators (median rank, Borda count) score a row by its
  *position among the rows it arrived with* — their fit is stateless
  and their scores are batch-relative.  Their adapters set
  ``pointwise_scores = False``, which tells ``score_batch`` to score
  the whole input in one call (chunking would change positions) and
  the micro-batcher never to coalesce their requests with anyone
  else's rows.
* :func:`repro.baselines.pagerank` is a function on adjacency
  matrices, not a row scorer.  :class:`PageRankScorer` is its serving
  adaptation: ``fit`` takes the ``(n, n)`` adjacency matrix, runs the
  power iteration once, and stores the stationary scores; scoring then
  takes one-column rows of node indices and returns each node's
  precomputed score — serving a link-structure ranking by id.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.baselines import (
    BordaCountAggregator,
    FirstPCARanker,
    KernelPCARanker,
    ManifoldRanker,
    MedianRankAggregator,
    WeightedSumRanker,
    pagerank,
)
from repro.core.exceptions import DataValidationError, NotFittedError
from repro.data.normalize import MinMaxNormalizer
from repro.families.adapter import ModelAdapter


class AlphaBaselineAdapter(ModelAdapter):
    """Common ground for the baselines: an ``alpha``-directed ranker."""

    @property
    def n_attributes(self) -> Optional[int]:
        return int(self.model.alpha.size)

    def _hyperparameters(self) -> dict:
        return {"alpha": self.model.alpha.tolist()}


class FirstPCAAdapter(AlphaBaselineAdapter):
    family = "first-pca"
    model_cls = FirstPCARanker

    @property
    def is_fitted(self) -> bool:
        return self.model.direction_ is not None

    def _fitted_payload(self) -> dict:
        return {
            "normalizer": self.model._normalizer.to_dict(),
            "mean": self.model.mean_.tolist(),
            "direction": self.model.direction_.tolist(),
        }

    def _restore_fitted(self, fitted: dict) -> None:
        self.model._normalizer = MinMaxNormalizer.from_dict(
            fitted["normalizer"]
        )
        self.model.mean_ = np.asarray(fitted["mean"], dtype=float)
        self.model.direction_ = np.asarray(
            fitted["direction"], dtype=float
        )


class KernelPCAAdapter(AlphaBaselineAdapter):
    family = "kernel-pca"
    model_cls = KernelPCARanker

    @property
    def is_fitted(self) -> bool:
        return self.model._component is not None

    def _hyperparameters(self) -> dict:
        return {
            "alpha": self.model.alpha.tolist(),
            "kernel": self.model.kernel,
            "gamma": self.model.gamma,
            "degree": self.model.degree,
        }

    def _fitted_payload(self) -> dict:
        return {
            "normalizer": self.model._normalizer.to_dict(),
            "train": self.model._train.tolist(),
            "row_means": self.model._row_means.tolist(),
            "total_mean": float(self.model._total_mean),
            "component": self.model._component.tolist(),
        }

    def _restore_fitted(self, fitted: dict) -> None:
        self.model._normalizer = MinMaxNormalizer.from_dict(
            fitted["normalizer"]
        )
        self.model._train = np.asarray(fitted["train"], dtype=float)
        self.model._row_means = np.asarray(
            fitted["row_means"], dtype=float
        )
        self.model._total_mean = float(fitted["total_mean"])
        self.model._component = np.asarray(
            fitted["component"], dtype=float
        )


class WeightedSumAdapter(AlphaBaselineAdapter):
    family = "weighted-sum"
    model_cls = WeightedSumRanker

    @property
    def is_fitted(self) -> bool:
        return self.model._normalizer is not None

    def _hyperparameters(self) -> dict:
        # The ranker normalises weights in its constructor (sum == 1),
        # so round-tripping the stored weights is exact: w / 1.0 == w.
        return {
            "alpha": self.model.alpha.tolist(),
            "weights": self.model.weights.tolist(),
        }

    def _fitted_payload(self) -> dict:
        return {"normalizer": self.model._normalizer.to_dict()}

    def _restore_fitted(self, fitted: dict) -> None:
        self.model._normalizer = MinMaxNormalizer.from_dict(
            fitted["normalizer"]
        )


class _AggregatorAdapter(AlphaBaselineAdapter):
    """Shared shape of the stateless, batch-relative aggregators.

    The wrapped aggregator carries no fitted state, but the serving
    contract still distinguishes fitted from unfitted (an unfitted
    registered model answers 409), so the adapter tracks the flag.
    """

    pointwise_scores = False

    def __init__(self, model=None, **hyperparams):
        super().__init__(model, **hyperparams)
        self._fitted = False

    def fit(self, X: np.ndarray) -> "_AggregatorAdapter":
        super().fit(X)
        self._fitted = True
        return self

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    def _fitted_payload(self) -> dict:
        return {}

    def _restore_fitted(self, fitted: dict) -> None:
        self._fitted = True


class MedianRankAdapter(_AggregatorAdapter):
    family = "median-rank"
    model_cls = MedianRankAggregator


class BordaCountAdapter(_AggregatorAdapter):
    family = "borda"
    model_cls = BordaCountAggregator


class ManifoldRankingAdapter(AlphaBaselineAdapter):
    family = "manifold"
    model_cls = ManifoldRanker

    @property
    def is_fitted(self) -> bool:
        return self.model._scores is not None

    def _hyperparameters(self) -> dict:
        return {
            "alpha": self.model.alpha.tolist(),
            "beta": self.model.beta,
            "sigma": self.model.sigma,
            "n_anchors": self.model.n_anchors,
        }

    def _fitted_payload(self) -> dict:
        return {
            "normalizer": self.model._normalizer.to_dict(),
            "train": self.model._train.tolist(),
            "scores": self.model._scores.tolist(),
        }

    def _restore_fitted(self, fitted: dict) -> None:
        self.model._normalizer = MinMaxNormalizer.from_dict(
            fitted["normalizer"]
        )
        self.model._train = np.asarray(fitted["train"], dtype=float)
        self.model._scores = np.asarray(fitted["scores"], dtype=float)


class PageRankScorer:
    """Row-scoring adaptation of the :func:`~repro.baselines.pagerank`
    graph function (see the module docstring)."""

    def __init__(
        self,
        damping: float = 0.85,
        tol: float = 1e-10,
        max_iter: int = 200,
    ):
        self.damping = float(damping)
        self.tol = float(tol)
        self.max_iter = int(max_iter)
        self.scores_: Optional[np.ndarray] = None
        self.n_iterations_: int = 0
        self.converged_: bool = False

    def fit(self, adjacency: np.ndarray) -> "PageRankScorer":
        result = pagerank(
            adjacency,
            damping=self.damping,
            tol=self.tol,
            max_iter=self.max_iter,
        )
        self.scores_ = result.scores
        self.n_iterations_ = int(result.n_iterations)
        self.converged_ = bool(result.converged)
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        if self.scores_ is None:
            raise NotFittedError("PageRankScorer")
        X = np.asarray(X, dtype=float)
        if X.ndim != 2 or X.shape[1] != 1:
            raise DataValidationError(
                "PageRank scoring rows are single node indices; "
                f"expected shape (n, 1), got {X.shape}"
            )
        ids = X[:, 0]
        if ids.size and not np.all(ids == np.floor(ids)):
            raise DataValidationError(
                "PageRank node indices must be integers"
            )
        ids = ids.astype(int)
        n = self.scores_.size
        if ids.size and (ids.min() < 0 or ids.max() >= n):
            raise DataValidationError(
                f"PageRank node index out of range [0, {n})"
            )
        return self.scores_[ids]


class PageRankAdapter(ModelAdapter):
    family = "pagerank"
    model_cls = PageRankScorer

    @property
    def is_fitted(self) -> bool:
        return self.model.scores_ is not None

    @property
    def n_attributes(self) -> int:
        # Scoring rows are single node indices regardless of graph size.
        return 1

    def _hyperparameters(self) -> dict:
        return {
            "damping": self.model.damping,
            "tol": self.model.tol,
            "max_iter": self.model.max_iter,
        }

    def _fitted_payload(self) -> dict:
        return {
            "scores": self.model.scores_.tolist(),
            "n_iterations": int(self.model.n_iterations_),
            "converged": bool(self.model.converged_),
        }

    def _restore_fitted(self, fitted: dict) -> None:
        self.model.scores_ = np.asarray(fitted["scores"], dtype=float)
        self.model.n_iterations_ = int(fitted["n_iterations"])
        self.model.converged_ = bool(fitted["converged"])
