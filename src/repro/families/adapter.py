"""Shared adapter machinery for non-Bézier model families.

An adapter wraps one of the existing zoo models (``repro.princurve``,
``repro.baselines``) and supplies the parts of the
:class:`~repro.core.model_api.ScorableModel` contract the wrapped class
predates: the ``family``/``format_version`` identity, exact
``to_payload``/``from_payload`` persistence, the serving
``score_batch`` signature, and the ``is_fitted``/``n_attributes``
introspection the registry's ``describe()`` needs.

The wrapped model is exposed as ``.model`` so evaluation code that
wants the family-specific surface (e.g. ``reconstruction_error`` on a
principal curve) can still reach it.
"""

from __future__ import annotations

from typing import Any, ClassVar, List, Optional

import numpy as np

from repro.core.exceptions import ConfigurationError, DataValidationError


def as_float_list(array) -> Optional[list]:
    """``tolist()`` with ``None`` passthrough, for payload fields."""
    if array is None:
        return None
    return np.asarray(array, dtype=float).tolist()


class ModelAdapter:
    """Base class: delegation + the payload envelope shared by every
    adapted family.

    Subclasses set the class-level identity (``family``, ``model_cls``,
    optionally ``pointwise_scores``) and implement the four state
    hooks: ``_hyperparameters``, ``_fitted_payload``,
    ``_restore_fitted`` and the ``is_fitted``/``n_attributes``
    properties.
    """

    family: ClassVar[str]
    format_version: ClassVar[int] = 1
    pointwise_scores: ClassVar[bool] = True
    model_cls: ClassVar[type]

    def __init__(self, model: Any = None, **hyperparams):
        if model is not None:
            if hyperparams:
                raise ConfigurationError(
                    f"pass either a prebuilt {self.model_cls.__name__} "
                    "or hyperparameters, not both"
                )
            if not isinstance(model, self.model_cls):
                raise ConfigurationError(
                    f"{type(self).__name__} wraps "
                    f"{self.model_cls.__name__}, got "
                    f"{type(model).__name__}"
                )
        else:
            model = self.model_cls(**hyperparams)
        self.model = model
        self.feature_names_: Optional[List[str]] = None

    def __repr__(self) -> str:
        return f"{type(self).__name__}(family={self.family!r})"

    # ------------------------------------------------------------------
    # Scoring surface
    # ------------------------------------------------------------------
    def fit(self, X: np.ndarray) -> "ModelAdapter":
        self.model.fit(np.asarray(X, dtype=float))
        return self

    def score_samples(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=float)
        # Uniform width validation so every family surfaces a shape
        # mismatch as DataValidationError (the daemon's 422), not as a
        # family-specific broadcasting error deep in the wrapped model.
        expected = self.n_attributes
        if (
            expected is not None
            and X.ndim == 2
            and X.shape[1] != expected
        ):
            raise DataValidationError(
                f"model expects {expected} attributes, got {X.shape[1]}"
            )
        return np.asarray(self.model.score_samples(X), dtype=float)

    def score_batch(
        self,
        X: np.ndarray,
        chunk_size: Optional[int] = None,
        n_jobs: Optional[int] = None,
        backend: Any = None,
        dtype: Any = None,
    ) -> np.ndarray:
        """Serving entry point with the daemon's uniform signature.

        ``backend``/``dtype`` select projection-engine kernels, which
        only the Bézier family has; they are accepted (so callers need
        no per-family branches) and ignored here.
        """
        # Imported lazily: repro.serving's persistence module imports
        # repro.families for payload dispatch, so a module-level import
        # here would be circular.
        from repro.serving.batch import score_batch

        return score_batch(
            self, X, chunk_size=chunk_size, n_jobs=n_jobs,
            backend=backend, dtype=dtype,
        )

    # ------------------------------------------------------------------
    # State hooks
    # ------------------------------------------------------------------
    @property
    def is_fitted(self) -> bool:
        raise NotImplementedError

    @property
    def n_attributes(self) -> Optional[int]:
        raise NotImplementedError

    def _hyperparameters(self) -> dict:
        """JSON-serialisable constructor arguments of the wrapped model."""
        raise NotImplementedError

    def _fitted_payload(self) -> dict:
        """JSON-serialisable fitted state (called only when fitted)."""
        raise NotImplementedError

    def _restore_fitted(self, fitted: dict) -> None:
        """Inverse of :meth:`_fitted_payload` onto ``self.model``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Persistence envelope
    # ------------------------------------------------------------------
    def to_payload(self) -> dict:
        """Exact snapshot: ``from_payload(to_payload())`` scores any
        input bit-identically (floats survive JSON via shortest
        round-trip ``repr``)."""
        return {
            "family": self.family,
            "format_version": self.format_version,
            "hyperparameters": self._hyperparameters(),
            "feature_names": self.feature_names_,
            "fitted": self._fitted_payload() if self.is_fitted else None,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "ModelAdapter":
        family = payload.get("family")
        if family != cls.family:
            raise ConfigurationError(
                f"payload family {family!r} does not match adapter "
                f"family {cls.family!r}"
            )
        version = payload.get("format_version")
        if version != cls.format_version:
            raise ConfigurationError(
                f"unsupported model format version {version!r} for "
                f"family {cls.family!r}; this build reads format "
                f"version {cls.format_version}"
            )
        adapter = cls(**payload.get("hyperparameters", {}))
        names = payload.get("feature_names")
        adapter.feature_names_ = (
            [str(name) for name in names] if names is not None else None
        )
        fitted = payload.get("fitted")
        if fitted is not None:
            adapter._restore_fitted(fitted)
        return adapter
