"""ScorableModel adapters for the ``repro.princurve`` comparators.

All four curves share the :class:`~repro.princurve.base.PrincipalCurveModel`
interface, so the fitted state that must survive a round trip is
uniform: the polyline/node chain the curve is stored as, the
orientation flip resolved against ``orient_alpha`` at fit time, and a
handful of per-family scalars (iteration counts, the elastic map's
score offset, Tibshirani's noise variance).  The training matrix
itself is *not* persisted — projection needs only the node chain — so
a saved principal curve is a few KB however large the fit was.
"""

from __future__ import annotations

from typing import ClassVar, Optional

import numpy as np

from repro.families.adapter import ModelAdapter, as_float_list
from repro.princurve import (
    ElasticMapCurve,
    HastieStuetzleCurve,
    PolygonalLineCurve,
    TibshiraniCurve,
)


class PrincipalCurveAdapter(ModelAdapter):
    """Common persistence for the principal-curve family adapters.

    Subclasses name their scalar hyperparameters (``HYPERPARAMS``,
    matching constructor keywords and instance attributes) and
    override the node-state hooks where their fitted state differs
    from the plain node-chain default.
    """

    HYPERPARAMS: ClassVar[tuple] = ()

    @property
    def is_fitted(self) -> bool:
        return self.model._fitted_X is not None

    @property
    def n_attributes(self) -> Optional[int]:
        chain = self._node_chain()
        if chain is not None:
            return int(np.asarray(chain).shape[1])
        if self.model.orient_alpha is not None:
            return int(self.model.orient_alpha.size)
        return None

    def _node_chain(self):
        return self.model.nodes_

    def _hyperparameters(self) -> dict:
        hp = {
            name: getattr(self.model, name) for name in self.HYPERPARAMS
        }
        hp["orient_alpha"] = as_float_list(self.model.orient_alpha)
        return hp

    def _mark_fitted(self, n_features: int, flip: bool) -> None:
        # The base class keeps the training matrix only as a
        # fitted-ness sentinel; a zero-row matrix of the right width
        # restores that state without persisting the data.
        self.model._fitted_X = np.zeros((0, int(n_features)))
        self.model._flip = bool(flip)


class HastieStuetzleAdapter(PrincipalCurveAdapter):
    family = "hastie-stuetzle"
    model_cls = HastieStuetzleCurve
    HYPERPARAMS = ("smoother", "bandwidth", "n_nodes", "max_iter", "tol")

    def _fitted_payload(self) -> dict:
        return {
            "nodes": self.model.nodes_.tolist(),
            "n_iterations": int(self.model.n_iterations_),
            "flip": bool(self.model._flip),
        }

    def _restore_fitted(self, fitted: dict) -> None:
        self.model.nodes_ = np.asarray(fitted["nodes"], dtype=float)
        self.model.n_iterations_ = int(fitted["n_iterations"])
        self._mark_fitted(self.model.nodes_.shape[1], fitted["flip"])


class PolygonalLineAdapter(PrincipalCurveAdapter):
    family = "polyline"
    model_cls = PolygonalLineCurve
    HYPERPARAMS = ("n_vertices", "curvature_penalty", "n_relaxations")

    def _node_chain(self):
        return self.model.vertices_

    def _fitted_payload(self) -> dict:
        return {
            "vertices": self.model.vertices_.tolist(),
            "flip": bool(self.model._flip),
        }

    def _restore_fitted(self, fitted: dict) -> None:
        self.model.vertices_ = np.asarray(fitted["vertices"], dtype=float)
        self._mark_fitted(self.model.vertices_.shape[1], fitted["flip"])


class ElasticMapAdapter(PrincipalCurveAdapter):
    family = "elastic-map"
    model_cls = ElasticMapCurve
    HYPERPARAMS = (
        "n_nodes", "stretch", "bend", "max_iter", "tol", "centered_scores",
    )

    def _fitted_payload(self) -> dict:
        return {
            "nodes": self.model.nodes_.tolist(),
            "energy_trace": [float(e) for e in self.model.energy_trace_],
            "score_offset": float(self.model._score_offset),
            "flip": bool(self.model._flip),
        }

    def _restore_fitted(self, fitted: dict) -> None:
        self.model.nodes_ = np.asarray(fitted["nodes"], dtype=float)
        self.model.energy_trace_ = [
            float(e) for e in fitted["energy_trace"]
        ]
        self.model._score_offset = float(fitted["score_offset"])
        self._mark_fitted(self.model.nodes_.shape[1], fitted["flip"])


class TibshiraniAdapter(PrincipalCurveAdapter):
    family = "tibshirani"
    model_cls = TibshiraniCurve
    HYPERPARAMS = (
        "n_nodes", "smoothness", "max_iter", "tol", "min_variance",
    )

    def _fitted_payload(self) -> dict:
        return {
            "nodes": self.model.nodes_.tolist(),
            "variance": float(self.model.variance_),
            "log_likelihood_trace": [
                float(v) for v in self.model.log_likelihood_trace_
            ],
            "flip": bool(self.model._flip),
        }

    def _restore_fitted(self, fitted: dict) -> None:
        self.model.nodes_ = np.asarray(fitted["nodes"], dtype=float)
        self.model.variance_ = float(fitted["variance"])
        self.model.log_likelihood_trace_ = [
            float(v) for v in fitted["log_likelihood_trace"]
        ]
        self._mark_fitted(self.model.nodes_.shape[1], fitted["flip"])
