"""The model-family registry: family name → ScorableModel adapter.

Every model the daemon can serve belongs to a **family** — a short
kebab-case name persisted into payloads and manifests, reported by
``GET /v1/models``, counted in ``/metrics``, and used by the
micro-batcher's coalescing key.  This package maps each family name to
the class implementing the :class:`~repro.core.model_api.ScorableModel`
contract for it, plus the metadata the persistence layer needs:

``array_fields``
    Nested payload paths of the family's array-valued state, keyed by
    the flat name each array gets inside an ``.npz`` archive or a
    manifest's ``arrays.npz`` shard.

``pointwise``
    Mirror of the class's ``pointwise_scores`` flag, so serving layers
    can consult the registry without instantiating anything.

``build``
    ``build(alpha)`` → an unfitted model with default hyperparameters,
    used by ``repro save --family <name>`` (``alpha`` is the task
    direction vector; the pagerank family ignores it — its fit input
    is an adjacency matrix, not attribute rows).

The Bézier ranking curve (family ``"rpc"``) needs no adapter —
:class:`~repro.core.rpc.RankingPrincipalCurve` implements the protocol
natively and keeps its engine-backed fast path byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional

import numpy as np

from repro.core.exceptions import ConfigurationError
from repro.core.model_api import ScorableModel, describe_model
from repro.core.rpc import RankingPrincipalCurve
from repro.families.adapter import ModelAdapter
from repro.families.baselines import (
    BordaCountAdapter,
    FirstPCAAdapter,
    KernelPCAAdapter,
    ManifoldRankingAdapter,
    MedianRankAdapter,
    PageRankAdapter,
    PageRankScorer,
    WeightedSumAdapter,
)
from repro.families.princurve import (
    ElasticMapAdapter,
    HastieStuetzleAdapter,
    PolygonalLineAdapter,
    PrincipalCurveAdapter,
    TibshiraniAdapter,
)

__all__ = [
    "Family",
    "ModelAdapter",
    "PrincipalCurveAdapter",
    "ElasticMapAdapter",
    "HastieStuetzleAdapter",
    "PolygonalLineAdapter",
    "TibshiraniAdapter",
    "FirstPCAAdapter",
    "KernelPCAAdapter",
    "WeightedSumAdapter",
    "MedianRankAdapter",
    "BordaCountAdapter",
    "ManifoldRankingAdapter",
    "PageRankAdapter",
    "PageRankScorer",
    "build_model",
    "describe_model",
    "family_names",
    "family_of",
    "get_family",
    "register_family",
    "resolve_payload_family",
]


@dataclass(frozen=True)
class Family:
    """Registry entry for one servable model family."""

    name: str
    cls: type
    description: str
    #: Flat npz/shard name -> nested payload path of each array field.
    array_fields: Mapping[str, tuple] = field(default_factory=dict)
    pointwise: bool = True
    #: ``build(alpha)`` -> unfitted model with default hyperparameters.
    build: Optional[Callable] = None

    @property
    def format_version(self) -> int:
        return int(self.cls.format_version)


_FAMILIES: Dict[str, Family] = {}


def register_family(family: Family) -> Family:
    """Add (or replace) a family in the registry."""
    if family.cls.family != family.name:
        raise ConfigurationError(
            f"family entry {family.name!r} names a class whose family "
            f"is {family.cls.family!r}"
        )
    _FAMILIES[family.name] = family
    return family


def family_names() -> List[str]:
    """Registered family names, sorted."""
    return sorted(_FAMILIES)


def get_family(name: str) -> Family:
    """Look a family up by name; unknown names fail loudly."""
    try:
        return _FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown model family {name!r}; supported families: "
            f"{family_names()}"
        ) from None


def family_of(model: ScorableModel) -> str:
    """The family name a model instance belongs to."""
    name = getattr(model, "family", None)
    if name is None:
        raise ConfigurationError(
            f"{type(model).__name__} declares no model family; adapt it "
            "via repro.families before serving"
        )
    return str(name)


def resolve_payload_family(payload: dict) -> Family:
    """The family a persisted payload belongs to.

    Payloads written before the family registry existed carry no
    ``family`` key but always a ``type`` of ``"RankingPrincipalCurve"``
    — those resolve to the ``"rpc"`` family, which is what keeps every
    v1 single-file payload loading unchanged.
    """
    name = payload.get("family")
    if name is None and payload.get("type") == "RankingPrincipalCurve":
        name = "rpc"
    if name is None:
        raise ConfigurationError(
            "payload names no model family (and is not a legacy "
            "RankingPrincipalCurve payload); supported families: "
            f"{family_names()}"
        )
    return get_family(str(name))


def build_model(
    name: str, alpha: Optional[np.ndarray] = None
) -> ScorableModel:
    """An unfitted model of family ``name`` with default hyperparameters.

    This is the ``repro save --family`` entry point; families that
    require a task direction raise :class:`ConfigurationError` when
    ``alpha`` is missing.
    """
    family = get_family(name)
    if family.build is None:
        raise ConfigurationError(
            f"family {family.name!r} cannot be built from the CLI"
        )
    return family.build(alpha)


def _require_alpha(name: str, alpha) -> np.ndarray:
    if alpha is None:
        raise ConfigurationError(
            f"family {name!r} needs a task direction vector (--alpha)"
        )
    return np.asarray(alpha, dtype=float)


# ----------------------------------------------------------------------
# Built-in families
# ----------------------------------------------------------------------

#: Nested payload locations of the Bézier curve's array-valued fields
#: (the historical ``.npz`` layout, unchanged so old archives load).
RPC_ARRAY_FIELDS = {
    "control_points": ("fitted", "curve", "control_points"),
    "data_min": ("fitted", "normalizer", "data_min"),
    "data_max": ("fitted", "normalizer", "data_max"),
    "training_scores": ("fitted", "training_scores"),
    "objectives": ("fitted", "trace", "objectives"),
    "step_sizes": ("fitted", "trace", "step_sizes"),
}

register_family(Family(
    name="rpc",
    cls=RankingPrincipalCurve,
    description="Bézier ranking principal curve (the paper's model)",
    array_fields=RPC_ARRAY_FIELDS,
    build=lambda alpha: RankingPrincipalCurve(
        alpha=_require_alpha("rpc", alpha)
    ),
))

register_family(Family(
    name="hastie-stuetzle",
    cls=HastieStuetzleAdapter,
    description="Hastie–Stuetzle smooth principal curve",
    array_fields={"nodes": ("fitted", "nodes")},
    build=lambda alpha: HastieStuetzleAdapter(
        orient_alpha=_require_alpha("hastie-stuetzle", alpha)
    ),
))

register_family(Family(
    name="polyline",
    cls=PolygonalLineAdapter,
    description="Kégl polygonal principal line",
    array_fields={"vertices": ("fitted", "vertices")},
    build=lambda alpha: PolygonalLineAdapter(
        orient_alpha=_require_alpha("polyline", alpha)
    ),
))

register_family(Family(
    name="elastic-map",
    cls=ElasticMapAdapter,
    description="Gorban–Zinovyev elastic map curve",
    array_fields={
        "nodes": ("fitted", "nodes"),
        "energy_trace": ("fitted", "energy_trace"),
    },
    build=lambda alpha: ElasticMapAdapter(
        orient_alpha=_require_alpha("elastic-map", alpha)
    ),
))

register_family(Family(
    name="tibshirani",
    cls=TibshiraniAdapter,
    description="Tibshirani probabilistic principal curve",
    array_fields={
        "nodes": ("fitted", "nodes"),
        "log_likelihood_trace": ("fitted", "log_likelihood_trace"),
    },
    build=lambda alpha: TibshiraniAdapter(
        orient_alpha=_require_alpha("tibshirani", alpha)
    ),
))

register_family(Family(
    name="first-pca",
    cls=FirstPCAAdapter,
    description="First-principal-component linear ranker",
    array_fields={
        "data_min": ("fitted", "normalizer", "data_min"),
        "data_max": ("fitted", "normalizer", "data_max"),
        "mean": ("fitted", "mean"),
        "direction": ("fitted", "direction"),
    },
    build=lambda alpha: FirstPCAAdapter(
        alpha=_require_alpha("first-pca", alpha)
    ),
))

register_family(Family(
    name="kernel-pca",
    cls=KernelPCAAdapter,
    description="Kernel-PCA leading-component ranker",
    array_fields={
        "data_min": ("fitted", "normalizer", "data_min"),
        "data_max": ("fitted", "normalizer", "data_max"),
        "train": ("fitted", "train"),
        "row_means": ("fitted", "row_means"),
        "component": ("fitted", "component"),
    },
    build=lambda alpha: KernelPCAAdapter(
        alpha=_require_alpha("kernel-pca", alpha)
    ),
))

register_family(Family(
    name="weighted-sum",
    cls=WeightedSumAdapter,
    description="Expert-weighted attribute summation",
    array_fields={
        "data_min": ("fitted", "normalizer", "data_min"),
        "data_max": ("fitted", "normalizer", "data_max"),
    },
    build=lambda alpha: WeightedSumAdapter(
        alpha=_require_alpha("weighted-sum", alpha)
    ),
))

register_family(Family(
    name="median-rank",
    cls=MedianRankAdapter,
    description="Median (mean-position) rank aggregation, batch-relative",
    pointwise=False,
    build=lambda alpha: MedianRankAdapter(
        alpha=_require_alpha("median-rank", alpha)
    ),
))

register_family(Family(
    name="borda",
    cls=BordaCountAdapter,
    description="Borda count rank aggregation, batch-relative",
    pointwise=False,
    build=lambda alpha: BordaCountAdapter(
        alpha=_require_alpha("borda", alpha)
    ),
))

register_family(Family(
    name="manifold",
    cls=ManifoldRankingAdapter,
    description="Manifold-ranking nearest-neighbour scorer",
    array_fields={
        "data_min": ("fitted", "normalizer", "data_min"),
        "data_max": ("fitted", "normalizer", "data_max"),
        "train": ("fitted", "train"),
        "scores": ("fitted", "scores"),
    },
    build=lambda alpha: ManifoldRankingAdapter(
        alpha=_require_alpha("manifold", alpha)
    ),
))

register_family(Family(
    name="pagerank",
    cls=PageRankAdapter,
    description="PageRank stationary scores served by node index "
    "(fit input is the adjacency matrix)",
    array_fields={"scores": ("fitted", "scores")},
    build=lambda alpha: PageRankAdapter(),
))
