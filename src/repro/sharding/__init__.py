"""Multi-host sharded scoring and rank (the ``repro shard`` coordinator).

Single-box serving and streaming stopped, deliberately, at the machine
boundary: ``repro serve --workers N`` pre-forks one box's cores, and
the external sorter ranks unbounded inputs on one disk.  This package
crosses that boundary with the primitives those layers already shaped
for it:

- the :mod:`repro.serving.extsort` spill-run format is
  *merge-anywhere* — a run sorted on any host merges exactly with runs
  from any other host, because entries compare as
  ``(neg_score, global_row_index)`` tuples;
- the daemon's ``POST /v1/models/<name>/rank-shard`` endpoint scores
  one contiguous block of rows and ships it back as one such run;
- the ``/metrics`` latency histograms use fixed shared bucket bounds,
  so shard metrics sum into an exact coordinator-level roll-up.

Pieces
------
:class:`~repro.sharding.hashring.ConsistentHashRing`
    Deterministic consistent hashing of row-range blocks over shard
    hosts; removing a dead host moves only its own blocks.
:class:`~repro.sharding.coordinator.ShardCoordinator`
    Streams a CSV in blocks, posts each block to its shard, adopts the
    returned runs into an :class:`~repro.serving.extsort.ExternalSorter`
    and k-way merges them into a ranking byte-identical to one box.
    A shard death mid-job reroutes that shard's blocks to survivors —
    every block lands exactly once.
:class:`~repro.sharding.local.LocalShardFleet`
    Spawns throwaway local ``repro serve`` daemons on ephemeral ports —
    the testing/CI topology, and the ``repro shard --local-workers N``
    backend.
:func:`~repro.sharding.rollup.rollup_metrics`
    The coordinator-level ``/metrics``: fetches every shard's JSON
    metrics and merges counters and latency histograms exactly.

See ``docs/ops.md`` ("Sharded scoring and rank") for topology and
failure semantics.
"""

from repro.sharding.coordinator import ShardCoordinator, ShardJobError
from repro.sharding.hashring import ConsistentHashRing
from repro.sharding.local import LocalShardFleet
from repro.sharding.rollup import fetch_shard_metrics, rollup_metrics

__all__ = [
    "ConsistentHashRing",
    "LocalShardFleet",
    "ShardCoordinator",
    "ShardJobError",
    "fetch_shard_metrics",
    "rollup_metrics",
]
