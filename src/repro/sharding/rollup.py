"""Coordinator-level ``/metrics``: exact roll-up across shard daemons.

This is the :class:`~repro.server.metrics.SharedMetricsStore` idea one
level up.  Within one box, worker processes sum their mmap slots into
fleet totals; across boxes there is no shared memory, but the same
arithmetic works over HTTP because every mergeable series is a plain
count: request/status/row counters add, and the latency histograms use
the *fixed shared bucket bounds* of :mod:`repro.obs.histogram`, so
adding two shards' bucket counts *is* the fleet histogram — exactly,
with no percentile averaging (averaging p99s is the classic roll-up
mistake; summing buckets and recomputing is the design reason the
buckets replaced sample rings in PR 7).

Each shard's ``GET /metrics`` JSON carries its raw buckets under the
additive ``latency_histograms`` key (itself fleet-merged across that
shard's worker processes when it runs ``--workers N``), so the roll-up
composes: coordinator over shards over workers, all exact.
"""

from __future__ import annotations

import json
import urllib.request
from typing import Dict, List, Optional, Sequence

from repro.obs.histogram import (
    HISTOGRAM_FORMAT_VERSION,
    N_LATENCY_BUCKETS,
    percentile_from_buckets,
)
from repro.server.metrics import PERCENTILES

#: Top-level counters summed across shards.
_SUM_KEYS = (
    "requests_total",
    "rows_scored_total",
    "errors_total",
    "requests_shed_total",
)


def fetch_shard_metrics(url: str, timeout: float = 10.0) -> dict:
    """One shard's ``GET /metrics`` JSON payload."""
    with urllib.request.urlopen(
        f"{url.rstrip('/')}/metrics", timeout=timeout
    ) as response:
        return json.loads(response.read())


def rollup_metrics(
    payloads: Sequence[dict], urls: Optional[Sequence[str]] = None
) -> dict:
    """Merge shard ``/metrics`` payloads into one coordinator view.

    Counters sum; per-endpoint status counts sum; latency percentiles
    are recomputed from the *summed* histogram buckets (exact — see
    the module docstring).  A shard payload missing the
    ``latency_histograms`` key (an old daemon) still contributes its
    counters; its latencies are simply absent from the merged
    histogram, and the payload notes how many shards carried buckets.

    Parameters
    ----------
    payloads:
        One decoded ``/metrics`` JSON dict per shard (see
        :func:`fetch_shard_metrics`).
    urls:
        Optional shard URLs aligned with ``payloads``, echoed in the
        report for operators.
    """
    merged: dict = {key: 0 for key in _SUM_KEYS}
    endpoint_requests: Dict[str, int] = {}
    endpoint_status: Dict[str, Dict[str, int]] = {}
    buckets: Dict[str, List[float]] = {}
    sums: Dict[str, float] = {}
    shards_with_histograms = 0
    per_shard_requests = []
    for payload in payloads:
        for key in _SUM_KEYS:
            merged[key] += int(payload.get(key, 0))
        per_shard_requests.append(int(payload.get("requests_total", 0)))
        for endpoint, entry in (payload.get("endpoints") or {}).items():
            endpoint_requests[endpoint] = endpoint_requests.get(
                endpoint, 0
            ) + int(entry.get("requests", 0))
            status_sums = endpoint_status.setdefault(endpoint, {})
            for status, count in (entry.get("by_status") or {}).items():
                status_sums[status] = status_sums.get(status, 0) + int(count)
        histograms = payload.get("latency_histograms") or {}
        endpoints = histograms.get("endpoints") or {}
        if endpoints:
            shards_with_histograms += 1
        for endpoint, cells in endpoints.items():
            counts = [float(count) for count in cells.get("buckets", [])]
            if len(counts) != N_LATENCY_BUCKETS:
                # A foreign bucket layout cannot be summed exactly;
                # skip it rather than silently corrupt the merge.
                continue
            into = buckets.setdefault(endpoint, [0.0] * N_LATENCY_BUCKETS)
            for i, count in enumerate(counts):
                into[i] += count
            sums[endpoint] = sums.get(endpoint, 0.0) + float(
                cells.get("sum_seconds", 0.0)
            )
    endpoints_out: Dict[str, dict] = {}
    for endpoint in sorted(endpoint_requests):
        entry: dict = {
            "requests": endpoint_requests[endpoint],
            "by_status": {
                status: count
                for status, count in sorted(
                    endpoint_status.get(endpoint, {}).items()
                )
            },
        }
        merged_counts = buckets.get(endpoint)
        if merged_counts and sum(merged_counts) > 0:
            entry["latency_ms"] = {
                f"p{p}": float(
                    round(
                        percentile_from_buckets(merged_counts, p) * 1e3, 3
                    )
                )
                for p in PERCENTILES
            }
        endpoints_out[endpoint] = entry
    merged["endpoints"] = endpoints_out
    merged["latency_histograms"] = {
        "format_version": HISTOGRAM_FORMAT_VERSION,
        "endpoints": {
            endpoint: {
                "buckets": [int(count) for count in counts],
                "sum_seconds": float(sums.get(endpoint, 0.0)),
            }
            for endpoint, counts in sorted(buckets.items())
        },
    }
    merged["shards"] = {
        "count": len(payloads),
        "with_histograms": shards_with_histograms,
        "requests": per_shard_requests,
    }
    if urls is not None:
        merged["shards"]["urls"] = [str(url) for url in urls]
    return merged
