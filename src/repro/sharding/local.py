"""A throwaway fleet of local shard daemons, for tests and CI.

``repro shard --local-workers N`` (and the kill-a-shard drill in the
load harness) need real, separate daemon *processes* — a thread-local
fake would never exercise connection death — but nothing about the
coordinator cares that they share a box.  :class:`LocalShardFleet`
spawns ``python -m repro serve`` subprocesses on ephemeral ports,
parses each boot line for the bound port, waits for ``/healthz``, and
tears everything down on exit.  :meth:`kill` SIGKILLs one member
mid-job, which is exactly the failure the coordinator's reroute path
is drilled against.
"""

from __future__ import annotations

import pathlib
import re
import signal
import subprocess
import sys
import time
import urllib.request
from typing import List, Optional, Sequence

from repro.core.exceptions import ConfigurationError
from repro.sharding.coordinator import ShardJobError

#: The daemon's boot line, e.g. ``serving 1 model(s) on http://127.0.0.1:43210``.
_BOOT_LINE = re.compile(r"serving .* on http://[^:]+:(\d+)")


class LocalShardFleet:
    """N local ``repro serve`` daemons on ephemeral ports.

    Use as a context manager::

        with LocalShardFleet("model.json", n_shards=3) as fleet:
            coordinator = ShardCoordinator(fleet.urls, fleet.model_name)
            ...

    Parameters
    ----------
    model_path:
        Saved model file (or manifest directory) every shard serves.
    n_shards:
        Daemons to spawn.
    model_name:
        Name the model registers under (``shard`` clients score
        against it).
    extra_args:
        Additional ``repro serve`` arguments appended to every
        daemon's command line (e.g. ``["--backend", "closed-form"]``).
    boot_timeout:
        Seconds to wait for each daemon's port line + first healthy
        ``/healthz``.
    """

    def __init__(
        self,
        model_path: str | pathlib.Path,
        n_shards: int = 3,
        model_name: str = "shard-model",
        extra_args: Sequence[str] = (),
        boot_timeout: float = 30.0,
    ):
        n_shards = int(n_shards)
        if n_shards < 1:
            raise ConfigurationError(
                f"n_shards must be >= 1, got {n_shards}"
            )
        self.model_path = str(model_path)
        self.n_shards = n_shards
        self.model_name = str(model_name)
        self.extra_args = list(extra_args)
        self.boot_timeout = float(boot_timeout)
        self._procs: List[subprocess.Popen] = []
        self.urls: List[str] = []

    # ------------------------------------------------------------------
    def __enter__(self) -> "LocalShardFleet":
        try:
            for _ in range(self.n_shards):
                self._procs.append(self._spawn())
            for proc in self._procs:
                self.urls.append(self._await_boot(proc))
        except BaseException:
            self.terminate()
            raise
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.terminate()

    def _spawn(self) -> subprocess.Popen:
        command = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--model",
            f"{self.model_name}={self.model_path}",
            "--host",
            "127.0.0.1",
            "--port",
            "0",
            *self.extra_args,
        ]
        return subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )

    def _await_boot(self, proc: subprocess.Popen) -> str:
        deadline = time.monotonic() + self.boot_timeout
        port: Optional[int] = None
        assert proc.stdout is not None
        while time.monotonic() < deadline:
            line = proc.stdout.readline()
            if not line:
                raise ShardJobError(
                    f"shard daemon exited during boot "
                    f"(code {proc.poll()})"
                )
            match = _BOOT_LINE.search(line)
            if match:
                port = int(match.group(1))
                break
        if port is None:
            raise ShardJobError(
                f"shard daemon printed no port line within "
                f"{self.boot_timeout:g}s"
            )
        url = f"http://127.0.0.1:{port}"
        while time.monotonic() < deadline:
            try:
                with urllib.request.urlopen(
                    f"{url}/healthz", timeout=1.0
                ) as response:
                    if response.status == 200:
                        return url
            except OSError:
                time.sleep(0.05)
        raise ShardJobError(
            f"shard daemon on {url} never answered /healthz within "
            f"{self.boot_timeout:g}s"
        )

    # ------------------------------------------------------------------
    def kill(self, index: int, sig: int = signal.SIGKILL) -> str:
        """Kill one shard (default SIGKILL — no drain, no goodbye).

        Returns the killed shard's URL so a drill can assert the
        coordinator rerouted exactly that shard's blocks.
        """
        proc = self._procs[index]
        url = self.urls[index]
        if proc.poll() is None:
            proc.send_signal(sig)
            proc.wait(timeout=10)
        return url

    def alive(self) -> List[str]:
        """URLs of the members still running."""
        return [
            url
            for url, proc in zip(self.urls, self._procs)
            if proc.poll() is None
        ]

    def terminate(self) -> None:
        """Stop every member (SIGTERM, then SIGKILL stragglers)."""
        for proc in self._procs:
            if proc.poll() is None:
                proc.terminate()
        for proc in self._procs:
            try:
                proc.wait(timeout=10)
            except subprocess.TimeoutExpired:  # pragma: no cover - safety
                proc.kill()
                proc.wait(timeout=10)
            if proc.stdout is not None:
                proc.stdout.close()
        self._procs = []
        self.urls = []
