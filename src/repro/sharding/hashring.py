"""Consistent hashing of row-range blocks over shard hosts.

The coordinator splits an input into fixed-size blocks of consecutive
rows and must decide which shard scores each block.  A modulo over the
shard list would reshuffle almost every block when one shard dies; a
consistent-hash ring moves only the dead shard's blocks to survivors,
which is what makes the mid-job retry path cheap and deterministic.

Determinism matters doubly here: the assignment must be identical
across coordinator processes (a rerun of the same job against the same
fleet sends the same blocks to the same hosts, which is how the CI
drill can reason about which blocks a killed shard owned), so hashing
uses :func:`hashlib.blake2b` — Python's ``hash()`` is salted per
process and would scatter blocks differently every run.

Each node is placed on the ring at ``replicas`` pseudo-random points
(virtual nodes), smoothing the load split: with the default 96 points
per node a 3-node ring is balanced to within a few percent.  A block
key hashes to a point on the same ring and is owned by the first node
point at or after it (wrapping at the top).
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Iterable, List, Tuple

from repro.core.exceptions import ConfigurationError

#: Virtual-node points per shard.  More points = smoother split and a
#: finer-grained reshuffle on node death, at O(points log points) ring
#: build cost — negligible at fleet sizes this system targets.
DEFAULT_REPLICAS = 96


def _hash64(key: str) -> int:
    """Deterministic 64-bit ring position of ``key`` (process-stable)."""
    return int.from_bytes(
        hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest(), "big"
    )


class ConsistentHashRing:
    """Deterministic consistent-hash ring over named nodes.

    >>> ring = ConsistentHashRing(["a", "b", "c"])
    >>> owner = ring.node_for(17)
    >>> ring.remove(owner)          # 17 moves ...
    >>> ring.node_for(17) != owner  # ... but only dead-owned keys move
    True
    """

    def __init__(
        self, nodes: Iterable[str], replicas: int = DEFAULT_REPLICAS
    ):
        replicas = int(replicas)
        if replicas < 1:
            raise ConfigurationError(
                f"replicas must be >= 1, got {replicas}"
            )
        self._replicas = replicas
        self._points: List[Tuple[int, str]] = []
        self._nodes: set = set()
        for node in nodes:
            self.add(node)
        if not self._nodes:
            raise ConfigurationError(
                "a hash ring needs at least one node"
            )

    @property
    def nodes(self) -> Tuple[str, ...]:
        """Live nodes, sorted (stable for reporting)."""
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return str(node) in self._nodes

    def add(self, node: str) -> None:
        node = str(node)
        if node in self._nodes:
            return
        self._nodes.add(node)
        for replica in range(self._replicas):
            bisect.insort(
                self._points, (_hash64(f"{node}#{replica}"), node)
            )

    def remove(self, node: str) -> None:
        """Drop a (dead) node; only its own keys are reassigned."""
        node = str(node)
        if node not in self._nodes:
            return
        if len(self._nodes) == 1:
            raise ConfigurationError(
                f"cannot remove {node!r}: it is the last node on the ring"
            )
        self._nodes.discard(node)
        self._points = [
            point for point in self._points if point[1] != node
        ]

    def node_for(self, key: int | str) -> str:
        """The node owning ``key`` (first ring point at/after its hash)."""
        position = _hash64(f"block:{key}")
        index = bisect.bisect_left(self._points, (position, ""))
        if index == len(self._points):
            index = 0  # wrap past the top of the ring
        return self._points[index][1]
