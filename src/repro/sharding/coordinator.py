"""The shard coordinator: one ranking job fanned over many daemons.

``repro shard`` drives this class.  The input CSV streams through the
coordinator in fixed-size *blocks* of consecutive rows; a
:class:`~repro.sharding.hashring.ConsistentHashRing` assigns each block
to a shard daemon, which scores it through
``POST /v1/models/<name>/rank-shard`` and returns the block as one
sorted :mod:`repro.serving.extsort` run file carrying *global* row
indices.  The coordinator adopts every run (validated record by
record) into an :class:`~repro.serving.extsort.ExternalSorter` and
k-way merges them under the usual fd budget, so the final
``position,label,score`` CSV is **byte-identical to a single box**:
scores come from the same ``score_batch`` path, ties break through the
same ``rank_entry_key``, rows are formatted by the same
``ranking_csv_row``, and the output file is published with the same
atomic temp-file rename.

Failure semantics (the exactly-once story)
------------------------------------------
The block is the unit of retry.  A block is *adopted* only when its
shard's complete, validated run response has arrived; a shard that
dies mid-job (connection refused/reset, timeout, 5xx, truncated
response) is removed from the ring and every one of its unadopted
blocks is re-posted to the shard the thinned ring now assigns —
consistent hashing guarantees survivors' blocks do not move.  A block
the dead shard may have half-scored was never adopted, and the rerun
lands exactly once, so the merged ranking contains every input row
exactly once whatever the failure interleaving (drilled in CI by
SIGKILLing a shard mid-rank and ``cmp``-ing against the single-box
output).
"""

from __future__ import annotations

import csv
import http.client
import json
import pathlib
import socket
import threading
import time
import urllib.error
import urllib.request
from collections import Counter
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.exceptions import ConfigurationError, ReproError
from repro.serving.extsort import ExternalSorter, iter_run_bytes
from repro.serving.stream import atomic_output, iter_csv_chunks
from repro.sharding.hashring import ConsistentHashRing

#: Rows per block — the retry/exactly-once unit and the granularity of
#: the consistent-hash split.  A multiple of the daemon's default
#: projection chunk (4096), so block-internal chunk boundaries land on
#: the same global row multiples as a single box scoring the whole
#: file; 4 chunks per block keeps per-request overhead amortised while
#: a 120k-row job still spreads ~30 blocks over a small fleet.
DEFAULT_ROWS_PER_BLOCK = 16384

#: Per-request timeout (connect + response) for a shard HTTP call.
DEFAULT_SHARD_TIMEOUT = 60.0

#: How many 429 (admission shed) responses to absorb per block —
#: sleeping ``Retry-After``-ish between attempts — before the shard is
#: treated as unavailable and the block reroutes.
_MAX_SHED_RETRIES = 40
_SHED_SLEEP = 0.05


class ShardJobError(ReproError, RuntimeError):
    """A sharded job cannot proceed (all shards dead, or a shard gave a
    definite non-retryable refusal such as 404/422)."""


class _ShardDeath(Exception):
    """Internal: this shard is gone; reroute the block (never surfaces
    to callers — either a survivor finishes the block or the job raises
    :class:`ShardJobError` when the ring empties)."""


@dataclass
class _Block:
    """One contiguous slice of input rows (the retry unit)."""

    index: int
    row_offset: int
    labels: List[str]
    rows: List[list]
    shard: str = field(default="", compare=False)  # who scored it


class ShardCoordinator:
    """Partition score/rank jobs over shard daemons, merge exactly.

    Parameters
    ----------
    shard_urls:
        Base URLs of the shard daemons (``http://host:port``).  Every
        shard must serve ``model_name``.
    model_name:
        The registered model to score with, on every shard.
    rows_per_block:
        Rows per block (default :data:`DEFAULT_ROWS_PER_BLOCK`).
    timeout:
        Seconds per shard HTTP request before the shard is presumed
        dead and the block reroutes.
    max_open_runs, tmp_dir:
        Merge fan-in budget and spill directory for the coordinator's
        :class:`ExternalSorter` (one adopted run per block; jobs with
        more blocks than the budget trigger the usual multi-pass
        merge).
    replicas:
        Virtual-node points per shard on the hash ring.
    on_block:
        Optional hook ``(block_index, shard_url, n_rows) -> None``
        called (on the coordinator thread) as each block's run is
        adopted — the load harness's kill-a-shard drill hangs off it.

    Attributes
    ----------
    dead_shards:
        URLs removed from the ring, in order of death.
    retried_blocks:
        Blocks that were re-posted after their shard died.
    blocks_by_shard:
        Blocks successfully scored per shard URL.
    """

    def __init__(
        self,
        shard_urls: Sequence[str],
        model_name: str,
        rows_per_block: int = DEFAULT_ROWS_PER_BLOCK,
        timeout: float = DEFAULT_SHARD_TIMEOUT,
        max_open_runs: Optional[int] = None,
        tmp_dir: Optional[str | pathlib.Path] = None,
        replicas: Optional[int] = None,
        on_block: Optional[Callable[[int, str, int], None]] = None,
    ):
        urls = [str(url).rstrip("/") for url in shard_urls]
        if not urls:
            raise ConfigurationError("need at least one shard URL")
        if len(set(urls)) != len(urls):
            raise ConfigurationError(f"duplicate shard URLs in {urls}")
        if not str(model_name).strip():
            raise ConfigurationError("model_name must be non-empty")
        rows_per_block = int(rows_per_block)
        if rows_per_block < 1:
            raise ConfigurationError(
                f"rows_per_block must be >= 1, got {rows_per_block}"
            )
        if not float(timeout) > 0:
            raise ConfigurationError(
                f"timeout must be > 0 seconds, got {timeout}"
            )
        self.shard_urls = tuple(urls)
        self.model_name = str(model_name).strip()
        self.rows_per_block = rows_per_block
        self.timeout = float(timeout)
        self.max_open_runs = max_open_runs
        self.tmp_dir = tmp_dir
        self.on_block = on_block
        self._ring = ConsistentHashRing(
            urls, **({} if replicas is None else {"replicas": replicas})
        )
        self._lock = threading.Lock()
        self.dead_shards: List[str] = []
        self.retried_blocks = 0
        self.blocks_by_shard: Counter = Counter()
        self.n_blocks = 0

    # ------------------------------------------------------------------
    # Shard HTTP plumbing
    # ------------------------------------------------------------------
    def feature_names(self) -> Optional[List[str]]:
        """The model's attribute columns, asked of any live shard.

        Lets the coordinator select and order CSV columns exactly as a
        single box scoring with the loaded model would (extra or
        reordered input columns still rank identically).
        """
        last_error: Optional[Exception] = None
        for url in self._ring.nodes:
            try:
                with urllib.request.urlopen(
                    f"{url}/v1/models/{self.model_name}",
                    timeout=self.timeout,
                ) as response:
                    entry = json.loads(response.read())
                return entry.get("feature_names")
            except urllib.error.HTTPError as exc:
                detail = exc.read().decode("utf-8", "replace")
                raise ShardJobError(
                    f"shard {url} refused model {self.model_name!r}: "
                    f"HTTP {exc.code} {detail}"
                ) from None
            except (OSError, ValueError, http.client.HTTPException) as exc:
                last_error = exc
        raise ShardJobError(
            f"no shard answered /v1/models/{self.model_name} "
            f"(last error: {last_error})"
        )

    def _mark_dead(self, url: str) -> None:
        with self._lock:
            if url not in self._ring:
                return  # another block's failure got here first
            if len(self._ring) == 1:
                raise ShardJobError(
                    f"every shard is dead (last: {url}); "
                    f"dead so far: {self.dead_shards + [url]}"
                )
            self._ring.remove(url)
            self.dead_shards.append(url)

    def _shard_for(self, block_index: int) -> str:
        with self._lock:
            return self._ring.node_for(block_index)

    def _post_block(self, block: _Block) -> bytes:
        """Score one block, rerouting past dead shards; returns the run.

        Runs on an executor thread.  Raises :class:`ShardJobError` when
        the job as a whole cannot proceed.
        """
        attempt_shard = self._shard_for(block.index)
        while True:
            try:
                data = self._post_once(attempt_shard, block)
            except _ShardDeath:
                self._mark_dead(attempt_shard)
                rerouted = self._shard_for(block.index)
                with self._lock:
                    self.retried_blocks += 1
                attempt_shard = rerouted
                continue
            block.shard = attempt_shard
            with self._lock:
                self.blocks_by_shard[attempt_shard] += 1
            return data

    def _post_once(self, url: str, block: _Block) -> bytes:
        body = json.dumps(
            {
                "rows": block.rows,
                "labels": block.labels,
                "row_offset": block.row_offset,
            }
        ).encode("utf-8")
        request = urllib.request.Request(
            f"{url}/v1/models/{self.model_name}/rank-shard",
            data=body,
            headers={"Content-Type": "application/json"},
            method="POST",
        )
        sheds = 0
        while True:
            try:
                with urllib.request.urlopen(
                    request, timeout=self.timeout
                ) as response:
                    return response.read()
            except urllib.error.HTTPError as exc:
                if exc.code == 429 and sheds < _MAX_SHED_RETRIES:
                    # Admission shed: the shard is alive but saturated.
                    # Back off briefly and re-offer before concluding
                    # anything about its health.
                    sheds += 1
                    time.sleep(_SHED_SLEEP)
                    continue
                if exc.code >= 500 or exc.code == 429:
                    raise _ShardDeath from None
                detail = exc.read().decode("utf-8", "replace")
                raise ShardJobError(
                    f"shard {url} refused block {block.index} "
                    f"(rows {block.row_offset}..."
                    f"{block.row_offset + len(block.labels) - 1}): "
                    f"HTTP {exc.code} {detail}"
                ) from None
            except (
                OSError,
                urllib.error.URLError,
                socket.timeout,
                http.client.HTTPException,
            ):
                # Connection refused/reset, DNS, timeout, truncated
                # response — the shard is gone or unreachable.
                raise _ShardDeath from None

    # ------------------------------------------------------------------
    # Input blocking
    # ------------------------------------------------------------------
    def _iter_blocks(
        self,
        csv_path: str | pathlib.Path,
        label_column: Optional[str],
        delimiter: str,
        attribute_columns: Optional[Sequence[str]],
    ) -> Iterator[_Block]:
        row_offset = 0
        for index, chunk in enumerate(
            iter_csv_chunks(
                csv_path,
                chunk_size=self.rows_per_block,
                label_column=label_column,
                attribute_columns=attribute_columns,
                delimiter=delimiter,
            )
        ):
            yield _Block(
                index=index,
                row_offset=row_offset,
                labels=list(chunk.labels),
                rows=chunk.X.tolist(),
            )
            row_offset += len(chunk.labels)

    # ------------------------------------------------------------------
    # The jobs
    # ------------------------------------------------------------------
    def _run_blocks(
        self,
        csv_path: str | pathlib.Path,
        label_column: Optional[str],
        delimiter: str,
        handle: Callable[[_Block, bytes], None],
    ) -> None:
        """Fan blocks out, bounded in flight, calling ``handle`` for
        each completed ``(block, run_bytes)`` on the coordinator thread.
        """
        attribute_columns = self.feature_names()
        max_workers = max(2, 2 * len(self.shard_urls))
        max_pending = 2 * max_workers

        def _consume(done_futures) -> None:
            for future in done_futures:
                block, data = future.result()  # raises ShardJobError
                handle(block, data)
                if self.on_block is not None:
                    self.on_block(block.index, block.shard, len(block.labels))

        with ThreadPoolExecutor(max_workers=max_workers) as executor:
            pending = set()
            try:
                for block in self._iter_blocks(
                    csv_path, label_column, delimiter, attribute_columns
                ):
                    self.n_blocks += 1
                    while len(pending) >= max_pending:
                        done, pending = wait(
                            pending, return_when=FIRST_COMPLETED
                        )
                        _consume(done)
                    pending.add(
                        executor.submit(
                            lambda b: (b, self._post_block(b)), block
                        )
                    )
                while pending:
                    done, pending = wait(pending, return_when=FIRST_COMPLETED)
                    _consume(done)
            except BaseException:
                for future in pending:
                    future.cancel()
                raise

    def rank_csv(
        self,
        csv_path: str | pathlib.Path,
        output_path: Optional[str | pathlib.Path] = None,
        label_column: Optional[str] = None,
        delimiter: str = ",",
        head: int = 0,
    ) -> Tuple[int, List[Tuple[str, float]]]:
        """Rank a CSV across the fleet; byte-identical to one box.

        Same contract as
        :func:`repro.serving.stream.stream_rank_csv` — including the
        atomic output publish and the ``(n_rows, head_entries)``
        return — except the scoring ran on the shards.
        """
        head = int(head)
        if head < 0:
            raise ConfigurationError(f"head must be >= 0, got {head}")
        head_entries: List[Tuple[str, float]] = []
        with ExternalSorter(
            max_open_runs=self.max_open_runs, tmp_dir=self.tmp_dir
        ) as sorter:

            def _adopt(block: _Block, data: bytes) -> None:
                sorter.adopt_run_bytes(
                    data,
                    expect_rows=len(block.labels),
                    source=(
                        f"run for block {block.index} "
                        f"from shard {block.shard}"
                    ),
                )

            self._run_blocks(csv_path, label_column, delimiter, _adopt)
            n_rows = sorter.n_rows
            ranked = sorter.ranked()
            if output_path is None:
                for position, label, score in ranked:
                    if position > head:
                        break
                    head_entries.append((label, score))
            else:
                from repro.data.loaders import (
                    RANKING_CSV_HEADER,
                    ranking_csv_row,
                )

                with atomic_output(pathlib.Path(output_path)) as handle:
                    writer = csv.writer(handle, delimiter=delimiter)
                    writer.writerow(RANKING_CSV_HEADER)
                    for position, label, score in ranked:
                        writer.writerow(
                            ranking_csv_row(position, label, score)
                        )
                        if position <= head:
                            head_entries.append((label, score))
        return n_rows, head_entries

    def score_csv(
        self,
        csv_path: str | pathlib.Path,
        output_path: str | pathlib.Path,
        label_column: Optional[str] = None,
        delimiter: str = ",",
    ) -> int:
        """Score a CSV across the fleet, writing ``label,score`` rows
        in input order — byte-identical to
        :func:`repro.serving.stream.stream_score_csv` on one box.

        Blocks complete out of order; a completed block is held (as
        labels and score strings, not rows) until every earlier block
        has been written, so the output order is the input order.
        """
        output_path = pathlib.Path(output_path)
        finished: Dict[int, List[list]] = {}
        next_to_write = 0
        n_scored = 0
        with atomic_output(output_path) as handle:
            writer = csv.writer(handle, delimiter=delimiter)
            writer.writerow(["label", "score"])

            def _write_ready() -> None:
                nonlocal next_to_write, n_scored
                while next_to_write in finished:
                    for row in finished.pop(next_to_write):
                        writer.writerow(row)
                        n_scored += 1
                    next_to_write += 1

            def _stash(block: _Block, data: bytes) -> None:
                # The run is rank-ordered; flip it back to input order
                # by the global row index (contiguous within a block).
                entries = sorted(
                    iter_run_bytes(
                        data, f"run for block {block.index}"
                    ),
                    key=lambda entry: entry[1],
                )
                if len(entries) != len(block.labels):
                    raise ShardJobError(
                        f"block {block.index} returned {len(entries)} "
                        f"rows, expected {len(block.labels)}"
                    )
                finished[block.index] = [
                    [label, repr(-neg_score)]
                    for neg_score, _, label in entries
                ]
                _write_ready()

            self._run_blocks(csv_path, label_column, delimiter, _stash)
            _write_ready()
        return n_scored

    def stats(self) -> dict:
        """A JSON-serialisable job report (the CLI prints it)."""
        with self._lock:
            return {
                "shards": list(self.shard_urls),
                "live_shards": list(self._ring.nodes),
                "dead_shards": list(self.dead_shards),
                "n_blocks": int(self.n_blocks),
                "retried_blocks": int(self.retried_blocks),
                "blocks_by_shard": {
                    url: int(count)
                    for url, count in sorted(self.blocks_by_shard.items())
                },
                "rows_per_block": self.rows_per_block,
            }
