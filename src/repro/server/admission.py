"""Admission control: bounded in-flight work and 429 load shedding.

The daemon's thread-per-connection model (and the pre-fork fleet built
on it) has no intrinsic backpressure: under offered load beyond
capacity, every connection gets a handler thread and every scoring
request queues inside solver locks and the micro-batcher, so latency
grows without bound while throughput stays flat.  The fix is classic
admission control at the scoring boundary:

* a bound on concurrently admitted scoring requests per worker
  (``max_inflight``) — requests beyond it are *shed* immediately with
  ``429 Too Many Requests`` and a ``Retry-After`` header, before their
  body is even read;
* optional per-model quotas (``max_inflight_per_model``) so one hot
  model cannot starve the others sharing the worker;
* exact shed accounting: every 429 is recorded like any other response
  (mirrored into the shared fleet store under ``--workers N``), and
  ``/metrics`` reports ``requests_shed_total`` alongside the admission
  state, so fleet-wide ``served + shed == offered`` holds exactly.

``/healthz``, ``/metrics`` and the registry listing are deliberately
*not* subject to admission — an overloaded daemon must stay observable.

Zero-downtime retuning
----------------------
Both the admission knobs and the micro-batcher knobs reload in place on
``SIGHUP`` from a JSON *tuning file* (``repro serve --tuning-file``):
:func:`load_tuning_file` parses and validates it, and
``ScoringHTTPServer.apply_tuning`` applies it without dropping in-flight
requests.  In pre-fork mode the pool parent fans the signal out to
every worker.
"""

from __future__ import annotations

import json
import math
import threading
from collections import Counter
from typing import Optional

from repro.core.exceptions import ConfigurationError

#: Default bound on concurrently admitted scoring requests per worker.
#: Generous for interactive traffic (each admitted request holds a
#: handler thread and a solver slot) while still turning a load spike
#: into prompt 429s instead of an unbounded queue.
DEFAULT_MAX_INFLIGHT = 64

#: Default ``Retry-After`` advice, in seconds.
DEFAULT_RETRY_AFTER = 1.0


class RequestShed(Exception):
    """An admission decision: the request was shed, not served.

    Carries the ``Retry-After`` advice the HTTP layer must attach.
    """

    def __init__(self, message: str, retry_after: float):
        super().__init__(message)
        self.retry_after = float(retry_after)


class AdmissionController:
    """Bounded admission of scoring requests, with per-model quotas.

    Parameters
    ----------
    max_inflight:
        Concurrently admitted scoring requests per worker; ``0``
        disables the global bound.
    max_inflight_per_model:
        Quota per model name; ``0`` (default) means no per-model bound
        beyond the global one.
    retry_after:
        Seconds of ``Retry-After`` advice attached to every shed.

    Thread model: ``acquire``/``release`` bracket each scoring request
    on its handler thread; all state sits behind one lock and an
    admission decision is a few integer compares, cheap enough for the
    request path.
    """

    def __init__(
        self,
        max_inflight: int = DEFAULT_MAX_INFLIGHT,
        max_inflight_per_model: int = 0,
        retry_after: float = DEFAULT_RETRY_AFTER,
    ):
        _validate_admission_knobs(
            max_inflight, max_inflight_per_model, retry_after
        )
        self.max_inflight = int(max_inflight)
        self.max_inflight_per_model = int(max_inflight_per_model)
        self.retry_after = float(retry_after)
        self._lock = threading.Lock()
        self._inflight = 0
        self._per_model: Counter[str] = Counter()
        self._peak_inflight = 0
        self._admitted_total = 0
        self._shed_total = 0

    def acquire(self, model_name: str) -> None:
        """Admit one scoring request for ``model_name`` or shed it.

        Raises :class:`RequestShed` (429 at the HTTP layer) when either
        bound is at capacity; otherwise records the admission, which
        the caller must pair with exactly one :meth:`release`.
        """
        with self._lock:
            if 0 < self.max_inflight <= self._inflight:
                self._shed_total += 1
                raise RequestShed(
                    f"server at capacity "
                    f"({self._inflight} in-flight scoring requests); "
                    f"retry after {self.retry_after:g}s",
                    self.retry_after,
                )
            if (
                0
                < self.max_inflight_per_model
                <= self._per_model[model_name]
            ):
                self._shed_total += 1
                raise RequestShed(
                    f"model {model_name!r} at its concurrency quota "
                    f"({self.max_inflight_per_model}); "
                    f"retry after {self.retry_after:g}s",
                    self.retry_after,
                )
            self._inflight += 1
            self._per_model[model_name] += 1
            self._admitted_total += 1
            self._peak_inflight = max(self._peak_inflight, self._inflight)

    def release(self, model_name: str) -> None:
        """Return the slot taken by a successful :meth:`acquire`."""
        with self._lock:
            self._inflight = max(0, self._inflight - 1)
            remaining = self._per_model[model_name] - 1
            if remaining > 0:
                self._per_model[model_name] = remaining
            else:
                del self._per_model[model_name]

    def retry_after_header(self) -> str:
        """``Retry-After`` value: RFC 7231 wants integer seconds."""
        return str(max(1, int(math.ceil(self.retry_after))))

    def reconfigure(
        self,
        max_inflight: Optional[int] = None,
        max_inflight_per_model: Optional[int] = None,
        retry_after: Optional[float] = None,
    ) -> dict:
        """Retune the bounds in place (the ``SIGHUP`` reload path).

        Requests already admitted keep their slots; lowering a bound
        below the current in-flight count simply sheds new arrivals
        until the excess drains.  Returns the applied knobs.
        """
        _validate_admission_knobs(
            self.max_inflight if max_inflight is None else max_inflight,
            self.max_inflight_per_model
            if max_inflight_per_model is None
            else max_inflight_per_model,
            self.retry_after if retry_after is None else retry_after,
        )
        with self._lock:
            if max_inflight is not None:
                self.max_inflight = int(max_inflight)
            if max_inflight_per_model is not None:
                self.max_inflight_per_model = int(max_inflight_per_model)
            if retry_after is not None:
                self.retry_after = float(retry_after)
            return {
                "max_inflight": self.max_inflight,
                "max_inflight_per_model": self.max_inflight_per_model,
                "retry_after_s": self.retry_after,
            }

    def stats(self) -> dict:
        """Admission state for ``/metrics`` (per-worker)."""
        with self._lock:
            return {
                "max_inflight": self.max_inflight,
                "max_inflight_per_model": self.max_inflight_per_model,
                "retry_after_s": self.retry_after,
                "inflight": self._inflight,
                "peak_inflight": self._peak_inflight,
                "admitted_total": self._admitted_total,
                "shed_total": self._shed_total,
            }


def _validate_admission_knobs(
    max_inflight, max_inflight_per_model, retry_after
) -> None:
    if int(max_inflight) < 0:
        raise ConfigurationError(
            f"max_inflight must be >= 0 (0 = unbounded), "
            f"got {max_inflight}"
        )
    if int(max_inflight_per_model) < 0:
        raise ConfigurationError(
            f"max_inflight_per_model must be >= 0 (0 = no per-model "
            f"quota), got {max_inflight_per_model}"
        )
    if not float(retry_after) > 0:
        raise ConfigurationError(
            f"retry_after must be > 0 seconds, got {retry_after}"
        )


# ----------------------------------------------------------------------
# SIGHUP tuning files
# ----------------------------------------------------------------------
#: Knobs a tuning file may set, mapped to their validators.  Everything
#: here can be retuned without a restart; knobs that change the process
#: topology (workers, host, port, models) deliberately cannot.
TUNING_KEYS = (
    "batch_window_ms",
    "max_batch_rows",
    "batch_policy",
    "max_inflight",
    "max_inflight_per_model",
    "retry_after_s",
)


def validate_tuning(tuning: dict) -> dict:
    """Check a tuning mapping; returns it, raises on any bad knob."""
    if not isinstance(tuning, dict):
        raise ConfigurationError(
            f"tuning must be a JSON object, got {type(tuning).__name__}"
        )
    unknown = sorted(set(tuning) - set(TUNING_KEYS))
    if unknown:
        raise ConfigurationError(
            f"unknown tuning keys {unknown}; supported: "
            f"{', '.join(TUNING_KEYS)}"
        )
    if "batch_window_ms" in tuning and float(tuning["batch_window_ms"]) < 0:
        raise ConfigurationError(
            f"batch_window_ms must be >= 0, "
            f"got {tuning['batch_window_ms']}"
        )
    if "max_batch_rows" in tuning and int(tuning["max_batch_rows"]) < 1:
        raise ConfigurationError(
            f"max_batch_rows must be >= 1, got {tuning['max_batch_rows']}"
        )
    if "batch_policy" in tuning and tuning["batch_policy"] not in (
        "adaptive",
        "fixed",
    ):
        raise ConfigurationError(
            f"batch_policy must be 'adaptive' or 'fixed', "
            f"got {tuning['batch_policy']!r}"
        )
    _validate_admission_knobs(
        tuning.get("max_inflight", 0),
        tuning.get("max_inflight_per_model", 0),
        tuning.get("retry_after_s", DEFAULT_RETRY_AFTER),
    )
    return tuning


def load_tuning_file(path) -> dict:
    """Read and validate a ``--tuning-file`` JSON document."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            tuning = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"cannot read tuning file {path}: {exc}"
        ) from None
    return validate_tuning(tuning)
