"""Long-running scoring daemon: registry, metrics and HTTP front end.

PR 1's serving layer made models durable (:mod:`repro.serving`); this
package makes them *resident*.  A :class:`ModelRegistry` holds any
number of named fitted models loaded from the persistence formats and
hot-reloads them when their backing file changes; a
:class:`ScoringHTTPServer` (stdlib ``ThreadingHTTPServer``, one thread
per connection, zero dependencies) exposes them over JSON endpoints;
:class:`ServerMetrics` keeps request counts, latency percentiles and
rows-scored totals for ``GET /metrics``.

For heavy traffic the daemon scales out and coalesces: a
:class:`WorkerPool` (``repro serve --workers N``) pre-forks workers
that share the listening socket and aggregate their metrics through a
:class:`SharedMetricsStore`, and a per-worker :class:`MicroBatcher`
(``--batch-window-ms``) merges small concurrent scoring requests into
single engine calls with byte-identical responses.  Operations guide
(sizing, batching trade-offs, proxy TLS/auth): ``docs/ops.md``.

Observability (:mod:`repro.obs`): ``--trace`` records per-request
stage spans served by ``GET /v1/debug/trace/<request-id>``,
``--access-log`` writes one JSON line per request, and
``GET /metrics?format=prometheus`` renders every counter and latency
histogram in Prometheus text exposition — see ``docs/observability.md``.

Quickstart
----------
>>> from repro.server import ModelRegistry, ScoringHTTPServer
>>> registry = ModelRegistry()
>>> _ = registry.register("wellbeing", "model.json")   # doctest: +SKIP
>>> server = ScoringHTTPServer(("127.0.0.1", 8000), registry)  # doctest: +SKIP
>>> server.serve_forever()                             # doctest: +SKIP

Then, from anywhere::

    curl -s localhost:8000/healthz
    curl -s -X POST localhost:8000/v1/models/wellbeing/score \\
         -d '{"row": [43.8, 81.1, 4.5, 6.0]}'

The same daemon ships as a CLI subcommand::

    python -m repro serve --model wellbeing=model.json --port 8000
"""

from repro.server.admission import (
    AdmissionController,
    RequestShed,
    load_tuning_file,
    validate_tuning,
)
from repro.server.batching import (
    AdaptiveWindowController,
    BatchAbortedError,
    MicroBatcher,
)
from repro.server.http import (
    MAX_BODY_BYTES,
    ScoringHTTPServer,
    ScoringRequestHandler,
)
from repro.server.metrics import (
    ENGINE_CELL_KEYS,
    STORE_FORMAT_VERSION,
    ServerMetrics,
    SharedMetricsStore,
    SharedMetricsWriter,
)
from repro.server.pool import (
    WorkerPool,
    install_graceful_shutdown,
    install_tuning_reload,
)
from repro.server.registry import (
    ModelRegistry,
    RegisteredModel,
    UnknownModelError,
)

__all__ = [
    "ENGINE_CELL_KEYS",
    "MAX_BODY_BYTES",
    "STORE_FORMAT_VERSION",
    "AdaptiveWindowController",
    "AdmissionController",
    "BatchAbortedError",
    "MicroBatcher",
    "ModelRegistry",
    "RegisteredModel",
    "RequestShed",
    "ScoringHTTPServer",
    "ScoringRequestHandler",
    "ServerMetrics",
    "SharedMetricsStore",
    "SharedMetricsWriter",
    "UnknownModelError",
    "WorkerPool",
    "install_graceful_shutdown",
    "install_tuning_reload",
    "load_tuning_file",
    "validate_tuning",
]
