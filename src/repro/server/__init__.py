"""Long-running scoring daemon: registry, metrics and HTTP front end.

PR 1's serving layer made models durable (:mod:`repro.serving`); this
package makes them *resident*.  A :class:`ModelRegistry` holds any
number of named fitted models loaded from the persistence formats and
hot-reloads them when their backing file changes; a
:class:`ScoringHTTPServer` (stdlib ``ThreadingHTTPServer``, one thread
per connection, zero dependencies) exposes them over JSON endpoints;
:class:`ServerMetrics` keeps request counts, latency percentiles and
rows-scored totals for ``GET /metrics``.

Quickstart
----------
>>> from repro.server import ModelRegistry, ScoringHTTPServer
>>> registry = ModelRegistry()
>>> _ = registry.register("wellbeing", "model.json")   # doctest: +SKIP
>>> server = ScoringHTTPServer(("127.0.0.1", 8000), registry)  # doctest: +SKIP
>>> server.serve_forever()                             # doctest: +SKIP

Then, from anywhere::

    curl -s localhost:8000/healthz
    curl -s -X POST localhost:8000/v1/models/wellbeing/score \\
         -d '{"row": [43.8, 81.1, 4.5, 6.0]}'

The same daemon ships as a CLI subcommand::

    python -m repro serve --model wellbeing=model.json --port 8000
"""

from repro.server.http import (
    MAX_BODY_BYTES,
    ScoringHTTPServer,
    ScoringRequestHandler,
)
from repro.server.metrics import ServerMetrics
from repro.server.registry import (
    ModelRegistry,
    RegisteredModel,
    UnknownModelError,
)

__all__ = [
    "MAX_BODY_BYTES",
    "ModelRegistry",
    "RegisteredModel",
    "ScoringHTTPServer",
    "ScoringRequestHandler",
    "ServerMetrics",
    "UnknownModelError",
]
