"""Thread-safe request metrics for the scoring daemon.

The daemon handles each connection on its own thread
(:class:`http.server.ThreadingHTTPServer`), so every counter here is
guarded by one lock; observations are two dict updates and an append,
cheap enough to sit on the request path.  Latencies are kept in a
bounded per-endpoint window (most recent :data:`DEFAULT_WINDOW`
requests) — enough for stable p50/p90/p99 estimates without unbounded
growth on a long-lived process.

``GET /metrics`` returns :meth:`ServerMetrics.snapshot` as JSON; with
``?format=prometheus`` (or ``Accept: text/plain``) the same counters
render as Prometheus text exposition (see
:mod:`repro.obs.prometheus`), with latency as histogram buckets.

Multi-worker aggregation
------------------------
In ``repro serve --workers N`` mode (:mod:`repro.server.pool`) each
worker process keeps its own :class:`ServerMetrics`, but a client
scraping ``/metrics`` hits *one* worker — whichever accepted the
connection — and must still see fleet-wide totals.  Every observation
is therefore mirrored into a :class:`SharedMetricsStore`: one
memory-mapped file of plain ``float64`` counters, one single-writer
slot per worker.  The route set and the status codes the daemon emits
are both small closed sets, so a slot is a fixed dense array — an
observation is a handful of aligned 8-byte stores (no locks, no
serialisation, no syscalls beyond the page cache), and the serving
worker answers ``/metrics`` by summing all slots.  Observations are
recorded *before* the response is sent, so a client that reads
``/metrics`` after its requests completed always finds them counted,
whichever workers served what.

Latency lives in the store as **fixed log-spaced histogram buckets**
(:mod:`repro.obs.histogram`) rather than the pre-observability sample
rings: bucket counts are plain sums, so merging worker slots is exact
— no ring-window bias, no pooling heuristics — and the identical
buckets render as Prometheus ``_bucket`` series.  The engine-profile
counters (rows per solver, Newton iterations, warm-start hits) and the
micro-batch fill distribution are mirrored the same way, so fleet
totals stay exact under ``--workers N``.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Deque, Dict, Optional

import numpy as np

from repro.obs.histogram import (
    BATCH_FILL_BUCKETS,
    N_LATENCY_BUCKETS,
    LatencyHistogram,
    bucket_index,
    percentile_from_buckets,
)

#: Latency observations retained per endpoint for percentile estimates.
DEFAULT_WINDOW = 1024

#: Error records (endpoint, status, request id) retained for the
#: ``recent_errors`` section of ``GET /metrics`` — enough to chase a
#: client-reported request id without unbounded growth.
ERROR_WINDOW = 64

#: Percentiles reported per endpoint, in milliseconds.
PERCENTILES = (50, 90, 99)

#: Every route label the daemon's handler can observe, plus a
#: catch-all.  The shared store allocates dense per-slot counters from
#: this closed set; an unknown label folds into ``"other"`` rather
#: than being dropped, so fleet totals stay exact even if a route is
#: added without extending this tuple.
SHARED_ENDPOINTS = (
    "GET /healthz",
    "GET /metrics",
    "GET /v1/models",
    "POST /v1/models/{name}/score",
    "POST /v1/models/{name}/rank",
    "POST /v1/models/{name}/rank-shard",
    "GET /v1/debug/trace/{id}",
    "GET (scoring route)",
    "GET (unrouted)",
    "POST (unrouted)",
    "other",
)

#: Status codes the daemon emits (see the 4xx taxonomy in
#: :mod:`repro.server.http`; 429 is the admission-control shed),
#: plus a catch-all bucket.
SHARED_STATUSES = (200, 400, 404, 405, 408, 409, 411, 413, 422, 429, 500)

#: The admission controller's shed status; counted per endpoint like
#: any other response so fleet ``served + shed == offered`` is exact.
SHED_STATUS = 429

#: Engine-profile cells mirrored per slot, in layout order: wall time
#: and rows per solver phase, then the solver-quality counters.  The
#: keys match :meth:`repro.obs.engineprof.EngineProfile.totals`.
ENGINE_CELL_KEYS = (
    "grid_scan_seconds",
    "grid_scan_rows",
    "gss_seconds",
    "gss_rows",
    "newton_seconds",
    "newton_rows",
    "roots_seconds",
    "roots_rows",
    "newton_iterations",
    "warm_start_hits",
    "warm_start_misses",
)

#: Layout version of the shared store.  Version 2 replaced the PR 5
#: latency sample rings with the fixed histogram buckets of
#: :mod:`repro.obs.histogram` and added the engine/batch-fill cells;
#: version 3 added the ``rank-shard`` endpoint label (which shifts
#: every per-endpoint cell block).  Bump on any cell-layout change:
#: every process mapping one file must agree on what each cell means
#: (the pool forks workers from one parent, so in practice versions
#: only meet across *code* versions — which is exactly the accident
#: this constant is pinned against).
STORE_FORMAT_VERSION = 3

#: Retained for backward compatibility (the PR 5/6 test harnesses use
#: it to size overflow workloads).  Since format version 2 the shared
#: store keeps latency as histogram buckets, not rings, so this no
#: longer bounds anything — merged counts stay exact at any volume.
SHARED_LATENCY_RING = 256


class ServerMetrics:
    """Request counts, latency percentiles and rows-scored totals.

    ``mirror``, when given, is a :class:`SharedMetricsWriter`; every
    observation is forwarded to it (under this object's lock) so that
    sibling worker processes can fold it into fleet-wide totals.
    """

    def __init__(
        self,
        window: int = DEFAULT_WINDOW,
        mirror: Optional["SharedMetricsWriter"] = None,
    ):
        self._lock = threading.Lock()
        self._window = int(window)
        self._started = time.time()
        self._counts: Counter[str] = Counter()
        self._statuses: Dict[str, Counter[int]] = {}
        self._latencies: Dict[str, Deque[float]] = {}
        self._histograms: Dict[str, LatencyHistogram] = {}
        self._rows_scored = 0
        self._errors_total = 0
        self._recent_errors: Deque[dict] = deque(maxlen=ERROR_WINDOW)
        self._engine: Dict[str, float] = {}
        self._engine_calls = 0
        self._batch_fill = np.zeros(
            len(BATCH_FILL_BUCKETS) + 1, dtype=np.float64
        )
        self._batch_fill_requests = 0
        self._families: Counter[str] = Counter()
        self._mirror = mirror

    def observe(
        self,
        endpoint: str,
        status: int,
        seconds: float,
        rows: int = 0,
        request_id: Optional[str] = None,
    ) -> None:
        """Record one handled request.

        Parameters
        ----------
        endpoint:
            Route label, e.g. ``"POST /v1/models/{name}/score"`` — the
            pattern, not the concrete path, so per-model traffic folds
            into one series.
        status:
            HTTP status sent back.
        seconds:
            Wall-clock handling time.
        rows:
            Observations scored while handling (0 for non-scoring
            endpoints and failures).
        request_id:
            The request's tracing id (echoed or generated by the
            handler).  Failed requests (status >= 400) are logged with
            it in the bounded ``recent_errors`` window so an id a
            client reports can be matched to what the daemon saw.
        """
        with self._lock:
            self._counts[endpoint] += 1
            self._statuses.setdefault(endpoint, Counter())[int(status)] += 1
            self._latencies.setdefault(
                endpoint, deque(maxlen=self._window)
            ).append(float(seconds))
            hist = self._histograms.get(endpoint)
            if hist is None:
                hist = self._histograms[endpoint] = LatencyHistogram()
            hist.observe(seconds)
            self._rows_scored += int(rows)
            if int(status) >= 400:
                self._errors_total += 1
                self._recent_errors.append(
                    {
                        "endpoint": endpoint,
                        "status": int(status),
                        "request_id": request_id,
                    }
                )
            if self._mirror is not None:
                self._mirror.observe(endpoint, status, seconds, rows)

    def observe_family(self, family: str) -> None:
        """Count one scoring request against a model family.

        Recorded after the registry resolves the model (so 404s and
        sheds do not count) and kept per-worker: family labels are
        free-form strings that do not fit the shared store's fixed
        cells, the same trade-off the registry stats make.
        """
        with self._lock:
            self._families[str(family)] += 1

    def families(self) -> Dict[str, int]:
        """Scoring requests handled per model family (this worker)."""
        with self._lock:
            return {
                family: int(count)
                for family, count in sorted(self._families.items())
            }

    @property
    def rows_scored(self) -> int:
        with self._lock:
            return self._rows_scored

    @property
    def uptime_seconds(self) -> float:
        return time.time() - self._started

    def observe_batch(self, n_requests: int, n_rows: int) -> None:
        """Record one executed micro-batch (fill telemetry).

        Tracks the batch-fill distribution locally (how many member
        requests executed batches actually coalesce — the adaptive
        window's effectiveness signal) and forwards it to the shared
        store in multi-worker mode so ``/metrics`` can report it
        fleet-wide; the rest of the per-worker detail lives in
        ``MicroBatcher.stats()``.
        """
        with self._lock:
            self._batch_fill[_fill_bucket(n_requests)] += 1.0
            self._batch_fill_requests += int(n_requests)
            if self._mirror is not None:
                self._mirror.record_batch(n_requests, n_rows)

    def observe_engine(self, profile) -> None:
        """Fold one scoring call's :class:`EngineProfile` into totals.

        Called once per engine execution (direct request or merged
        micro-batch) with a profile that covered exactly that call, so
        accumulated totals are exact however requests were coalesced.
        """
        totals = profile.totals()
        if not totals:
            return
        with self._lock:
            self._engine_calls += 1
            for key, value in totals.items():
                self._engine[key] = self._engine.get(key, 0.0) + value
            if self._mirror is not None:
                self._mirror.record_engine(totals)

    def engine_snapshot(self) -> dict:
        """Accumulated solver telemetry (the ``engine`` payload key).

        Kept out of :meth:`snapshot` so that payload stays
        byte-compatible with its pre-observability key set; the HTTP
        layer composes the two.
        """
        with self._lock:
            out = {
                key: (
                    round(value, 6)
                    if key.endswith("_seconds")
                    else int(value)
                )
                for key, value in sorted(self._engine.items())
            }
            out["scoring_calls"] = self._engine_calls
            hits = out.get("warm_start_hits", 0)
            misses = out.get("warm_start_misses", 0)
            if hits or misses:
                out["warm_start_hit_rate"] = round(
                    hits / (hits + misses), 4
                )
            return out

    def engine_cells(self) -> Dict[str, float]:
        """Raw accumulated engine totals (unrounded, cell-keyed)."""
        with self._lock:
            return dict(self._engine)

    def batch_fill(self) -> tuple:
        """Local ``(fill_bucket_counts, total_member_requests)``."""
        with self._lock:
            return self._batch_fill.copy(), float(self._batch_fill_requests)

    def batch_fill_snapshot(self) -> dict:
        """Local batch-fill distribution (counts per size bucket)."""
        with self._lock:
            return {
                "buckets": [int(b) for b in BATCH_FILL_BUCKETS],
                "counts": [int(c) for c in self._batch_fill],
                "requests_in_batches": int(self._batch_fill_requests),
            }

    def histograms(self) -> Dict[str, tuple]:
        """Per-endpoint ``(bucket_counts, sum_seconds)`` snapshots."""
        with self._lock:
            return {
                endpoint: (hist.counts.copy(), float(hist.sum))
                for endpoint, hist in self._histograms.items()
            }

    def snapshot(self) -> dict:
        """A JSON-serialisable view of everything recorded so far."""
        with self._lock:
            endpoints = {}
            for endpoint, count in sorted(self._counts.items()):
                window = np.asarray(self._latencies[endpoint], dtype=float)
                quantiles = np.percentile(window * 1e3, PERCENTILES)
                endpoints[endpoint] = {
                    "requests": int(count),
                    "by_status": {
                        str(status): int(n)
                        for status, n in sorted(
                            self._statuses[endpoint].items()
                        )
                    },
                    "latency_ms": {
                        f"p{p}": float(round(q, 3))
                        for p, q in zip(PERCENTILES, quantiles)
                    },
                }
            shed = sum(
                statuses.get(SHED_STATUS, 0)
                for statuses in self._statuses.values()
            )
            return {
                "uptime_seconds": float(round(time.time() - self._started, 3)),
                "requests_total": int(sum(self._counts.values())),
                "rows_scored_total": int(self._rows_scored),
                "errors_total": int(self._errors_total),
                "requests_shed_total": int(shed),
                "recent_errors": list(self._recent_errors),
                "endpoints": endpoints,
            }


def _fill_bucket(n_requests: int) -> int:
    """Batch-fill bucket index (``le`` semantics, last = overflow)."""
    for i, edge in enumerate(BATCH_FILL_BUCKETS):
        if n_requests <= edge:
            return i
    return len(BATCH_FILL_BUCKETS)


# ----------------------------------------------------------------------
# Cross-process aggregation (``--workers N``)
# ----------------------------------------------------------------------
#: Per-slot layout of the shared store, in float64 cells:
#: ``[counts (E x S) | rows_scored | largest_batch_requests |
#: largest_batch_rows | batch-fill buckets (+overflow) |
#: batch-fill request sum | engine cells | latency histograms
#: (E x (buckets + sum))]`` — see :data:`STORE_FORMAT_VERSION`.
_N_ENDPOINTS = len(SHARED_ENDPOINTS)
_N_STATUSES = len(SHARED_STATUSES) + 1  # + catch-all bucket
_COUNTS_CELLS = _N_ENDPOINTS * _N_STATUSES
_ROWS_CELL = _COUNTS_CELLS
_BATCH_REQS_CELL = _ROWS_CELL + 1
_BATCH_ROWS_CELL = _BATCH_REQS_CELL + 1
_FILL_OFFSET = _BATCH_ROWS_CELL + 1
_N_FILL_BUCKETS = len(BATCH_FILL_BUCKETS) + 1
_FILL_SUM_CELL = _FILL_OFFSET + _N_FILL_BUCKETS
_ENGINE_OFFSET = _FILL_SUM_CELL + 1
_N_ENGINE_CELLS = len(ENGINE_CELL_KEYS)
_HIST_OFFSET = _ENGINE_OFFSET + _N_ENGINE_CELLS
#: Histogram cells per endpoint: the bucket counts plus the sum of
#: observed seconds (the count is the bucket total, not a cell).
_HIST_CELLS = N_LATENCY_BUCKETS + 1
SLOT_CELLS = _HIST_OFFSET + _N_ENDPOINTS * _HIST_CELLS

_ENDPOINT_INDEX = {label: i for i, label in enumerate(SHARED_ENDPOINTS)}
_STATUS_INDEX = {code: i for i, code in enumerate(SHARED_STATUSES)}
_ENGINE_INDEX = {key: i for i, key in enumerate(ENGINE_CELL_KEYS)}


class SharedMetricsStore:
    """A memory-mapped counter file shared by every worker process.

    The parent creates the file (zero-filled) before forking; each
    worker obtains a single-writer :class:`SharedMetricsWriter` for its
    own slot, and any worker can :meth:`snapshot` the fleet.  Cells are
    aligned ``float64`` — single stores on every platform we run on —
    and each slot has exactly one writer, so no cross-process locking
    is needed; a reader can at worst see a request that is mid-flight,
    never a torn counter that was already reported to its client.
    """

    def __init__(self, path, n_slots: int, create: bool = False):
        self.path = str(path)
        self.n_slots = int(n_slots)
        if self.n_slots < 1:
            raise ValueError(f"n_slots must be >= 1, got {n_slots}")
        mode = "w+" if create else "r+"
        self._cells = np.memmap(
            self.path,
            dtype=np.float64,
            mode=mode,
            shape=(self.n_slots, SLOT_CELLS),
        )
        if create:
            self._cells[:] = 0.0
            self._cells.flush()

    def writer(self, slot: int) -> "SharedMetricsWriter":
        return SharedMetricsWriter(self, slot)

    def merged(self) -> dict:
        """Fleet-wide totals summed over every worker slot.

        Returns the aggregation fragment of the ``/metrics`` payload:
        ``requests_total`` / ``rows_scored_total`` / ``errors_total``,
        per-endpoint request and status counts, latency percentiles
        estimated from the summed histogram buckets (exact bucket
        merges — see :mod:`repro.obs.histogram`), and the per-worker
        request totals (handy for spotting a dead or starved worker).
        """
        cells = np.array(self._cells, dtype=np.float64)  # snapshot copy
        counts = cells[:, :_COUNTS_CELLS].reshape(
            self.n_slots, _N_ENDPOINTS, _N_STATUSES
        )
        total_counts = counts.sum(axis=0)  # (E, S)
        histograms = self._merged_histogram_cells(cells)
        endpoints: Dict[str, dict] = {}
        for e, label in enumerate(SHARED_ENDPOINTS):
            requests = int(total_counts[e].sum())
            if requests == 0:
                continue
            by_status = {
                str(code): int(total_counts[e, s])
                for code, s in sorted(_STATUS_INDEX.items())
                if total_counts[e, s] > 0
            }
            if total_counts[e, -1] > 0:
                by_status["other"] = int(total_counts[e, -1])
            entry = {"requests": requests, "by_status": by_status}
            bucket_counts, _ = histograms[label]
            if bucket_counts.sum() > 0:
                entry["latency_ms"] = {
                    f"p{p}": float(
                        round(
                            percentile_from_buckets(bucket_counts, p) * 1e3,
                            3,
                        )
                    )
                    for p in PERCENTILES
                }
            endpoints[label] = entry
        status_codes = np.array(list(SHARED_STATUSES) + [0])
        error_mask = (status_codes >= 400) | (status_codes == 0)
        merged = {
            "requests_total": int(total_counts.sum()),
            "rows_scored_total": int(cells[:, _ROWS_CELL].sum()),
            "errors_total": int(total_counts[:, error_mask].sum()),
            "requests_shed_total": int(
                total_counts[:, _STATUS_INDEX[SHED_STATUS]].sum()
            ),
            "endpoints": endpoints,
            "workers": {
                "count": self.n_slots,
                "requests": [
                    int(counts[slot].sum()) for slot in range(self.n_slots)
                ],
            },
        }
        largest_reqs = int(cells[:, _BATCH_REQS_CELL].max())
        if largest_reqs > 0:
            # Fleet-wide batch-fill high-water marks (per-worker detail
            # stays in each worker's ``micro_batcher`` section).
            merged["micro_batcher_fleet"] = {
                "largest_batch_requests": largest_reqs,
                "largest_batch_rows": int(
                    cells[:, _BATCH_ROWS_CELL].max()
                ),
            }
        return merged

    def merged_histograms(self) -> Dict[str, tuple]:
        """Per-endpoint ``(bucket_counts, sum_seconds)`` fleet sums,
        for endpoints that have observed at least one request."""
        cells = np.array(self._cells, dtype=np.float64)
        return {
            label: pair
            for label, pair in self._merged_histogram_cells(cells).items()
            if pair[0].sum() > 0
        }

    def merged_engine(self) -> Dict[str, float]:
        """Fleet-summed engine cells keyed by :data:`ENGINE_CELL_KEYS`."""
        cells = np.array(self._cells, dtype=np.float64)
        sums = cells[
            :, _ENGINE_OFFSET:_ENGINE_OFFSET + _N_ENGINE_CELLS
        ].sum(axis=0)
        return {
            key: (
                float(sums[i])
                if key.endswith("_seconds")
                else int(sums[i])
            )
            for key, i in _ENGINE_INDEX.items()
        }

    def merged_batch_fill(self) -> tuple:
        """Fleet ``(fill_bucket_counts, total_member_requests)``."""
        cells = np.array(self._cells, dtype=np.float64)
        counts = cells[
            :, _FILL_OFFSET:_FILL_OFFSET + _N_FILL_BUCKETS
        ].sum(axis=0)
        return counts, float(cells[:, _FILL_SUM_CELL].sum())

    @staticmethod
    def _merged_histogram_cells(cells: np.ndarray) -> Dict[str, tuple]:
        hists = cells[:, _HIST_OFFSET:].reshape(
            cells.shape[0], _N_ENDPOINTS, _HIST_CELLS
        ).sum(axis=0)
        return {
            label: (hists[e, :N_LATENCY_BUCKETS], float(hists[e, -1]))
            for label, e in _ENDPOINT_INDEX.items()
        }


class SharedMetricsWriter:
    """Single-writer view of one worker's slot in the shared store.

    Thread-safety: the owning :class:`ServerMetrics` forwards
    observations under its own lock, so writes to this slot are
    already serialised within the worker; no other process writes it.
    """

    def __init__(self, store: SharedMetricsStore, slot: int):
        if not 0 <= int(slot) < store.n_slots:
            raise ValueError(
                f"slot {slot} out of range for {store.n_slots} workers"
            )
        self._row = store._cells[int(slot)]
        self.slot = int(slot)

    def observe(
        self, endpoint: str, status: int, seconds: float, rows: int = 0
    ) -> None:
        e = _ENDPOINT_INDEX.get(endpoint, _N_ENDPOINTS - 1)
        s = _STATUS_INDEX.get(int(status), _N_STATUSES - 1)
        row = self._row
        row[e * _N_STATUSES + s] += 1.0
        if rows:
            row[_ROWS_CELL] += float(rows)
        hist_at = _HIST_OFFSET + e * _HIST_CELLS
        row[hist_at + bucket_index(seconds)] += 1.0
        row[hist_at + _HIST_CELLS - 1] += float(seconds)

    def record_batch(self, n_requests: int, n_rows: int) -> None:
        """Fold one executed batch into the slot's fill telemetry."""
        row = self._row
        if n_requests > row[_BATCH_REQS_CELL]:
            row[_BATCH_REQS_CELL] = float(n_requests)
        if n_rows > row[_BATCH_ROWS_CELL]:
            row[_BATCH_ROWS_CELL] = float(n_rows)
        row[_FILL_OFFSET + _fill_bucket(n_requests)] += 1.0
        row[_FILL_SUM_CELL] += float(n_requests)

    def record_engine(self, totals: Dict[str, float]) -> None:
        """Add one scoring call's engine-profile totals to the slot.

        Unknown keys are ignored (an engine phase added without a cell
        should degrade to "not mirrored", not corrupt a neighbour)."""
        row = self._row
        for key, value in totals.items():
            i = _ENGINE_INDEX.get(key)
            if i is not None:
                row[_ENGINE_OFFSET + i] += float(value)
