"""Thread-safe request metrics for the scoring daemon.

The daemon handles each connection on its own thread
(:class:`http.server.ThreadingHTTPServer`), so every counter here is
guarded by one lock; observations are two dict updates and an append,
cheap enough to sit on the request path.  Latencies are kept in a
bounded per-endpoint window (most recent :data:`DEFAULT_WINDOW`
requests) — enough for stable p50/p90/p99 estimates without unbounded
growth on a long-lived process.

``GET /metrics`` returns :meth:`ServerMetrics.snapshot` as JSON.
"""

from __future__ import annotations

import threading
import time
from collections import Counter, deque
from typing import Deque, Dict

import numpy as np

#: Latency observations retained per endpoint for percentile estimates.
DEFAULT_WINDOW = 1024

#: Percentiles reported per endpoint, in milliseconds.
PERCENTILES = (50, 90, 99)


class ServerMetrics:
    """Request counts, latency percentiles and rows-scored totals."""

    def __init__(self, window: int = DEFAULT_WINDOW):
        self._lock = threading.Lock()
        self._window = int(window)
        self._started = time.time()
        self._counts: Counter[str] = Counter()
        self._statuses: Dict[str, Counter[int]] = {}
        self._latencies: Dict[str, Deque[float]] = {}
        self._rows_scored = 0

    def observe(
        self,
        endpoint: str,
        status: int,
        seconds: float,
        rows: int = 0,
    ) -> None:
        """Record one handled request.

        Parameters
        ----------
        endpoint:
            Route label, e.g. ``"POST /v1/models/{name}/score"`` — the
            pattern, not the concrete path, so per-model traffic folds
            into one series.
        status:
            HTTP status sent back.
        seconds:
            Wall-clock handling time.
        rows:
            Observations scored while handling (0 for non-scoring
            endpoints and failures).
        """
        with self._lock:
            self._counts[endpoint] += 1
            self._statuses.setdefault(endpoint, Counter())[int(status)] += 1
            self._latencies.setdefault(
                endpoint, deque(maxlen=self._window)
            ).append(float(seconds))
            self._rows_scored += int(rows)

    @property
    def rows_scored(self) -> int:
        with self._lock:
            return self._rows_scored

    def snapshot(self) -> dict:
        """A JSON-serialisable view of everything recorded so far."""
        with self._lock:
            endpoints = {}
            for endpoint, count in sorted(self._counts.items()):
                window = np.asarray(self._latencies[endpoint], dtype=float)
                quantiles = np.percentile(window * 1e3, PERCENTILES)
                endpoints[endpoint] = {
                    "requests": int(count),
                    "by_status": {
                        str(status): int(n)
                        for status, n in sorted(
                            self._statuses[endpoint].items()
                        )
                    },
                    "latency_ms": {
                        f"p{p}": float(round(q, 3))
                        for p, q in zip(PERCENTILES, quantiles)
                    },
                }
            return {
                "uptime_seconds": float(round(time.time() - self._started, 3)),
                "requests_total": int(sum(self._counts.values())),
                "rows_scored_total": int(self._rows_scored),
                "endpoints": endpoints,
            }
